#!/usr/bin/env python
"""End-to-end smoke of the campaign job service, over real HTTP.

Boots ``python -m repro serve`` as a subprocess on an ephemeral port,
submits a smoke grid through the HTTP API, waits for it to finish,
then cross-checks the three views of the same campaign:

* the job status (per-task counts, all ``ok``),
* the ``/metrics`` scrape (``repro_service_jobs_total``,
  ``repro_campaign_tasks_total``), and
* the sqlite store on disk (one committed row per task, zero
  stale claims),

and finally SIGTERMs the server, asserting a clean (code 0) graceful
shutdown.  Any divergence — a lost row, a counter that drifts from
the store, an unclean exit — fails the script.  CI runs this in the
``service-smoke`` job; locally::

    PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import signal
import socket
import sqlite3
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.service.api import ServiceClient  # noqa: E402

SMOKE_SPEC = {
    "circuits": ["c17", "tmr_voter"],
    "fault_classes": ["stuck_at", "polarity", "iddq", "stuck_open"],
}


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_healthy(client: ServiceClient, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if client.healthz().get("ok"):
                return
        except OSError:
            time.sleep(0.1)
    raise TimeoutError("service never became healthy")


def store_rows(store: Path) -> dict[str, int]:
    """Committed-row count per status, from the store on disk."""
    uri = f"file:{store}?mode=ro"
    with sqlite3.connect(uri, uri=True) as conn:
        return dict(conn.execute(
            "SELECT status, COUNT(*) FROM tasks GROUP BY status"
        ))


def main() -> int:
    port = free_port()
    n_tasks = len(SMOKE_SPEC["circuits"]) * len(SMOKE_SPEC["fault_classes"])
    with tempfile.TemporaryDirectory() as tmp_dir:
        state_dir = Path(tmp_dir) / "service_state"
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--port", str(port), "--state-dir", str(state_dir)],
            cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        try:
            client = ServiceClient(f"http://127.0.0.1:{port}")
            wait_healthy(client)

            status = client.submit(SMOKE_SPEC)
            print(f"submitted job {status['id']} ({n_tasks} tasks)")
            status = client.wait(status["id"], timeout=120.0)
            assert status["state"] == "done", status
            assert status["counts"].get("ok") == n_tasks, status["counts"]

            page = client.results(status["id"], offset=0)
            assert page["complete"] and len(page["records"]) == n_tasks, (
                f"results page: {len(page['records'])}/{n_tasks} records"
            )

            jobs_done = client.metric_value(
                "repro_service_jobs_total", state="done"
            )
            tasks_ok = client.metric_value(
                "repro_campaign_tasks_total", status="ok"
            )
            rows = store_rows(state_dir / "store.sqlite")
            assert jobs_done == 1.0, f"jobs_total done={jobs_done}"
            assert tasks_ok == float(n_tasks), f"tasks_total ok={tasks_ok}"
            # The tasks table tracks the claim lifecycle: every task
            # 'done' (committed) and none left claimed or pending.
            assert rows == {"done": n_tasks}, (
                f"store rows {rows} != metrics ok={tasks_ok:g}"
            )
            print(f"metrics agree with store: {n_tasks} ok rows, "
                  f"{jobs_done:g} job done")
        finally:
            server.send_signal(signal.SIGTERM)
            code = server.wait(timeout=30.0)
        assert code == 0, f"server exited {code} on SIGTERM"
        print("server shut down cleanly on SIGTERM")
    print("service smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
