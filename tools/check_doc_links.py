#!/usr/bin/env python
"""Fail on broken intra-repo references in the Markdown docs.

Checks every ``*.md`` file at the repo root and under ``docs/`` for

* Markdown links ``[text](target)`` whose target is a repo path, and
* backtick-quoted path-like references (``src/repro/…/*.py``,
  ``docs/*.md``, ``.github/workflows/ci.yml``, …)

and verifies each resolves to an existing file or directory.  Targets
that are URLs, anchors, or known *generated* paths (benchmark output,
campaign stores) are exempt.  It also fails on *orphaned* docs: every
file under ``docs/`` must be referenced from at least one other scanned
document (README or a sibling doc), so a new doc — e.g.
``docs/PERFORMANCE.md`` — cannot land unreachable from the entry
points.  CI runs this in the campaign-smoke job; locally::

    python tools/check_doc_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BACKTICK_PATH = re.compile(
    r"`([A-Za-z0-9_.][A-Za-z0-9_./-]*/"
    r"[A-Za-z0-9_.-]+\.(?:py|md|json|jsonl|yml|yaml|bench|txt|toml))`"
)

#: Path prefixes that are generated at run time, not checked in.
GENERATED_PREFIXES = (
    "benchmarks/out",
    "campaign_store.jsonl",
    "campaign_smoke.jsonl",
    "tutorial.jsonl",
    "campaign.jsonl",
    "my_circuit.bench",
)


def is_exempt(target: str) -> bool:
    if target.startswith(("http://", "https://", "mailto:", "#")):
        return True
    return any(
        target == p or target.startswith(p + "/")
        for p in GENERATED_PREFIXES
    )


def candidate_targets(text: str):
    for match in MD_LINK.finditer(text):
        yield match.group(1).split("#", 1)[0]
    for match in BACKTICK_PATH.finditer(text):
        yield match.group(1)


def check_file(path: Path, targets: list[str]) -> list[str]:
    errors = []
    for target in targets:
        if not target or is_exempt(target):
            continue
        # Resolve relative to the doc's directory, the repo root, or the
        # package root (docs shorthand like `logic/compiled.py`).
        if not any(
            (base / target).exists()
            for base in (path.parent, REPO, REPO / "src" / "repro")
        ):
            errors.append(f"{path.relative_to(REPO)}: broken ref {target!r}")
    return errors


#: Process files, not documentation: ISSUE.md is the per-PR work order,
#: CHANGES.md the running log — both reference historical states.
SKIP = {"ISSUE.md", "CHANGES.md"}


def check_orphans(doc_targets: dict[Path, list[str]]) -> list[str]:
    """Every docs/*.md file must be referenced by another scanned doc."""
    referenced: set[str] = set()
    for doc, targets in doc_targets.items():
        for target in targets:
            name = target.rsplit("/", 1)[-1]
            if name.endswith(".md") and name != doc.name:
                referenced.add(name)
    return [
        f"docs/{doc.name}: orphaned (not referenced from any other doc)"
        for doc in doc_targets
        if doc.parent.name == "docs" and doc.name not in referenced
    ]


def main() -> int:
    docs = [
        p
        for p in sorted(REPO.glob("*.md")) + sorted(REPO.glob("docs/*.md"))
        if p.name not in SKIP
    ]
    doc_targets = {
        doc: list(candidate_targets(doc.read_text())) for doc in docs
    }
    errors: list[str] = []
    for doc, targets in doc_targets.items():
        errors.extend(check_file(doc, targets))
    errors.extend(check_orphans(doc_targets))
    if errors:
        print("\n".join(errors), file=sys.stderr)
        print(f"\n{len(errors)} broken doc reference(s)", file=sys.stderr)
        return 1
    print(f"doc links ok ({len(docs)} files checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
