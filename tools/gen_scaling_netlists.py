#!/usr/bin/env python
"""Materialise the ISCAS-class scaling corpus into benchmarks/netlists/.

The corpus circuits are synthetic seeded networks at ISCAS gate-count
scale: combinational (cpx432 / cpx880 / cpx1908, ISCAS-85-class,
:data:`repro.circuits.random_circuits.CORPUS_RECIPES`) and sequential
with DFFs (sqx344 / sqx1488, ISCAS-89-class,
:data:`repro.circuits.random_circuits.SEQ_CORPUS_RECIPES`).  This tool
regenerates the ``.bench`` files from those recipes; the files are
checked in, and the test suites assert that regeneration reproduces
the checked-in text bit-for-bit (provenance: the netlists on disk are
exactly what the recipes say they are).  The real ISCAS-89 s27 netlist
also lives in ``benchmarks/netlists/`` but is checked in verbatim, not
generated — this tool leaves it alone.

Usage::

    PYTHONPATH=src python tools/gen_scaling_netlists.py [--check]

``--check`` writes nothing and exits 1 if any checked-in file differs
from its recipe (the CI guard mode).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.circuits.random_circuits import (  # noqa: E402
    CORPUS_RECIPES,
    SEQ_CORPUS_RECIPES,
    build_corpus_network,
)
from repro.logic.bench_format import write_bench  # noqa: E402

NETLIST_DIR = REPO / "benchmarks" / "netlists"


def corpus_texts() -> dict[str, str]:
    """name -> .bench text for every corpus recipe (deterministic)."""
    return {
        name: write_bench(build_corpus_network(name))
        for name in (*CORPUS_RECIPES, *SEQ_CORPUS_RECIPES)
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify checked-in files match the recipes; write nothing",
    )
    args = parser.parse_args(argv)
    stale = []
    NETLIST_DIR.mkdir(parents=True, exist_ok=True)
    for name, text in corpus_texts().items():
        path = NETLIST_DIR / f"{name}.bench"
        on_disk = path.read_text() if path.exists() else None
        if on_disk == text:
            print(f"  ok       {path.relative_to(REPO)}")
            continue
        if args.check:
            stale.append(path)
            print(f"  STALE    {path.relative_to(REPO)}")
            continue
        path.write_text(text)
        verb = "rewrote" if on_disk is not None else "wrote"
        print(f"  {verb:<8} {path.relative_to(REPO)} ({len(text)} bytes)")
    if stale:
        print(
            f"{len(stale)} corpus netlist(s) out of date; rerun without "
            f"--check to regenerate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
