"""Section V-C: channel-break masking in DP gates and the new
polarity-inversion test procedure; two-pattern SOF sets for SP gates."""

from repro.analysis import save_report
from repro.analysis.experiments import experiment_sec5c
from repro.core.test_algorithms import two_pattern_sof_tests
from repro.gates.library import NAND2, XOR2


def test_sec5c_channel_break_and_procedure(once):
    observations, report = once(experiment_sec5c)
    print("\n" + report)
    save_report("sec5c_channel_break", report)

    for obs in observations:
        # The paper's headline: every single break is functionally
        # masked by the redundant pair...
        assert obs.functional, f"break {obs.transistor} not masked"
        # ...and the new procedure finds it without false alarms.
        assert obs.procedure_detects_break
        assert not obs.procedure_false_alarm

    # No usable two-pattern SOF test exists for the DP XOR2, while the
    # SP NAND2 is covered by three pairs (paper lists 11->01, 11->10,
    # 00->11; our generator emits an equivalent minimal cover).
    assert two_pattern_sof_tests(XOR2) == []
    nand_tests = two_pattern_sof_tests(NAND2)
    assert len(nand_tests) == 3
    covered = sorted(t for test in nand_tests for t in test.covered)
    assert covered == ["t1", "t2", "t3", "t4"]
