"""Table I: fabrication steps -> defect models, plus IFA site census."""

from repro.analysis import save_report
from repro.analysis.experiments import experiment_table1
from repro.core.defects import FABRICATION_STEPS


def test_table1_defect_taxonomy(once):
    rows, report = once(experiment_table1)
    print("\n" + report)
    save_report("table1_defect_taxonomy", report)
    # Shape checks against the paper's Table I.
    assert len(rows) == len(FABRICATION_STEPS) == 5
    assert "nanowire break" in rows[0][2]
    assert "gate oxide short" in rows[2][2]
    assert "bridge" in rows[3][2]
    assert "floating gate" in rows[4][2]
