"""JSONL vs sqlite campaign-store backends: write/scan/verify throughput.

Runs the full claim-and-commit write path of both ``ResultBackend``
implementations on one synthetic campaign (register the task table,
claim each task, append its result record), then times a cold
``latest()`` scan and a full ``verify()`` integrity audit (checksum
recomputation on sqlite, torn-tail scan on JSONL), asserting

* both backends round-trip the records bit-identically after
  ``strip_volatile`` (the cross-backend determinism contract), and
* both verify clean (no corrupt, quarantined or stale rows),

then writes a machine-readable perf record to ``BENCH_store.json`` at
the repository root.  There is no cross-backend speed bar: the sqlite
backend buys atomic multi-runner claiming and per-row checksums with a
transaction per append, so the interesting artefact is the measured
price of those guarantees, not a winner.

Dual-mode: run under pytest (``pytest benchmarks/bench_store_backends.py``)
or standalone::

    PYTHONPATH=src python benchmarks/bench_store_backends.py [--smoke]

``--smoke`` shrinks the synthetic campaign so the bench finishes in
about a second on a shared runner.
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis import save_report
from repro.analysis.report import ascii_table
from repro.campaign.backends import BACKENDS, open_store
from repro.campaign.store import strip_volatile

N_RECORDS = 2000
N_RECORDS_SMOKE = 300
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"

_STORE_SUFFIX = {"jsonl": ".jsonl", "sqlite": ".sqlite"}


def synth_records(n):
    """A deterministic synthetic campaign: n tasks, one record each."""
    records = []
    for i in range(n):
        task_id = f"bench{i:05d}/fault_sim/auto"
        records.append({
            "schema": 2,
            "task_id": task_id,
            "circuit": task_id.split("/")[0],
            "fault_class": "fault_sim",
            "engine_used": "auto",
            "status": "ok",
            "attempt": 1,
            "runtime_s": 0.0,
            "metrics": {
                "n_faults": 100 + i,
                "coverage": (i % 97) / 97.0,
                "note": "synthetic store-throughput row, μ-fault free",
            },
        })
    return records


def bench_backend(backend, records, tmp_dir):
    """Time write / scan / verify on one backend; return a record."""
    path = Path(tmp_dir) / f"bench_{backend}{_STORE_SUFFIX[backend]}"
    task_ids = [r["task_id"] for r in records]

    t0 = time.perf_counter()
    with open_store(path, backend) as store:
        store.register(task_ids)
        for record in records:
            store.claim(record["task_id"])
            store.append(record)
        store.release()
    write_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    with open_store(path, backend) as store:
        latest = store.latest()
    scan_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    with open_store(path, backend) as store:
        report = store.verify()
    verify_s = time.perf_counter() - t0

    assert report["ok"], f"{backend}: dirty verify on a healthy store"
    assert len(latest) == len(records), backend
    store_bytes = path.stat().st_size
    if backend == "sqlite":
        for sidecar in path.parent.glob(path.name + "-*"):
            store_bytes += sidecar.stat().st_size
    return {
        "backend": backend,
        "n_records": len(records),
        "write_s": write_s,
        "writes_per_s": len(records) / write_s,
        "scan_s": scan_s,
        "verify_s": verify_s,
        "store_bytes": store_bytes,
    }, latest


def run_backends(n=N_RECORDS):
    """Bench every registered backend on one synthetic campaign."""
    records = synth_records(n)
    results, latests = [], {}
    with tempfile.TemporaryDirectory() as tmp_dir:
        for backend in sorted(BACKENDS):
            result, latest = bench_backend(backend, records, tmp_dir)
            results.append(result)
            latests[backend] = latest

    def canonical(latest):
        return strip_volatile(
            latest[tid] for tid in sorted(latest)
        )

    reference = canonical(latests[results[0]["backend"]])
    for result in results[1:]:
        assert canonical(latests[result["backend"]]) == reference, (
            f"{result['backend']} round-trip diverges from "
            f"{results[0]['backend']}"
        )
    return results


def format_report(results):
    rows = [
        (
            r["backend"], r["n_records"],
            f"{r['writes_per_s']:.0f}",
            f"{r['write_s'] * 1e3:.1f}",
            f"{r['scan_s'] * 1e3:.1f}",
            f"{r['verify_s'] * 1e3:.1f}",
            f"{r['store_bytes'] / 1024:.0f}",
        )
        for r in results
    ]
    return "\n".join([
        "Campaign store backends: claim-and-commit write path, cold scan,"
        " integrity audit",
        ascii_table(
            ("backend", "records", "writes/s", "write ms", "scan ms",
             "verify ms", "KiB"),
            rows,
        ),
        "",
        "One synthetic campaign through both ResultBackend",
        "implementations: register + claim + append per task (the",
        "runner's hot path), latest() on a freshly opened store, and",
        "the verify() audit (per-row CRC-32 recomputation on sqlite,",
        "torn-tail scan on JSONL).  Both stores round-trip",
        "strip_volatile-identical records and verify clean.",
    ])


def write_record(results, path=RECORD_PATH):
    record = {
        "benchmark": "store_backends",
        "schema_version": 1,
        "generated": time.strftime("%Y-%m-%d %H:%M:%S"),
        "python": sys.version.split()[0],
        "workload": "register + claim + append per task, cold latest() "
                    "scan, full verify() audit, per backend",
        "records": results,
    }
    path.write_text(json.dumps(record, indent=2) + "\n")
    return path


def test_store_backends(once):
    results = run_backends()
    report = format_report(results)
    print("\n" + report)
    save_report("store_backends", report)
    write_record(results)
    once(lambda: run_backends(n=N_RECORDS_SMOKE))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"shrink the campaign to {N_RECORDS_SMOKE} records",
    )
    parser.add_argument(
        "--out", type=Path, default=RECORD_PATH,
        help="perf-record path (default: repo-root BENCH_store.json)",
    )
    args = parser.parse_args(argv)
    results = run_backends(N_RECORDS_SMOKE if args.smoke else N_RECORDS)
    print(format_report(results))
    path = write_record(results, args.out)
    print(f"\nperf record -> {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
