"""Legacy vs compiled PODEM: end-to-end ATPG wall-clock.

Runs the full stuck-at ATPG campaign (PODEM generation + bit-parallel
fault dropping) on rca8 / rca16 / alu4 through both engines, asserts

* bit-identical results — same test vectors, same detection indices,
  same untestable/aborted classification — and
* the >=5x wall-clock bar on rca16 and alu4 (the acceptance circuits),

then writes a machine-readable perf record to ``BENCH_atpg.json`` at
the repository root (the perf-trajectory seed; CI uploads it as an
artifact).

A second, **scaling** tier covers the multi-word 2-D engine on the
ISCAS-class corpus (``benchmarks/netlists/``): a full stuck-at +
polarity random-simulation campaign (the ``fault_sim`` task) per
corpus circuit — combinational (cpx432 / cpx880 / cpx1908) and
sequential (sqx344 / sqx1488, time-frame expanded over 3 clock cycles
per test) — with single-digit-second wall-clock bars on the
>=1000-gate cpx1908 and sqx1488.  Both tiers land in the same
``BENCH_atpg.json`` record (schema v2: classic engine comparison under
``records``, corpus sweeps under ``scaling``; sequential rows carry a
non-null ``frames``).

Dual-mode: run under pytest (``pytest benchmarks/bench_atpg_speed.py``)
for the full bars, or standalone::

    PYTHONPATH=src python benchmarks/bench_atpg_speed.py [--smoke]
    PYTHONPATH=src python benchmarks/bench_atpg_speed.py --scaling

``--smoke`` is the CI perf-regression gate: one timing round and
relaxed bars so shared-runner jitter cannot fail a healthy build.
``--scaling`` runs only the corpus tier (the CI scaling-smoke job
pairs it with ``--smoke``).
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis import save_report
from repro.analysis.report import ascii_table
from repro.faults import stuck_at_faults
from repro.atpg.podem import run_stuck_at_atpg
from repro.circuits import build_benchmark

CIRCUITS = ("rca8", "rca16", "alu4")
#: Acceptance circuits and their required end-to-end speedup.
SPEEDUP_BARS = {"rca16": 5.0, "alu4": 5.0}
SMOKE_BAR = 2.0
#: Scaling tier: ISCAS-class corpus circuits for the multi-word sweep —
#: combinational plus the sequential (DFF) pair, which runs time-frame
#: expanded (FAULT_SIM_FRAMES cycles per test).
SCALING_CIRCUITS = ("cpx432", "cpx880", "cpx1908", "sqx344", "sqx1488")
#: The acceptance bars — full stuck-at + polarity campaigns on the
#: >=1000-gate circuits in single-digit seconds (relaxed under
#: --smoke).  sqx1488 unrolled x3 is a ~4500-gate problem, so its bar
#: doubles as the sequential-path perf gate.
SCALING_BARS_S = {"cpx1908": 9.0, "sqx1488": 9.0}
SCALING_SMOKE_BAR_S = 30.0
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_atpg.json"


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_campaigns(circuits=CIRCUITS, repeats=3):
    """Time both engines on full campaigns; returns per-circuit records.

    Raises AssertionError if any result field differs between engines —
    the speed comparison is only meaningful at identical coverage and
    identical untestable classification.
    """
    records = []
    for name in circuits:
        network = build_benchmark(name)
        faults = stuck_at_faults(network)
        t_legacy, legacy = _best_of(
            lambda: run_stuck_at_atpg(network, faults, engine="legacy"),
            repeats,
        )
        t_compiled, compiled = _best_of(
            lambda: run_stuck_at_atpg(network, faults, engine="compiled"),
            repeats,
        )
        assert legacy.tests == compiled.tests, name
        assert legacy.detected == compiled.detected, name
        assert legacy.untestable == compiled.untestable, name
        assert legacy.aborted == compiled.aborted, name
        records.append({
            "circuit": name,
            "gates": len(network.gates),
            "faults": len(faults),
            "tests": len(compiled.tests),
            "coverage": compiled.coverage,
            "untestable": len(compiled.untestable),
            "aborted": len(compiled.aborted),
            "legacy_ms": t_legacy * 1e3,
            "compiled_ms": t_compiled * 1e3,
            "speedup": t_legacy / t_compiled,
        })
    return records


def run_scaling(circuits=SCALING_CIRCUITS, repeats=2):
    """Time the multi-word fault_sim campaign on the corpus circuits."""
    from repro.campaign.registry import get_registry
    from repro.campaign.tasks import FAULT_SIM_VECTORS, run_fault_sim_task

    registry = get_registry()
    records = []
    for name in circuits:
        network = registry.load(name)
        seconds, metrics = _best_of(
            lambda: run_fault_sim_task(network, engine="auto"), repeats
        )
        records.append({
            "circuit": name,
            "gates": len(network.gates),
            "frames": metrics.get("n_frames"),  # None: combinational
            "vectors": FAULT_SIM_VECTORS,
            "stuck_at_faults": metrics["n_stuck_at_faults"],
            "stuck_at_coverage": metrics["stuck_at_coverage"],
            "polarity_faults": metrics["n_polarity_faults"],
            "polarity_iddq_coverage": metrics["polarity_iddq_coverage"],
            "seconds": seconds,
        })
    return records


def format_scaling_report(records):
    rows = [
        (
            r["circuit"], r["gates"],
            "-" if r["frames"] is None else f"x{r['frames']}",
            r["stuck_at_faults"],
            r["polarity_faults"], r["vectors"],
            f"{r['stuck_at_coverage'] * 100:.1f}%",
            "n/a" if r["polarity_iddq_coverage"] is None
            else f"{r['polarity_iddq_coverage'] * 100:.1f}%",
            f"{r['seconds']:.2f}",
        )
        for r in records
    ]
    return "\n".join([
        "Scaling tier: multi-word 2-D fault x vector sweeps on the "
        "ISCAS-class corpus",
        ascii_table(
            ("circuit", "gates", "frames", "sa faults", "pol faults",
             "vectors", "sa cov", "iddq cov", "seconds"),
            rows,
        ),
        "",
        "Full stuck-at + polarity (voltage and IDDQ) random-vector",
        "campaign per circuit through repro.logic.multiword: the fault",
        "batch and the whole vector set simulate as one numpy uint64",
        "sweep (fault-major x vector-word axes).  Sequential circuits",
        "(frames column) run time-frame expanded; each vector is a",
        "per-cycle input sequence and faults replicate across frames.",
    ])


def check_scaling_bars(records, bars):
    failures = []
    for r in records:
        bar = bars.get(r["circuit"])
        if bar is not None and r["seconds"] > bar:
            failures.append(
                f"{r['circuit']}: {r['seconds']:.2f}s over the "
                f"{bar:.0f}s bar"
            )
    return failures


def format_report(records):
    rows = [
        (
            r["circuit"], r["faults"], r["tests"],
            f"{r['coverage'] * 100:.1f}%", r["untestable"],
            f"{r['legacy_ms']:.1f}", f"{r['compiled_ms']:.1f}",
            f"x{r['speedup']:.1f}",
        )
        for r in records
    ]
    return "\n".join([
        "End-to-end stuck-at ATPG: legacy dict-based PODEM vs compiled "
        "D-calculus engine",
        ascii_table(
            ("circuit", "faults", "tests", "coverage", "untestable",
             "legacy ms", "compiled ms", "speedup"),
            rows,
        ),
        "",
        "Identical vectors, detection maps and untestable classification",
        "on every circuit; the compiled engine encodes good/faulty",
        "machines in the dual-rail words and re-implies only each",
        "decision's fanout cone.",
    ])


def write_record(records, bars, path=RECORD_PATH, scaling=None,
                 scaling_bars=None):
    record = {
        "benchmark": "atpg_speed",
        "schema_version": 2,
        "generated": time.strftime("%Y-%m-%d %H:%M:%S"),
        "python": sys.version.split()[0],
        "engine": "compiled D-calculus PODEM vs legacy dict-based PODEM",
        "workload": "run_stuck_at_atpg: PODEM + bit-parallel fault "
                    "dropping over the full collapsed stuck-at list",
        "speedup_bars": bars,
        "records": records,
    }
    if path.exists():
        # Preserve whichever tier this invocation did not rerun, so
        # --scaling and the classic run don't clobber each other.
        try:
            previous = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            previous = {}
        if scaling is None:
            scaling = previous.get("scaling")
            scaling_bars = previous.get("scaling_bars_s", scaling_bars)
        if not records:
            record["records"] = previous.get("records", [])
            record["speedup_bars"] = previous.get("speedup_bars", bars)
    if scaling is not None:
        record["scaling_workload"] = (
            "run_fault_sim_task: multi-word stuck-at + polarity "
            "random-vector campaign on the ISCAS-class corpus"
        )
        record["scaling_bars_s"] = scaling_bars or {}
        record["scaling"] = scaling
    path.write_text(json.dumps(record, indent=2) + "\n")
    return path


def check_bars(records, bars):
    failures = []
    for r in records:
        bar = bars.get(r["circuit"])
        if bar is not None and r["speedup"] < bar:
            failures.append(
                f"{r['circuit']}: x{r['speedup']:.1f} below the "
                f"{bar:.0f}x bar"
            )
    return failures


def test_atpg_speed(once):
    records = run_campaigns()
    report = format_report(records)
    print("\n" + report)
    save_report("atpg_speed", report)
    write_record(records, SPEEDUP_BARS)

    def run_compiled_again():
        network = build_benchmark("rca16")
        return run_stuck_at_atpg(
            network, stuck_at_faults(network), engine="compiled"
        )

    once(run_compiled_again)
    failures = check_bars(records, SPEEDUP_BARS)
    assert not failures, "; ".join(failures)


def test_scaling_tier(once):
    scaling = run_scaling(repeats=2)
    report = format_scaling_report(scaling)
    print("\n" + report)
    save_report("atpg_scaling", report)
    write_record([], SPEEDUP_BARS, scaling=scaling,
                 scaling_bars=SCALING_BARS_S)

    def run_cpx1908_again():
        from repro.campaign.registry import get_registry
        from repro.campaign.tasks import run_fault_sim_task

        return run_fault_sim_task(
            get_registry().load("cpx1908"), engine="auto"
        )

    once(run_cpx1908_again)
    failures = check_scaling_bars(scaling, SCALING_BARS_S)
    assert not failures, "; ".join(failures)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI gate: single timing round, relaxed "
             f"{SMOKE_BAR:.0f}x / {SCALING_SMOKE_BAR_S:.0f}s bars",
    )
    parser.add_argument(
        "--scaling", action="store_true",
        help="run only the ISCAS-class corpus scaling tier",
    )
    parser.add_argument(
        "--out", type=Path, default=RECORD_PATH,
        help="perf-record path (default: repo-root BENCH_atpg.json)",
    )
    args = parser.parse_args(argv)
    repeats = 1 if args.smoke else 3
    failures = []
    if args.scaling:
        records, bars = [], {}
        scaling_bars = (
            {name: SCALING_SMOKE_BAR_S for name in SCALING_BARS_S}
            if args.smoke else dict(SCALING_BARS_S)
        )
        scaling = run_scaling(repeats=max(1, repeats - 1))
        print(format_scaling_report(scaling))
        failures += check_scaling_bars(scaling, scaling_bars)
    else:
        bars = (
            {name: SMOKE_BAR for name in SPEEDUP_BARS}
            if args.smoke else dict(SPEEDUP_BARS)
        )
        scaling, scaling_bars = None, None
        records = run_campaigns(repeats=repeats)
        print(format_report(records))
        failures += check_bars(records, bars)
    path = write_record(records, bars, args.out, scaling=scaling,
                        scaling_bars=scaling_bars)
    print(f"\nperf record -> {path}")
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
