"""Legacy vs compiled PODEM: end-to-end ATPG wall-clock.

Runs the full stuck-at ATPG campaign (PODEM generation + bit-parallel
fault dropping) on rca8 / rca16 / alu4 through both engines, asserts

* bit-identical results — same test vectors, same detection indices,
  same untestable/aborted classification — and
* the >=5x wall-clock bar on rca16 and alu4 (the acceptance circuits),

then writes a machine-readable perf record to ``BENCH_atpg.json`` at
the repository root (the perf-trajectory seed; CI uploads it as an
artifact).

Dual-mode: run under pytest (``pytest benchmarks/bench_atpg_speed.py``)
for the full bars, or standalone::

    PYTHONPATH=src python benchmarks/bench_atpg_speed.py [--smoke]

``--smoke`` is the CI perf-regression gate: one timing round and a
relaxed 2x bar so shared-runner jitter cannot fail a healthy build.
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis import save_report
from repro.analysis.report import ascii_table
from repro.faults import stuck_at_faults
from repro.atpg.podem import run_stuck_at_atpg
from repro.circuits import build_benchmark

CIRCUITS = ("rca8", "rca16", "alu4")
#: Acceptance circuits and their required end-to-end speedup.
SPEEDUP_BARS = {"rca16": 5.0, "alu4": 5.0}
SMOKE_BAR = 2.0
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_atpg.json"


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_campaigns(circuits=CIRCUITS, repeats=3):
    """Time both engines on full campaigns; returns per-circuit records.

    Raises AssertionError if any result field differs between engines —
    the speed comparison is only meaningful at identical coverage and
    identical untestable classification.
    """
    records = []
    for name in circuits:
        network = build_benchmark(name)
        faults = stuck_at_faults(network)
        t_legacy, legacy = _best_of(
            lambda: run_stuck_at_atpg(network, faults, engine="legacy"),
            repeats,
        )
        t_compiled, compiled = _best_of(
            lambda: run_stuck_at_atpg(network, faults, engine="compiled"),
            repeats,
        )
        assert legacy.tests == compiled.tests, name
        assert legacy.detected == compiled.detected, name
        assert legacy.untestable == compiled.untestable, name
        assert legacy.aborted == compiled.aborted, name
        records.append({
            "circuit": name,
            "gates": len(network.gates),
            "faults": len(faults),
            "tests": len(compiled.tests),
            "coverage": compiled.coverage,
            "untestable": len(compiled.untestable),
            "aborted": len(compiled.aborted),
            "legacy_ms": t_legacy * 1e3,
            "compiled_ms": t_compiled * 1e3,
            "speedup": t_legacy / t_compiled,
        })
    return records


def format_report(records):
    rows = [
        (
            r["circuit"], r["faults"], r["tests"],
            f"{r['coverage'] * 100:.1f}%", r["untestable"],
            f"{r['legacy_ms']:.1f}", f"{r['compiled_ms']:.1f}",
            f"x{r['speedup']:.1f}",
        )
        for r in records
    ]
    return "\n".join([
        "End-to-end stuck-at ATPG: legacy dict-based PODEM vs compiled "
        "D-calculus engine",
        ascii_table(
            ("circuit", "faults", "tests", "coverage", "untestable",
             "legacy ms", "compiled ms", "speedup"),
            rows,
        ),
        "",
        "Identical vectors, detection maps and untestable classification",
        "on every circuit; the compiled engine encodes good/faulty",
        "machines in the dual-rail words and re-implies only each",
        "decision's fanout cone.",
    ])


def write_record(records, bars, path=RECORD_PATH):
    record = {
        "benchmark": "atpg_speed",
        "schema_version": 1,
        "generated": time.strftime("%Y-%m-%d %H:%M:%S"),
        "python": sys.version.split()[0],
        "engine": "compiled D-calculus PODEM vs legacy dict-based PODEM",
        "workload": "run_stuck_at_atpg: PODEM + bit-parallel fault "
                    "dropping over the full collapsed stuck-at list",
        "speedup_bars": bars,
        "records": records,
    }
    path.write_text(json.dumps(record, indent=2) + "\n")
    return path


def check_bars(records, bars):
    failures = []
    for r in records:
        bar = bars.get(r["circuit"])
        if bar is not None and r["speedup"] < bar:
            failures.append(
                f"{r['circuit']}: x{r['speedup']:.1f} below the "
                f"{bar:.0f}x bar"
            )
    return failures


def test_atpg_speed(once):
    records = run_campaigns()
    report = format_report(records)
    print("\n" + report)
    save_report("atpg_speed", report)
    write_record(records, SPEEDUP_BARS)

    def run_compiled_again():
        network = build_benchmark("rca16")
        return run_stuck_at_atpg(
            network, stuck_at_faults(network), engine="compiled"
        )

    once(run_compiled_again)
    failures = check_bars(records, SPEEDUP_BARS)
    assert not failures, "; ".join(failures)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI gate: single timing round, relaxed "
             f"{SMOKE_BAR:.0f}x bar",
    )
    parser.add_argument(
        "--out", type=Path, default=RECORD_PATH,
        help="perf-record path (default: repo-root BENCH_atpg.json)",
    )
    args = parser.parse_args(argv)
    bars = (
        {name: SMOKE_BAR for name in SPEEDUP_BARS}
        if args.smoke else dict(SPEEDUP_BARS)
    )
    records = run_campaigns(repeats=1 if args.smoke else 3)
    print(format_report(records))
    path = write_record(records, bars, args.out)
    print(f"\nperf record -> {path}")
    failures = check_bars(records, bars)
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
