"""Engine throughput benchmarks: PODEM, fault simulation, SPICE kernel.

Unlike the table/figure benches these measure raw speed with several
rounds — they are regression guards for the substrates.
"""

import numpy as np

from repro.atpg.fault_sim import parallel_stuck_at_simulation
from repro.faults import stuck_at_faults
from repro.atpg.podem import generate_test
from repro.circuits.generators import ripple_carry_adder
from repro.device.tig_model import TIGSiNWFET
from repro.gates.builder import build_cell_circuit
from repro.gates.library import XOR2
from repro.spice.dc import solve_dc


def test_podem_throughput_rca8(benchmark):
    network = ripple_carry_adder(8)
    faults = stuck_at_faults(network)

    def run():
        found = 0
        for fault in faults:
            if generate_test(network, fault).success:
                found += 1
        return found

    found = benchmark(run)
    assert found == len(faults)


def test_parallel_fault_sim_throughput(benchmark):
    network = ripple_carry_adder(8)
    faults = stuck_at_faults(network)
    rng = np.random.default_rng(11)
    vectors = [
        {n: int(rng.integers(0, 2)) for n in network.primary_inputs}
        for _ in range(128)
    ]
    result = benchmark(
        parallel_stuck_at_simulation, network, faults, vectors
    )
    assert result.coverage > 0.9


def test_device_model_evaluation_speed(benchmark):
    device = TIGSiNWFET()
    volts = np.random.default_rng(3).uniform(0, 1.2, size=(4096, 5))

    def run():
        return device.terminal_current_matrix(volts)

    out = benchmark(run)
    assert out.shape == (4096, 5)


def test_spice_dc_speed_xor2(benchmark):
    bench = build_cell_circuit(XOR2, fanout=4)
    bench.set_vector((0, 1))
    result = benchmark(solve_dc, bench.circuit)
    assert abs(result.voltage("out") - 1.2) < 0.1
