"""Ablation benches for the design choices DESIGN.md calls out.

Two substitutions in this reproduction carry modelling weight; each
ablation removes one and shows the paper-matching behaviour degrade:

1. **n/p drive asymmetry** (`p_branch_factor`): with a symmetric device
   the full polarity-terminal open on XOR2's pull-up breaks the gate's
   function (the wrong-mode p path wins contentions), contradicting the
   paper's Fig. 5c claim that the XOR stays functional; the calibrated
   asymmetric device keeps it functional.
2. **Drive-strength resolution in the switch-level engine**: without it,
   every polarity fault looks output-detectable (pure conflict = X),
   erasing Table III's pull-up/pull-down asymmetry.  With it, the
   pull-up rows become leakage-only, as the paper reports.
"""

import itertools

from repro.analysis import ascii_table, save_report
from repro.core.fault_models import FloatingPolarityGate
from repro.device.params import DeviceParameters
from repro.device.tig_model import TIGSiNWFET
from repro.gates.builder import build_cell_circuit
from repro.gates.library import XOR2
from repro.logic.switch_level import DeviceState, evaluate
from repro.logic.values import X, ZERO
from repro.spice.dc import solve_dc
from repro.spice.measure import logic_level


def _xor_functional_with_open(params: DeviceParameters) -> int:
    """How many Vcut points keep the XOR2 functional under a full
    polarity-terminal open on t1."""
    model = TIGSiNWFET(params)
    functional_points = 0
    for vcut in (0.0, 0.3, 0.6, 0.9):
        bench = build_cell_circuit(XOR2, fanout=4, model=model,
                                   params=params)
        FloatingPolarityGate("t1", "both", vcut).apply(bench)
        ok = True
        for vector in itertools.product((0, 1), repeat=2):
            bench.set_vector(vector)
            op = solve_dc(bench.circuit)
            if logic_level(op.voltage("out"), params.vdd) != (
                XOR2.function(vector)
            ):
                ok = False
        functional_points += ok
    return functional_points


def test_ablation_np_asymmetry(once):
    def run():
        asymmetric = _xor_functional_with_open(DeviceParameters())
        symmetric = _xor_functional_with_open(
            DeviceParameters(p_branch_factor=1.0)
        )
        return asymmetric, symmetric

    asymmetric, symmetric = once(run)
    report = ascii_table(
        ("device", "functional Vcut points (of 4)"),
        [
            ("calibrated (p_branch_factor=0.6)", asymmetric),
            ("ablated symmetric (=1.0)", symmetric),
        ],
    )
    report = (
        "Ablation 1: n/p drive asymmetry vs Fig. 5c functionality\n"
        + report
        + "\n\nPaper: the XOR stays functional under a pull-up polarity"
        "\nopen.  Without the asymmetry the wrong-mode path wins"
        "\ncontentions and the gate fails."
    )
    print("\n" + report)
    save_report("ablation_np_asymmetry", report)
    assert asymmetric == 4
    assert symmetric < asymmetric


def test_ablation_strength_resolution(once):
    """Without strength resolution Table III's pull-up rows would claim
    output detection; the strength-resolved engine holds the output."""

    def run():
        result = evaluate(XOR2, (0, 0), {"t1": DeviceState.STUCK_AT_N})
        return result.output, result.conflict

    output, conflict = once(run)
    rows = [
        ("strength-resolved (ours)", "0 (held)" if output == ZERO else
         "X (tie)", "yes" if conflict else "no"),
        ("naive conflict = X (ablated)", "X (tie)", "yes"),
    ]
    report = (
        "Ablation 2: drive-strength resolution vs Table III\n"
        + ascii_table(("engine", "faulty output @00", "IDDQ flag"), rows)
        + "\n\nThe paper reports pull-up polarity faults as leakage-only"
        "\ndetections; that requires resolving the contention in favour"
        "\nof the strong (right-mode) pull-down network."
    )
    print("\n" + report)
    save_report("ablation_strength_resolution", report)
    assert output == ZERO  # the strong pull-down wins
    assert conflict  # but the IDDQ path is flagged
    assert X == 2  # documentation guard for the naive row
