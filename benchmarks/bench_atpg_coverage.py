"""Circuit-scale extension: classic stuck-at test sets miss CP faults;
the polarity-aware ATPG closes the gap (the paper's thesis at benchmark
scale)."""

import math

from repro.analysis import save_report
from repro.analysis.atpg_experiments import experiment_atpg_coverage


def test_atpg_coverage_study(once):
    results, report = once(
        experiment_atpg_coverage,
        ("c17", "rca4", "parity8", "tmr_voter", "eq4", "alu_slice"),
    )
    print("\n" + report)
    save_report("atpg_coverage", report)

    by_name = {r.name: r for r in results}
    # Classic stuck-at ATPG reaches full coverage of its own model.
    for r in results:
        assert r.stuck_at_coverage > 0.95, r.name

    # DP-rich circuits: the stuck-at set leaves polarity faults behind;
    # the dedicated ATPG covers them all.
    for name in ("rca4", "parity8", "tmr_voter"):
        r = by_name[name]
        assert r.n_polarity > 0
        assert r.polarity_by_stuck_at_set < r.polarity_atpg_coverage
        assert r.polarity_atpg_coverage > 0.95
        # Every DP-gate open is masked (needs the V-C procedure).
        assert r.n_masked_opens > 0

    # The SP-only c17 has no polarity faults and no masked opens.
    assert by_name["c17"].n_polarity == 0
    assert by_name["c17"].n_masked_opens == 0
    assert math.isnan(by_name["c17"].polarity_by_stuck_at_set)
