"""Campaign job service under concurrent load: latency + throughput.

Starts the full service stack in-process — :class:`JobManager` on a
sqlite store, the stdlib ``ThreadingHTTPServer`` API on an ephemeral
port — then drives it with stochastic clients (Locust-style: each
client is a thread with its own seeded RNG submitting mixed
fault-class jobs over small registry circuits, polling status,
paging results and scraping /metrics), asserting

* every submitted job reaches ``done`` (no lost or failed jobs),
* the store holds exactly one latest record per distinct task (the
  shared-store dedup guarantee: overlapping grids resume, never
  duplicate), and
* the ``repro_service_jobs_total{state="done"}`` counter agrees with
  the number of jobs the clients saw complete,

then writes per-operation p50/p99 wall-clock and end-to-end jobs/sec
to a schema-versioned ``BENCH_service.json`` at the repository root.
There is no absolute latency bar — shared runners vary wildly — the
artefact is the measured shape of the API under contention.

Dual-mode: run under pytest (``pytest benchmarks/bench_service.py``)
or standalone::

    PYTHONPATH=src python benchmarks/bench_service.py [--smoke]

``--smoke`` shrinks the fleet so the bench finishes in seconds on a
shared CI runner.
"""

import argparse
import json
import random
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.analysis import save_report
from repro.analysis.report import ascii_table
from repro.service.api import ServiceClient, create_server
from repro.service.jobs import JobManager

N_CLIENTS = 4
JOBS_PER_CLIENT = 3
N_CLIENTS_SMOKE = 2
JOBS_PER_CLIENT_SMOKE = 1
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: Small registry circuits only — the bench measures the service, not
#: the engines; cells must finish in milliseconds.
CIRCUITS = ("c17", "tmr_voter", "parity8", "rca4")
FAULT_CLASSES = ("stuck_at", "polarity", "iddq", "stuck_open")


def percentile(sorted_values, q):
    """Nearest-rank percentile of an ascending list (q in [0, 100])."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(q / 100.0 * (len(sorted_values) - 1))))
    return sorted_values[rank]


def _client_run(client, rng, n_jobs, latencies, done_jobs):
    """One stochastic client: submit, poll, page results, scrape."""
    for _ in range(n_jobs):
        spec = {
            "circuits": sorted(rng.sample(CIRCUITS, rng.randint(1, 2))),
            "fault_classes": sorted(
                rng.sample(FAULT_CLASSES, rng.randint(1, len(FAULT_CLASSES)))
            ),
        }
        status = client.submit(spec)
        latencies["submit"].append(client.last_latency_s)
        job_id = status["id"]
        offset = 0
        deadline = time.monotonic() + 120.0
        while True:
            status = client.status(job_id)
            latencies["status"].append(client.last_latency_s)
            page = client.results(job_id, offset=offset)
            latencies["results"].append(client.last_latency_s)
            offset = page["next_offset"]
            if status["state"] in ("done", "failed", "cancelled"):
                break
            if time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} stuck in {status['state']}")
            time.sleep(0.01 * rng.random())
        client.metric_value("repro_service_jobs_total", state="done")
        latencies["metrics"].append(client.last_latency_s)
        done_jobs.append((job_id, status["state"]))


def run_load(n_clients=N_CLIENTS, jobs_per_client=JOBS_PER_CLIENT):
    """Drive the in-process service with a stochastic client fleet."""
    with tempfile.TemporaryDirectory() as tmp_dir:
        manager = JobManager(tmp_dir, job_workers=2).start()
        server = create_server(manager, port=0)
        server_thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        server_thread.start()
        host, port = server.server_address[:2]
        base_url = f"http://{host}:{port}"
        try:
            probe = ServiceClient(base_url)
            # The registry is process-global; consecutive loads (the
            # pytest timing re-run) accumulate, so assert the delta.
            base_done = probe.metric_value(
                "repro_service_jobs_total", state="done"
            ) or 0.0
            latencies = {
                op: [] for op in ("submit", "status", "results", "metrics")
            }
            done_jobs, errors = [], []

            def worker(seed):
                try:
                    _client_run(
                        ServiceClient(base_url), random.Random(seed),
                        jobs_per_client, latencies, done_jobs,
                    )
                except Exception as exc:  # noqa: BLE001 - collected below
                    errors.append(exc)

            t0 = time.perf_counter()
            threads = [
                threading.Thread(target=worker, args=(1000 + i,))
                for i in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall_s = time.perf_counter() - t0

            if errors:
                raise errors[0]
            n_jobs = n_clients * jobs_per_client
            states = [state for _, state in done_jobs]
            assert states == ["done"] * n_jobs, f"lost/failed jobs: {states}"

            jobs_done = (probe.metric_value(
                "repro_service_jobs_total", state="done"
            ) or 0.0) - base_done
            assert jobs_done == float(n_jobs), (
                f"metrics saw {jobs_done} done jobs, clients saw {n_jobs}"
            )

            # Shared-store dedup: overlapping grids resume, never fork.
            final = probe.results(done_jobs[-1][0], offset=0)
            assert final["complete"], "terminal job with incomplete results"
            task_ids = [r["task_id"] for r in final["records"]]
            assert len(task_ids) == len(set(task_ids)), "duplicated rows"
        finally:
            server.shutdown()
            server_thread.join(5.0)
            server.server_close()
            manager.stop(drain=False)

        results = []
        for op in ("submit", "status", "results", "metrics"):
            values = sorted(latencies[op])
            results.append({
                "op": op,
                "n": len(values),
                "p50_ms": percentile(values, 50) * 1e3,
                "p99_ms": percentile(values, 99) * 1e3,
            })
        return {
            "n_clients": n_clients,
            "n_jobs": n_jobs,
            "wall_s": wall_s,
            "jobs_per_s": n_jobs / wall_s,
            "ops": results,
        }


def format_report(summary):
    rows = [
        (r["op"], r["n"], f"{r['p50_ms']:.2f}", f"{r['p99_ms']:.2f}")
        for r in summary["ops"]
    ]
    return "\n".join([
        "Campaign job service under concurrent stochastic load",
        ascii_table(("op", "requests", "p50 ms", "p99 ms"), rows),
        "",
        f"{summary['n_clients']} clients x "
        f"{summary['n_jobs'] // summary['n_clients']} mixed fault-class "
        f"jobs: {summary['n_jobs']} jobs in {summary['wall_s']:.2f}s "
        f"({summary['jobs_per_s']:.2f} jobs/s end-to-end).",
        "Every job reached done, the jobs_total counter matches the",
        "client count, and the shared store holds no duplicated rows.",
    ])


def write_record(summary, path=RECORD_PATH):
    record = {
        "benchmark": "service",
        "schema_version": 1,
        "generated": time.strftime("%Y-%m-%d %H:%M:%S"),
        "python": sys.version.split()[0],
        "workload": "stochastic HTTP clients submitting mixed fault-class "
                    "jobs, polling status/results, scraping /metrics",
        "summary": {k: v for k, v in summary.items() if k != "ops"},
        "records": summary["ops"],
    }
    path.write_text(json.dumps(record, indent=2) + "\n")
    return path


def test_service_load(once):
    summary = run_load()
    report = format_report(summary)
    print("\n" + report)
    save_report("service", report)
    write_record(summary)
    once(lambda: run_load(N_CLIENTS_SMOKE, JOBS_PER_CLIENT_SMOKE))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="shrink the fleet for a seconds-long CI smoke run",
    )
    parser.add_argument(
        "--out", type=Path, default=RECORD_PATH,
        help="perf-record path (default: repo-root BENCH_service.json)",
    )
    args = parser.parse_args(argv)
    summary = (
        run_load(N_CLIENTS_SMOKE, JOBS_PER_CLIENT_SMOKE)
        if args.smoke
        else run_load()
    )
    print(format_report(summary))
    path = write_record(summary, args.out)
    print(f"\nperf record -> {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
