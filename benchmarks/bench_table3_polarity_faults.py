"""Table III: stuck-at n-/p-type detectability on the 2-input XOR."""

from repro.analysis import save_report
from repro.analysis.experiments import experiment_table3
from repro.core.test_algorithms import polarity_fault_table
from repro.gates.library import XOR2


def test_table3_polarity_fault_detection(once):
    rows, report = once(experiment_table3)
    print("\n" + report)
    save_report("table3_polarity_faults", report)

    # Paper's stuck-at n-type rows, exactly (logic-level view).
    logic = {
        (r.fault_type, r.transistor): r
        for r in polarity_fault_table(XOR2)
    }
    expected_n = {
        "t1": ((0, 0), True, False),
        "t2": ((1, 1), True, False),
        "t3": ((0, 1), True, True),
        "t4": ((1, 0), True, True),
    }
    for transistor, (vector, leak, out) in expected_n.items():
        row = logic[("stuck-at n-type", transistor)]
        assert row.detecting_vector == vector
        assert row.leakage_detect == leak
        assert row.output_detect == out

    # SPICE view: every fault IDDQ-detectable with a big ratio
    # (paper: "more than x10^6"; our calibrated substrate: ~10^5).
    for row in rows:
        assert row.leakage_detect
        assert row.iddq_ratio > 5e4
    # Pull-down faults disturb the output far more than pull-up ones.
    pull_up_shift = max(
        abs(r.v_out - r.v_out_good)
        for r in rows
        if r.transistor in ("t1", "t2") and "n-type" in r.fault_type
    )
    pull_down_shift = max(
        abs(r.v_out - r.v_out_good)
        for r in rows
        if r.transistor in ("t3", "t4") and "n-type" in r.fault_type
    )
    assert pull_down_shift > pull_up_shift
