"""Fig. 3: I-V curves of the n-type device with GOS at PGS / CG / PGD."""

import numpy as np

from repro.analysis import format_series, save_report
from repro.analysis.experiments import experiment_fig3


def test_fig3_gos_transfer_curves(once):
    cases, report = once(experiment_fig3)
    series = []
    for case in cases:
        series.append(
            format_series(
                "VCG [V]", f"ID [A] ({case.label})",
                case.v_cg[::12], case.i_d[::12],
            )
        )
    full = report + "\n\n" + "\n\n".join(series)
    print("\n" + full)
    save_report("fig3_gos_iv", full)

    by_label = {c.label: c for c in cases}
    # Paper shape anchors.
    pgs = by_label["GOS on PGS"]
    cg = by_label["GOS on CG"]
    pgd = by_label["GOS on PGD"]
    assert 0.3 < pgs.id_sat_ratio < 0.55          # strongest reduction
    assert pgs.delta_vth == np.float64(pgs.delta_vth)
    assert abs(pgs.delta_vth - 0.17) < 0.03       # ~ +170 mV
    assert pgs.id_sat_ratio < cg.id_sat_ratio < 1.0  # CG milder
    assert cg.i_min < 0.0                         # negative ID at low VCG
    assert 1.0 < pgd.id_sat_ratio < 1.2           # slight increase
    assert abs(pgd.delta_vth) < 0.03              # no VTh impact
