"""Fig. 4: channel electron density maps from the TCAD-lite solver."""

from repro.analysis import save_report
from repro.analysis.experiments import experiment_fig4


def test_fig4_electron_densities(once):
    summary, report = once(experiment_fig4)
    print("\n" + report)
    save_report("fig4_carrier_density", report)

    densities = {k: v.density_cm3 for k, v in summary.items()}
    # Ordering anchor: FF >> GOS@CG > GOS@PGD >> GOS@PGS.
    assert (
        densities["fault-free"]
        > densities["gos@cg"]
        > densities["gos@pgd"]
        > densities["gos@pgs"]
    )
    # Each case within ~3x of the paper's annotated value.
    for name, case in summary.items():
        ratio = case.density_cm3 / case.reference_cm3
        assert 1 / 3 < ratio < 3, f"{name}: off by x{ratio:.2f}"
