"""Compiled bit-parallel fault simulation vs. the serial ternary path.

Times a full stuck-at campaign (every collapsed fault, every vector,
fault dropping on first detection) on generated benchmarks through

* the serial oracle loop (``detects_stuck_at`` per fault per vector —
  exactly the dict-based path the compiled engine replaced), and
* :func:`repro.atpg.fault_sim.parallel_stuck_at_simulation` on the
  compiled dual-rail engine,

asserting identical detection results and a >= 10x speedup on the
8-bit ripple-carry adder, plus timing records for the polarity and
stuck-open batched campaigns.
"""

import time

from repro.analysis import save_report
from repro.analysis.report import ascii_table
from repro.atpg.fault_sim import (
    FaultSimResult,
    detects_stuck_at,
    parallel_polarity_simulation,
    parallel_stuck_at_simulation,
    parallel_stuck_open_simulation,
)
from repro.faults import (
    polarity_faults,
    stuck_at_faults,
    stuck_open_faults,
)
from repro.circuits import build_benchmark

import numpy as np


def _random_vectors(network, n, seed):
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, size=(n, len(network.primary_inputs)))
    return [
        dict(zip(network.primary_inputs, map(int, row))) for row in bits
    ]


def _serial_stuck_at_campaign(network, faults, vectors) -> FaultSimResult:
    """The pre-compiled-engine loop: serial sim, drop on first detect."""
    detected, undetected = {}, {f.name for f in faults}
    for k, vector in enumerate(vectors):
        if not undetected:
            break
        for fault in faults:
            if fault.name in undetected and detects_stuck_at(
                network, fault, vector
            ):
                detected[fault.name] = k
                undetected.discard(fault.name)
    return FaultSimResult(detected=detected, undetected=sorted(undetected))


def _best_of(fn, repeats=3):
    """Minimum wall time over ``repeats`` runs (load-noise immunity)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_parallel_fault_sim_speedup(once):
    n_vectors = 192
    rows = []
    speedup_rca8 = None
    for name in ("c17", "rca8", "rca16", "alu4"):
        network = build_benchmark(name)
        faults = stuck_at_faults(network)
        vectors = _random_vectors(network, n_vectors, seed=17)

        t_serial, serial = _best_of(
            lambda: _serial_stuck_at_campaign(network, faults, vectors)
        )
        t_batched, batched = _best_of(
            lambda: parallel_stuck_at_simulation(network, faults, vectors)
        )

        assert batched.detected == serial.detected, name
        assert batched.undetected == serial.undetected, name
        speedup = t_serial / t_batched
        if name == "rca8":
            speedup_rca8 = speedup
        rows.append(
            (name, len(faults), n_vectors, f"{t_serial * 1e3:.1f}",
             f"{t_batched * 1e3:.1f}", f"x{speedup:.0f}",
             f"{batched.coverage * 100:.0f}%")
        )

    def run_batched_again():
        network = build_benchmark("rca8")
        return parallel_stuck_at_simulation(
            network,
            stuck_at_faults(network),
            _random_vectors(network, n_vectors, seed=17),
        )

    once(run_batched_again)

    report = "\n".join([
        "Full stuck-at campaigns: serial ternary loop vs compiled "
        "bit-parallel engine",
        ascii_table(
            ("circuit", "faults", "vectors", "serial ms", "batched ms",
             "speedup", "coverage"),
            rows,
        ),
        "",
        "Identical detection maps on every circuit; the compiled engine",
        "packs the whole vector set bit-per-vector into dual-rail words",
        "and evaluates each gate once per batch.",
    ])
    print("\n" + report)
    save_report("parallel_fault_sim_speedup", report)
    assert speedup_rca8 is not None and speedup_rca8 >= 10.0, (
        f"rca8 speedup x{speedup_rca8:.1f} below the 10x bar"
    )


def test_batched_cp_campaign_throughput(once):
    """Timing record for the CP-specific batched campaigns (polarity
    voltage + IDDQ, two-pattern stuck-open) on mixed SP/DP circuits."""
    network = build_benchmark("rca16")
    vectors = _random_vectors(network, 256, seed=23)
    pol = polarity_faults(network)

    t0 = time.perf_counter()
    voltage = parallel_polarity_simulation(network, pol, vectors)
    iddq = parallel_polarity_simulation(network, pol, vectors, iddq=True)
    t_pol = time.perf_counter() - t0

    # Stuck-opens need SP gates to be two-pattern testable (DP opens are
    # masked by the redundant pair), so time those on the mixed ALU.
    alu = build_benchmark("alu4")
    alu_vectors = _random_vectors(alu, 256, seed=29)
    pairs = list(zip(alu_vectors[::2], alu_vectors[1::2]))
    sop = stuck_open_faults(alu)
    t0 = time.perf_counter()
    sopen = parallel_stuck_open_simulation(alu, sop, pairs)
    t_sop = time.perf_counter() - t0

    report = "\n".join([
        "Batched CP campaigns (256 vectors / 128 pairs):",
        f"  rca16 polarity : {len(pol):4d} faults  voltage cov "
        f"{voltage.coverage * 100:5.1f}%  iddq cov "
        f"{iddq.coverage * 100:5.1f}%  in {t_pol * 1e3:.1f} ms",
        f"  alu4 stuck-open: {len(sop):4d} faults  two-pattern cov "
        f"{sopen.coverage * 100:5.1f}%  in {t_sop * 1e3:.1f} ms",
    ])
    print("\n" + report)
    save_report("batched_cp_campaigns", report)

    once(lambda: parallel_polarity_simulation(network, pol, vectors))
    # IDDQ observables catch most polarity faults with random vectors.
    assert iddq.coverage > 0.9
    # Random two-pattern pairs expose a solid share of SP opens.
    assert sopen.coverage > 0.3
