"""Fig. 5: leakage-delay vs Vcut for floating polarity gates.

Reproduces all six panels (INV/NAND2/XOR2 x pull-up t1 / pull-down t3)
plus the per-panel fault-model classification of Section V-A.
"""

import math

from repro.analysis import save_report
from repro.analysis.experiments import experiment_fig5
from repro.core.classify import ApplicableModel


def test_fig5_vcut_leakage_delay(once):
    sweeps, report = once(experiment_fig5, points=7)
    print("\n" + report)
    save_report("fig5_vcut_sweeps", report)

    inv_t1_inj = sweeps[("INV", "t1", "pgs")]
    inv_t1_exit = sweeps[("INV", "t1", "pgd")]
    xor_t1 = sweeps[("XOR2", "t1", "pgs")]
    xor_t1_both = sweeps[("XOR2", "t1", "both")]
    xor_t3 = sweeps[("XOR2", "t3", "pgs")]
    xor_t3_both = sweeps[("XOR2", "t3", "both")]
    nand_t1_inj = sweeps[("NAND2", "t1", "pgs")]

    # INV t1, injection-side float: delay grows with Vcut (paper: x7
    # near Vcut ~ 0.56 V) until the gate stops switching (SOF band).
    finite = [p for p in inv_t1_inj.points if math.isfinite(p.delay)]
    delays = [p.delay for p in finite]
    assert delays == sorted(delays)  # monotonic climb toward failure
    assert any(math.isinf(p.delay) for p in inv_t1_inj.points)
    classification = inv_t1_inj.classification()
    assert ApplicableModel.SOF in classification.summary
    assert classification.functional_limit is not None
    assert 0.4 < classification.functional_limit <= 1.0

    # INV t1, exit-side float: milder delay effect, leakage grows
    # (paper: ~5x within the functional band).
    assert inv_t1_exit.leakage_ratio() > 3

    # NAND2 behaves like the INV (delay + SOF testable).
    assert any(math.isinf(p.delay) for p in nand_t1_inj.points)

    # XOR2 t1 (DP pull-up): the function keeps working — single-PG
    # floats never fail, and the full polarity-terminal open stays
    # functional over (almost) the whole sweep thanks to the weaker
    # hole branch losing the contention.  Only leakage moves, by many
    # decades (paper: 6 orders -> stuck-on/IDDQ testing only).
    assert all(p.functional for p in xor_t1.points)
    assert all(math.isfinite(p.delay) for p in xor_t1.points)
    assert all(math.isfinite(p.delay) for p in xor_t1_both.points)
    assert sum(p.functional for p in xor_t1_both.points) >= len(
        xor_t1_both.points
    ) - 1
    # Leakage swing vs the fault-free gate (the 'both' open).
    from repro.gates.builder import build_cell_circuit
    from repro.gates.library import XOR2
    from repro.spice.dc import solve_dc
    import itertools

    bench = build_cell_circuit(XOR2, fanout=4)
    nominal = 0.0
    for vector in itertools.product((0, 1), repeat=2):
        bench.set_vector(vector)
        nominal = max(
            nominal, solve_dc(bench.circuit).supply_current("vdd")
        )
    swing = max(p.leakage for p in xor_t1_both.points) / nominal
    assert swing > 1e4  # paper: ~6 orders; ours: >4 decades

    # XOR2 t3 (DP pull-down): single-PG floats stay functional; the
    # full open eventually breaks the gate (the INV-like trend of
    # Fig. 5f: delay + SOF + stuck-on).
    assert all(p.functional for p in xor_t3.points)
    assert any(not p.functional for p in xor_t3_both.points)
