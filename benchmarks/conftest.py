"""Shared benchmark configuration.

Each benchmark regenerates one table or figure of the paper, prints the
reproduced rows/series, and persists the full report under
``benchmarks/out/``.  The heavy computations run once per benchmark
(``rounds=1``) — the value of these benches is the reproduction
artefact plus a timing record, not statistical timing noise.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
            warmup_rounds=0,
        )

    return runner
