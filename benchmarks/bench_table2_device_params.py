"""Table II: device parameters + calibrated model figures of merit."""

from repro.analysis import save_report
from repro.analysis.experiments import experiment_table2


def test_table2_device_parameters(once):
    rows, report = once(experiment_table2)
    print("\n" + report)
    save_report("table2_device_params", report)
    values = dict(rows)
    assert values["Length of Control Gate (LCG)"] == "22 nm"
    assert values["Oxide Thickness (TOx)"] == "5.1 nm"
    assert values["Radius of NanoWire (RNW)"] == "7.5 nm"
    assert values["Schottky Barrier Height"] == "0.41 eV"
    assert values["Length of Spacer (LCP)"] == "18 nm"
