"""Sequential vs batched analog engine: SPICE measurement wall-clock.

Times the three measurement workloads the paper's electrical observables
hang off (Section III-D / V-A / V-B), each through the point-at-a-time
scalar path and the batched multi-point Newton engine:

* ``truth_table`` — DC truth tables over the full Fig. 2 cell library
  (the scalar baseline rebuilds an ``MNASystem`` and runs a cold gmin
  ladder per input vector, exactly like the seed code did),
* ``fig5_vcut`` — a Fig. 5 floating-polarity-gate sweep (DC grid over
  every (Vcut, vector) pair plus one delay transient per Vcut point),
* ``iddq_screen`` — a defect-screening IDDQ pass (worst static supply
  current over all vectors, per injected fault, in exact mode).

Each workload asserts batched == sequential observables (node voltages
to <= 1e-9 V, currents to 1e-6 relative) before its speedup counts, and
the record lands in ``BENCH_spice.json`` at the repository root
(schema-versioned like ``BENCH_atpg.json``; CI uploads it as an
artifact).

Dual-mode: run under pytest (``pytest benchmarks/bench_spice_speed.py``)
for the full bars, or standalone::

    PYTHONPATH=src python benchmarks/bench_spice_speed.py [--smoke]

``--smoke`` is the CI perf-regression gate: one timing round and
relaxed bars so shared-runner jitter cannot fail a healthy build, while
a real regression (batched ~ sequential) still does.
"""

import argparse
import itertools
import json
import math
import sys
import time
from pathlib import Path

from repro.analysis import save_report
from repro.analysis.report import ascii_table
from repro.analysis.sweeps import pull_up_vcut_axis, vcut_sweep
from repro.core.fault_models import (
    ChannelBreakFault,
    StuckAtNType,
    StuckAtPType,
)
from repro.gates import ALL_CELLS, build_cell_circuit
from repro.spice import solve_dc, solve_dc_sweep

#: Required batched-over-sequential speedup per workload (full run).
SPEEDUP_BARS = {"truth_table": 5.0, "fig5_vcut": 3.0, "iddq_screen": 2.0}
#: Relaxed CI bars (--smoke): a healthy build clears these with margin.
SMOKE_BARS = {"truth_table": 2.5, "fig5_vcut": 1.5, "iddq_screen": 1.2}
V_TOLERANCE = 1e-9
I_REL_TOLERANCE = 1e-6
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_spice.json"

IDDQ_FAULTS = (
    StuckAtNType("t1"),
    StuckAtPType("t3"),
    ChannelBreakFault("t1"),
)


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


# ---------------------------------------------------------------------------
# Workload 1: full-library DC truth tables
# ---------------------------------------------------------------------------

def _truth_table_sequential(benches):
    """Seed-style scalar loop: fresh MNASystem + cold solve per vector."""
    tables = {}
    for name, bench, vectors in benches:
        table = {}
        for vector in vectors:
            bench.set_vector(vector)
            op = solve_dc(bench.circuit)
            table[vector] = op
        tables[name] = table
    return tables


def _truth_table_batched(benches):
    sweeps = {}
    for name, bench, vectors in benches:
        sweeps[name] = solve_dc_sweep(
            bench.circuit,
            [bench.vector_bias(v) for v in vectors],
            mode="fast",
        )
    return sweeps


def run_truth_table(repeats):
    benches = []
    for name, cell in sorted(ALL_CELLS.items()):
        bench = build_cell_circuit(cell, fanout=4)
        vectors = list(itertools.product((0, 1), repeat=cell.n_inputs))
        benches.append((name, bench, vectors))
    t_seq, sequential = _best_of(
        lambda: _truth_table_sequential(benches), repeats
    )
    t_bat, batched = _best_of(lambda: _truth_table_batched(benches), repeats)

    worst_dv = 0.0
    worst_di = 0.0
    n_points = 0
    for name, _bench, vectors in benches:
        sweep = batched[name]
        for k, vector in enumerate(vectors):
            op = sequential[name][vector]
            n_points += 1
            for node, value in op.voltages.items():
                worst_dv = max(
                    worst_dv, abs(value - float(sweep.voltages(node)[k]))
                )
            for src, value in op.source_currents.items():
                delta = abs(value - float(sweep.source_currents(src)[k]))
                worst_di = max(worst_di, delta / max(abs(value), 1e-15))
    assert worst_dv <= V_TOLERANCE, worst_dv
    assert worst_di <= I_REL_TOLERANCE, worst_di
    return {
        "workload": "truth_table",
        "detail": f"{len(benches)} cells, {n_points} bias points",
        "points": n_points,
        "worst_dv": worst_dv,
        "worst_di_rel": worst_di,
        "sequential_ms": t_seq * 1e3,
        "batched_ms": t_bat * 1e3,
        "speedup": t_seq / t_bat,
    }


# ---------------------------------------------------------------------------
# Workload 2: Fig. 5 Vcut sweep
# ---------------------------------------------------------------------------

def run_fig5(repeats):
    cell = ALL_CELLS["INV"]
    axis = pull_up_vcut_axis(points=8)
    t_seq, sequential = _best_of(
        lambda: vcut_sweep(cell, "t1", "pgs", axis, engine="sequential"),
        repeats,
    )
    t_bat, batched = _best_of(
        lambda: vcut_sweep(cell, "t1", "pgs", axis, engine="batched"),
        repeats,
    )
    worst_dv = 0.0
    for p, q in zip(sequential.points, batched.points):
        assert p.functional == q.functional, p.vcut
        assert math.isfinite(p.delay) == math.isfinite(q.delay), p.vcut
        if math.isfinite(p.delay):
            worst_dv = max(worst_dv, abs(p.delay - q.delay) / max(p.delay, 1e-15))
        worst_dv = max(
            worst_dv, abs(p.leakage - q.leakage) / max(p.leakage, 1e-15)
        )
    assert worst_dv <= I_REL_TOLERANCE, worst_dv
    return {
        "workload": "fig5_vcut",
        "detail": "INV t1/pgs, 8 Vcut points (DC grid + delay transients)",
        "points": len(axis),
        "worst_rel_observable": worst_dv,
        "sequential_ms": t_seq * 1e3,
        "batched_ms": t_bat * 1e3,
        "speedup": t_seq / t_bat,
    }


# ---------------------------------------------------------------------------
# Workload 3: defect-screening IDDQ pass
# ---------------------------------------------------------------------------

def _iddq_cases():
    cases = []
    for name, cell in sorted(ALL_CELLS.items()):
        for fault in IDDQ_FAULTS:
            bench = build_cell_circuit(cell, fanout=4)
            fault.apply(bench)
            vectors = list(
                itertools.product((0, 1), repeat=cell.n_inputs)
            )
            cases.append((f"{name}:{fault.describe()}", bench, vectors))
    return cases


def _iddq_sequential(cases):
    worst = {}
    for label, bench, vectors in cases:
        iddq = 0.0
        for vector in vectors:
            bench.set_vector(vector)
            op = solve_dc(bench.circuit)
            iddq = max(iddq, op.supply_current("vdd"))
        worst[label] = iddq
    return worst


def _iddq_batched(cases):
    worst = {}
    for label, bench, vectors in cases:
        sweep = solve_dc_sweep(
            bench.circuit,
            [bench.vector_bias(v) for v in vectors],
            mode="exact",
        )
        worst[label] = float(sweep.supply_currents("vdd").max())
    return worst


def run_iddq(repeats):
    cases = _iddq_cases()
    t_seq, sequential = _best_of(lambda: _iddq_sequential(cases), repeats)
    t_bat, batched = _best_of(lambda: _iddq_batched(cases), repeats)
    worst_di = max(
        abs(sequential[label] - batched[label])
        / max(abs(sequential[label]), 1e-15)
        for label in sequential
    )
    assert worst_di <= I_REL_TOLERANCE, worst_di
    return {
        "workload": "iddq_screen",
        "detail": f"{len(cases)} (cell, fault) screens, exact mode",
        "points": sum(len(v) for _, _, v in cases),
        "worst_di_rel": worst_di,
        "sequential_ms": t_seq * 1e3,
        "batched_ms": t_bat * 1e3,
        "speedup": t_seq / t_bat,
    }


# ---------------------------------------------------------------------------
# Record / report plumbing
# ---------------------------------------------------------------------------

def run_workloads(repeats=3):
    return [
        run_truth_table(repeats),
        run_fig5(repeats),
        run_iddq(repeats),
    ]


def format_report(records):
    rows = [
        (
            r["workload"], r["detail"], r["points"],
            f"{r['sequential_ms']:.1f}", f"{r['batched_ms']:.1f}",
            f"x{r['speedup']:.1f}",
        )
        for r in records
    ]
    return "\n".join([
        "SPICE measurement wall-clock: scalar point-at-a-time vs batched "
        "multi-point Newton",
        ascii_table(
            ("workload", "detail", "points", "sequential ms",
             "batched ms", "speedup"),
            rows,
        ),
        "",
        "Observables agree to <= 1e-9 V / 1e-6 relative current on every",
        "workload before a speedup is counted; the batched engine stacks",
        "all bias points into one (B, n, n) Newton loop and integrates",
        "delay transients in lockstep.",
    ])


def write_record(records, bars, path=RECORD_PATH):
    record = {
        "benchmark": "spice_speed",
        "schema_version": 1,
        "generated": time.strftime("%Y-%m-%d %H:%M:%S"),
        "python": sys.version.split()[0],
        "engine": "batched multi-point Newton (spice/batched.py) vs "
                  "scalar per-point solves",
        "workload": "full-library DC truth tables, Fig. 5 Vcut sweep, "
                    "defect-screening IDDQ pass",
        "tolerances": {
            "voltage_v": V_TOLERANCE,
            "current_rel": I_REL_TOLERANCE,
        },
        "speedup_bars": bars,
        "records": records,
    }
    path.write_text(json.dumps(record, indent=2) + "\n")
    return path


def check_bars(records, bars):
    failures = []
    for r in records:
        bar = bars.get(r["workload"])
        if bar is not None and r["speedup"] < bar:
            failures.append(
                f"{r['workload']}: x{r['speedup']:.1f} below the "
                f"{bar:.1f}x bar"
            )
    return failures


def test_spice_speed(once):
    records = once(run_workloads)
    report = format_report(records)
    print("\n" + report)
    save_report("spice_speed", report)
    write_record(records, SPEEDUP_BARS)
    failures = check_bars(records, SPEEDUP_BARS)
    assert not failures, "; ".join(failures)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI gate: single timing round, relaxed bars",
    )
    parser.add_argument(
        "--out", type=Path, default=RECORD_PATH,
        help="perf-record path (default: repo-root BENCH_spice.json)",
    )
    args = parser.parse_args(argv)
    bars = SMOKE_BARS if args.smoke else SPEEDUP_BARS
    records = run_workloads(repeats=1 if args.smoke else 3)
    print(format_report(records))
    path = write_record(records, bars, args.out)
    print(f"\nperf record -> {path}")
    failures = check_bars(records, bars)
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
