"""Device playground: I-V curves and gate-oxide-short signatures (Fig. 3).

Sweeps the calibrated TIG-SiNWFET compact model through its operating
regions, demonstrates the controllable-polarity conduction condition,
and reproduces the GOS fingerprints of Fig. 3 (ID(SAT) reduction,
threshold shift, negative drain current).

Run:  python examples/device_characterization.py
"""

import numpy as np

from repro.device import (
    CurveMetrics,
    GateOxideShort,
    TIGSiNWFET,
    compare_to_fault_free,
    sweep_id_vcg,
)


def conduction_table(device: TIGSiNWFET, vdd: float = 1.2) -> None:
    print("Conduction condition (ID at VDS = VDD):")
    print("  CG PGS PGD    ID         state")
    for cg in (0, 1):
        for pgs in (0, 1):
            for pgd in (0, 1):
                current = device.drain_current(
                    cg * vdd, pgs * vdd, pgd * vdd, vdd, 0.0
                )
                state = "ON " if device.conducts(cg, pgs, pgd) else "off"
                mode = device.polarity(pgs, pgd)
                print(
                    f"   {cg}   {pgs}   {pgd}   {current:9.2e} A  "
                    f"{state} ({mode}-config)"
                )


def ascii_iv(curve_label: str, v: np.ndarray, i: np.ndarray) -> None:
    """Log-scale ASCII sketch of a transfer curve."""
    print(f"\n{curve_label} (log10 |ID|):")
    log_i = np.log10(np.abs(i) + 1e-16)
    lo, hi = log_i.min(), log_i.max()
    for k in range(0, len(v), 10):
        bar = "#" * int(1 + 50 * (log_i[k] - lo) / max(hi - lo, 1e-9))
        print(f"  VCG={v[k]:4.2f}  {bar}")


def main() -> None:
    device = TIGSiNWFET()
    conduction_table(device)

    curve = sweep_id_vcg(device, "n")
    metrics = CurveMetrics.from_curve(curve)
    print(f"\nfault-free n-type: Ion={metrics.id_sat * 1e6:.2f} uA, "
          f"VTh={metrics.vth:.3f} V, SS={metrics.ss * 1e3:.0f} mV/dec, "
          f"on/off={metrics.on_off:.1e}")
    ascii_iv("fault-free", curve.v_cg, np.asarray(curve.i_d))

    print("\nGate-oxide shorts (Fig. 3):")
    for location in ("pgs", "cg", "pgd"):
        defective = TIGSiNWFET(defect=GateOxideShort(location))
        numbers = compare_to_fault_free(defective, device)
        print(
            f"  GOS@{location.upper():3s}: ID(SAT) x{numbers['id_sat_ratio']:.2f}, "
            f"dVTh {numbers['delta_vth'] * 1e3:+5.0f} mV, "
            f"min ID {numbers['i_min'] * 1e9:+7.2f} nA"
        )
    print("\nPaper anchors: PGS strongest drop (+170 mV shift), CG milder")
    print("with negative ID at low VCG, PGD slight increase / no shift.")


if __name__ == "__main__":
    main()
