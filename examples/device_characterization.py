"""Device playground: I-V curves and gate-oxide-short signatures (Fig. 3).

Thin wrapper over ``python -m repro demo device-characterization``; the
walkthrough itself lives in
:func:`repro.analysis.demos.demo_device_characterization` so this
script and the CLI cannot drift.

Run:  python examples/device_characterization.py
"""

from repro.campaign.cli import main

if __name__ == "__main__":
    raise SystemExit(main(["demo", "device-characterization"]))
