"""Full ATPG flow on a CP benchmark circuit (4-bit ripple-carry adder).

Thin wrapper over ``python -m repro demo atpg-flow``; the walkthrough
itself lives in :func:`repro.analysis.demos.demo_atpg_flow` so this
script and the CLI cannot drift.  The orchestrated version of the same
measurements over the whole benchmark suite is
``python -m repro paper-tables``.

Run:  python examples/atpg_flow.py
"""

from repro.campaign.cli import main

if __name__ == "__main__":
    raise SystemExit(main(["demo", "atpg-flow"]))
