"""Full ATPG flow on a CP benchmark circuit (4-bit ripple-carry adder).

Demonstrates the paper's thesis at circuit scale:

1. classic PODEM generates a compact 100 %-coverage stuck-at test set;
2. fault-simulating the *polarity* faults (stuck-at n/p on every DP
   transistor) against that classic set shows most go undetected;
3. the polarity-aware ATPG (voltage + IDDQ modes) covers them all;
4. every DP-gate channel break is masked and flagged for the paper's
   polarity-inversion procedure.

Run:  python examples/atpg_flow.py
"""

from repro.analysis.atpg_experiments import classic_stuck_at_testset
from repro.atpg import (
    parallel_stuck_at_simulation,
    polarity_faults,
    run_polarity_atpg,
    select_iddq_vectors,
    serial_polarity_simulation,
    stuck_at_faults,
    stuck_open_faults,
)
from repro.circuits import ripple_carry_adder


def main() -> None:
    network = ripple_carry_adder(4)
    print(f"Circuit: {network}")
    print(f"  stats: {network.stats()}")

    # 1. Classic stuck-at ATPG.
    sa_faults = stuck_at_faults(network)
    test_set = classic_stuck_at_testset(network)
    sa_cov = parallel_stuck_at_simulation(network, sa_faults, test_set)
    print(f"\n[1] classic stuck-at ATPG: {len(sa_faults)} faults, "
          f"{len(test_set)} compacted vectors, "
          f"coverage {sa_cov.coverage:.1%}")

    # 2. How much of the CP fault universe does that set cover?
    pol_faults = polarity_faults(network)
    pol_by_sa = serial_polarity_simulation(network, pol_faults, test_set)
    print(f"\n[2] polarity faults (stuck-at n/p): {len(pol_faults)} total")
    print(f"    detected by the classic stuck-at set: "
          f"{pol_by_sa.coverage:.1%}  <-- the paper's gap")

    # 3. Polarity-aware ATPG closes it.
    pol_atpg = run_polarity_atpg(network)
    modes = {}
    for test in pol_atpg.tests:
        modes[test.mode] = modes.get(test.mode, 0) + 1
    print(f"\n[3] polarity ATPG coverage: {pol_atpg.coverage:.1%} "
          f"({modes.get('voltage', 0)} voltage tests, "
          f"{modes.get('iddq', 0)} IDDQ tests)")
    iddq = select_iddq_vectors(network)
    print(f"    compact IDDQ screen: {len(iddq.vectors)} vectors cover "
          f"{iddq.coverage:.1%} of polarity faults")

    # 4. Stuck-open census.
    sop = stuck_open_faults(network)
    masked = [f for f in sop if f.is_masked()]
    print(f"\n[4] channel breaks: {len(sop)} sites, {len(masked)} masked "
          f"by DP redundancy -> require the Section V-C procedure")


if __name__ == "__main__":
    main()
