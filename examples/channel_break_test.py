"""The paper's new test algorithm: detecting masked channel breaks (V-C).

Thin wrapper over ``python -m repro demo channel-break``; the
walkthrough itself lives in
:func:`repro.analysis.demos.demo_channel_break` so this script and the
CLI cannot drift.

Run:  python examples/channel_break_test.py
"""

from repro.campaign.cli import main

if __name__ == "__main__":
    raise SystemExit(main(["demo", "channel-break"]))
