"""The paper's new test algorithm: detecting masked channel breaks.

Section V-C: in dynamic-polarity gates the redundant pass-transistor
pairs mask every single channel break — the gate keeps computing the
right function, classic stuck-open two-pattern tests cannot exist, and
delay/leakage shifts are too small to screen reliably.  The paper's
procedure turns the paper's *other* contribution (stuck-at n/p polarity
configuration) into a test stimulus: deliberately invert the suspect
device's polarity and watch whether it answers.

Run:  python examples/channel_break_test.py
"""

from repro.core import (
    channel_break_procedure,
    run_channel_break_procedure,
    two_pattern_sof_tests,
)
from repro.gates import NAND2, XOR2
from repro.logic.switch_level import DeviceState, evaluate


def main() -> None:
    # 1. SP gates are fine with classic two-pattern tests.
    print("SP NAND2 stuck-open tests (classic two-pattern):")
    for test in two_pattern_sof_tests(NAND2):
        print(f"  {test.describe()}")

    # 2. DP gates: no transistor is ever essential -> no SOF test exists.
    print(f"\nDP XOR2 usable two-pattern tests: "
          f"{len(two_pattern_sof_tests(XOR2))} (all breaks masked)")
    for vector in ((0, 0), (0, 1), (1, 0), (1, 1)):
        broken = evaluate(XOR2, vector, {"t1": DeviceState.STUCK_OPEN})
        print(f"  A,B={vector}: output with broken t1 = {broken.output} "
              f"(function {XOR2.function(vector)}) -> masked")

    # 3. The paper's procedure, derived automatically per transistor.
    print("\nDerived channel-break procedure for XOR2/t3:")
    procedure = channel_break_procedure(XOR2, "t3")
    for step in procedure.steps:
        print(f"  inject {step.injected_state.value}, apply "
              f"A,B={step.vector}:")
        print(f"    intact device -> {step.expected_if_intact}")
        print(f"    broken device -> {step.expected_if_broken}")

    # 4. Execute it against both ground truths.
    print("\nExecuting the procedure on every transistor:")
    for transistor in ("t1", "t2", "t3", "t4"):
        detected = run_channel_break_procedure(
            XOR2, transistor, broken=True
        )
        false_alarm = run_channel_break_procedure(
            XOR2, transistor, broken=False
        )
        print(f"  {transistor}: broken device detected = {detected}, "
              f"false alarm on intact device = {false_alarm}")


if __name__ == "__main__":
    main()
