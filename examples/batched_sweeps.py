"""Batched analog engine: vectorized DC sweeps and lockstep transients.

Thin wrapper over ``python -m repro demo batched-sweeps``; the
walkthrough itself lives in
:func:`repro.analysis.demos.demo_batched_sweeps` so this script and the
CLI cannot drift.

Run:  python examples/batched_sweeps.py
"""

from repro.campaign.cli import main

if __name__ == "__main__":
    raise SystemExit(main(["demo", "batched-sweeps"]))
