"""IDDQ screening of polarity-bridge defects on a parity tree (Sec. V-B).

Thin wrapper over ``python -m repro demo iddq-screening``; the
walkthrough itself lives in
:func:`repro.analysis.demos.demo_iddq_screening` so this script and the
CLI cannot drift.  The campaign version of the same measurement is
``python -m repro run --circuits parity8 --fault-classes iddq``.

Run:  python examples/iddq_screening.py
"""

from repro.campaign.cli import main

if __name__ == "__main__":
    raise SystemExit(main(["demo", "iddq-screening"]))
