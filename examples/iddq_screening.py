"""IDDQ screening of polarity-bridge defects on a parity tree.

Section V-B: pull-up polarity faults never corrupt the output — only the
supply current betrays them.  This example builds an 8-bit XOR parity
tree (the classic CP-technology workload), selects a minimal IDDQ vector
set with the greedy cover, and cross-checks it in the analog domain by
measuring one screened fault in SPICE.

Run:  python examples/iddq_screening.py
"""

from repro.atpg import polarity_faults, select_iddq_vectors
from repro.circuits import parity_tree
from repro.core import StuckAtNType, StuckAtPType
from repro.gates import build_cell_circuit, get_cell
from repro.logic import simulate
from repro.spice import solve_dc


def main() -> None:
    network = parity_tree(8)
    print(f"Circuit: {network}")

    faults = polarity_faults(network)
    print(f"polarity faults: {len(faults)} "
          f"(2 kinds x 4 transistors x {len(network.gates)} DP gates)")

    selection = select_iddq_vectors(network)
    print(f"\ngreedy IDDQ cover: {len(selection.vectors)} vectors, "
          f"coverage {selection.coverage:.1%}")
    for k, vector in enumerate(selection.vectors):
        bits = "".join(
            str(vector[n]) for n in network.primary_inputs
        )
        covered = sum(1 for v in selection.covered.values() if v == k)
        print(f"  vector {k}: d7..d0 = {bits[::-1]}  "
              f"(first-covers {covered} faults)")

    # Analog cross-check: drive one covered fault's gate to its conflict
    # combination and measure the cell-level supply current.
    fault = faults[0]
    vector = selection.vectors[selection.covered[fault.name]]
    values = simulate(network, vector)
    gate = network.gates[fault.gate]
    local = tuple(values[n] for n in gate.inputs)
    print(f"\ncross-check {fault.name}: local inputs at {fault.gate} = "
          f"{local}")

    cell = get_cell(fault.gtype)
    good = build_cell_circuit(cell, fanout=4)
    good.set_vector(local)
    iddq_good = solve_dc(good.circuit).supply_current("vdd")
    bad = build_cell_circuit(cell, fanout=4)
    factory = StuckAtNType if fault.kind == "n" else StuckAtPType
    factory(fault.transistor).apply(bad)
    bad.set_vector(local)
    iddq_bad = solve_dc(bad.circuit).supply_current("vdd")
    print(f"  cell IDDQ: fault-free {iddq_good * 1e12:.1f} pA -> "
          f"faulty {iddq_bad * 1e9:.2f} nA "
          f"(x{iddq_bad / iddq_good:.1e})")


if __name__ == "__main__":
    main()
