"""Quickstart: build a CP XOR gate, inject the paper's new fault, detect it.

Walks the core loop of the library in ~40 lines:

1. instantiate the TIG-SiNWFET compact model and a DP XOR2 testbench,
2. inject a *stuck-at n-type* polarity fault (a bridge between t1's
   polarity terminal and VDD — the fault class this paper introduced),
3. show that the output still reads correctly (a voltage tester misses
   it) while IDDQ explodes by ~5 orders of magnitude (an IDDQ tester
   catches it) — Table III, row one.

Run:  python examples/quickstart.py
"""

from repro.core import StuckAtNType
from repro.gates import XOR2, build_cell_circuit
from repro.spice import solve_dc
from repro.spice.measure import logic_level


def main() -> None:
    vdd = 1.2

    # Fault-free reference: apply A=B=0 and measure output + IDDQ.
    good = build_cell_circuit(XOR2, fanout=4)
    good.set_vector((0, 0))
    op = solve_dc(good.circuit)
    good_level = logic_level(op.voltage("out"), vdd)
    good_iddq = op.supply_current("vdd")
    print(f"fault-free  : out = {op.voltage('out'):.3f} V "
          f"(logic {good_level}), IDDQ = {good_iddq * 1e12:.1f} pA")

    # Inject: polarity terminal of pull-up t1 bridged to VDD.
    faulty = build_cell_circuit(XOR2, fanout=4)
    StuckAtNType("t1").apply(faulty)
    faulty.set_vector((0, 0))
    op = solve_dc(faulty.circuit)
    level = logic_level(op.voltage("out"), vdd)
    iddq = op.supply_current("vdd")
    print(f"stuck-at-n t1: out = {op.voltage('out'):.3f} V "
          f"(logic {level}), IDDQ = {iddq * 1e9:.2f} nA")

    ratio = iddq / good_iddq
    print(f"\nIDDQ ratio: x{ratio:.2e}")
    print("A voltage test cannot rely on the output here; the supply")
    print("current gives the fault away — exactly Table III of the paper.")
    assert ratio > 1e4


if __name__ == "__main__":
    main()
