"""Quickstart: build a CP XOR gate, inject the paper's new fault, detect it.

Thin wrapper over ``python -m repro demo quickstart``; the walkthrough
itself lives in :func:`repro.analysis.demos.demo_quickstart` so this
script and the CLI cannot drift.

Run:  python examples/quickstart.py
"""

from repro.campaign.cli import main

if __name__ == "__main__":
    raise SystemExit(main(["demo", "quickstart"]))
