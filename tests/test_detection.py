"""Tests for SPICE-domain detectability measurement (core.detection)."""

import math

import pytest

from repro.core import (
    ChannelBreakFault,
    DriveDriftFault,
    StuckAtNType,
    characterise_fault,
)
from repro.core.detection import DELAY_DETECT_RATIO, IDDQ_DETECT_RATIO
from repro.gates import INV, XOR2


@pytest.fixture(scope="module")
def polarity_report():
    return characterise_fault(
        XOR2, StuckAtNType("t1"), measure_delay=False
    )


class TestPolarityFaultDetection:
    def test_iddq_detectable(self, polarity_report):
        assert polarity_report.iddq_detectable
        assert polarity_report.worst_iddq_ratio > 1e4

    def test_detecting_vector_is_table_iii(self, polarity_report):
        assert (0, 0) in polarity_report.iddq_vectors

    def test_overall_detected(self, polarity_report):
        assert polarity_report.detected

    def test_description_carried(self, polarity_report):
        assert "t1" in polarity_report.fault_description


class TestChannelBreakDetection:
    def test_sp_break_output_detectable(self):
        report = characterise_fault(
            INV, ChannelBreakFault("t1"), measure_delay=False
        )
        # The INV pull-up break floats the output at A=0; the DC level
        # no longer reads as a valid 1.
        assert report.output_detectable

    def test_dp_break_not_output_detectable(self):
        report = characterise_fault(
            XOR2, ChannelBreakFault("t1"), measure_delay=False
        )
        assert not report.output_detectable  # masked (Section V-C)


class TestDelayDetection:
    def test_drive_drift_is_delay_fault(self):
        report = characterise_fault(
            INV,
            DriveDriftFault("t1", i_on_factor=0.3),
            measure_delay=True,
            delay_input="a",
        )
        assert report.delay_ratio > DELAY_DETECT_RATIO
        assert report.delay_detectable

    def test_fault_free_thresholds_sane(self):
        assert IDDQ_DETECT_RATIO >= 2
        assert DELAY_DETECT_RATIO > 1.0

    def test_nan_delay_when_not_measured(self):
        report = characterise_fault(
            XOR2, StuckAtNType("t2"), measure_delay=False
        )
        assert math.isnan(report.delay_ratio)


class TestObservations:
    def test_per_vector_observations_complete(self, polarity_report):
        assert len(polarity_report.observations) == 4
        vectors = {o.vector for o in polarity_report.observations}
        assert vectors == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_iddq_positive(self, polarity_report):
        assert all(o.iddq >= 0 for o in polarity_report.observations)
