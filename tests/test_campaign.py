"""Tests for the campaign subsystem (registry, runner, store, tables, CLI).

The three ISSUE-mandated behaviours are covered explicitly:

* bench-format round-trip through the registry,
* resume-from-checkpoint: a store truncated mid-record (the kill
  signature) reruns only the missing tasks and converges to the same
  final store as an uninterrupted run,
* report-table rendering from a canned store.
"""

import json
import os
import signal
import time

import pytest

from repro.campaign.registry import Registry, get_registry, size_class
from repro.campaign.runner import (
    TaskSpec,
    execute_task,
    expand_grid,
    run_campaign,
)
from repro.campaign.store import (
    ResultStore,
    StoreLockedError,
    stores_equal,
    strip_volatile,
)
from repro.campaign.tables import (
    coverage_table,
    escape_table,
    render_report,
    run_table,
)
from repro.campaign.tasks import TASK_RUNNERS, run_fault_class
from repro.circuits.generators import c17
from repro.logic.bench_format import write_bench

GRID_CIRCUITS = ("c17", "tmr_voter")
GRID_CLASSES = ("stuck_at", "polarity")


@pytest.fixture(scope="module")
def reference_records():
    """An uninterrupted in-memory run of the test grid."""
    result = run_campaign(expand_grid(GRID_CIRCUITS, GRID_CLASSES))
    assert all(r["status"] == "ok" for r in result.records)
    return result.records


class TestRegistry:
    def test_default_registry_covers_generated_suite(self):
        registry = get_registry()
        for name in ("c17", "rca4", "alu4", "parity8", "mul4"):
            assert name in registry

    def test_tag_selection(self):
        registry = get_registry()
        adders = registry.names(tags={"adder"})
        assert adders == ["rca16", "rca32", "rca4", "rca8"]
        assert "c17" in registry.names(tags={"tiny"})
        assert registry.names(tags={"adder", "tiny"}) == ["rca4"]

    def test_size_class_thresholds(self):
        assert size_class(1) == "tiny"
        assert size_class(10) == "small"
        assert size_class(100) == "medium"
        assert size_class(5000) == "large"

    def test_bench_round_trip_through_registry(self):
        text = write_bench(c17())
        registry = Registry()
        registry.register_bench_text("c17_ext", text, tags=("external",))
        network = registry.load("c17_ext")
        # Same structure: identical gate lines and identical stats.
        assert write_bench(network).splitlines()[1:] == text.splitlines()[1:]
        assert network.stats() == c17().stats()
        assert "external" in registry.spec("c17_ext").all_tags()
        assert registry.spec("c17_ext").bench_text == text

    def test_bench_file_registration(self, tmp_path):
        path = tmp_path / "ext17.bench"
        path.write_text(write_bench(c17()))
        registry = Registry()
        spec = registry.register_bench_file(path)
        assert spec.name == "ext17"
        assert registry.load("ext17").stats()["gates"] == 6

    def test_malformed_bench_rejected_at_registration(self):
        with pytest.raises(ValueError):
            Registry().register_bench_text("bad", "x = FROB(a, b)")

    def test_duplicate_and_unknown_names(self):
        registry = Registry()
        registry.register_bench_text("a", write_bench(c17()))
        with pytest.raises(ValueError):
            registry.register_bench_text("a", write_bench(c17()))
        with pytest.raises(KeyError):
            registry.spec("nope")

    def test_bench_circuit_runs_through_campaign(self, tmp_path):
        registry = Registry()
        registry.register_bench_text("c17_ext", write_bench(c17()))
        grid = expand_grid(["c17_ext"], ["stuck_at"], registry=registry)
        assert grid[0].bench_text is not None  # self-contained for workers
        record = execute_task(grid[0])
        assert record["status"] == "ok"
        assert record["metrics"]["coverage"] == 1.0


class TestTasks:
    def test_stuck_at_metrics_shape(self):
        metrics = run_fault_class(c17(), "stuck_at")
        assert metrics["coverage"] == 1.0
        assert metrics["n_vectors"] > 0
        assert metrics["backtracks"] >= 0

    def test_polarity_none_coverage_without_dp_gates(self):
        metrics = run_fault_class(c17(), "polarity")
        assert metrics["n_faults"] == 0
        assert metrics["coverage_by_stuck_at_set"] is None

    def test_unknown_fault_class(self):
        with pytest.raises(KeyError):
            run_fault_class(c17(), "frobnicate")


class TestRunnerResume:
    def test_interrupted_store_resumes_to_identical_final_store(
        self, tmp_path, reference_records
    ):
        grid = expand_grid(GRID_CIRCUITS, GRID_CLASSES)
        store_path = tmp_path / "campaign.jsonl"

        # Simulate a kill after two finished tasks, mid-write of the
        # third: two intact records plus a torn trailing line.
        lines = [
            json.dumps(record, sort_keys=True)
            for record in reference_records
        ]
        store_path.write_text(
            lines[0] + "\n" + lines[1] + "\n" + lines[2][: len(lines[2]) // 2]
        )

        result = run_campaign(grid, store=store_path)
        assert result.n_skipped == 2
        assert result.n_run == 2
        final = list(ResultStore(store_path).latest().values())
        assert stores_equal(final, reference_records)
        # The records handed back are in grid order and complete.
        assert [r["task_id"] for r in result.records] == [
            t.task_id for t in grid
        ]

    def test_resume_disabled_recomputes_everything(self, tmp_path):
        grid = expand_grid(["c17"], ["stuck_at"])
        store_path = tmp_path / "campaign.jsonl"
        run_campaign(grid, store=store_path)
        result = run_campaign(grid, store=store_path, resume=False)
        assert result.n_run == 1
        assert len(ResultStore(store_path).load()) == 2  # appended rerun
        assert len(ResultStore(store_path).latest()) == 1

    def test_mid_file_corruption_raises(self, tmp_path):
        store_path = tmp_path / "campaign.jsonl"
        store_path.write_text('{"task_id": "a"}\nnot json\n{"task_id": "b"}\n')
        with pytest.raises(ValueError, match="corrupt record"):
            ResultStore(store_path).load()

    def test_terminated_corrupt_final_line_raises(self, tmp_path):
        # A newline-terminated corrupt line is an edit, not a kill —
        # only an unterminated tail is silently dropped.
        store_path = tmp_path / "campaign.jsonl"
        store_path.write_text('{"task_id": "a"}\nnot json\n')
        with pytest.raises(ValueError, match="corrupt record"):
            ResultStore(store_path).load()


class TestRunnerDeterminism:
    def test_one_worker_and_two_workers_identical_store(
        self, tmp_path, reference_records
    ):
        grid = expand_grid(GRID_CIRCUITS, GRID_CLASSES)
        parallel = run_campaign(
            grid, store=tmp_path / "w2.jsonl", workers=2
        )
        assert stores_equal(parallel.records, reference_records)
        stored = ResultStore(tmp_path / "w2.jsonl").load()
        assert stores_equal(stored, reference_records)

    def test_strip_volatile_orders_and_drops_runtime(self):
        records = [
            {"task_id": "b", "runtime_s": 1.0, "x": 1},
            {"task_id": "a", "runtime_s": 2.0, "x": 2},
        ]
        stripped = strip_volatile(records)
        assert [r["task_id"] for r in stripped] == ["a", "b"]
        assert all("runtime_s" not in r for r in stripped)


class TestMultiwordResume:
    """Kill/restart determinism for multi-word campaign cells.

    The ``fault_sim`` task routes through the 2-D numpy engine on the
    ISCAS-class corpus; resume after a torn-tail kill and any worker
    count must still reproduce a bit-identical JSONL store, exactly as
    the single-word cells promise.
    """

    GRID = (("c17", "cpx432"), ("fault_sim",))

    @pytest.fixture(scope="class")
    def mw_reference(self):
        grid = expand_grid(*self.GRID, engine="auto")
        result = run_campaign(grid)
        assert all(r["status"] == "ok" for r in result.records)
        # cpx432 is big enough that the auto selector picks the
        # multi-word engine for the whole fault population.
        by_circuit = {r["circuit"]: r["metrics"] for r in result.records}
        assert by_circuit["cpx432"]["n_stuck_at_faults"] > 2000
        return result.records

    def test_kill_and_resume_bit_identical(self, tmp_path, mw_reference):
        grid = expand_grid(*self.GRID, engine="auto")
        store_path = tmp_path / "mw.jsonl"
        lines = [json.dumps(r, sort_keys=True) for r in mw_reference]
        # Kill signature: first record intact, second torn mid-write.
        store_path.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])
        result = run_campaign(grid, store=store_path)
        assert result.n_skipped == 1
        assert result.n_run == 1
        final = list(ResultStore(store_path).latest().values())
        assert stores_equal(final, mw_reference)

    def test_worker_count_invariant(self, tmp_path, mw_reference):
        grid = expand_grid(*self.GRID, engine="auto")
        parallel = run_campaign(
            grid, store=tmp_path / "mw2.jsonl", workers=2
        )
        assert stores_equal(parallel.records, mw_reference)
        stored = ResultStore(tmp_path / "mw2.jsonl").load()
        assert stores_equal(stored, mw_reference)

    def test_fault_sim_metrics_shape(self):
        metrics = run_fault_class(
            get_registry().load("cpx432"), "fault_sim", engine="auto"
        )
        assert metrics["n_vectors"] == 256
        assert 0.0 < metrics["stuck_at_coverage"] <= 1.0
        assert 0.0 < metrics["polarity_iddq_coverage"] <= 1.0

    def test_fault_sim_not_in_default_grid(self):
        from repro.campaign.tasks import DEFAULT_FAULT_CLASSES

        assert "fault_sim" in TASK_RUNNERS
        assert "fault_sim" not in DEFAULT_FAULT_CLASSES
        assert DEFAULT_FAULT_CLASSES == (
            "stuck_at", "polarity", "iddq", "stuck_open",
        )

    def test_corpus_cells_are_self_contained(self):
        # Corpus entries carry their bench text, so spawn-started
        # workers rebuild them without filesystem access.
        grid = expand_grid(["cpx432"], ["fault_sim"])
        assert grid[0].bench_text is not None


class TestSequentialResume:
    """Kill/restart determinism for sequential (DFF) campaign cells.

    ``fault_sim`` on a sequential corpus circuit time-frame expands the
    netlist and simulates per-cycle input sequences; the resulting
    store must carry the same bit-identical guarantees as the
    combinational cells — resume after a torn-tail kill and any worker
    count reproduce the reference records exactly.
    """

    GRID = (("s27", "sqx344"), ("fault_sim",))

    @pytest.fixture(scope="class")
    def seq_reference(self):
        grid = expand_grid(*self.GRID, engine="auto")
        result = run_campaign(grid)
        assert all(r["status"] == "ok" for r in result.records)
        by_circuit = {r["circuit"]: r["metrics"] for r in result.records}
        # Sequential cells report their unrolling alongside the shared
        # metrics; sqx344 is big enough for the multi-word engine.
        assert by_circuit["s27"]["n_frames"] == 3
        assert by_circuit["s27"]["n_flops"] == 3
        assert by_circuit["sqx344"]["n_stuck_at_faults"] > 1000
        return result.records

    def test_kill_and_resume_bit_identical(self, tmp_path, seq_reference):
        grid = expand_grid(*self.GRID, engine="auto")
        store_path = tmp_path / "seq.jsonl"
        lines = [json.dumps(r, sort_keys=True) for r in seq_reference]
        # Kill signature: first record intact, second torn mid-write.
        store_path.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])
        result = run_campaign(grid, store=store_path)
        assert result.n_skipped == 1
        assert result.n_run == 1
        final = list(ResultStore(store_path).latest().values())
        assert stores_equal(final, seq_reference)

    def test_worker_count_invariant(self, tmp_path, seq_reference):
        grid = expand_grid(*self.GRID, engine="auto")
        parallel = run_campaign(
            grid, store=tmp_path / "seq2.jsonl", workers=2
        )
        assert stores_equal(parallel.records, seq_reference)
        stored = ResultStore(tmp_path / "seq2.jsonl").load()
        assert stores_equal(stored, seq_reference)

    def test_s27_fault_sim_full_stuck_at_coverage(self):
        # 256 random 3-cycle sequences from reset detect every
        # collapsed stuck-at fault of the real s27.
        metrics = run_fault_class(
            get_registry().load("s27"), "fault_sim", engine="auto"
        )
        assert metrics["stuck_at_coverage"] == 1.0
        assert metrics["n_frames"] == 3

    def test_sequential_tag_selects_corpus(self):
        names = get_registry().names(tags={"sequential"})
        assert {"s27", "sqx344", "sqx1488"} <= set(names)


class TestRunnerFailureModes:
    def test_task_error_becomes_record_not_crash(self):
        def boom(_network, _engine):
            raise RuntimeError("deliberate")

        TASK_RUNNERS["boom"] = boom
        try:
            grid = [
                TaskSpec("c17", "boom"),
                TaskSpec("c17", "stuck_at"),
            ]
            result = run_campaign(grid)
            assert result.n_failed == 1
            assert result.records[0]["status"] == "error"
            assert "deliberate" in result.records[0]["error"]
            assert result.records[1]["status"] == "ok"
        finally:
            del TASK_RUNNERS["boom"]

    @pytest.mark.skipif(
        not hasattr(signal, "SIGALRM"), reason="needs SIGALRM"
    )
    def test_per_task_timeout(self):
        def sleepy(_network, _engine):
            time.sleep(5.0)
            return {}

        TASK_RUNNERS["sleepy"] = sleepy
        try:
            start = time.perf_counter()
            record = execute_task(TaskSpec("c17", "sleepy"), timeout=0.2)
            assert record["status"] == "timeout"
            assert time.perf_counter() - start < 4.0
        finally:
            del TASK_RUNNERS["sleepy"]

    def test_failed_tasks_are_retried_on_resume(self, tmp_path):
        store_path = tmp_path / "campaign.jsonl"
        ResultStore(store_path).append(
            {
                "task_id": "c17/stuck_at/compiled",
                "circuit": "c17",
                "fault_class": "stuck_at",
                "engine": "compiled",
                "status": "timeout",
                "runtime_s": 0.0,
            }
        )
        result = run_campaign(
            expand_grid(["c17"], ["stuck_at"]), store=store_path
        )
        assert result.n_skipped == 0
        assert result.records[0]["status"] == "ok"


CANNED_RECORDS = [
    {
        "schema": 1, "task_id": "rca4/stuck_at/compiled",
        "circuit": "rca4", "fault_class": "stuck_at",
        "engine": "compiled", "status": "ok", "runtime_s": 0.5,
        "circuit_stats": {"gates": 8},
        "metrics": {"n_faults": 56, "n_vectors": 10, "coverage": 1.0,
                    "backtracks": 3},
    },
    {
        "schema": 1, "task_id": "rca4/polarity/compiled",
        "circuit": "rca4", "fault_class": "polarity",
        "engine": "compiled", "status": "ok", "runtime_s": 0.5,
        "circuit_stats": {"gates": 8},
        "metrics": {"n_faults": 128, "coverage_by_stuck_at_set": 0.0,
                    "n_escapes": 128, "atpg_coverage": 1.0,
                    "n_voltage_tests": 64, "n_iddq_tests": 64,
                    "n_untestable": 0},
    },
    {
        "schema": 1, "task_id": "rca4/stuck_open/compiled",
        "circuit": "rca4", "fault_class": "stuck_open",
        "engine": "compiled", "status": "ok", "runtime_s": 0.5,
        "circuit_stats": {"gates": 8},
        "metrics": {"n_faults": 64, "n_masked": 64, "n_tests": 0,
                    "n_dropped": 0, "n_untestable": 0, "coverage": 0.0},
    },
]


class TestTables:
    def test_coverage_table_from_canned_store(self, tmp_path):
        store = ResultStore(tmp_path / "canned.jsonl")
        for record in CANNED_RECORDS:
            store.append(record)
        table = coverage_table(store.load())
        row = next(
            line for line in table.splitlines() if line.startswith("rca4")
        )
        assert "100%" in row     # stuck-at coverage
        assert "0%" in row       # polarity coverage by the classic set
        assert "128" in row      # polarity fault count

    def test_escape_table_rates(self):
        table = escape_table(CANNED_RECORDS)
        row = next(
            line for line in table.splitlines() if line.startswith("rca4")
        )
        assert "100%" in row     # escape rate and masked rate

    def test_run_table_lists_every_task(self):
        table = run_table(CANNED_RECORDS)
        for record in CANNED_RECORDS:
            assert record["task_id"] in table

    def test_render_report_sections(self):
        report = render_report(CANNED_RECORDS)
        assert "Task summary" in report
        assert "Coverage: classic stuck-at tests" in report
        assert "Escapes of the classic flow" in report
        assert render_report([]) == "no campaign records"

    def test_failed_records_excluded_from_coverage_rows(self):
        failed = dict(CANNED_RECORDS[0], status="error")
        table = coverage_table([failed])
        assert "rca4" not in table


class TestCoverageBridge:
    def test_experiment_atpg_coverage_through_campaign(self):
        from repro.analysis.atpg_experiments import experiment_atpg_coverage

        results, report = experiment_atpg_coverage(("c17", "tmr_voter"))
        assert [r.name for r in results] == ["c17", "tmr_voter"]
        c17_row = results[0]
        assert c17_row.stuck_at_coverage == 1.0
        assert c17_row.n_polarity == 0
        assert "c17" in report and "tmr_voter" in report


class TestCli:
    def test_list(self, capsys):
        from repro.campaign.cli import main

        assert main(["list", "--tag", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "c17" in out and "fault classes:" in out

    def test_run_report_round_trip(self, tmp_path, capsys):
        from repro.campaign.cli import main

        store = str(tmp_path / "cli.jsonl")
        assert main(
            ["run", "--circuits", "c17", "--fault-classes", "stuck_at",
             "--store", store, "--workers", "1"]
        ) == 0
        capsys.readouterr()
        assert main(["report", "--store", store, "--table", "coverage"]) == 0
        assert "c17" in capsys.readouterr().out

    def test_run_requires_circuit_selection(self, tmp_path):
        from repro.campaign.cli import main

        assert main(["run", "--store", str(tmp_path / "x.jsonl")]) == 2

    def test_report_on_missing_store(self, tmp_path):
        from repro.campaign.cli import main

        assert main(["report", "--store", str(tmp_path / "none.jsonl")]) == 1


class TestDocstringExamples:
    """The module-level examples in the campaign/analysis docstrings
    must actually run (the ISSUE's docstring-pass requirement)."""

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.campaign.registry",
            "repro.campaign.tasks",
            "repro.campaign.runner",
            "repro.analysis.atpg_experiments",
            "repro.analysis.experiments",
        ],
    )
    def test_module_doctests(self, module_name):
        import doctest
        import importlib

        module = importlib.import_module(module_name)
        result = doctest.testmod(module, verbose=False)
        assert result.attempted > 0, f"{module_name} lost its examples"
        assert result.failed == 0


class TestReviewRegressions:
    def test_custom_registry_generated_circuit_is_self_contained(self):
        """Grid cells from a custom registry must execute even though
        workers only share the default registry (serialised to bench)."""
        from repro.circuits.generators import ripple_carry_adder

        registry = Registry()
        registry.register_generated("my_rca", lambda: ripple_carry_adder(2))
        grid = expand_grid(["my_rca"], ["stuck_at"], registry=registry)
        assert grid[0].bench_text is not None
        record = execute_task(grid[0])
        assert record["status"] == "ok"
        assert record["metrics"]["coverage"] == 1.0

    def test_coverage_from_records_tolerates_partial_grid(self):
        from repro.analysis.atpg_experiments import coverage_from_records

        rows = coverage_from_records([CANNED_RECORDS[0]])  # stuck_at only
        assert rows[0].stuck_at_coverage == 1.0
        assert rows[0].n_polarity == 0
        assert rows[0].iddq_vectors == 0

    def test_smoke_respects_explicit_workers_one(self, tmp_path, monkeypatch):
        from repro.campaign import cli, runner

        seen = {}
        real = runner.run_campaign

        def spy(tasks, **kwargs):
            seen["workers"] = kwargs.get("workers")
            return real(tasks, **kwargs)

        monkeypatch.setattr(cli, "run_campaign", spy)
        cli.main(
            ["run", "--smoke", "--workers", "1",
             "--fault-classes", "stuck_at",
             "--store", str(tmp_path / "s.jsonl")]
        )
        assert seen["workers"] == 1


class TestStoreHardening:
    def test_append_reuses_one_persistent_handle(self, tmp_path):
        """Regression: ``append`` used to reopen (and re-heal) the file
        per record; the store must hold one handle for its lifetime."""
        store = ResultStore(tmp_path / "s.jsonl")
        store.append({"task_id": "a", "status": "ok"})
        handle = store._handle
        store.append({"task_id": "b", "status": "ok"})
        assert store._handle is handle
        assert len(store.load()) == 2   # flushed per record, readable live
        store.close()

    def test_heal_then_append_stays_one_record_per_line(self, tmp_path):
        """Appending after torn-tail healing must not glue the new
        record onto the truncated remnant."""
        path = tmp_path / "s.jsonl"
        path.write_text('{"task_id": "a", "status": "ok"}\n{"task_id": "b')
        with ResultStore(path) as store:
            store.append({"task_id": "c", "status": "ok"})
        lines = path.read_text().splitlines()
        assert [json.loads(line)["task_id"] for line in lines] == ["a", "c"]
        assert path.read_text().endswith("\n")

    def test_handle_reopens_after_close(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append({"task_id": "a", "status": "ok"})
        store.close()
        store.append({"task_id": "b", "status": "ok"})
        store.close()
        assert len(store.load()) == 2

    def test_fsync_append_round_trip(self, tmp_path):
        with ResultStore(tmp_path / "s.jsonl", fsync=True) as store:
            store.append({"task_id": "a", "status": "ok"})
            store.append({"task_id": "b", "status": "ok"})
        assert len(ResultStore(tmp_path / "s.jsonl").load()) == 2

    def test_second_writer_fails_fast(self, tmp_path):
        pytest.importorskip("fcntl")
        first = ResultStore(tmp_path / "s.jsonl")
        first.append({"task_id": "a", "status": "ok"})
        second = ResultStore(tmp_path / "s.jsonl")
        with pytest.raises(StoreLockedError, match="locked by PID") as info:
            second.append({"task_id": "b", "status": "ok"})
        # Satellite: the error names the holding PID and a retry hint.
        assert info.value.pid == os.getpid()
        assert "retry" in str(info.value)
        # Readers are never blocked by the writer's lock.
        assert len(second.load()) == 1
        # Closing the first writer releases the lock.
        first.close()
        second.append({"task_id": "b", "status": "ok"})
        second.close()
        assert len(second.load()) == 2

    def test_lock_opt_out(self, tmp_path):
        first = ResultStore(tmp_path / "s.jsonl")
        first.append({"task_id": "a", "status": "ok"})
        unlocked = ResultStore(tmp_path / "s.jsonl", lock=False)
        unlocked.append({"task_id": "b", "status": "ok"})
        first.close()
        unlocked.close()

    def test_corrupt_line_error_names_the_line(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"task_id": "a"}\nnot json\n{"task_id": "b"}\n')
        with pytest.raises(ValueError, match="line 2"):
            ResultStore(path).load()

    def test_strip_volatile_drops_retry_provenance(self):
        records = [
            {
                "task_id": "a", "runtime_s": 1.0, "attempt": 3,
                "failures": [{"kind": "transient"}], "status": "ok",
            },
            {"task_id": "a", "status": "ok"},
        ]
        stripped = strip_volatile(records)
        assert stripped[0] == stripped[1] == {"task_id": "a", "status": "ok"}


class TestCliExitCodes:
    """``python -m repro run`` must exit nonzero when any cell's final
    record is not ``ok`` (a green exit on a red campaign is how broken
    CI pipelines are born)."""

    def test_run_exits_nonzero_when_a_cell_errors(self, tmp_path, capsys):
        from repro.campaign.cli import main

        def boom(_network, _engine):
            raise RuntimeError("deliberate")

        TASK_RUNNERS["boom"] = boom
        try:
            code = main(
                ["run", "--circuits", "c17", "--fault-classes", "boom",
                 "--store", str(tmp_path / "f.jsonl")]
            )
        finally:
            del TASK_RUNNERS["boom"]
        assert code == 1
        assert "1 failed" in capsys.readouterr().out

    @pytest.mark.skipif(
        not hasattr(signal, "SIGALRM"), reason="needs SIGALRM"
    )
    def test_run_exits_nonzero_when_a_cell_times_out(self, tmp_path, capsys):
        from repro.campaign.cli import main

        def sleepy(_network, _engine):
            time.sleep(5.0)
            return {}

        TASK_RUNNERS["sleepy"] = sleepy
        try:
            code = main(
                ["run", "--circuits", "c17", "--fault-classes", "sleepy",
                 "--timeout", "0.2",
                 "--store", str(tmp_path / "t.jsonl")]
            )
        finally:
            del TASK_RUNNERS["sleepy"]
        assert code == 1
        out = capsys.readouterr().out
        assert "1 failed" in out

    def test_failed_store_still_resumable_by_next_run(self, tmp_path):
        from repro.campaign.cli import main

        calls = {"n": 0}

        def flaky(_network, _engine):
            calls["n"] += 1
            if calls["n"] <= 2:   # fail on both engines of the chain
                raise RuntimeError("first run fails")
            return {"ok": True}

        TASK_RUNNERS["flaky"] = flaky
        try:
            store = str(tmp_path / "r.jsonl")
            args = ["run", "--circuits", "c17", "--fault-classes", "flaky",
                    "--store", store]
            assert main(args) == 1
            assert main(args) == 0    # failed record rerun, now green
        finally:
            del TASK_RUNNERS["flaky"]
