"""Tests for the TCAD-lite Poisson/drift-diffusion solver."""

import numpy as np
import pytest

from repro.device.params import DEFAULT_PARAMS
from repro.tcad import (
    GOSSpec,
    bernoulli,
    build_mesh,
    figure4_summary,
    solve_continuity,
    solve_device,
    solve_poisson,
)


class TestMesh:
    def test_regions_ordered(self):
        mesh = build_mesh(nodes_per_segment=10)
        labels = [r for r in mesh.region if r]
        assert labels[0] == "pgs"
        assert labels[-1] == "pgd"
        assert "cg" in labels

    def test_total_length(self):
        mesh = build_mesh()
        expected = DEFAULT_PARAMS.channel_length
        assert mesh.x[-1] == pytest.approx(expected)

    def test_gate_profile_levels(self):
        mesh = build_mesh(nodes_per_segment=10)
        profile = mesh.gate_voltage_profile(0.5, 1.0, 0.2)
        assert profile[mesh.nodes_in("pgs")] == pytest.approx(0.5)
        assert profile[mesh.nodes_in("cg")] == pytest.approx(1.0)
        assert profile[mesh.nodes_in("pgd")] == pytest.approx(0.2)

    def test_spacers_interpolate(self):
        mesh = build_mesh(nodes_per_segment=10)
        profile = mesh.gate_voltage_profile(0.0, 1.0, 0.0)
        spacer = [k for k, r in enumerate(mesh.region) if not r]
        assert all(0.0 <= profile[k] <= 1.0 for k in spacer)

    def test_rejects_tiny_mesh(self):
        with pytest.raises(ValueError):
            build_mesh(nodes_per_segment=2)


class TestBernoulli:
    def test_at_zero(self):
        assert bernoulli(np.array([0.0]))[0] == pytest.approx(1.0)

    def test_symmetry_identity(self):
        # B(-x) = B(x) + x.
        x = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(
            bernoulli(-x), bernoulli(x) + x, rtol=1e-10
        )

    def test_large_arguments_stable(self):
        assert bernoulli(np.array([300.0]))[0] >= 0.0
        assert np.isfinite(bernoulli(np.array([-300.0]))[0])


class TestPoisson:
    def test_equilibrium_flat_solution(self):
        """With zero gate offset and aligned boundaries the potential
        stays near the boundary value."""
        mesh = build_mesh(nodes_per_segment=10)
        phi = np.zeros(mesh.n)
        vg = np.full(mesh.n, 0.2)
        result = solve_poisson(
            mesh, vg, phi, phi, (0.2, 0.2),
        )
        assert result.converged
        assert np.all(np.abs(result.psi - 0.2) < 0.25)

    def test_gate_raises_channel_potential(self):
        mesh = build_mesh(nodes_per_segment=10)
        phi = np.zeros(mesh.n)
        low = solve_poisson(
            mesh, np.full(mesh.n, 0.0), phi, phi, (0.1, 0.1)
        )
        high = solve_poisson(
            mesh, np.full(mesh.n, 0.8), phi, phi, (0.1, 0.1)
        )
        mid = mesh.n // 2
        assert high.psi[mid] > low.psi[mid]


class TestContinuity:
    def test_flat_potential_linear_profile(self):
        """No field, no sink: pure diffusion gives a linear profile."""
        mesh = build_mesh(nodes_per_segment=10)
        psi = np.zeros(mesh.n)
        result = solve_continuity(mesh, psi, (1e24, 1e20))
        n = result.n
        interior = n[1:-1]
        linear = np.linspace(n[0], n[-1], mesh.n)[1:-1]
        np.testing.assert_allclose(interior, linear, rtol=1e-6)

    def test_sink_depletes(self):
        mesh = build_mesh(nodes_per_segment=10)
        psi = np.zeros(mesh.n)
        sink = np.zeros(mesh.n)
        sink[mesh.nodes_in("cg")] = 1e12
        clean = solve_continuity(mesh, psi, (1e24, 1e24))
        sunk = solve_continuity(mesh, psi, (1e24, 1e24), sink_rate=sink)
        assert np.mean(sunk.n) < np.mean(clean.n)

    def test_flux_conservation_without_sink(self):
        mesh = build_mesh(nodes_per_segment=10)
        psi = np.linspace(0.0, 0.3, mesh.n)
        result = solve_continuity(mesh, psi, (1e24, 1e22))
        flux = result.current_density
        np.testing.assert_allclose(
            flux, flux[0] * np.ones_like(flux), rtol=1e-6
        )


class TestDeviceSolve:
    def test_fault_free_converges_to_inversion(self):
        solution = solve_device(nodes_per_segment=25)
        assert solution.converged
        # ~1e19 cm^-3 scale channel density.
        assert 1e18 < solution.mean_density_cm3 < 1e20

    def test_gos_spec_validation(self):
        with pytest.raises(ValueError):
            GOSSpec("source")

    def test_gos_default_plug_per_location(self):
        assert GOSSpec("pgs").plug_drop > GOSSpec("cg").plug_drop

    def test_figure4_ordering(self):
        summary = figure4_summary(nodes_per_segment=25)
        densities = {k: v.density_cm3 for k, v in summary.items()}
        assert (
            densities["fault-free"]
            > densities["gos@cg"]
            > densities["gos@pgd"]
            > densities["gos@pgs"]
        )

    def test_figure4_within_3x_of_paper(self):
        summary = figure4_summary(nodes_per_segment=25)
        for name, case in summary.items():
            ratio = case.density_cm3 / case.reference_cm3
            assert 1 / 3 < ratio < 3, name
