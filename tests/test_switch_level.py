"""Tests for the switch-level CP transistor-network simulator."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gates.library import (
    ALL_CELLS,
    INV,
    MAJ3,
    NAND2,
    XOR2,
)
from repro.logic.switch_level import (
    DeviceState,
    detection_behaviour,
    evaluate,
    fault_free_is_consistent,
    truth_table_switch_level,
)
from repro.logic.values import ONE, X, Z, ZERO


@pytest.mark.parametrize("cell_name", sorted(ALL_CELLS))
def test_every_cell_consistent_at_switch_level(cell_name):
    """Property: switch-level evaluation == the reference Boolean
    function for every library cell, every vector, with no conflicts."""
    assert fault_free_is_consistent(ALL_CELLS[cell_name])


class TestEvaluate:
    def test_inv_truth(self):
        assert evaluate(INV, (0,)).output == 1
        assert evaluate(INV, (1,)).output == 0

    def test_conducting_modes_reported(self):
        result = evaluate(INV, (0,))
        # Pull-up p-configured device conducts.
        assert result.conducting.get("t1") == "p"
        result = evaluate(INV, (1,))
        assert result.conducting.get("t3") == "n"

    def test_xor_redundant_pair_modes(self):
        """At every conducting vector one member is 'n' and one is 'p'."""
        for vector in itertools.product((0, 1), repeat=2):
            result = evaluate(XOR2, vector)
            modes = sorted(result.conducting.values())
            assert modes == ["n", "p"]

    def test_stuck_open_floats_output(self):
        # Break the INV pull-up and drive the input low: output floats.
        result = evaluate(
            INV, (0,), {"t1": DeviceState.STUCK_OPEN}
        )
        assert result.output == Z

    def test_charge_retention(self):
        result = evaluate(
            INV, (0,), {"t1": DeviceState.STUCK_OPEN}, previous_output=ONE
        )
        assert result.output == ONE

    def test_stuck_on_creates_conflict(self):
        result = evaluate(INV, (1,), {"t1": DeviceState.STUCK_ON})
        assert result.conflict

    def test_floating_pg_gives_unknown(self):
        result = evaluate(INV, (0,), {"t1": DeviceState.FLOATING_PG})
        assert result.output in (X, ZERO, ONE)

    def test_unknown_device_rejected(self):
        with pytest.raises(KeyError):
            evaluate(INV, (0,), {"t9": DeviceState.STUCK_OPEN})

    def test_strength_resolution_pull_up_loses(self):
        """A wrong-mode (weak) pull-up cannot corrupt a strongly held 0
        — the Table III pull-up asymmetry."""
        result = evaluate(XOR2, (0, 0), {"t1": DeviceState.STUCK_AT_N})
        assert result.conflict  # IDDQ path exists
        assert result.output == ZERO  # but the output holds


class TestTruthTables:
    def test_switch_level_matches_function_nand(self):
        table = truth_table_switch_level(NAND2)
        for vector, value in table.items():
            assert value == NAND2.function(vector)

    def test_switch_level_matches_function_maj(self):
        table = truth_table_switch_level(MAJ3)
        for vector, value in table.items():
            assert value == MAJ3.function(vector)


class TestDetectionBehaviour:
    def test_table_iii_stuck_at_n(self):
        """The paper's Table III stuck-at-n rows, exactly."""
        expected = {
            "t1": ((0, 0), False),
            "t2": ((1, 1), False),
            "t3": ((0, 1), True),
            "t4": ((1, 0), True),
        }
        for transistor, (vector, out_detect) in expected.items():
            report = detection_behaviour(
                XOR2, transistor, DeviceState.STUCK_AT_N
            )
            detecting = {
                v for v, r in report.items()
                if r["output_detect"] or r["iddq_detect"]
            }
            assert detecting == {vector}
            assert report[vector]["iddq_detect"]
            assert report[vector]["output_detect"] == out_detect

    def test_channel_break_invisible(self):
        for transistor in ("t1", "t2", "t3", "t4"):
            report = detection_behaviour(
                XOR2, transistor, DeviceState.STUCK_OPEN
            )
            assert not any(
                r["output_detect"] or r["iddq_detect"]
                for r in report.values()
            )

    def test_nand_break_not_masked(self):
        """SP gates: a break floats the output (sequential behaviour) but
        never silently masks — the two-pattern test can see it."""
        from repro.logic.switch_level import evaluate as sw_eval

        floats = 0
        for vector in itertools.product((0, 1), repeat=2):
            result = sw_eval(
                NAND2, vector, {"t1": DeviceState.STUCK_OPEN}
            )
            if result.output == Z:
                floats += 1
        assert floats > 0


@given(
    st.sampled_from(sorted(ALL_CELLS)),
    st.integers(min_value=0, max_value=7),
    st.sampled_from(list(DeviceState)),
)
@settings(max_examples=60, deadline=None)
def test_single_fault_never_crashes(cell_name, vector_bits, state):
    """Property: the engine handles any single-device fault state on any
    cell/vector without exceptions, and outputs stay in the value set."""
    cell = ALL_CELLS[cell_name]
    vector = tuple(
        (vector_bits >> k) & 1 for k in range(cell.n_inputs)
    )
    target = cell.transistors[0].name
    result = evaluate(cell, vector, {target: state})
    assert result.output in (ZERO, ONE, X, Z)
