"""Tests for I-V utilities (threshold, slope, ratio extraction)."""

import numpy as np
import pytest

from repro.device import (
    DEFAULT_PARAMS,
    TIGSiNWFET,
    TransferCurve,
    id_sat,
    on_off_ratio,
    subthreshold_slope,
    sweep_id_vcg,
    threshold_voltage,
)


@pytest.fixture(scope="module")
def curve():
    return sweep_id_vcg(TIGSiNWFET(), "n")


class TestSweep:
    def test_default_span(self, curve):
        assert curve.v_cg[0] == 0.0
        assert curve.v_cg[-1] == pytest.approx(DEFAULT_PARAMS.vdd)
        assert curve.v_ds == pytest.approx(DEFAULT_PARAMS.vdd)

    def test_point_count(self):
        c = sweep_id_vcg(TIGSiNWFET(), "n", points=31)
        assert len(c.v_cg) == 31

    def test_rejects_bad_polarity(self):
        with pytest.raises(ValueError):
            sweep_id_vcg(TIGSiNWFET(), "x")

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            TransferCurve(
                v_cg=np.zeros(3), i_d=np.zeros(4),
                v_pgs=1.2, v_pgd=1.2, v_ds=1.2,
            )


class TestMetrics:
    def test_id_sat_is_last_point(self, curve):
        assert id_sat(curve) == curve.i_d[-1]

    def test_threshold_monotone_in_criterion(self, curve):
        low = threshold_voltage(curve, i_crit=1e-9)
        high = threshold_voltage(curve, i_crit=1e-7)
        assert low < high

    def test_threshold_nan_when_unreachable(self, curve):
        assert np.isnan(threshold_voltage(curve, i_crit=1.0))

    def test_subthreshold_slope_near_design_value(self, curve):
        assert subthreshold_slope(curve) == pytest.approx(
            DEFAULT_PARAMS.ss_cg, rel=0.15
        )

    def test_on_off_ratio_positive(self, curve):
        assert on_off_ratio(curve) > 1e3

    def test_vds_dependence(self):
        low = sweep_id_vcg(TIGSiNWFET(), "n", v_ds=0.1)
        high = sweep_id_vcg(TIGSiNWFET(), "n", v_ds=1.2)
        assert id_sat(low) < id_sat(high)
