"""Tests for the MNA circuit simulator (DC + transient)."""

import numpy as np
import pytest

from repro.device import TIGSiNWFET
from repro.spice import (
    Circuit,
    DC,
    MNASystem,
    Step,
    propagation_delay,
    run_transient,
    solve_dc,
    sweep_dc,
    threshold_crossings,
)

VDD = 1.2


class TestLinearDC:
    def test_voltage_divider(self):
        c = Circuit("div")
        c.add_vsource("v1", "in", "0", 2.0)
        c.add_resistor("r1", "in", "mid", 1e3)
        c.add_resistor("r2", "mid", "0", 3e3)
        op = solve_dc(c)
        assert op.voltage("mid") == pytest.approx(1.5)
        assert op.source_currents["v1"] == pytest.approx(-2.0 / 4e3)

    def test_current_source_into_resistor(self):
        c = Circuit("isrc")
        c.add_isource("i1", "0", "n", 1e-3)  # 1 mA into node n
        c.add_resistor("r1", "n", "0", 2e3)
        op = solve_dc(c)
        assert op.voltage("n") == pytest.approx(2.0)

    def test_two_sources_superposition(self):
        c = Circuit("two")
        c.add_vsource("va", "a", "0", 1.0)
        c.add_vsource("vb", "b", "0", 2.0)
        c.add_resistor("r1", "a", "x", 1e3)
        c.add_resistor("r2", "b", "x", 1e3)
        c.add_resistor("r3", "x", "0", 1e3)
        op = solve_dc(c)
        assert op.voltage("x") == pytest.approx(1.0)

    def test_ground_aliases(self):
        c = Circuit("gnd")
        c.add_vsource("v1", "n", "gnd", 1.0)
        c.add_resistor("r1", "n", "GND", 1e3)
        op = solve_dc(c)
        assert op.voltage("n") == pytest.approx(1.0)

    def test_kcl_residual_random_network(self):
        """Property: MNA solutions satisfy KCL at every node."""
        rng = np.random.default_rng(3)
        c = Circuit("rand")
        nodes = ["n%d" % k for k in range(6)] + ["0"]
        c.add_vsource("v1", "n0", "0", 1.0)
        for k in range(12):
            a, b = rng.choice(len(nodes), size=2, replace=False)
            c.add_resistor(f"r{k}", nodes[a], nodes[b],
                           float(rng.uniform(1e2, 1e5)))
        op = solve_dc(c)
        # Check KCL at a non-source node by summing resistor currents.
        for node in nodes[1:-1]:
            total = 0.0
            for r in c.resistors.values():
                va = op.voltage(r.a)
                vb = op.voltage(r.b)
                if r.a == node:
                    total -= (va - vb) / r.resistance
                if r.b == node:
                    total += (va - vb) / r.resistance
            assert total == pytest.approx(0.0, abs=1e-9)


class TestNonlinearDC:
    def test_inverter_both_states(self):
        model = TIGSiNWFET()
        c = Circuit("inv")
        c.add_vsource("vdd", "vdd", "0", VDD)
        c.add_vsource("vin", "a", "0", 0.0)
        c.add_device("tp", model, "out", "a", "0", "0", "vdd")
        c.add_device("tn", model, "out", "a", "vdd", "vdd", "0")
        op = solve_dc(c)
        assert op.voltage("out") == pytest.approx(VDD, abs=0.05)
        c.vsources["vin"].waveform = DC(VDD)
        op = solve_dc(c)
        assert op.voltage("out") == pytest.approx(0.0, abs=0.05)

    def test_inverter_iddq_small(self):
        model = TIGSiNWFET()
        c = Circuit("inv")
        c.add_vsource("vdd", "vdd", "0", VDD)
        c.add_vsource("vin", "a", "0", VDD)
        c.add_device("tp", model, "out", "a", "0", "0", "vdd")
        c.add_device("tn", model, "out", "a", "vdd", "vdd", "0")
        op = solve_dc(c)
        assert op.supply_current("vdd") < 5e-9

    def test_sweep_dc_warm_start(self):
        model = TIGSiNWFET()
        c = Circuit("inv")
        c.add_vsource("vdd", "vdd", "0", VDD)
        c.add_vsource("vin", "a", "0", 0.0)
        c.add_device("tp", model, "out", "a", "0", "0", "vdd")
        c.add_device("tn", model, "out", "a", "vdd", "vdd", "0")
        points = sweep_dc(c, "vin", np.linspace(0, VDD, 13))
        outs = [p.voltage("out") for p in points]
        # Monotonic falling VTC.
        assert all(b <= a + 1e-6 for a, b in zip(outs, outs[1:]))
        assert outs[0] > VDD - 0.1
        assert outs[-1] < 0.1


class TestTransient:
    def test_rc_charging(self):
        c = Circuit("rc")
        c.add_vsource("vin", "in", "0", Step(0.0, 1.0, 1e-9, 1e-11))
        c.add_resistor("r", "in", "out", 1e3)
        c.add_capacitor("cap", "out", "0", 1e-12)  # tau = 1 ns
        res = run_transient(c, 6e-9, 1e-11)
        v = res.voltage("out")
        t = res.times
        # After ~3 tau from the step, expect ~95 %.
        idx = np.searchsorted(t, 4e-9)
        assert v[idx] == pytest.approx(1 - np.exp(-3), abs=0.03)

    def test_rc_crossing_time(self):
        c = Circuit("rc")
        c.add_vsource("vin", "in", "0", Step(0.0, 1.0, 0.5e-9, 1e-11))
        c.add_resistor("r", "in", "out", 1e3)
        c.add_capacitor("cap", "out", "0", 1e-12)
        res = run_transient(c, 5e-9, 5e-12)
        crossings = threshold_crossings(res.times, res.voltage("out"), 0.5)
        assert len(crossings) == 1
        # 50 % of an RC step happens ln(2) tau after the step.
        assert crossings[0] - 0.5e-9 == pytest.approx(
            0.693e-9, rel=0.05
        )

    def test_inverter_switches(self):
        model = TIGSiNWFET()
        c = Circuit("inv")
        c.add_vsource("vdd", "vdd", "0", VDD)
        c.add_vsource("vin", "a", "0", Step(0.0, VDD, 0.2e-9, 2e-11))
        c.add_device("tp", model, "out", "a", "0", "0", "vdd")
        c.add_device("tn", model, "out", "a", "vdd", "vdd", "0")
        c.add_capacitor("cl", "out", "0", 1e-15)
        res = run_transient(c, 1.2e-9, 2e-12)
        assert res.voltage("out")[0] == pytest.approx(VDD, abs=0.05)
        assert res.voltage("out")[-1] == pytest.approx(0.0, abs=0.05)
        d = propagation_delay(res, "a", "out", VDD)
        assert 1e-12 < d < 500e-12

    def test_validates_arguments(self):
        c = Circuit("bad")
        c.add_vsource("v", "n", "0", 1.0)
        c.add_resistor("r", "n", "0", 1.0)
        with pytest.raises(ValueError):
            run_transient(c, 0.0, 1e-12)


class TestMeasure:
    def test_threshold_crossing_directions(self):
        t = np.linspace(0, 1, 11)
        v = np.concatenate([np.linspace(0, 1, 6), np.linspace(0.8, 0, 5)])
        rises = threshold_crossings(t, v, 0.5, "rise")
        falls = threshold_crossings(t, v, 0.5, "fall")
        assert len(rises) == 1
        assert len(falls) == 1
        assert rises[0] < falls[0]

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            threshold_crossings(np.zeros(2), np.zeros(2), 0.5, "sideways")


class TestNetlistValidation:
    def test_duplicate_names_rejected(self):
        c = Circuit("dup")
        c.add_resistor("x", "a", "0", 1.0)
        with pytest.raises(ValueError):
            c.add_capacitor("x", "a", "0", 1e-12)

    def test_negative_resistance_rejected(self):
        c = Circuit("bad")
        with pytest.raises(ValueError):
            c.add_resistor("r", "a", "0", -1.0)

    def test_disconnect_terminal(self):
        c = Circuit("open")
        c.add_device("t1", TIGSiNWFET(), "d", "g", "p", "p", "0")
        float_node = c.disconnect_terminal("t1", "pgs")
        assert c.devices["t1"].pgs == float_node
        assert c.devices["t1"].pgd == "p"

    def test_disconnect_unknown_device(self):
        c = Circuit("open")
        with pytest.raises(KeyError):
            c.disconnect_terminal("nope", "pgs")

    def test_bridge_adds_resistor(self):
        c = Circuit("bridge")
        c.add_bridge("x", "y", resistance=100.0)
        assert any(
            r.a == "x" and r.b == "y" for r in c.resistors.values()
        )

    def test_nodes_sorted_and_exclude_ground(self):
        c = Circuit("n")
        c.add_resistor("r1", "b", "0", 1.0)
        c.add_resistor("r2", "a", "gnd", 1.0)
        assert c.nodes() == ["a", "b"]


class TestConvergenceMachinery:
    def test_floating_node_regularised_by_gmin(self):
        # A node connected only by a capacitor has no DC path; the
        # permanent 1e-12 S gmin (SPICE convention) pins it to ground
        # instead of producing a singular system.
        c = Circuit("sing")
        c.add_vsource("v", "a", "0", 1.0)
        c.add_capacitor("c1", "b", "0", 1e-12)
        c.add_resistor("r1", "a", "0", 1e3)
        x = MNASystem(c).solve_dc_continuation()
        op_index = MNASystem(c).node_index["b"]
        assert abs(x[op_index]) < 1e-6

    def test_contended_fault_circuit_converges(self):
        """Strong polarity-fault contention (the hardest DC case in the
        fault campaigns) must converge with default options."""
        from repro.core.fault_models import StuckAtNType
        from repro.gates import build_cell_circuit, get_cell
        from repro.spice import solve_dc

        bench = build_cell_circuit(get_cell("XOR3"), fanout=4)
        StuckAtNType("t1").apply(bench)
        bench.set_vector((0, 0, 0))
        op = solve_dc(bench.circuit)
        assert op.supply_current("vdd") > 0


class TestDeviceContributionScatter:
    """The vectorised ``np.add.at`` device stamping must reproduce the
    original per-device/per-terminal scatter loop exactly (Table III
    testbench circuits, fault-free and faulted)."""

    @staticmethod
    def _reference_loop(system, x):
        """The pre-vectorisation triple scatter loop, verbatim."""
        from repro.spice.mna import _FD_STEP

        i_dev = np.zeros(system.size)
        j_dev = np.zeros((system.size, system.size))
        for model, _names, index_matrix, *_ in system.device_groups:
            base = system._terminal_voltages(x, index_matrix)
            n = base.shape[0]
            pert = np.broadcast_to(base[:, None, :], (n, 6, 5)).copy()
            for j in range(5):
                pert[:, j + 1, j] += _FD_STEP
            currents = model.terminal_current_matrix(pert)
            i_base = currents[:, 0, :]
            didv = (
                currents[:, 1:, :] - currents[:, None, 0, :]
            ) / _FD_STEP
            for dev in range(n):
                rows = index_matrix[dev]
                for t_term in range(5):
                    row = rows[t_term]
                    if row < 0:
                        continue
                    i_dev[row] += i_base[dev, t_term]
                    for j_term in range(5):
                        col = rows[j_term]
                        if col < 0:
                            continue
                        j_dev[row, col] += didv[dev, j_term, t_term]
        return i_dev, j_dev

    def _xor2_bench(self, vector=(0, 1)):
        from repro.gates import build_cell_circuit, get_cell

        bench = build_cell_circuit(get_cell("XOR2"), fanout=4)
        bench.set_vector(vector)
        return bench

    def test_scatter_matches_reference_loop(self):
        bench = self._xor2_bench()
        system = MNASystem(bench.circuit)
        rng = np.random.default_rng(7)
        for _ in range(5):
            x = rng.uniform(-0.2, VDD + 0.2, size=system.size)
            i_vec, j_vec = system.device_contributions(x)
            i_ref, j_ref = self._reference_loop(system, x)
            np.testing.assert_allclose(i_vec, i_ref, rtol=1e-12, atol=0)
            np.testing.assert_allclose(j_vec, j_ref, rtol=1e-12, atol=0)

    def test_newton_convergence_on_table3_bench(self):
        """The Table III XOR2 testbench converges to the same operating
        point as the reference-loop stamping, fault-free and with a
        polarity fault installed."""
        from repro.core.fault_models import StuckAtNType
        from repro.spice import solve_dc

        bench = self._xor2_bench((0, 1))
        op = solve_dc(bench.circuit)
        assert op.voltage("out") == pytest.approx(VDD, abs=0.1)

        faulted = self._xor2_bench((0, 0))
        StuckAtNType("t1").apply(faulted)
        op = solve_dc(faulted.circuit)
        assert op.supply_current("vdd") > 0
