"""Tests for repro.device.params (Table II parameter set)."""

import math

import pytest

from repro.device.params import (
    DEFAULT_PARAMS,
    DeviceParameters,
    table_ii_rows,
    thermal_voltage,
)


class TestPhysicalConstants:
    def test_thermal_voltage_room_temperature(self):
        assert thermal_voltage(300.0) == pytest.approx(0.02585, rel=1e-3)

    def test_thermal_voltage_scales_linearly(self):
        assert thermal_voltage(600.0) == pytest.approx(
            2 * thermal_voltage(300.0)
        )


class TestTableII:
    """The default parameters are the paper's Table II values."""

    def test_gate_lengths(self):
        assert DEFAULT_PARAMS.l_cg == pytest.approx(22e-9)
        assert DEFAULT_PARAMS.l_pgs == pytest.approx(22e-9)
        assert DEFAULT_PARAMS.l_pgd == pytest.approx(22e-9)
        assert DEFAULT_PARAMS.l_spacer == pytest.approx(18e-9)

    def test_oxide_and_radius(self):
        assert DEFAULT_PARAMS.t_ox == pytest.approx(5.1e-9)
        assert DEFAULT_PARAMS.r_nw == pytest.approx(7.5e-9)

    def test_schottky_barrier(self):
        assert DEFAULT_PARAMS.phi_barrier == pytest.approx(0.41)

    def test_doping_is_1e15_per_cm3(self):
        assert DEFAULT_PARAMS.n_channel == pytest.approx(1e21)

    def test_supply_voltage(self):
        assert DEFAULT_PARAMS.vdd == pytest.approx(1.2)

    def test_rows_formatting(self):
        rows = dict(table_ii_rows())
        assert rows["Length of Control Gate (LCG)"] == "22 nm"
        assert rows["Oxide Thickness (TOx)"] == "5.1 nm"
        assert rows["Radius of NanoWire (RNW)"] == "7.5 nm"
        assert rows["Schottky Barrier Height"] == "0.41 eV"

    def test_row_count_matches_paper(self):
        assert len(table_ii_rows()) == 7


class TestDerivedQuantities:
    def test_channel_length(self):
        expected = 22e-9 * 3 + 18e-9 * 2
        assert DEFAULT_PARAMS.channel_length == pytest.approx(expected)

    def test_nanowire_area(self):
        assert DEFAULT_PARAMS.nanowire_area == pytest.approx(
            math.pi * (7.5e-9) ** 2
        )

    def test_oxide_capacitance_positive(self):
        assert DEFAULT_PARAMS.oxide_capacitance_per_area > 0

    def test_natural_length_in_nm_range(self):
        # GAA natural length should be a few nanometres for these numbers.
        assert 1e-9 < DEFAULT_PARAMS.natural_length < 10e-9


class TestValidation:
    def test_rejects_negative_vdd(self):
        with pytest.raises(ValueError):
            DeviceParameters(vdd=-1.0)

    def test_rejects_ion_below_floor(self):
        with pytest.raises(ValueError):
            DeviceParameters(i_on=1e-14, i_floor=1e-13)

    def test_rejects_nonpositive_geometry(self):
        with pytest.raises(ValueError):
            DeviceParameters(t_ox=0.0)

    def test_rejects_bad_drain_weight(self):
        with pytest.raises(ValueError):
            DeviceParameters(drain_weight=0.0)
        with pytest.raises(ValueError):
            DeviceParameters(drain_weight=1.5)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_PARAMS.vdd = 2.0
