"""Campaign job service: metrics registry, job manager, HTTP API and
the failure modes the service must survive.

The service contract mirrors the storage layer's: nothing the service
does — cancelling a campaign mid-grid, SIGKILLing the server process,
racing two clients over the same grid, SIGTERMing a CLI run — may
change *what* a campaign computes.  Every disturbed store must stay
resumable and converge (after :func:`strip_volatile`) to the
undisturbed run, with exactly one committed row per task.
"""

import json
import os
import signal
import socket
import sqlite3
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.campaign.backends import open_store
from repro.campaign.runner import expand_grid, run_campaign
from repro.campaign.store import stores_equal
from repro.service.api import (
    METRICS_CONTENT_TYPE,
    ServiceClient,
    ServiceHTTPError,
    create_server,
)
from repro.service.jobs import JobError, JobManager, JobSpec
from repro.service.metrics import (
    Registry,
    cache_stats,
    install_cache_collectors,
)

needs_posix = pytest.mark.skipif(
    os.name != "posix", reason="needs POSIX signal semantics"
)

REPO = Path(__file__).resolve().parents[1]

#: Fast grid (small circuits, milliseconds per cell): API plumbing.
SMALL_SPEC = {
    "circuits": ["c17", "tmr_voter"],
    "fault_classes": ["stuck_at", "polarity", "iddq", "stuck_open"],
}
SMALL_TASKS = 8

#: Slow-enough grid (the alu8 cells run for seconds): interruption
#: tests need the campaign still in flight when the signal lands.
SLOW_SPEC = {
    "circuits": ["alu8", "c17"],
    "fault_classes": ["stuck_at", "polarity"],
}
SLOW_TASKS = 4


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return env


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _store_task_ids(store_path):
    """task_id of every committed record, in commit order."""
    uri = f"file:{store_path}?mode=ro"
    with sqlite3.connect(uri, uri=True) as conn:
        return [
            json.loads(text)["task_id"]
            for (text,) in conn.execute(
                "SELECT record FROM results ORDER BY seq"
            )
        ]


def _claim_statuses(store_path):
    uri = f"file:{store_path}?mode=ro"
    with sqlite3.connect(uri, uri=True) as conn:
        return dict(conn.execute(
            "SELECT status, COUNT(*) FROM tasks GROUP BY status"
        ))


# ---------------------------------------------------------------------------
# Metrics registry (pure unit tests, fresh Registry per test)
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_counter_labels_and_render(self):
        reg = Registry()
        c = reg.counter("x_total", "Things", ("kind",))
        c.labels(kind="a").inc()
        c.labels(kind="a").inc(2.5)
        c.labels(kind="b").inc()
        assert c.value_for(kind="a") == 3.5
        assert c.total() == 4.5
        text = reg.render()
        assert "# HELP x_total Things" in text
        assert "# TYPE x_total counter" in text
        assert 'x_total{kind="a"} 3.5' in text
        assert 'x_total{kind="b"} 1.0' in text

    def test_gauge_set_and_dec(self):
        reg = Registry()
        g = reg.gauge("depth", "Queue depth")
        g.set(7.0)
        g.dec(2.0)
        assert g.value == 5.0
        assert "# TYPE depth gauge" in reg.render()

    def test_histogram_buckets_are_cumulative(self):
        reg = Registry()
        h = reg.histogram("lat", "Latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 100.0):
            h.observe(value)
        text = reg.render()
        assert 'lat_bucket{le="0.1"} 1.0' in text
        assert 'lat_bucket{le="1.0"} 3.0' in text
        assert 'lat_bucket{le="10.0"} 3.0' in text
        assert 'lat_bucket{le="+Inf"} 4.0' in text
        assert "lat_count 4.0" in text
        assert "lat_sum 101.05" in text

    def test_histogram_single_observation_counts_once(self):
        # Regression: an observation must land in exactly one raw
        # bucket — cumulation happens at render time only.
        reg = Registry()
        h = reg.histogram("one", "One", buckets=(0.005, 0.01, 0.025))
        h.observe(0.007)
        text = reg.render()
        assert 'one_bucket{le="0.005"} 0.0' in text
        assert 'one_bucket{le="0.01"} 1.0' in text
        assert 'one_bucket{le="0.025"} 1.0' in text
        assert 'one_bucket{le="+Inf"} 1.0' in text

    def test_label_value_escaping(self):
        reg = Registry()
        c = reg.counter("esc_total", "Escapes", ("path",))
        c.labels(path='a"b\\c\nd').inc()
        assert r'esc_total{path="a\"b\\c\nd"} 1.0' in reg.render()

    def test_get_or_create_identity_and_conflict(self):
        reg = Registry()
        first = reg.counter("same_total", "Same", ("k",))
        assert reg.counter("same_total", "Same", ("k",)) is first
        with pytest.raises(ValueError):
            reg.gauge("same_total", "Same", ("k",))
        with pytest.raises(ValueError):
            reg.counter("same_total", "Same", ("other",))

    def test_cache_stats_shape(self):
        stats = cache_stats()
        assert set(stats) == {"device", "table", "compile_memo"}
        for counters in stats.values():
            assert {"hits", "misses"} <= set(counters)

    def test_cache_collector_renders_gauges(self):
        reg = Registry()
        install_cache_collectors(reg)
        text = reg.render()
        assert 'repro_cache_events{cache="device", event="hits"}' in text
        assert 'repro_cache_events{cache="compile_memo"' in text


# ---------------------------------------------------------------------------
# Job spec validation
# ---------------------------------------------------------------------------

class TestJobSpec:
    @pytest.mark.parametrize("payload, fragment", [
        ([], "JSON object"),
        ({"circuits": []}, "circuits"),
        ({"circuits": ["c17"], "fault_classes": []}, "fault_classes"),
        ({"circuits": ["c17"], "fault_classes": ["nope"]}, "nope"),
        ({"circuits": ["c17"], "workers": 0}, "workers"),
        ({"circuits": ["c17"], "timeout": -1}, "timeout"),
        ({"circuits": ["c17"], "bogus": 1}, "bogus"),
    ])
    def test_invalid_payloads(self, payload, fragment):
        with pytest.raises(JobError, match=fragment):
            JobSpec.from_payload(payload)

    def test_unknown_circuit_fails_at_expand(self):
        spec = JobSpec.from_payload({"circuits": ["no_such_circuit"]})
        with pytest.raises(JobError, match="no_such_circuit"):
            spec.expand()

    def test_defaults_round_trip(self):
        spec = JobSpec.from_payload({"circuits": ["c17"]})
        assert spec.engine == "compiled"
        assert spec.workers == 1
        assert JobSpec.from_payload(spec.to_payload()) == spec


# ---------------------------------------------------------------------------
# In-process service (manager + HTTP API)
# ---------------------------------------------------------------------------

@pytest.fixture
def service(tmp_path):
    manager = JobManager(tmp_path / "state", job_workers=2).start()
    server = create_server(manager, port=0)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05},
        daemon=True,
    )
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield manager, ServiceClient(f"http://{host}:{port}")
    finally:
        server.shutdown()
        thread.join(5.0)
        server.server_close()
        manager.stop(drain=False)


class TestServiceAPI:
    def test_end_to_end_job_over_http(self, service):
        manager, client = service
        assert client.healthz()["ok"] is True

        status = client.submit(SMALL_SPEC)
        assert status["state"] in ("queued", "running", "done")
        job_id = status["id"]
        status = client.wait(job_id)
        assert status["state"] == "done"
        assert status["counts"] == {
            "tasks": SMALL_TASKS, "ok": SMALL_TASKS,
            "failed": 0, "pending": 0,
        }

        page = client.results(job_id)
        assert page["complete"] and len(page["records"]) == SMALL_TASKS
        # Cursor paging: offset == next_offset yields no new rows.
        rest = client.results(job_id, offset=page["next_offset"])
        assert rest["records"] == [] and rest["complete"]

        assert any(j["id"] == job_id for j in client.jobs())

        text = client.metrics()
        assert "# TYPE repro_http_requests_total counter" in text
        assert "# TYPE repro_campaign_task_runtime_seconds histogram" in text
        done = client.metric_value("repro_service_jobs_total", state="done")
        assert done is not None and done >= 1.0
        ok = client.metric_value("repro_campaign_tasks_total", status="ok")
        assert ok is not None and ok >= SMALL_TASKS

    def test_error_statuses(self, service):
        _, client = service
        with pytest.raises(ServiceHTTPError) as err:
            client.status("feedbeefcafe")
        assert err.value.code == 404
        with pytest.raises(ServiceHTTPError) as err:
            client.submit({"circuits": []})
        assert err.value.code == 400
        with pytest.raises(ServiceHTTPError) as err:
            client.submit({"circuits": ["no_such_circuit"]})
        assert err.value.code == 400
        with pytest.raises(ServiceHTTPError) as err:
            client._json("GET", "/no/such/route")
        assert err.value.code == 404

    def test_metrics_content_type(self, service):
        _, client = service
        import urllib.request

        with urllib.request.urlopen(
            client.base_url + "/metrics", timeout=10
        ) as response:
            assert response.headers["Content-Type"] == METRICS_CONTENT_TYPE

    def test_concurrent_identical_grids_no_duplicate_rows(self, service):
        # Two clients race the same grid against the shared store: the
        # atomic claims must leave exactly one committed row per task.
        manager, client = service
        ids, errors = [], []

        def submit_and_wait():
            try:
                status = client.submit(SMALL_SPEC)
                ids.append(client.wait(status["id"])["state"])
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=submit_and_wait) for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120.0)
        assert not errors
        assert ids == ["done", "done"]
        task_ids = _store_task_ids(manager.store_path)
        assert len(task_ids) == SMALL_TASKS
        assert len(set(task_ids)) == SMALL_TASKS


class TestJobFailureModes:
    def test_cancel_mid_campaign_leaves_store_resumable(self, tmp_path):
        manager = JobManager(tmp_path / "state", job_workers=1).start()
        try:
            job_id = manager.submit(SLOW_SPEC)["id"]
            deadline = time.monotonic() + 60.0
            while manager.status(job_id)["counts"]["ok"] < 1:
                assert time.monotonic() < deadline, "no first record"
                time.sleep(0.05)
            manager.cancel(job_id)
            status = manager.wait(job_id)
            assert status["state"] == "cancelled"
            assert 0 < status["counts"]["ok"] < SLOW_TASKS

            # Store left resumable: clean audit, no claims held.
            with open_store(manager.store_path, "sqlite") as store:
                assert store.verify()["ok"]
            assert "claimed" not in _claim_statuses(manager.store_path)

            # Resubmitting the same grid computes only the remainder
            # and converges to a fully-ok campaign.
            rerun = manager.wait(manager.submit(SLOW_SPEC)["id"])
            assert rerun["state"] == "done"
            assert rerun["counts"]["ok"] == SLOW_TASKS
        finally:
            manager.stop(drain=False)

    def test_cancel_queued_job_without_workers(self, tmp_path):
        manager = JobManager(tmp_path / "state")  # never started
        job_id = manager.submit(SMALL_SPEC)["id"]
        status = manager.cancel(job_id)
        assert status["state"] == "cancelled"
        assert manager.status(job_id)["counts"]["pending"] == SMALL_TASKS

    def test_stop_requeues_running_job_and_restart_resumes(self, tmp_path):
        manager = JobManager(tmp_path / "state", job_workers=1).start()
        job_id = manager.submit(SLOW_SPEC)["id"]
        deadline = time.monotonic() + 60.0
        while manager.status(job_id)["counts"]["ok"] < 1:
            assert time.monotonic() < deadline, "no first record"
            time.sleep(0.05)
        manager.stop(drain=False)
        assert manager.status(job_id)["state"] == "queued"
        assert "claimed" not in _claim_statuses(manager.store_path)

        manager.start()
        try:
            status = manager.wait(job_id)
            assert status["state"] == "done"
            assert status["counts"]["ok"] == SLOW_TASKS
        finally:
            manager.stop(drain=False)

    def test_recover_requeues_jobs_from_disk(self, tmp_path):
        # Simulate a SIGKILLed manager: the job file says 'running'
        # but no process is working on it.
        first = JobManager(tmp_path / "state")
        job_id = first.submit(SMALL_SPEC)["id"]
        path = first.jobs_dir / f"{job_id}.json"
        payload = json.loads(path.read_text())
        payload["state"] = "running"
        path.write_text(json.dumps(payload))

        second = JobManager(tmp_path / "state", job_workers=1)
        assert second.recover() == [job_id]
        second.start()
        try:
            assert second.wait(job_id)["state"] == "done"
        finally:
            second.stop(drain=False)


# ---------------------------------------------------------------------------
# Real-process failure modes (serve subprocess, CLI SIGTERM)
# ---------------------------------------------------------------------------

def _start_server(state_dir, port):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(port), "--state-dir", str(state_dir)],
        env=_subprocess_env(),
        cwd=REPO,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_healthy(client, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if client.healthz().get("ok"):
                return
        except OSError:
            time.sleep(0.1)
    raise TimeoutError("service never became healthy")


@needs_posix
class TestProcessFailureModes:
    def test_sigkill_server_restart_converges_bit_identical(self, tmp_path):
        state_dir = tmp_path / "state"
        store_path = state_dir / "store.sqlite"

        port = _free_port()
        server = _start_server(state_dir, port)
        try:
            client = ServiceClient(f"http://127.0.0.1:{port}")
            _wait_healthy(client)
            job_id = client.submit(SLOW_SPEC)["id"]
            deadline = time.monotonic() + 60.0
            while client.status(job_id)["counts"]["ok"] < 1:
                assert time.monotonic() < deadline, "no first record"
                time.sleep(0.05)
        finally:
            server.kill()  # SIGKILL: no cleanup, claims left dangling
            server.wait(timeout=30.0)

        port = _free_port()
        server = _start_server(state_dir, port)
        try:
            client = ServiceClient(f"http://127.0.0.1:{port}")
            _wait_healthy(client)
            # recover() re-queued the persisted job; same id, same grid.
            status = client.wait(job_id, timeout=120.0)
            assert status["state"] == "done"
            assert status["counts"]["ok"] == SLOW_TASKS
        finally:
            server.send_signal(signal.SIGTERM)
            assert server.wait(timeout=30.0) == 0

        with open_store(store_path, "sqlite") as store:
            disturbed = store.latest()
        tasks = expand_grid(
            SLOW_SPEC["circuits"], SLOW_SPEC["fault_classes"], "compiled"
        )
        fresh_path = tmp_path / "undisturbed.sqlite"
        run_campaign(tasks, store=fresh_path, backend="sqlite")
        with open_store(fresh_path, "sqlite") as store:
            undisturbed = store.latest()
        assert stores_equal(
            [disturbed[t] for t in sorted(disturbed)],
            [undisturbed[t] for t in sorted(undisturbed)],
        )

    def test_cli_run_sigterm_releases_claims_and_resumes(self, tmp_path):
        store = tmp_path / "grid.sqlite"
        argv = [
            sys.executable, "-m", "repro", "run",
            "--circuits", *SLOW_SPEC["circuits"],
            "--fault-classes", *SLOW_SPEC["fault_classes"],
            "--backend", "sqlite", "--store", str(store), "--workers", "1",
        ]
        proc = subprocess.Popen(
            argv, env=_subprocess_env(), cwd=tmp_path,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60.0
            while True:
                assert time.monotonic() < deadline, "no first record"
                try:
                    if _store_task_ids(store):
                        break
                except sqlite3.OperationalError:
                    pass
                time.sleep(0.05)
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=60.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30.0)

        # Graceful path: SIGINT-style exit code, claims released,
        # partial progress committed.
        assert code == 130
        statuses = _claim_statuses(store)
        assert "claimed" not in statuses
        assert 0 < statuses.get("done", 0) < SLOW_TASKS

        # The same command again resumes to completion.
        done = subprocess.run(
            argv, env=_subprocess_env(), cwd=tmp_path,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        assert done.returncode == 0
        assert _claim_statuses(store) == {"done": SLOW_TASKS}


# ---------------------------------------------------------------------------
# CLI --json verbs
# ---------------------------------------------------------------------------

def _run_cli(*argv):
    result = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=_subprocess_env(), cwd=REPO,
        capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestCliJson:
    def test_campaign_list_json(self):
        payload = json.loads(_run_cli("campaign", "list", "--json"))
        names = [c["name"] for c in payload["circuits"]]
        assert "c17" in names and "alu8" in names
        assert "stuck_at" in payload["fault_classes"]
        assert set(payload["default_fault_classes"]) <= set(
            payload["fault_classes"]
        )

    def test_faults_census_json(self):
        payload = json.loads(
            _run_cli("faults", "census", "c17", "tmr_voter", "--json")
        )
        assert [block["circuit"] for block in payload] == [
            "c17", "tmr_voter"
        ]
        by_name = {
            u["universe"]: u for u in payload[1]["universes"]
        }
        # tmr_voter: one DP MAJ3 gate, 14 stuck-at faults, 8 collapsed
        # (the docs/FAULT_UNIVERSES.md worked example).
        assert by_name["stuck_at"]["faults"] == 14
        assert by_name["stuck_at"]["collapsed"] == 8

    def test_cache_stats_json(self):
        payload = json.loads(_run_cli("cache", "stats", "--json"))
        assert set(payload) == {"device", "table", "compile_memo"}
        assert all(
            isinstance(v, int)
            for stats in payload.values()
            for v in stats.values()
        )
