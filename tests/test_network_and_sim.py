"""Tests for gate-level networks, simulation and the bench format."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    alu_bit_slice,
    c17,
    equality_comparator,
    majority_voter,
    mux_tree,
    parity_tree,
    ripple_carry_adder,
)
from repro.logic import (
    Network,
    exhaustive_truth_table,
    parse_bench,
    simulate,
    simulate_outputs,
    vectors_differ,
    write_bench,
)
from repro.logic.eval import BINARY_FUNCS, eval_binary, eval_ternary
from repro.logic.values import X


class TestNetworkStructure:
    def test_build_and_validate(self):
        n = Network("t")
        n.add_input("a")
        n.add_input("b")
        n.add_gate("g1", "NAND2", ["a", "b"], "y")
        n.add_output("y")
        n.validate()
        assert n.depth() == 1
        assert n.stats()["gates"] == 1

    def test_rejects_double_driver(self):
        n = Network("t")
        n.add_input("a")
        n.add_gate("g1", "INV", ["a"], "y")
        with pytest.raises(ValueError):
            n.add_gate("g2", "INV", ["a"], "y")

    def test_rejects_driving_primary_input(self):
        n = Network("t")
        n.add_input("a")
        with pytest.raises(ValueError):
            n.add_gate("g1", "INV", ["a"], "a")

    def test_rejects_bad_arity(self):
        n = Network("t")
        n.add_input("a")
        with pytest.raises(ValueError):
            n.add_gate("g1", "NAND2", ["a"], "y")

    def test_rejects_unknown_type(self):
        n = Network("t")
        n.add_input("a")
        with pytest.raises(ValueError):
            n.add_gate("g1", "FROB", ["a"], "y")

    def test_detects_combinational_loop(self):
        n = Network("loop")
        n.add_input("a")
        n.add_gate("g1", "NAND2", ["a", "y2"], "y1")
        n.add_gate("g2", "INV", ["y1"], "y2")
        with pytest.raises(ValueError):
            n.validate()

    def test_missing_driver(self):
        n = Network("t")
        n.add_input("a")
        n.add_gate("g1", "NAND2", ["a", "ghost"], "y")
        n.add_output("y")
        with pytest.raises(ValueError):
            n.validate()

    def test_fanout_and_driver_queries(self):
        n = c17()
        assert n.driver_of("g1") is None
        assert n.driver_of("g22").name == "g_g22"
        assert len(n.fanout_of("g11")) == 2


class TestEvalFunctions:
    @pytest.mark.parametrize("gtype", sorted(BINARY_FUNCS))
    def test_ternary_agrees_with_binary(self, gtype):
        from repro.logic.network import GATE_ARITY

        arity = GATE_ARITY[gtype]
        for bits in itertools.product((0, 1), repeat=arity):
            assert eval_ternary(gtype, bits) == eval_binary(gtype, bits)

    def test_x_blocked_by_controlling(self):
        assert eval_ternary("NAND2", (0, X)) == 1
        assert eval_ternary("NOR2", (1, X)) == 0
        assert eval_ternary("MAJ3", (1, 1, X)) == 1
        assert eval_ternary("MAJ3", (0, 0, X)) == 0

    def test_x_propagates_otherwise(self):
        assert eval_ternary("XOR2", (1, X)) == X
        assert eval_ternary("MAJ3", (0, 1, X)) == X


class TestBenchmarks:
    def test_c17_truth_sample(self):
        n = c17()
        out = simulate_outputs(
            n, {"g1": 1, "g2": 0, "g3": 1, "g6": 1, "g7": 0}
        )
        # g10 = !(1&1)=0, g11 = !(1&1)=0, g16 = !(0&0)=1,
        # g19 = !(0&0)=1, g22 = !(0&1)=1, g23 = !(1&1)=0.
        assert out == (1, 0)

    def test_rca_adds_exhaustively(self):
        n = ripple_carry_adder(3)
        for a in range(8):
            for b in range(8):
                for cin in (0, 1):
                    vec = {f"a{k}": (a >> k) & 1 for k in range(3)}
                    vec.update(
                        {f"b{k}": (b >> k) & 1 for k in range(3)}
                    )
                    vec["cin"] = cin
                    out = simulate_outputs(n, vec)
                    total = sum(bit << k for k, bit in enumerate(out[:3]))
                    total += out[3] << 3
                    assert total == a + b + cin

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=40)
    def test_parity_property(self, value):
        n = parity_tree(8)
        vec = {f"d{k}": (value >> k) & 1 for k in range(8)}
        assert simulate_outputs(n, vec)[0] == bin(value).count("1") % 2

    def test_majority_voter(self):
        n = majority_voter()
        for bits in itertools.product((0, 1), repeat=3):
            vec = dict(zip(("m0", "m1", "m2"), bits))
            assert simulate_outputs(n, vec)[0] == (
                1 if sum(bits) >= 2 else 0
            )

    def test_equality_comparator(self):
        n = equality_comparator(3)
        for a in range(8):
            for b in range(8):
                vec = {f"a{k}": (a >> k) & 1 for k in range(3)}
                vec.update({f"b{k}": (b >> k) & 1 for k in range(3)})
                assert simulate_outputs(n, vec)[0] == int(a == b)

    def test_mux_tree(self):
        n = mux_tree(2)
        for data in range(16):
            for sel in range(4):
                vec = {f"d{k}": (data >> k) & 1 for k in range(4)}
                vec.update({f"s{k}": (sel >> k) & 1 for k in range(2)})
                assert simulate_outputs(n, vec)[0] == (data >> sel) & 1

    def test_alu_slice(self):
        n = alu_bit_slice()
        ops = {
            (0, 0): lambda a, b, c: a & b,
            (1, 0): lambda a, b, c: a | b,
            (0, 1): lambda a, b, c: a ^ b,
            (1, 1): lambda a, b, c: a ^ b ^ c,
        }
        for a, b, c, o0, o1 in itertools.product((0, 1), repeat=5):
            out = simulate_outputs(
                n, {"a": a, "b": b, "cin": c, "op0": o0, "op1": o1}
            )
            assert out[0] == ops[(o0, o1)](a, b, c)
            assert out[1] == (1 if a + b + c >= 2 else 0)

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            ripple_carry_adder(0)
        with pytest.raises(ValueError):
            parity_tree(1)
        with pytest.raises(KeyError):
            from repro.circuits import build_benchmark

            build_benchmark("c9000")


class TestSimulatorOverrides:
    def test_line_override(self):
        n = c17()
        vec = {"g1": 1, "g2": 1, "g3": 1, "g6": 1, "g7": 1}
        good = simulate_outputs(n, vec)
        bad = simulate_outputs(n, vec, line_overrides={"g11": 1})
        assert vectors_differ(good, bad)

    def test_pin_override_local(self):
        n = c17()
        vec = {"g1": 0, "g2": 1, "g3": 1, "g6": 1, "g7": 1}
        values = simulate(n, vec, pin_overrides={("g_g16", 0): 0})
        # Forcing g16's first input to 0 makes g16 = 1.
        assert values["g16"] == 1

    def test_missing_inputs_default_x(self):
        n = c17()
        out = simulate_outputs(n, {})
        assert all(v in (0, 1, X) for v in out)

    def test_vectors_differ_strict_x(self):
        assert not vectors_differ((X,), (1,))
        assert vectors_differ((0,), (1,))
        assert vectors_differ((X,), (1,), strict=False)


class TestBenchFormat:
    def test_roundtrip_c17(self):
        n = c17()
        text = write_bench(n)
        n2 = parse_bench(text, name="c17rt")
        assert exhaustive_truth_table(n) == exhaustive_truth_table(n2)

    def test_parse_aliases(self):
        n = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n"
        )
        assert n.gates["g_y"].gtype == "NAND2"

    def test_parse_arity_suffix(self):
        n = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = NAND(a, b, c)\n"
        )
        assert n.gates["g_y"].gtype == "NAND3"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_bench("INPUT(a)\nwhat is this line\n")

    def test_comments_ignored(self):
        n = parse_bench("# hello\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
        assert simulate_outputs(n, {"a": 0}) == (1,)

    def test_exhaustive_table_guard(self):
        n = Network("big")
        for k in range(21):
            n.add_input(f"i{k}")
        with pytest.raises(ValueError):
            exhaustive_truth_table(n)
