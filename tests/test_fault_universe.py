"""Cross-layer round-trip equivalence suite for :mod:`repro.faults`.

The refactor contract: the unified fault-universe API must be
*bit-identical* to the seed enumerators — same fault sets, same counts,
same campaign coverage numbers — on the reference circuits.  The
expected values below were captured from the pre-refactor enumerators
and campaign runners (seed commit) and are asserted against the new
registry-driven paths.
"""

import importlib

import pytest

from repro.campaign.registry import get_registry
from repro.campaign.tasks import run_fault_class
from repro.core.defects import (
    DefectMechanism,
    _site_sort_key,
    enumerate_defect_sites,
)
from repro.faults import (
    PolarityFault,
    PolarityFaultRecord,
    ReproDeprecationWarning,
    StuckAtFault,
    StuckOpenFault,
    get_universe,
    register_universe,
    universe_names,
)
from repro.faults.cli import format_census
from repro.faults.universe import FaultUniverse
from repro.gates.library import ALL_CELLS, INV, XOR2


def load(name):
    return get_registry().load(name)


#: Seed enumeration counts: circuit -> (stuck-at full, stuck-at
#: collapsed, polarity, stuck-open), captured from the pre-refactor
#: ``repro.atpg.faults`` enumerators.
SEED_COUNTS = {
    "c17": (46, 34, 0, 24),
    "rca8": (162, 162, 256, 128),
    "alu4": (430, 286, 160, 292),
}


class TestRegistry:
    def test_builtin_universes_registered(self):
        assert universe_names() == [
            "defect_mechanism",
            "device_defect",
            "circuit_fault",
            "polarity",
            "stuck_at",
            "stuck_open",
        ]

    def test_unknown_universe_is_a_helpful_keyerror(self):
        with pytest.raises(KeyError, match="unknown fault universe"):
            get_universe("bridging_or")

    def test_duplicate_registration_requires_replace(self):
        universe = get_universe("stuck_at")
        with pytest.raises(ValueError, match="already registered"):
            register_universe("stuck_at", universe)
        assert register_universe("stuck_at", universe, replace=True) is universe

    def test_plugin_universe_round_trip(self):
        class Empty(FaultUniverse):
            layer = "logic"
            description = "test-only"

            def enumerate(self, network):
                return []

        try:
            register_universe("test_empty", Empty())
            assert get_universe("test_empty").stats(load("c17")).n_faults == 0
            assert "test_empty" in universe_names()
        finally:
            from repro.faults.universe import _REGISTRY

            _REGISTRY.pop("test_empty", None)


class TestSeedEquivalence:
    """New-API enumeration == the seed enumerators, bit for bit."""

    @pytest.mark.parametrize("circuit", sorted(SEED_COUNTS))
    def test_counts_match_seed(self, circuit):
        network = load(circuit)
        sa_full, sa_collapsed, pol, sop = SEED_COUNTS[circuit]
        assert len(get_universe("stuck_at").enumerate(network)) == sa_full
        assert len(get_universe("stuck_at").collapse(network)) == sa_collapsed
        assert len(get_universe("polarity").enumerate(network)) == pol
        assert len(get_universe("stuck_open").enumerate(network)) == sop

    @pytest.mark.parametrize("circuit", sorted(SEED_COUNTS))
    def test_lists_match_legacy_import_path(self, circuit):
        network = load(circuit)
        with pytest.warns(ReproDeprecationWarning):
            from repro.atpg.faults import (
                polarity_faults,
                stuck_at_faults,
                stuck_open_faults,
            )
        assert stuck_at_faults(network) == get_universe(
            "stuck_at"
        ).collapse(network)
        assert stuck_at_faults(network, collapse=False) == get_universe(
            "stuck_at"
        ).enumerate(network)
        assert polarity_faults(network) == get_universe(
            "polarity"
        ).enumerate(network)
        assert stuck_open_faults(network) == get_universe(
            "stuck_open"
        ).enumerate(network)

    @pytest.mark.parametrize("circuit", sorted(SEED_COUNTS))
    def test_enumeration_is_deterministic(self, circuit):
        network = load(circuit)
        for name in universe_names():
            universe = get_universe(name)
            first = [universe.fault_name(f) for f in universe.enumerate(network)]
            second = [
                universe.fault_name(f) for f in universe.enumerate(network)
            ]
            assert first == second

    def test_collapse_is_a_sublist(self):
        network = load("alu4")
        universe = get_universe("stuck_at")
        full = [f.name for f in universe.enumerate(network)]
        collapsed = [f.name for f in universe.collapse(network)]
        assert set(collapsed) <= set(full)
        # Explicit-list collapsing prunes to the same set.
        pruned = universe.collapse(network, universe.enumerate(network))
        assert [f.name for f in pruned] == collapsed


#: Seed campaign metrics (pre-refactor ``run_fault_class``), pinned so
#: the rewired tasks keep producing bit-identical coverage/escape
#: numbers.  The heavy polarity/iddq cells are pinned on c17 (trivial)
#: and checked structurally elsewhere to keep the suite fast.
SEED_METRICS = {
    ("c17", "stuck_at"): {
        "n_faults": 34, "n_tests_generated": 9, "n_vectors": 7,
        "coverage": 1.0, "n_untestable": 0, "n_aborted": 0, "backtracks": 0,
    },
    ("c17", "polarity"): {
        "n_faults": 0, "coverage_by_stuck_at_set": None, "n_escapes": 0,
        "atpg_coverage": None, "n_voltage_tests": 0, "n_iddq_tests": 0,
        "n_untestable": 0,
    },
    ("c17", "iddq"): {
        "n_faults": 0, "n_vectors": 0, "coverage": None, "n_detected": 0,
        "n_uncovered": 0,
    },
    ("c17", "stuck_open"): {
        "n_faults": 24, "n_masked": 0, "n_tests": 11, "n_dropped": 13,
        "n_untestable": 0, "coverage": 1.0,
    },
    ("rca8", "stuck_at"): {
        "n_faults": 162, "n_tests_generated": 34, "n_vectors": 18,
        "coverage": 1.0, "n_untestable": 0, "n_aborted": 0, "backtracks": 8,
    },
    ("rca8", "stuck_open"): {
        "n_faults": 128, "n_masked": 128, "n_tests": 0, "n_dropped": 0,
        "n_untestable": 0, "coverage": 0.0,
    },
    ("alu4", "stuck_at"): {
        "n_faults": 286, "n_tests_generated": 48, "n_vectors": 42,
        "coverage": 0.986013986013986, "n_untestable": 4, "n_aborted": 0,
        "backtracks": 262,
    },
    ("alu4", "stuck_open"): {
        "n_faults": 292, "n_masked": 80, "n_tests": 64, "n_dropped": 144,
        "n_untestable": 4, "coverage": 0.7123287671232876,
    },
}


class TestCampaignEquivalence:
    @pytest.mark.parametrize(
        "circuit,fault_class", sorted(SEED_METRICS), ids="-".join
    )
    def test_metrics_bit_identical_to_seed(self, circuit, fault_class):
        assert run_fault_class(load(circuit), fault_class) == SEED_METRICS[
            (circuit, fault_class)
        ]


class TestCrossLayerLowering:
    """The paper's mapping, as universe hops: mechanism -> device ->
    circuit -> logic, landing exactly on the seed logic universes."""

    @pytest.mark.parametrize("circuit", sorted(SEED_COUNTS))
    def test_nanowire_breaks_image_onto_stuck_open(self, circuit):
        network = load(circuit)
        mechanism = get_universe("defect_mechanism")
        images = set()
        for fault in mechanism.enumerate(network):
            if fault.site.mechanism is DefectMechanism.NANOWIRE_BREAK:
                images.update(mechanism.image(network, fault))
        assert images == set(get_universe("stuck_open").enumerate(network))

    @pytest.mark.parametrize("circuit", sorted(SEED_COUNTS))
    def test_rail_bridges_image_onto_polarity_universe(self, circuit):
        network = load(circuit)
        mechanism = get_universe("defect_mechanism")
        images = set()
        for fault in mechanism.enumerate(network):
            if fault.site.mechanism is DefectMechanism.TERMINAL_BRIDGE:
                images.update(mechanism.image(network, fault))
        assert images == set(get_universe("polarity").enumerate(network))

    def test_break_site_lowers_through_every_layer(self):
        network = load("rca8")
        mechanism = get_universe("defect_mechanism")
        site = next(
            f
            for f in mechanism.enumerate(network)
            if f.site.mechanism is DefectMechanism.NANOWIRE_BREAK
        )
        (layer_name, device_fault), = mechanism.lower(network, site)
        assert layer_name == "device_defect"
        (layer_name, circuit_fault), = get_universe("device_defect").lower(
            network, device_fault
        )
        assert layer_name == "circuit_fault"
        image = get_universe("circuit_fault").image(network, circuit_fault)
        assert image == [
            StuckOpenFault(site.gate, site.gtype, site.site.transistor)
        ]

    def test_logic_fault_is_its_own_image(self):
        network = load("c17")
        universe = get_universe("stuck_at")
        fault = universe.enumerate(network)[0]
        assert universe.image(network, fault) == [fault]

    def test_circuit_universe_covers_every_descriptor_kind(self):
        network = load("rca8")
        kinds = {
            kind for kind, _ in get_universe("circuit_fault")
            .stats(network).by_kind
        }
        assert kinds == {
            "ChannelBreakFault",
            "DriveDriftFault",
            "FloatingPolarityGate",
            "GOSFault",
            "InterconnectBridgeFault",
            "StuckAtNType",
            "StuckAtPType",
            "TerminalBridgeFault",
        }

    def test_sp_rail_bridges_collapse_as_benign(self):
        # c17 is all-SP: half of its PG-rail bridges re-tie an already
        # tied terminal and must be pruned by mechanism collapsing.
        network = load("c17")
        mechanism = get_universe("defect_mechanism")
        stats = mechanism.stats(network)
        assert stats.n_faults - stats.n_collapsed == 24


class TestDefectSiteOrdering:
    def test_sites_follow_documented_sort_key(self):
        for cell in (INV, XOR2, ALL_CELLS["NAND3"]):
            sites = enumerate_defect_sites(cell)
            assert sites == sorted(sites, key=_site_sort_key)

    def test_mechanisms_grouped_in_table_i_order(self):
        ranks = [
            list(DefectMechanism).index(s.mechanism)
            for s in enumerate_defect_sites(XOR2)
        ]
        assert ranks == sorted(ranks)


class TestPolarityRecordDedup:
    def test_table_iii_rows_are_canonical_records(self):
        from repro.core.test_algorithms import polarity_fault_table

        rows = polarity_fault_table(XOR2)
        assert all(isinstance(r, PolarityFaultRecord) for r in rows)
        assert rows[0].fault_type == "stuck-at n-type"
        assert rows[0].kind == "n"

    def test_record_materialises_the_logic_fault(self):
        record = PolarityFaultRecord(
            transistor="t1",
            kind="p",
            detecting_vector=(1, 1),
            leakage_detect=True,
            output_detect=False,
        )
        assert record.fault("g3", "XOR2") == PolarityFault(
            "g3", "XOR2", "t1", "p"
        )

    def test_old_row_name_is_a_warning_shim(self):
        module = importlib.import_module("repro.core.test_algorithms")
        with pytest.warns(ReproDeprecationWarning, match="PolarityFaultRow"):
            shimmed = module.PolarityFaultRow
        assert shimmed is PolarityFaultRecord


class TestDeprecationShims:
    def test_atpg_faults_names_warn_and_alias(self):
        module = importlib.import_module("repro.atpg.faults")
        for name, canonical in (
            ("StuckAtFault", StuckAtFault),
            ("PolarityFault", PolarityFault),
            ("StuckOpenFault", StuckOpenFault),
        ):
            with pytest.warns(ReproDeprecationWarning, match=name):
                assert getattr(module, name) is canonical

    def test_unknown_shim_attribute_raises(self):
        module = importlib.import_module("repro.atpg.faults")
        with pytest.raises(AttributeError):
            module.no_such_fault_kind

    def test_package_reexports_stay_silent(self, recwarn):
        from repro.atpg import stuck_at_faults  # noqa: F401 (canonical)
        from repro.core import PolarityFaultRow  # noqa: F401 (canonical)

        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]


class TestCensusCli:
    def test_census_matches_checked_in_golden(self, tmp_path):
        import pathlib

        golden = (
            pathlib.Path(__file__).parent
            / "golden" / "faults_census_smoke.txt"
        ).read_text()
        rendered = (
            "\n\n".join(format_census(c) for c in ("c17", "rca8")) + "\n"
        )
        assert rendered == golden

    def test_cli_entry_points(self, capsys):
        from repro.campaign.cli import main

        assert main(["faults", "list"]) == 0
        assert "defect_mechanism" in capsys.readouterr().out
        assert main(["faults", "census", "tmr_voter",
                     "--universes", "polarity"]) == 0
        out = capsys.readouterr().out
        assert "tmr_voter" in out and "sa-n-type:4" in out

    def test_cli_doctests(self):
        import doctest

        import repro.faults.cli as cli_module

        result = doctest.testmod(cli_module, verbose=False)
        assert result.attempted > 0 and result.failed == 0


class TestBatchedSpiceScreen:
    def test_screen_runs_over_universe_subset(self):
        from repro.core.detection import screen_cell_faults
        from repro.core.fault_models import (
            ChannelBreakFault,
            InterconnectBridgeFault,
            StuckAtNType,
        )

        reports = screen_cell_faults(
            XOR2,
            faults=[
                StuckAtNType("t1"),
                ChannelBreakFault("t3"),
                InterconnectBridgeFault("a", "out"),
            ],
            fanout=2,
        )
        assert len(reports) == 3
        # Table III row: stuck-at n-type on t1 is IDDQ-only at (0, 0).
        assert reports[0].iddq_detectable
        assert (0, 0) in reports[0].iddq_vectors
        # DP channel breaks are functionally masked (Section V-C).
        assert not reports[1].output_detectable
        # An input-output short on XOR2 corrupts some vector.
        assert reports[2].detected

    def test_full_inv_universe_screen(self):
        from repro.core.detection import screen_cell_faults
        from repro.faults import circuit_faults_for_cell

        faults = circuit_faults_for_cell(INV)
        reports = screen_cell_faults(INV, fanout=1)
        assert len(reports) == len(faults)
        by_desc = {r.fault_description: r for r in reports}
        # The SP inverter hides nothing: a full channel break on the
        # pull-up is output-detectable.
        break_report = next(
            r for d, r in by_desc.items() if "channel break on t1" in d
        )
        assert break_report.output_detectable
