"""Tests for multi-valued logic and the D-calculus."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.values import (
    D,
    DBAR,
    D_ONE,
    D_X,
    D_ZERO,
    DValue,
    ONE,
    X,
    Z,
    ZERO,
    d_and,
    d_not,
    d_or,
    d_xor,
    from_ternary,
    t_and,
    t_not,
    t_or,
    t_xor,
    ternary_name,
)

ternary = st.sampled_from([ZERO, ONE, X])


class TestTernary:
    def test_not_truth(self):
        assert t_not(ZERO) == ONE
        assert t_not(ONE) == ZERO
        assert t_not(X) == X
        assert t_not(Z) == X

    def test_and_controlling(self):
        assert t_and(ZERO, X) == ZERO
        assert t_and(X, ZERO) == ZERO
        assert t_and(ONE, X) == X
        assert t_and(ONE, ONE) == ONE

    def test_or_controlling(self):
        assert t_or(ONE, X) == ONE
        assert t_or(ZERO, X) == X
        assert t_or(ZERO, ZERO) == ZERO

    def test_xor_x_propagates(self):
        assert t_xor(X, ONE) == X
        assert t_xor(ONE, ZERO) == ONE
        assert t_xor(ONE, ONE) == ZERO

    @given(ternary, ternary)
    @settings(max_examples=30)
    def test_de_morgan(self, a, b):
        assert t_not(t_and(a, b)) == t_or(t_not(a), t_not(b))

    @given(ternary, ternary)
    @settings(max_examples=30)
    def test_commutativity(self, a, b):
        assert t_and(a, b) == t_and(b, a)
        assert t_or(a, b) == t_or(b, a)
        assert t_xor(a, b) == t_xor(b, a)

    def test_names(self):
        assert ternary_name(ZERO) == "0"
        assert ternary_name(Z) == "Z"
        with pytest.raises(ValueError):
            ternary_name(42)


class TestDValue:
    def test_constants(self):
        assert D.name == "D"
        assert DBAR.name == "D'"
        assert D_ZERO.name == "0"
        assert D_ONE.name == "1"
        assert D_X.name == "X"

    def test_fault_effect_flags(self):
        assert D.is_fault_effect
        assert DBAR.is_fault_effect
        assert not D_ONE.is_fault_effect
        assert not D_X.is_fault_effect

    def test_validation(self):
        with pytest.raises(ValueError):
            DValue(3, 0)

    def test_from_ternary(self):
        assert from_ternary(ONE) == D_ONE
        assert from_ternary(X) == D_X
        assert from_ternary(Z) == D_X

    def test_d_algebra_basics(self):
        # D AND 1 = D; D AND 0 = 0; D OR D' covers both machines.
        assert d_and(D, D_ONE) == D
        assert d_and(D, D_ZERO) == D_ZERO
        assert d_not(D) == DBAR
        assert d_or(D, DBAR) == D_ONE
        assert d_and(D, DBAR) == D_ZERO
        assert d_xor(D, D) == D_ZERO
        assert d_xor(D, DBAR) == D_ONE

    @given(ternary, ternary, ternary, ternary)
    @settings(max_examples=40)
    def test_componentwise_consistency(self, g1, f1, g2, f2):
        """D-calculus ops are exactly per-component ternary ops."""
        a, b = DValue(g1, f1), DValue(g2, f2)
        assert d_and(a, b) == DValue(t_and(g1, g2), t_and(f1, f2))
        assert d_or(a, b) == DValue(t_or(g1, g2), t_or(f1, f2))
        assert d_xor(a, b) == DValue(t_xor(g1, g2), t_xor(f1, f2))
