"""Fault-injection chaos harness for the campaign orchestrator.

The differential discipline of ``tests/test_multiword_engine.py``
applied to the execution layer itself: a campaign subjected to scripted
worker SIGKILLs, native-style hangs (soft timeout disarmed), transient
and permanent exceptions, engine failures and mid-write store
truncation must

* always complete with one final record per cell (never wedge, never
  crash the parent),
* converge — up to the volatile ``runtime_s``/``attempt``/``failures``
  fields — to the byte-identical store of an undisturbed single-worker
  run, and
* quarantine cells that keep killing workers as ``poisoned`` after a
  bounded number of respawns, leaving them resumable.

Set ``REPRO_CHAOS_STORE_DIR`` to persist the stores the scenarios
write (the CI ``chaos-smoke`` job uploads them as artifacts).
"""

import json
import multiprocessing
import os
import threading
import time
from pathlib import Path

import pytest

from repro.campaign import chaos as chaos_module
from repro.campaign import runner as runner_module
from repro.campaign.backends import BACKENDS, open_store
from repro.campaign.chaos import (
    ChaosEngineError,
    ChaosPolicy,
    ChaosTransientError,
    StorageChaos,
    hold_sqlite_write_lock,
    tear_tail,
)
from repro.campaign.tables import coverage_table
from repro.campaign.runner import (
    FALLBACK_CHAINS,
    RetryPolicy,
    TaskSpec,
    execute_task,
    expand_grid,
    run_campaign,
    run_task_with_retries,
)
from repro.campaign.store import ResultStore, stores_equal
from repro.campaign.tasks import TASK_RUNNERS

GRID_CIRCUITS = ("c17", "tmr_voter")
GRID_CLASSES = ("stuck_at", "polarity")

KILL = "c17/stuck_at/compiled"
HANG = "tmr_voter/stuck_at/compiled"
FLAKY = "c17/polarity/compiled"

#: Tight backoff/watchdog so every scenario runs in a couple seconds.
FAST = RetryPolicy(backoff_base=0.01, backoff_max=0.05, watchdog_grace=0.3)

needs_posix = pytest.mark.skipif(
    os.name != "posix", reason="needs POSIX kill/fork semantics"
)
needs_fork = pytest.mark.skipif(
    multiprocessing.get_context().get_start_method() != "fork",
    reason="runtime-registered task runners reach workers only via fork",
)


def _chaos_backends() -> tuple[str, ...]:
    """Backends the storage-chaos matrix covers; ``REPRO_CHAOS_BACKEND``
    (the CI matrix variable) restricts a job to one of them."""
    only = os.environ.get("REPRO_CHAOS_BACKEND")
    return (only,) if only in BACKENDS else tuple(sorted(BACKENDS))


@pytest.fixture(scope="module")
def undisturbed():
    """The oracle: an uninterrupted inline run of the chaos grid."""
    result = run_campaign(expand_grid(GRID_CIRCUITS, GRID_CLASSES))
    assert all(r["status"] == "ok" for r in result.records)
    return result.records


def _fresh_store_path(tmp_path, node_name, backend="jsonl") -> Path:
    """Store path for a scenario; lands in ``REPRO_CHAOS_STORE_DIR``
    when set so CI can upload the surviving stores as artifacts."""
    base = os.environ.get("REPRO_CHAOS_STORE_DIR")
    directory = Path(base) if base else tmp_path
    directory.mkdir(parents=True, exist_ok=True)
    suffix = "sqlite" if backend == "sqlite" else "jsonl"
    path = directory / f"{node_name}.{suffix}"
    # Stale stores (and sqlite WAL sidecars) would satisfy resume.
    for stale in (path, *path.parent.glob(f"{path.name}-*")):
        stale.unlink(missing_ok=True)
    return path


@pytest.fixture
def chaos_store(tmp_path, request):
    """JSONL store path for a scenario (see :func:`_fresh_store_path`)."""
    return _fresh_store_path(tmp_path, request.node.name)


@pytest.fixture
def chaos_store_factory(tmp_path, request):
    """Per-backend store paths for the storage-chaos matrix."""
    return lambda backend: _fresh_store_path(
        tmp_path, request.node.name, backend
    )


def _record(records, task_id):
    return next(r for r in records if r["task_id"] == task_id)


class TestChaosPolicy:
    def test_script_indexing_and_default_ok(self):
        policy = ChaosPolicy({KILL: ("kill", "ok")})
        assert policy.fault(KILL, 1) == "kill"
        assert policy.fault(KILL, 2) == "ok"
        assert policy.fault(KILL, 3) == "ok"      # past the script
        assert policy.fault("other/task/id", 1) == "ok"

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos fault"):
            ChaosPolicy({KILL: ("segfault",)})

    def test_policy_is_picklable(self):
        import pickle

        policy = ChaosPolicy({KILL: ("kill", "ok")})
        clone = pickle.loads(pickle.dumps(policy))
        assert clone.fault(KILL, 1) == "kill"


class TestInjectedExceptions:
    """Inline (workers=1) chaos: the exception-shaped faults."""

    def test_transient_then_ok_retries_with_provenance(self, undisturbed):
        grid = expand_grid(GRID_CIRCUITS, GRID_CLASSES)
        result = run_campaign(
            grid, chaos=ChaosPolicy({FLAKY: ("transient", "ok")}),
            policy=FAST,
        )
        record = _record(result.records, FLAKY)
        assert record["status"] == "ok"
        assert record["attempt"] == 2
        assert record["failures"][0]["kind"] == "transient"
        assert "injected transient" in record["failures"][0]["error"]
        assert stores_equal(result.records, undisturbed)

    def test_transient_exhausts_attempt_budget(self):
        record = run_task_with_retries(
            TaskSpec("c17", "stuck_at"),
            policy=RetryPolicy(max_attempts=2, backoff_base=0.0),
            chaos=ChaosPolicy({KILL: ("transient", "transient", "ok")}),
        )
        assert record["status"] == "error"
        assert record["transient"] is True
        assert record["attempt"] == 2
        assert [f["kind"] for f in record["failures"]] == ["transient"]

    def test_permanent_error_fails_fast(self, undisturbed):
        grid = expand_grid(GRID_CIRCUITS, GRID_CLASSES)
        result = run_campaign(
            grid, chaos=ChaosPolicy({KILL: ("permanent", "ok")}),
            policy=FAST,
        )
        record = _record(result.records, KILL)
        assert record["status"] == "error"
        assert record["attempt"] == 1          # no retry burned
        assert record["transient"] is False
        assert "injected permanent" in record["error"]
        assert result.n_failed == 1

    def test_chaos_exception_classification(self):
        assert runner_module.classify_transient(ChaosTransientError("x"))
        assert not runner_module.classify_transient(ChaosEngineError("x"))
        assert runner_module.classify_transient(MemoryError())
        assert runner_module.classify_transient(OSError())
        assert not runner_module.classify_transient(ValueError())


class TestEngineDegradation:
    def test_fallback_chains_end_in_legacy(self):
        assert FALLBACK_CHAINS["auto"] == ("auto", "compiled", "legacy")
        assert FALLBACK_CHAINS["multiword"] == (
            "multiword", "compiled", "legacy"
        )
        assert FALLBACK_CHAINS["compiled"] == ("compiled", "legacy")
        assert FALLBACK_CHAINS["legacy"] == ("legacy",)

    def test_engine_failure_degrades_to_legacy(self, undisturbed):
        record = execute_task(
            TaskSpec("c17", "stuck_at"),
            chaos=ChaosPolicy({KILL: ("engine",)}),
        )
        assert record["status"] == "ok"
        assert record["engine"] == "compiled"        # requested (task id key)
        assert record["engine_used"] == "legacy"     # what actually ran
        assert record["failures"][0]["kind"] == "engine"
        assert record["failures"][0]["engine"] == "compiled"
        # The engines are bit-identical, so degradation is invisible in
        # the metrics — the whole point of keeping the legacy oracle.
        assert record["metrics"] == _record(undisturbed, KILL)["metrics"]

    def test_every_engine_failing_is_a_permanent_error(self):
        def broken(_network, _engine):
            raise ValueError("all engines broken")

        TASK_RUNNERS["broken"] = broken
        try:
            record = execute_task(TaskSpec("c17", "broken"))
            assert record["status"] == "error"
            assert record["transient"] is False
            # Both fallback engines were tried before giving up.
            assert [f["engine"] for f in record["failures"]] == ["compiled"]
            assert "all engines broken" in record["error"]
        finally:
            del TASK_RUNNERS["broken"]


@needs_posix
class TestSupervisedChaos:
    """Supervised (workers>1) chaos: deaths, hangs and quarantine."""

    def test_sigkilled_worker_is_respawned_and_cell_retried(
        self, chaos_store, undisturbed
    ):
        grid = expand_grid(GRID_CIRCUITS, GRID_CLASSES)
        result = run_campaign(
            grid, store=chaos_store, workers=2,
            chaos=ChaosPolicy({KILL: ("kill", "ok")}), policy=FAST,
        )
        record = _record(result.records, KILL)
        assert record["status"] == "ok"
        assert record["attempt"] == 2
        assert record["failures"][0]["kind"] == "crash"
        assert stores_equal(result.records, undisturbed)
        assert stores_equal(
            list(ResultStore(chaos_store).latest().values()), undisturbed
        )

    def test_hung_cell_is_killed_by_watchdog_and_retried(
        self, chaos_store, undisturbed
    ):
        grid = expand_grid(GRID_CIRCUITS, GRID_CLASSES)
        start = time.perf_counter()
        result = run_campaign(
            grid, store=chaos_store, workers=2, timeout=1.0,
            chaos=ChaosPolicy({HANG: ("hang", "ok")}), policy=FAST,
        )
        elapsed = time.perf_counter() - start
        record = _record(result.records, HANG)
        assert record["status"] == "ok"
        assert record["failures"][0]["kind"] == "hang"
        assert "watchdog" in record["failures"][0]["error"]
        assert elapsed < 20.0                 # reclaimed, not wedged
        assert stores_equal(result.records, undisturbed)

    def test_acceptance_kill_hang_transient_converges(
        self, chaos_store, undisturbed
    ):
        """ISSUE acceptance: SIGKILL + hung cell + transient-then-ok in
        one campaign still yields the undisturbed store."""
        grid = expand_grid(GRID_CIRCUITS, GRID_CLASSES)
        result = run_campaign(
            grid, store=chaos_store, workers=2, timeout=1.0,
            chaos=ChaosPolicy({
                KILL: ("kill", "ok"),
                HANG: ("hang", "ok"),
                FLAKY: ("transient", "ok"),
            }),
            policy=FAST,
        )
        assert result.n_failed == 0
        assert stores_equal(result.records, undisturbed)
        stored = list(ResultStore(chaos_store).latest().values())
        assert stores_equal(stored, undisturbed)
        # The store file itself is clean one-record-per-line JSONL.
        lines = chaos_store.read_text().splitlines()
        assert all(json.loads(line) for line in lines)

    def test_poison_task_is_quarantined_not_looped(
        self, chaos_store, undisturbed
    ):
        grid = expand_grid(GRID_CIRCUITS, GRID_CLASSES)
        policy = RetryPolicy(
            max_crash_attempts=2, backoff_base=0.01, backoff_max=0.05,
            watchdog_grace=0.3,
        )
        result = run_campaign(
            grid, store=chaos_store, workers=2,
            chaos=ChaosPolicy({KILL: ("kill",) * 6}), policy=policy,
        )
        record = _record(result.records, KILL)
        assert record["status"] == "poisoned"
        assert "quarantined" in record["error"]
        assert [f["kind"] for f in record["failures"]] == ["crash", "crash"]
        assert result.n_failed == 1
        # The other cells finished despite the poison task.
        assert sum(1 for r in result.records if r["status"] == "ok") == 3

        # Poisoned records stay resumable: a healthy rerun recomputes
        # exactly the quarantined cell and converges to the oracle.
        rerun = run_campaign(grid, store=chaos_store, policy=FAST)
        assert rerun.n_skipped == 3
        assert rerun.n_run == 1
        assert stores_equal(
            list(ResultStore(chaos_store).latest().values()), undisturbed
        )

    def test_clean_supervised_run_matches_inline(
        self, chaos_store, undisturbed
    ):
        grid = expand_grid(GRID_CIRCUITS, GRID_CLASSES)
        result = run_campaign(grid, store=chaos_store, workers=3)
        assert stores_equal(result.records, undisturbed)


@needs_posix
@needs_fork
class TestWatchdogWithoutSigalrm:
    """The timeout path on platforms without ``SIGALRM``: the soft
    in-worker timer is unavailable, so the supervisor's external
    watchdog is the only enforcement (previously untested)."""

    def test_watchdog_bounds_cell_without_soft_timeout(
        self, monkeypatch, chaos_store
    ):
        monkeypatch.setattr(runner_module, "_HAS_SIGALRM", False)

        def sleepy(_network, _engine):
            time.sleep(30.0)
            return {}

        TASK_RUNNERS["sleepy"] = sleepy
        try:
            grid = [TaskSpec("c17", "sleepy"), TaskSpec("c17", "stuck_at")]
            policy = RetryPolicy(
                max_crash_attempts=1, backoff_base=0.01,
                watchdog_grace=0.3,
            )
            start = time.perf_counter()
            result = run_campaign(
                grid, store=chaos_store, workers=2, timeout=0.5,
                policy=policy,
            )
            elapsed = time.perf_counter() - start
            record = _record(result.records, "c17/sleepy/compiled")
            assert record["status"] == "timeout"
            assert "watchdog" in record["error"]
            assert _record(result.records, KILL)["status"] == "ok"
            assert elapsed < 20.0
            assert result.n_failed == 1
        finally:
            del TASK_RUNNERS["sleepy"]

    def test_execute_task_runs_unbounded_without_alarm(self, monkeypatch):
        monkeypatch.setattr(runner_module, "_HAS_SIGALRM", False)
        record = execute_task(TaskSpec("c17", "stuck_at"), timeout=0.000001)
        # No soft timer available: the cell runs to completion instead
        # of being interrupted (the watchdog covers it when supervised).
        assert record["status"] == "ok"


class TestStoreChaos:
    def test_mid_write_truncation_heals_and_resumes(
        self, chaos_store, undisturbed
    ):
        grid = expand_grid(GRID_CIRCUITS, GRID_CLASSES)
        run_campaign(grid, store=chaos_store)
        tear_tail(chaos_store)
        assert not chaos_store.read_bytes().endswith(b"\n")  # torn

        result = run_campaign(grid, store=chaos_store, policy=FAST)
        assert result.n_skipped == 3
        assert result.n_run == 1              # exactly the torn record
        assert stores_equal(
            list(ResultStore(chaos_store).latest().values()), undisturbed
        )
        # Healing kept the file one-record-per-line.
        for line in chaos_store.read_text().splitlines():
            json.loads(line)

    def test_tear_tail_requires_records(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_bytes(b"")
        with pytest.raises(ValueError, match="nothing to tear"):
            tear_tail(empty)


def _claim_kill_child(store_path):
    """Runner killed by SIGKILL *between claim and commit* of the
    first grid cell: it claims, then dies before computing anything."""
    run_campaign(
        expand_grid(GRID_CIRCUITS, GRID_CLASSES),
        store=Path(store_path), backend="sqlite", policy=FAST,
        chaos=ChaosPolicy({}, storage=StorageChaos(
            {"claim": {KILL: ("kill",)}}
        )),
    )


def _midtxn_kill_child(store_path):
    """Runner killed mid-append-transaction: the result row INSERT has
    executed but the commit never happens — WAL recovery must erase
    it."""
    run_campaign(
        expand_grid(GRID_CIRCUITS, GRID_CLASSES),
        store=Path(store_path), backend="sqlite", policy=FAST,
        chaos=ChaosPolicy({}, storage=StorageChaos(
            {"append": {FLAKY: ("kill",)}}
        )),
    )


@pytest.mark.parametrize("backend", _chaos_backends())
class TestStorageChaosMatrix:
    """Storage faults the CI chaos matrix runs per backend."""

    def test_enospc_disturbed_campaign_converges(
        self, chaos_store_factory, undisturbed, backend
    ):
        """Two injected out-of-space failures on one cell's append are
        absorbed by the backend's bounded-backoff retry."""
        store_path = chaos_store_factory(backend)
        grid = expand_grid(GRID_CIRCUITS, GRID_CLASSES)
        result = run_campaign(
            grid, store=store_path, backend=backend, policy=FAST,
            chaos=ChaosPolicy({}, storage=StorageChaos(
                {"append": {KILL: ("enospc", "enospc")}}
            )),
        )
        assert result.n_failed == 0
        assert stores_equal(result.records, undisturbed)
        with open_store(store_path, backend, lock=False) as store:
            assert stores_equal(
                list(store.latest().values()), undisturbed
            )
            assert store.verify(repair=True)["ok"] is True

    def test_exec_and_storage_chaos_combined(
        self, chaos_store_factory, undisturbed, backend
    ):
        """Worker-layer faults (transient error) and storage-layer
        faults (enospc) in one campaign still converge."""
        store_path = chaos_store_factory(backend)
        grid = expand_grid(GRID_CIRCUITS, GRID_CLASSES)
        result = run_campaign(
            grid, store=store_path, backend=backend, policy=FAST,
            chaos=ChaosPolicy(
                {FLAKY: ("transient", "ok")},
                storage=StorageChaos({"append": {HANG: ("enospc",)}}),
            ),
        )
        assert result.n_failed == 0
        assert stores_equal(result.records, undisturbed)


@needs_posix
@needs_fork
@pytest.mark.skipif(
    os.environ.get("REPRO_CHAOS_BACKEND") == "jsonl",
    reason="sqlite-specific acceptance scenario",
)
class TestSqliteStorageAcceptance:
    """ISSUE acceptance: kill-between-claim-and-commit, mid-transaction
    kill and sustained lock contention on one sqlite store; the
    campaign resumes and renders paper tables *bit-identical* to an
    undisturbed 1-worker JSONL run."""

    def test_chaos_disturbed_sqlite_matches_undisturbed_jsonl(
        self, tmp_path, chaos_store_factory
    ):
        context = multiprocessing.get_context("fork")
        store_path = chaos_store_factory("sqlite")
        grid = expand_grid(GRID_CIRCUITS, GRID_CLASSES)

        # Undisturbed oracle: 1 worker, JSONL store.
        oracle_path = tmp_path / "oracle.jsonl"
        oracle = run_campaign(grid, store=oracle_path)
        assert oracle.n_failed == 0

        # Stage 1: runner SIGKILLed between claim and commit.
        proc = context.Process(
            target=_claim_kill_child, args=(str(store_path),)
        )
        proc.start(); proc.join(120)
        assert proc.exitcode is not None and proc.exitcode < 0
        with open_store(store_path, lock=False) as store:
            assert store.load() == []           # claimed, never committed
            # Opening reclaimed the dead runner's claim: every cell is
            # pending again, nothing stuck in 'claimed'.
            assert store.verify()["tasks"] == {"pending": len(grid)}

        # Stage 2: runner SIGKILLed mid-append-transaction.
        proc = context.Process(
            target=_midtxn_kill_child, args=(str(store_path),)
        )
        proc.start(); proc.join(120)
        assert proc.exitcode is not None and proc.exitcode < 0
        with open_store(store_path, lock=False) as store:
            rows = store.load()
            # WAL recovery erased the uncommitted row; the rows that
            # did commit before the kill are intact and complete.
            assert FLAKY not in {r["task_id"] for r in rows}
            assert all(r["status"] == "ok" for r in rows)

        # Stage 3: finish under sustained write-lock contention.
        ready = threading.Event()
        holder = threading.Thread(
            target=hold_sqlite_write_lock, args=(store_path, 0.6, ready)
        )
        holder.start()
        ready.wait(10)
        try:
            result = run_campaign(
                grid, store=store_path, backend="sqlite", policy=FAST
            )
        finally:
            holder.join()
        assert result.n_failed == 0

        # Bit-identical convergence: same records up to volatile
        # fields, and the rendered paper table is the same string.
        with open_store(store_path, lock=False) as store:
            stored = list(store.latest().values())
            rows = store.load()
            assert store.verify(repair=True)["ok"] is True
        assert stores_equal(stored, oracle.records)
        assert coverage_table(sorted(stored, key=lambda r: r["task_id"])) \
            == coverage_table(
                sorted(oracle.records, key=lambda r: r["task_id"])
            )
        # Zero duplicated, zero lost: exactly one row per grid cell
        # across the whole disturbed history.
        assert sorted(r["task_id"] for r in rows) == sorted(
            t.task_id for t in grid
        )


class TestBackoffSchedule:
    def test_exponential_backoff_capped(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.35
        )
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.35)   # capped
        assert policy.backoff(9) == pytest.approx(0.35)

    def test_inline_retry_sleeps_backoff(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(
            runner_module.time, "sleep", lambda s: sleeps.append(s)
        )
        record = run_task_with_retries(
            TaskSpec("c17", "stuck_at"),
            policy=RetryPolicy(
                max_attempts=3, backoff_base=0.1, backoff_factor=2.0,
                backoff_max=10.0,
            ),
            chaos=ChaosPolicy({KILL: ("transient", "transient", "ok")}),
        )
        assert record["status"] == "ok"
        assert sleeps == [pytest.approx(0.1), pytest.approx(0.2)]
