"""Tests for the analysis layer (reporting, sweeps, classification)."""

import math

import pytest

from repro.analysis.report import (
    ascii_table,
    format_quantity,
    format_series,
)
from repro.core.classify import (
    ApplicableModel,
    BehaviourPoint,
    classify_point,
    classify_sweep,
)


class TestReport:
    def test_ascii_table_alignment(self):
        text = ascii_table(("a", "bb"), [("1", "2"), ("333", "4")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len({len(line) for line in lines}) == 1  # all same width

    def test_format_quantity_prefixes(self):
        assert format_quantity(4.5e-6, "A") == "4.5 uA"
        assert format_quantity(3.2e-11, "A") == "32 pA"
        assert format_quantity(0.0, "V") == "0 V"
        assert format_quantity(float("inf")) == "inf"
        assert format_quantity(float("nan")) == "n/a"

    def test_format_series_handles_inf(self):
        text = format_series("x", "y", [0.0, 1.0], [1.0, float("inf")])
        assert "inf" in text


class TestClassification:
    def test_nominal_point_no_models(self):
        point = BehaviourPoint(True, 1.0, 1.0)
        assert classify_point(point) == set()

    def test_delay_fault_band(self):
        point = BehaviourPoint(True, 2.0, 1.2)
        assert classify_point(point) == {ApplicableModel.DELAY}

    def test_sof_band(self):
        point = BehaviourPoint(False, float("inf"), 1.0)
        assert classify_point(point) == {ApplicableModel.SOF}

    def test_stuck_on_band(self):
        point = BehaviourPoint(True, 1.0, 1e5)
        assert classify_point(point) == {ApplicableModel.STUCK_ON}

    def test_combined_bands(self):
        point = BehaviourPoint(True, 3.0, 1e3)
        assert classify_point(point) == {
            ApplicableModel.DELAY,
            ApplicableModel.STUCK_ON,
        }

    def test_sweep_functional_limit(self):
        vcuts = [0.0, 0.3, 0.6, 0.9]
        points = [
            BehaviourPoint(True, 1.0, 1.0),
            BehaviourPoint(True, 2.0, 2.0),
            BehaviourPoint(True, 8.0, 20.0),
            BehaviourPoint(False, float("inf"), 100.0),
        ]
        result = classify_sweep(vcuts, points)
        assert result.functional_limit == 0.9
        assert ApplicableModel.SOF in result.summary
        assert ApplicableModel.DELAY in result.summary
        assert "testable via" in result.describe()

    def test_sweep_never_failing(self):
        vcuts = [0.0, 0.6]
        points = [
            BehaviourPoint(True, 1.0, 1.0),
            BehaviourPoint(True, 1.1, 1e4),
        ]
        result = classify_sweep(vcuts, points)
        assert result.functional_limit is None
        assert result.summary == frozenset({ApplicableModel.STUCK_ON})

    def test_sweep_validates_lengths(self):
        with pytest.raises(ValueError):
            classify_sweep([0.0], [])


class TestExperimentsLight:
    """Fast experiment drivers (the heavy ones run in benchmarks/)."""

    def test_table1(self):
        from repro.analysis import experiment_table1

        rows, report = experiment_table1()
        assert len(rows) == 5
        assert "Table I" in report

    def test_table2(self):
        from repro.analysis import experiment_table2

        rows, report = experiment_table2()
        assert dict(rows)["Oxide Thickness (TOx)"] == "5.1 nm"
        assert "mV/dec" in report

    def test_fig3(self):
        from repro.analysis import experiment_fig3

        cases, report = experiment_fig3()
        assert len(cases) == 4
        assert "GOS" in report

    def test_table3(self):
        from repro.analysis import experiment_table3

        rows, report = experiment_table3()
        assert len(rows) == 8
        assert all(r.leakage_detect for r in rows)
        assert "(a) Logic-level" in report
