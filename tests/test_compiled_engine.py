"""Equivalence of the compiled bit-parallel engine with the serial
ternary oracle, swept over every generated benchmark circuit and every
fault class (stuck-at, polarity voltage/IDDQ, two-pattern stuck-open),
plus the campaign wrappers and the fault-dropping ATPG loops built on
top of it."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg import (
    detects_polarity,
    detects_stuck_at,
    detects_stuck_open,
    parallel_polarity_simulation,
    parallel_stuck_at_simulation,
    parallel_stuck_open_simulation,
    polarity_detection_words,
    polarity_faults,
    run_sof_atpg,
    run_stuck_at_atpg,
    serial_polarity_simulation,
    stuck_at_detection_words,
    stuck_at_faults,
    stuck_open_detection_words,
    stuck_open_faults,
)
from repro.circuits import BENCHMARK_BUILDERS, build_benchmark, c17
from repro.logic import simulate_outputs
from repro.logic.compiled import FaultInjection, pack_vectors
from repro.logic.network import Network
from repro.logic.values import X

BENCHES = sorted(BENCHMARK_BUILDERS)

#: Cap per fault class so the full benchmark x class sweep stays fast;
#: stride sampling keeps the selection spread over the circuit.
MAX_FAULTS = 36
N_VECTORS = 12
N_PAIRS = 8


def _sample(faults):
    if len(faults) <= MAX_FAULTS:
        return list(faults)
    stride = len(faults) // MAX_FAULTS + 1
    return list(faults)[::stride]


def _vectors(network, n, seed, values=(0, 1)):
    rng = random.Random(seed)
    return [
        {net: rng.choice(values) for net in network.primary_inputs}
        for _ in range(n)
    ]


# ---------------------------------------------------------------------------
# Fault-free equivalence
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", BENCHES)
def test_fault_free_outputs_match_serial(name):
    """Batched dual-rail simulation equals the ternary simulator on
    every benchmark, including X-bearing vectors."""
    network = build_benchmark(name)
    cnet = network.compiled()
    vectors = _vectors(network, N_VECTORS, seed=1, values=(0, 1, X))
    state = cnet.simulate(pack_vectors(cnet, vectors))
    for k, vector in enumerate(vectors):
        assert cnet.outputs_unpacked(state, k) == simulate_outputs(
            network, vector
        )


def test_missing_inputs_default_to_x():
    network = c17()
    cnet = network.compiled()
    state = cnet.simulate(pack_vectors(cnet, [{}]))
    assert cnet.outputs_unpacked(state, 0) == simulate_outputs(network, {})


# ---------------------------------------------------------------------------
# Fault-class equivalence, vector-for-vector
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", BENCHES)
def test_stuck_at_matches_oracle(name):
    network = build_benchmark(name)
    faults = _sample(stuck_at_faults(network))
    vectors = _vectors(network, N_VECTORS, seed=2)
    words = stuck_at_detection_words(network, faults, vectors)
    for fault, word in zip(faults, words):
        for k, vector in enumerate(vectors):
            assert bool(word >> k & 1) == detects_stuck_at(
                network, fault, vector
            ), (name, fault.name, k)


@pytest.mark.parametrize("name", BENCHES)
@pytest.mark.parametrize("iddq", [False, True])
def test_polarity_matches_oracle(name, iddq):
    network = build_benchmark(name)
    faults = _sample(polarity_faults(network))
    if not faults:
        pytest.skip(f"{name} has no DP gates")
    vectors = _vectors(network, N_VECTORS, seed=3)
    words = polarity_detection_words(network, faults, vectors, iddq=iddq)
    for fault, word in zip(faults, words):
        for k, vector in enumerate(vectors):
            assert bool(word >> k & 1) == detects_polarity(
                network, fault, vector, iddq=iddq
            ), (name, fault.name, k, iddq)


@pytest.mark.parametrize("name", BENCHES)
def test_stuck_open_matches_oracle(name):
    network = build_benchmark(name)
    faults = _sample(stuck_open_faults(network))
    if not faults:
        pytest.skip(f"{name} has no cell-mapped gates")
    init = _vectors(network, N_PAIRS, seed=4)
    test = _vectors(network, N_PAIRS, seed=5)
    pairs = list(zip(init, test))
    words = stuck_open_detection_words(network, faults, pairs)
    for fault, word in zip(faults, words):
        for k, (iv, tv) in enumerate(pairs):
            assert bool(word >> k & 1) == detects_stuck_open(
                network, fault, iv, tv
            ), (name, fault.name, k)


@given(st.integers(min_value=0, max_value=3**10 - 1))
@settings(max_examples=25, deadline=None)
def test_stuck_at_equivalence_property(ternary_seed):
    """Property: for arbitrary ternary vectors (X included), batched
    and serial stuck-at detection agree on every fault of c17."""
    network = c17()
    digits = []
    while len(digits) < 10:
        digits.append(ternary_seed % 3)
        ternary_seed //= 3
    vectors = [
        dict(zip(network.primary_inputs, digits[:5])),
        dict(zip(network.primary_inputs, digits[5:])),
    ]
    faults = stuck_at_faults(network)
    words = stuck_at_detection_words(network, faults, vectors)
    for fault, word in zip(faults, words):
        for k, vector in enumerate(vectors):
            assert bool(word >> k & 1) == detects_stuck_at(
                network, fault, vector
            )


# ---------------------------------------------------------------------------
# Campaign wrappers
# ---------------------------------------------------------------------------

def test_campaign_first_detection_matches_serial():
    network = build_benchmark("rca4")
    faults = stuck_at_faults(network)
    vectors = _vectors(network, 48, seed=6)
    result = parallel_stuck_at_simulation(network, faults, vectors)
    for fault in faults:
        serial_first = next(
            (
                k for k, v in enumerate(vectors)
                if detects_stuck_at(network, fault, v)
            ),
            None,
        )
        assert result.detected.get(fault.name) == serial_first


@pytest.mark.parametrize("iddq", [False, True])
def test_polarity_campaign_matches_serial(iddq):
    network = build_benchmark("parity8")
    faults = polarity_faults(network)
    vectors = _vectors(network, 32, seed=7)
    batched = parallel_polarity_simulation(
        network, faults, vectors, iddq=iddq
    )
    serial = serial_polarity_simulation(
        network, faults, vectors, iddq=iddq
    )
    assert batched.detected == serial.detected
    assert batched.undetected == serial.undetected


def test_stuck_open_campaign_detects_generated_tests():
    network = c17()
    atpg = run_sof_atpg(network)
    pairs = [(t.init_vector, t.test_vector) for t in atpg.tests]
    faults = [t.fault for t in atpg.tests]
    result = parallel_stuck_open_simulation(network, faults, pairs)
    assert result.coverage == 1.0
    for k, test in enumerate(atpg.tests):
        assert result.detected[test.fault.name] <= k


# ---------------------------------------------------------------------------
# Fault-dropping ATPG loops
# ---------------------------------------------------------------------------

def test_run_stuck_at_atpg_full_coverage_and_verified():
    for name in ("c17", "rca4"):
        network = build_benchmark(name)
        faults = stuck_at_faults(network)
        result = run_stuck_at_atpg(network, faults)
        assert result.coverage == 1.0
        assert len(result.tests) < len(faults)  # dropping compacts
        for fault in faults:
            index = result.detected[fault.name]
            assert detects_stuck_at(
                network, fault, result.tests[index]
            ), fault.name


def test_sof_atpg_dropping_preserves_coverage():
    network = build_benchmark("alu_slice")
    plain = run_sof_atpg(network)
    dropping = run_sof_atpg(network, drop_detected=True)
    assert dropping.coverage == pytest.approx(plain.coverage)
    assert len(dropping.tests) <= len(plain.tests)
    for name, index in dropping.dropped.items():
        fault = next(
            f for f in stuck_open_faults(network) if f.name == name
        )
        test = dropping.tests[index]
        assert detects_stuck_open(
            network, fault, test.init_vector, test.test_vector
        ), name


# ---------------------------------------------------------------------------
# Compiled-form lifecycle
# ---------------------------------------------------------------------------

def test_compiled_cache_invalidated_by_edits():
    network = Network("cache")
    network.add_input("a")
    network.add_gate("g1", "INV", ["a"], "y")
    network.add_output("y")
    first = network.compiled()
    assert network.compiled() is first  # cached
    network.add_gate("g2", "INV", ["y"], "z")
    network.add_output("z")
    rebuilt = network.compiled()
    assert rebuilt is not first
    assert len(rebuilt.ops) == 2


def test_injection_words_force_per_vector_values():
    """The word-level line override injects arbitrary per-vector values
    (the mechanism behind stuck-open retained-value simulation)."""
    network = Network("force")
    network.add_input("a")
    network.add_gate("g1", "BUF", ["a"], "y")
    network.add_output("y")
    cnet = network.compiled()
    packed = pack_vectors(cnet, [{"a": 0}, {"a": 0}, {"a": 0}])
    forced = FaultInjection(
        words={cnet.net_index["y"]: (0b010, 0b101)}
    )
    state = cnet.simulate(packed, forced)
    assert [cnet.outputs_unpacked(state, k)[0] for k in range(3)] == [
        0, 1, 0
    ]
