"""Tests for the .bench dialect: error reporting and round-trip at scale.

Three concerns live here:

* **Clear failures on unsupported features** — state-holding primitives
  outside the plain ``DFF`` (``DLATCH`` and friends) and unknown gate
  types must raise
  :class:`~repro.logic.bench_format.UnsupportedBenchFeature` carrying
  the offending line number, never a bare ``KeyError``/``ValueError``
  from deeper layers.
* **Sequential round-trip** — ``q = DFF(d)`` lines parse into flops and
  re-emit with stable naming, so parse → write → parse is a fixed point
  on ISCAS-89-class netlists too.
* **Round-trip fidelity at corpus scale** — parse → compile → re-emit
  → re-parse must be a structural fixed point on every ISCAS-class
  corpus netlist, and the golden fault censuses must stay bit-identical
  (any drift in parsing, collapsing or enumeration shows up as a diff
  against ``tests/golden/faults_census_cpx1908.txt`` /
  ``tests/golden/faults_census_s27.txt``).
"""

import pathlib

import pytest

from repro.logic.bench_format import (
    UnsupportedBenchFeature,
    parse_bench,
    write_bench,
)

REPO = pathlib.Path(__file__).resolve().parents[1]
NETLIST_DIR = REPO / "benchmarks" / "netlists"

VALID_PREFIX = """\
INPUT(a)
INPUT(b)
OUTPUT(y)
"""


class TestUnsupportedFeatures:
    @pytest.mark.parametrize(
        "gtype", ["SDFF", "DFFSR", "DLATCH", "LATCH"]
    )
    def test_sequential_primitive_raises_with_lineno(self, gtype):
        text = VALID_PREFIX + f"q = {gtype}(a)\ny = NAND2(q, b)\n"
        with pytest.raises(UnsupportedBenchFeature) as exc:
            parse_bench(text)
        message = str(exc.value)
        assert "line 4" in message
        assert "sequential" in message
        assert gtype in message

    def test_dff_with_extra_pins_raises_with_lineno(self):
        text = VALID_PREFIX + "q = DFF(a, b)\ny = NAND2(q, b)\n"
        with pytest.raises(UnsupportedBenchFeature) as exc:
            parse_bench(text)
        message = str(exc.value)
        assert "line 4" in message
        assert "exactly one data input" in message

    def test_unknown_gate_type_raises_with_lineno(self):
        text = VALID_PREFIX + "y = FROB(a, b)\n"
        with pytest.raises(UnsupportedBenchFeature) as exc:
            parse_bench(text)
        message = str(exc.value)
        assert "line 4" in message
        assert "FROB" in message
        assert "supported types" in message

    def test_lineno_counts_comments_and_blanks(self):
        text = "# header\n\n" + VALID_PREFIX + "\n# note\ny = DLATCH(a)\n"
        with pytest.raises(UnsupportedBenchFeature, match="line 8"):
            parse_bench(text)

    def test_is_a_value_error(self):
        # Callers that catch ValueError for malformed netlists (the
        # registry's eager validation) keep working unchanged.
        assert issubclass(UnsupportedBenchFeature, ValueError)
        with pytest.raises(ValueError):
            parse_bench(VALID_PREFIX + "y = DLATCH(a)\n")

    def test_unparseable_line_still_plain_valueerror(self):
        with pytest.raises(ValueError, match="line 4"):
            parse_bench(VALID_PREFIX + "this is not a netlist line\n")

    def test_valid_netlist_unaffected(self):
        network = parse_bench(VALID_PREFIX + "y = NAND2(a, b)\n")
        assert network.stats()["gates"] == 1


SEQ_TEXT = VALID_PREFIX + """\
q1 = DFF(n1)
q2 = DFF(q1)
n1 = NAND2(a, q2)
y = NOR2(n1, b)
"""


class TestSequentialRoundTrip:
    def test_dff_lines_parse_into_flops(self):
        network = parse_bench(SEQ_TEXT, name="seq")
        assert network.is_sequential
        assert network.flops == {"q1": "n1", "q2": "q1"}
        assert network.stats()["flops"] == 2
        assert network.stats()["gates"] == 2

    def test_write_emits_dff_lines_in_parse_order(self):
        emitted = write_bench(parse_bench(SEQ_TEXT, name="seq"))
        lines = emitted.splitlines()
        assert "q1 = DFF(n1)" in lines
        assert "q2 = DFF(q1)" in lines
        assert lines.index("q1 = DFF(n1)") < lines.index("q2 = DFF(q1)")

    def test_parse_write_parse_is_fixed_point(self):
        from repro.logic.compiled import structural_fingerprint

        first = parse_bench(SEQ_TEXT, name="seq")
        emitted = write_bench(first)
        second = parse_bench(emitted, name="seq")
        assert structural_fingerprint(first) == structural_fingerprint(
            second
        )
        assert write_bench(second) == emitted

    def test_flop_output_cannot_be_redriven(self):
        with pytest.raises(ValueError, match="driven"):
            parse_bench(
                VALID_PREFIX + "q = DFF(a)\nq = NAND2(a, b)\n"
                "y = BUF(q)\n"
            )


class TestRoundTripAtScale:
    @pytest.mark.parametrize(
        "path", sorted(NETLIST_DIR.glob("*.bench")), ids=lambda p: p.stem
    )
    def test_parse_emit_reparse_fixed_point(self, path):
        """parse → re-emit → re-parse is structurally the identity."""
        from repro.logic.compiled import structural_fingerprint

        first = parse_bench(path.read_text(), name=path.stem)
        emitted = write_bench(first)
        second = parse_bench(emitted, name=path.stem)
        assert structural_fingerprint(first) == structural_fingerprint(
            second
        )
        # And emission itself is a fixed point (stable topological
        # order), so the corpus files never churn on rewrite.
        assert write_bench(second) == emitted

    @pytest.mark.parametrize(
        "path", sorted(NETLIST_DIR.glob("*.bench")), ids=lambda p: p.stem
    )
    def test_compiles_after_roundtrip(self, path):
        from repro.logic.compiled import compile_network
        from repro.logic.sequential import unroll_network

        network = parse_bench(
            write_bench(parse_bench(path.read_text(), name=path.stem)),
            name=path.stem,
        )
        if network.is_sequential:
            network = unroll_network(network, 2).network
        cnet = compile_network(network)
        assert cnet.n_nets > 1000 or path.stem != "cpx1908"

    def test_corpus_is_present(self):
        assert len(list(NETLIST_DIR.glob("*.bench"))) >= 3


class TestGoldenCensus:
    def test_cpx1908_census_matches_golden(self):
        """≥1000-gate census diff: parsing/collapse/enumeration drift
        anywhere in the stack shows up as a golden mismatch here."""
        from repro.faults.cli import format_census

        golden = (
            pathlib.Path(__file__).parent
            / "golden" / "faults_census_cpx1908.txt"
        ).read_text()
        assert format_census("cpx1908") + "\n" == golden

    def test_s27_census_matches_golden(self):
        """Sequential census gate: fault sites are enumerated on the
        sequential netlist itself (flop nets included, no unrolling) —
        drift in the flop-aware collapse rules shows up here."""
        from repro.faults.cli import format_census

        golden = (
            pathlib.Path(__file__).parent
            / "golden" / "faults_census_s27.txt"
        ).read_text()
        assert format_census("s27") + "\n" == golden
