"""Tests for the batched multi-point analog engine.

The contract under test: batched and sequential solvers agree to
<= 1e-9 V node voltages and 1e-6 relative supply currents on every
library cell, fault-free and defective; a non-convergent point cannot
poison its batch; and the device/table-model memo actually caches.
"""

import itertools
import math

import numpy as np
import pytest

from repro.core.fault_models import (
    ChannelBreakFault,
    DriveDriftFault,
    GOSFault,
    StuckAtNType,
)
from repro.device import (
    GateOxideShort,
    cached_device,
    cached_table_model,
    clear_model_caches,
    model_cache_stats,
)
from repro.gates import ALL_CELLS, build_cell_circuit, dc_truth_table
from repro.gates.characterize import gray_vectors, worst_case_delay
from repro.spice import (
    Circuit,
    ConvergenceError,
    MNASystem,
    Step,
    final_supply_currents,
    run_transient,
    run_transient_sweep,
    solve_dc,
    solve_dc_sweep,
)
from repro.spice.batched import heuristic_initial_guess

VDD = 1.2
V_TOL = 1e-9
I_REL_TOL = 1e-6


def _sequential_reference(bench, vectors):
    """Seed-style scalar loop: fresh system + cold solve per vector."""
    points = []
    for vector in vectors:
        bench.set_vector(vector)
        points.append(solve_dc(bench.circuit))
    return points


def _assert_sweep_matches(bench, vectors, sweep, reference):
    for k, _vector in enumerate(vectors):
        op = reference[k]
        for node, value in op.voltages.items():
            assert abs(value - float(sweep.voltages(node)[k])) <= V_TOL
        for src, value in op.source_currents.items():
            delta = abs(value - float(sweep.source_currents(src)[k]))
            assert delta <= I_REL_TOL * max(abs(value), 1e-15)


class TestBatchedDCEquivalence:
    @pytest.mark.parametrize("cell_name", sorted(ALL_CELLS))
    def test_fault_free_all_vectors(self, cell_name):
        """Exact mode == scalar solves on every vector of every cell."""
        bench = build_cell_circuit(ALL_CELLS[cell_name], fanout=4)
        vectors = list(
            itertools.product((0, 1), repeat=bench.cell.n_inputs)
        )
        reference = _sequential_reference(bench, vectors)
        sweep = solve_dc_sweep(
            bench.circuit, [bench.vector_bias(v) for v in vectors]
        )
        assert np.all(sweep.converged)
        _assert_sweep_matches(bench, vectors, sweep, reference)

    @pytest.mark.parametrize("cell_name", sorted(ALL_CELLS))
    def test_fault_free_fast_mode(self, cell_name):
        """Fast mode stays within the same tolerances on library cells."""
        bench = build_cell_circuit(ALL_CELLS[cell_name], fanout=4)
        vectors = list(
            itertools.product((0, 1), repeat=bench.cell.n_inputs)
        )
        reference = _sequential_reference(bench, vectors)
        sweep = solve_dc_sweep(
            bench.circuit,
            [bench.vector_bias(v) for v in vectors],
            mode="fast",
        )
        _assert_sweep_matches(bench, vectors, sweep, reference)

    @pytest.mark.parametrize(
        "fault",
        [
            GOSFault("t1", "pgs"),
            GOSFault("t1", "cg"),
            ChannelBreakFault("t1"),
            DriveDriftFault("t1", 0.6),
            StuckAtNType("t1"),
        ],
        ids=lambda f: f.describe(),
    )
    @pytest.mark.parametrize("cell_name", ["INV", "NAND2", "XOR2"])
    def test_defective_cells(self, cell_name, fault):
        """Exact mode == scalar solves with injected device defects."""
        bench = build_cell_circuit(ALL_CELLS[cell_name], fanout=4)
        fault.apply(bench)
        vectors = list(
            itertools.product((0, 1), repeat=bench.cell.n_inputs)
        )
        reference = _sequential_reference(bench, vectors)
        sweep = solve_dc_sweep(
            bench.circuit, [bench.vector_bias(v) for v in vectors]
        )
        _assert_sweep_matches(bench, vectors, sweep, reference)

    def test_operating_point_materialisation(self):
        bench = build_cell_circuit(ALL_CELLS["INV"], fanout=4)
        sweep = solve_dc_sweep(
            bench.circuit,
            [bench.vector_bias((0,)), bench.vector_bias((1,))],
        )
        assert len(sweep) == 2
        op = sweep.point(1)
        assert op.voltage("out") == pytest.approx(0.0, abs=0.05)
        assert len(sweep.operating_points()) == 2
        assert op.supply_current("vdd") == pytest.approx(
            float(sweep.supply_currents("vdd")[1])
        )

    def test_validates_inputs(self):
        bench = build_cell_circuit(ALL_CELLS["INV"], fanout=4)
        with pytest.raises(ValueError):
            solve_dc_sweep(bench.circuit, [])
        with pytest.raises(KeyError):
            solve_dc_sweep(bench.circuit, [{"no_such_source": 0.0}])
        with pytest.raises(ValueError):
            solve_dc_sweep(
                bench.circuit, [bench.vector_bias((0,))], mode="sideways"
            )

    def test_linear_circuit_direct_solve(self):
        c = Circuit("div")
        c.add_vsource("v1", "in", "0", 2.0)
        c.add_resistor("r1", "in", "mid", 1e3)
        c.add_resistor("r2", "mid", "0", 3e3)
        sweep = solve_dc_sweep(c, [{"v1": 2.0}, {"v1": 4.0}, {}])
        assert sweep.voltages("mid") == pytest.approx([1.5, 3.0, 1.5])
        assert np.all(sweep.converged)


class TestNonConvergentIsolation:
    def _inv_bench(self):
        return build_cell_circuit(ALL_CELLS["INV"], fanout=4)

    def test_bad_point_does_not_poison_batch(self):
        """A NaN-driven bias point fails alone; its neighbours match the
        scalar path exactly."""
        bench = self._inv_bench()
        good = [bench.vector_bias((0,)), bench.vector_bias((1,))]
        reference = _sequential_reference(bench, [(0,), (1,)])
        bad = {"vin_a": float("nan")}
        sweep = solve_dc_sweep(
            bench.circuit, [good[0], bad, good[1]],
            raise_on_failure=False,
        )
        assert list(sweep.converged) == [True, False, True]
        for k, ref_k in ((0, 0), (2, 1)):
            op = reference[ref_k]
            for node, value in op.voltages.items():
                assert abs(value - float(sweep.voltages(node)[k])) <= V_TOL

    def test_raises_by_default(self):
        bench = self._inv_bench()
        with pytest.raises(ConvergenceError) as err:
            solve_dc_sweep(
                bench.circuit,
                [bench.vector_bias((0,)), {"vin_a": float("nan")}],
            )
        assert "1/2" in str(err.value)

    def test_fast_mode_falls_back_per_point(self):
        """Fast mode re-runs failures on the exact schedule — a poisoned
        point still fails, the rest still converge."""
        bench = self._inv_bench()
        sweep = solve_dc_sweep(
            bench.circuit,
            [bench.vector_bias((0,)), {"vin_a": float("nan")}],
            mode="fast",
            raise_on_failure=False,
        )
        assert list(sweep.converged) == [True, False]


class TestGrayCodeSequentialEngine:
    def test_gray_vectors_adjacency(self):
        vectors = gray_vectors(ALL_CELLS["XOR3"])
        assert len(vectors) == 8
        assert len(set(vectors)) == 8
        for a, b in zip(vectors, vectors[1:]):
            assert sum(x != y for x, y in zip(a, b)) == 1

    @pytest.mark.parametrize("cell_name", ["NAND2", "XOR2"])
    def test_truth_table_engines_agree(self, cell_name):
        bench = build_cell_circuit(ALL_CELLS[cell_name], fanout=4)
        batched = dc_truth_table(bench, engine="batched")
        warm = dc_truth_table(bench, engine="sequential")
        assert batched.keys() == warm.keys()
        for vector in batched:
            assert batched[vector][1] == warm[vector][1]
            # Warm-started solves land on the same operating point well
            # inside the Newton tolerance.
            assert batched[vector][0] == pytest.approx(
                warm[vector][0], abs=5e-6
            )

    def test_unknown_engine_rejected(self):
        bench = build_cell_circuit(ALL_CELLS["INV"], fanout=4)
        with pytest.raises(ValueError):
            dc_truth_table(bench, engine="psychic")

    def test_fast_mode_opt_in_matches_exact_on_library_cell(self):
        bench = build_cell_circuit(ALL_CELLS["NAND2"], fanout=4)
        exact = dc_truth_table(bench)
        fast = dc_truth_table(bench, mode="fast")
        for vector in exact:
            assert fast[vector][1] == exact[vector][1]
            assert abs(fast[vector][0] - exact[vector][0]) <= V_TOL

    def test_defective_screening_defaults_to_exact_schedule(self):
        """The default screening path must agree with the scalar oracle
        on a defective bench (regression: fast mode used to be the
        silent default here)."""
        bench = build_cell_circuit(ALL_CELLS["NAND2"], fanout=4)
        GOSFault("t1", "cg").apply(bench)
        table = dc_truth_table(bench)
        for vector, (v_out, _level) in table.items():
            bench.set_vector(vector)
            op = solve_dc(bench.circuit)
            assert abs(op.voltage("out") - v_out) <= V_TOL


class TestTransientSweep:
    def test_lockstep_matches_scalar_transients(self):
        """Per-point waveforms match run_transient bit-for-bit (within
        1e-9 V) across a Vcut-style source sweep."""
        from repro.core.fault_models import FloatingPolarityGate

        vcuts = (0.0, 0.56, 1.2)
        sequential = []
        for vcut in vcuts:
            bench = build_cell_circuit(ALL_CELLS["INV"], fanout=4)
            FloatingPolarityGate("t1", "pgs", vcut).apply(bench)
            bench.set_input("a", Step(0.0, VDD, 0.1e-9, 2e-11))
            sequential.append(
                run_transient(bench.circuit, 0.5e-9, 5e-12)
            )
        bench = build_cell_circuit(ALL_CELLS["INV"], fanout=4)
        FloatingPolarityGate("t1", "pgs", vcuts[0]).apply(bench)
        (vcut_src,) = [
            n for n in bench.circuit.vsources if n.startswith("vcut_")
        ]
        bench.set_input("a", Step(0.0, VDD, 0.1e-9, 2e-11))
        results = run_transient_sweep(
            bench.circuit,
            [{vcut_src: v} for v in vcuts],
            0.5e-9,
            5e-12,
        )
        for ref, got in zip(sequential, results):
            for node, wave in ref.voltages.items():
                assert np.max(np.abs(wave - got.voltages[node])) <= V_TOL
        # Vectorized sweep-dimension measurement extraction agrees with
        # the per-result scalar method.
        stacked = final_supply_currents(results)
        for k, result in enumerate(results):
            assert stacked[k] == pytest.approx(
                result.final_supply_current()
            )

    def test_validates_inputs(self):
        bench = build_cell_circuit(ALL_CELLS["INV"], fanout=4)
        with pytest.raises(ValueError):
            run_transient_sweep(bench.circuit, [], 1e-9, 1e-12)
        with pytest.raises(KeyError):
            run_transient_sweep(
                bench.circuit, [{"nope": 0.0}], 1e-9, 1e-12
            )

    def test_batched_worst_case_delay(self):
        """The lockstep delay sweep reproduces the per-transition loop."""
        bench = build_cell_circuit(ALL_CELLS["NAND2"], fanout=4)
        sequential = worst_case_delay(
            bench, t_stop=0.8e-9, dt=4e-12, engine="sequential"
        )
        bench = build_cell_circuit(ALL_CELLS["NAND2"], fanout=4)
        batched = worst_case_delay(
            bench, t_stop=0.8e-9, dt=4e-12, engine="batched"
        )
        assert math.isfinite(sequential)
        assert batched == pytest.approx(sequential, rel=1e-9)


class TestModelMemo:
    def setup_method(self):
        clear_model_caches()

    def teardown_method(self):
        clear_model_caches()

    def test_device_cache_hits(self):
        a = cached_device()
        b = cached_device()
        assert a is b
        stats = model_cache_stats()
        assert stats["device_misses"] == 1
        assert stats["device_hits"] == 1

    def test_defect_keys_distinguish(self):
        clean = cached_device()
        gos = cached_device(defect=GateOxideShort("pgs"))
        gos2 = cached_device(defect=GateOxideShort("pgs"))
        other = cached_device(defect=GateOxideShort("cg"))
        assert clean is not gos
        assert gos is gos2
        assert gos is not other

    def test_table_model_memo_and_invalidate(self):
        table = cached_table_model(grid_points=5, vds_points=4)
        again = cached_table_model(grid_points=5, vds_points=4)
        assert table is again
        other = cached_table_model(grid_points=6, vds_points=4)
        assert other is not table
        stats = model_cache_stats()
        assert stats["table_misses"] == 2
        assert stats["table_hits"] == 1
        clear_model_caches()
        rebuilt = cached_table_model(grid_points=5, vds_points=4)
        assert rebuilt is not table
        assert model_cache_stats()["table_misses"] == 1

    def test_cached_table_model_matches_direct_build(self):
        from repro.device.table_model import TableModel

        cached = cached_table_model(grid_points=7, vds_points=5)
        direct = TableModel(cached_device(), grid_points=7, vds_points=5)
        np.testing.assert_allclose(cached._table, direct._table)

    def test_table_model_testbench(self):
        """A table-model testbench verifies its truth table, and repeat
        builds share the one memoised grid sample."""
        from repro.gates import verify_truth_table

        bench = build_cell_circuit(ALL_CELLS["INV"], use_table_model=True)
        assert verify_truth_table(bench)
        again = build_cell_circuit(ALL_CELLS["INV"], use_table_model=True)
        assert (
            bench.circuit.devices["inv.t1"].model
            is again.circuit.devices["inv.t1"].model
        )
        assert model_cache_stats()["table_misses"] == 1

    def test_fault_injection_reuses_models(self):
        bench_a = build_cell_circuit(ALL_CELLS["INV"], fanout=4)
        bench_b = build_cell_circuit(ALL_CELLS["INV"], fanout=4)
        GOSFault("t1", "pgs").apply(bench_a)
        GOSFault("t1", "pgs").apply(bench_b)
        model_a = bench_a.circuit.devices["inv.t1"].model
        model_b = bench_b.circuit.devices["inv.t1"].model
        assert model_a is model_b


class TestHeuristicGuess:
    def test_pins_driven_nodes(self):
        bench = build_cell_circuit(ALL_CELLS["INV"], fanout=4)
        mna = MNASystem(bench.circuit)
        points = [bench.vector_bias((1,))]
        x0 = heuristic_initial_guess(mna, points)
        assert x0.shape == (1, mna.size)
        assert x0[0, mna.node_index["a"]] == pytest.approx(VDD)
        assert x0[0, mna.node_index["vdd"]] == pytest.approx(VDD)
        assert x0[0, mna.node_index["out"]] == pytest.approx(VDD / 2)
        # Branch-current unknowns start at zero.
        assert np.all(x0[0, mna.n_nodes:] == 0.0)
