"""Compiled-vs-legacy PODEM equivalence and the compilation memo.

The compiled engine (:mod:`repro.atpg.podem_compiled`) mirrors the
legacy dict-based search decision-for-decision, so the two must agree
on *everything*: success flags, generated vectors, backtrack counts,
and the detected / untestable / aborted partition of every campaign —
swept here over every generated benchmark and every fault class, plus
the edge cases (redundant untestable faults, backtrack-budget aborts,
faults on primary outputs/inputs, justification-only searches).
"""

import pytest

from repro.atpg import (
    detects_polarity,
    detects_stuck_at,
    detects_stuck_open,
    generate_polarity_test,
    generate_test,
    justify_and_propagate,
    polarity_faults,
    run_sof_atpg,
    run_stuck_at_atpg,
    stuck_at_faults,
)
from repro.atpg.podem_compiled import compiled_justify_and_propagate
from repro.faults import StuckAtFault
from repro.circuits import BENCHMARK_BUILDERS, build_benchmark
from repro.logic.compiled import (
    compile_network,
    invalidate_network,
    structural_fingerprint,
)
from repro.logic.network import Network

BENCHES = sorted(BENCHMARK_BUILDERS)

#: Cap per fault class so the two-engine sweep over every benchmark
#: stays fast; stride sampling spreads the selection over the circuit.
MAX_FAULTS = 24


def _sample(faults, cap=MAX_FAULTS):
    if len(faults) <= cap:
        return list(faults)
    stride = len(faults) // cap + 1
    return list(faults)[::stride]


def _same_result(a, b):
    return (a.success, a.vector, a.backtracks, a.aborted) == (
        b.success, b.vector, b.backtracks, b.aborted
    )


# ---------------------------------------------------------------------------
# Per-fault equivalence across every benchmark and fault class
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", BENCHES)
def test_stuck_at_generation_matches_legacy(name):
    network = build_benchmark(name)
    for fault in _sample(stuck_at_faults(network)):
        legacy = generate_test(network, fault, engine="legacy")
        compiled = generate_test(network, fault, engine="compiled")
        assert _same_result(legacy, compiled), (name, fault.name)
        if compiled.success:
            # Oracle verification, independent of both engines.
            assert detects_stuck_at(
                network, fault, compiled.vector
            ), (name, fault.name)


@pytest.mark.parametrize("name", BENCHES)
def test_polarity_generation_matches_legacy(name):
    network = build_benchmark(name)
    faults = _sample(polarity_faults(network), cap=8)
    if not faults:
        pytest.skip(f"{name} has no DP gates")
    for fault in faults:
        legacy = generate_polarity_test(network, fault, engine="legacy")
        compiled = generate_polarity_test(network, fault, engine="compiled")
        if legacy is None:
            assert compiled is None, (name, fault.name)
            continue
        assert compiled is not None, (name, fault.name)
        assert (legacy.vector, legacy.mode, legacy.local_vector) == (
            compiled.vector, compiled.mode, compiled.local_vector
        ), (name, fault.name)
        if compiled.mode == "voltage":
            assert detects_polarity(network, fault, compiled.vector)
        else:
            assert detects_polarity(
                network, fault, compiled.vector, iddq=True
            )


@pytest.mark.parametrize("name", ["c17", "alu_slice"])
def test_sof_atpg_matches_legacy(name):
    network = build_benchmark(name)
    legacy = run_sof_atpg(network, engine="legacy")
    compiled = run_sof_atpg(network, engine="compiled")
    assert [t.fault.name for t in legacy.tests] == [
        t.fault.name for t in compiled.tests
    ]
    for lt, ct in zip(legacy.tests, compiled.tests):
        assert (lt.init_vector, lt.test_vector) == (
            ct.init_vector, ct.test_vector
        ), lt.fault.name
        assert detects_stuck_open(
            network, ct.fault, ct.init_vector, ct.test_vector
        )
    assert [f.name for f in legacy.masked] == [
        f.name for f in compiled.masked
    ]
    assert [f.name for f in legacy.untestable] == [
        f.name for f in compiled.untestable
    ]


@pytest.mark.parametrize("name", ["c17", "rca4", "eq4", "alu_slice"])
def test_campaign_partition_identical(name):
    """Full fault-dropping campaigns agree on tests, detection indices
    and the untestable/aborted classification, bit for bit."""
    network = build_benchmark(name)
    faults = stuck_at_faults(network)
    legacy = run_stuck_at_atpg(network, faults, engine="legacy")
    compiled = run_stuck_at_atpg(network, faults, engine="compiled")
    assert legacy.tests == compiled.tests
    assert legacy.detected == compiled.detected
    assert legacy.untestable == compiled.untestable
    assert legacy.aborted == compiled.aborted
    assert legacy.coverage == compiled.coverage


# ---------------------------------------------------------------------------
# Edge cases
# ---------------------------------------------------------------------------

def _redundant_network() -> Network:
    """y = OR(a, NOT a) — constant 1, so y/sa1 is untestable."""
    network = Network("redundant")
    network.add_input("a")
    network.add_gate("inv", "INV", ["a"], "an")
    network.add_gate("orr", "OR2", ["a", "an"], "y")
    network.add_output("y")
    network.validate()
    return network


def test_untestable_redundant_fault_both_engines():
    network = _redundant_network()
    fault = StuckAtFault("y", 1)  # y is constant 1: sa1 undetectable
    for engine in ("legacy", "compiled"):
        result = generate_test(network, fault, engine=engine)
        assert not result.success, engine
        assert not result.aborted, engine  # proven, not given up
    assert _same_result(
        generate_test(network, fault, engine="legacy"),
        generate_test(network, fault, engine="compiled"),
    )


def test_backtrack_budget_abort_both_engines():
    """With a zero backtrack budget the untestable proof cannot finish:
    both engines give up identically and flag the abort."""
    network = _redundant_network()
    fault = StuckAtFault("y", 1)
    legacy = generate_test(network, fault, max_backtracks=0, engine="legacy")
    compiled = generate_test(
        network, fault, max_backtracks=0, engine="compiled"
    )
    assert legacy.aborted and compiled.aborted
    assert _same_result(legacy, compiled)


def test_fault_on_primary_output_and_input():
    network = build_benchmark("c17")
    po_faults = [StuckAtFault("g22", 0), StuckAtFault("g22", 1)]
    pi_faults = [StuckAtFault("g1", 0), StuckAtFault("g1", 1)]
    for fault in po_faults + pi_faults:
        legacy = generate_test(network, fault, engine="legacy")
        compiled = generate_test(network, fault, engine="compiled")
        assert _same_result(legacy, compiled), fault.name
        assert compiled.success, fault.name
        assert detects_stuck_at(network, fault, compiled.vector)


def test_justification_only_matches_legacy():
    """propagate=False (IDDQ-style justification) parity."""
    network = build_benchmark("rca4")
    gate = network.gates["fa2_sum"]
    for local in ((0, 1, 1), (1, 0, 0), (1, 1, 1)):
        condition = list(zip(gate.inputs, local))
        legacy = justify_and_propagate(
            network, condition, propagate=False, engine="legacy"
        )
        compiled = justify_and_propagate(
            network, condition, propagate=False, engine="compiled"
        )
        assert _same_result(legacy, compiled), local


def test_controllability_heuristic_finds_verified_tests():
    """The guided backtrace is allowed to differ from the mirror, but
    every generated vector must still be oracle-valid and testable
    faults must stay testable."""
    network = build_benchmark("rca8")
    for fault in _sample(stuck_at_faults(network)):
        mirror = generate_test(network, fault, engine="compiled")
        guided = compiled_justify_and_propagate(
            network,
            [(fault.net, 1 - fault.value)],
            line_fault=fault,
            heuristic="controllability",
        )
        assert guided.success == mirror.success, fault.name
        if guided.success:
            assert detects_stuck_at(network, fault, guided.vector)


def test_unknown_engine_and_heuristic_rejected():
    network = build_benchmark("c17")
    fault = StuckAtFault("g10", 0)
    with pytest.raises(ValueError):
        generate_test(network, fault, engine="nope")
    with pytest.raises(ValueError):
        compiled_justify_and_propagate(
            network, [("g10", 1)], line_fault=fault, heuristic="nope"
        )


# ---------------------------------------------------------------------------
# Compilation memo
# ---------------------------------------------------------------------------

def test_structurally_identical_networks_share_compiled_form():
    first = build_benchmark("rca4")
    second = build_benchmark("rca4")
    assert first is not second
    assert structural_fingerprint(first) == structural_fingerprint(second)
    assert compile_network(first) is compile_network(second)


def test_different_structures_do_not_share():
    rca = build_benchmark("rca4")
    other = build_benchmark("eq4")
    assert structural_fingerprint(rca) != structural_fingerprint(other)
    assert compile_network(rca) is not compile_network(other)


def test_invalidate_evicts_shared_memo_entry():
    network = build_benchmark("parity8")
    cnet = compile_network(network)
    network.invalidate()
    rebuilt = compile_network(network)
    assert rebuilt is not cnet
    # A fresh structurally identical build now shares the new entry.
    assert compile_network(build_benchmark("parity8")) is rebuilt
    invalidate_network(network)  # module-level form, same effect
    assert compile_network(network) is not rebuilt


def test_structural_edit_switches_memo_entry():
    network = build_benchmark("c17")
    before = compile_network(network)
    network.add_gate("extra", "INV", ["g22"], "g22_n")
    network.add_output("g22_n")
    after = compile_network(network)
    assert after is not before
    assert len(after.ops) == len(before.ops) + 1
    # The untouched structure keeps its own memo entry.
    assert compile_network(build_benchmark("c17")) is before


def test_structures_immune_to_source_network_mutation():
    """A memoized CompiledNetwork can be shared with fresh structurally
    identical networks after its original source was edited; derived
    structures must come from the compile-time snapshot, not the live
    (now different) network."""
    original = build_benchmark("c17")
    shared = compile_network(original)
    # Mutate the original *before* structures are ever built; the old
    # memo entry stays keyed by the pre-mutation fingerprint.
    original.add_gate("early", "INV", ["g1"], "aaa")
    original.add_output("aaa")
    fresh = build_benchmark("c17")
    assert compile_network(fresh) is shared
    structs = shared.structures()
    # c17 is NAND2-only: every op must see NAND semantics (had the zip
    # drifted onto the mutated network, the inserted INV would shift
    # every gtype by one).
    assert shared.op_gtypes == ("NAND2",) * len(shared.ops)
    first_level = shared.gate_op["g_g10"]
    out = shared.ops[first_level][1]
    # Cheapest fully-specified local assignment over two PI inputs:
    # cost 1 + 1, plus one gate hop.
    assert structs.cc0[out] == 3
    assert structs.cc1[out] == 3
    assert structs.inverting[first_level] == 1


def test_structures_cached_and_consistent():
    network = build_benchmark("alu_slice")
    cnet = compile_network(network)
    structs = cnet.structures()
    assert cnet.structures() is structs
    # Driver/fanout agree with the op array.
    for pos, (_, out, ins) in enumerate(cnet.ops):
        assert structs.driver_op[out] == pos
        for i in ins:
            assert pos in structs.fanout_ops[i]
    # Every PO is output-reachable; every PI is flagged.
    for idx in cnet.po_index:
        assert structs.po_reachable[idx]
    for idx in cnet.pi_index:
        assert structs.is_pi[idx]
        assert structs.cc0[idx] == structs.cc1[idx] == 1
