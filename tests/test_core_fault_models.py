"""Tests for the core fault models, defect taxonomy and IFA engine."""

import pytest

from repro.core import (
    ChannelBreakFault,
    DefectMechanism,
    FABRICATION_STEPS,
    FloatingPolarityGate,
    GOSFault,
    InterconnectBridgeFault,
    StuckAtNType,
    StuckAtPType,
    StuckOnFault,
    TerminalBridgeFault,
    enumerate_defect_sites,
    run_ifa,
    summarise_ifa,
    table_i_rows,
)
from repro.gates import INV, NAND2, XOR2, build_cell_circuit
from repro.logic.switch_level import DeviceState
from repro.spice.dc import solve_dc


class TestTableI:
    def test_five_steps(self):
        assert len(FABRICATION_STEPS) == 5
        assert FABRICATION_STEPS[0].process.startswith("HSQ")
        assert FABRICATION_STEPS[2].defects == (
            DefectMechanism.GATE_OXIDE_SHORT,
        )

    def test_rows_render(self):
        rows = table_i_rows()
        assert rows[4][2] == "bridge among interconnects, floating gate"


class TestDefectSites:
    def test_inv_site_census(self):
        sites = enumerate_defect_sites(INV)
        by_mech = {}
        for s in sites:
            by_mech.setdefault(s.mechanism, []).append(s)
        assert len(by_mech[DefectMechanism.NANOWIRE_BREAK]) == 2
        assert len(by_mech[DefectMechanism.GATE_OXIDE_SHORT]) == 6
        # 4 bridge kinds per transistor.
        assert len(by_mech[DefectMechanism.TERMINAL_BRIDGE]) == 8

    def test_xor_has_interconnect_pairs(self):
        sites = enumerate_defect_sites(XOR2)
        pairs = [
            s for s in sites
            if s.mechanism is DefectMechanism.INTERCONNECT_BRIDGE
        ]
        assert pairs  # a_n/b/out/etc. combinations
        assert all("-" in s.detail for s in pairs)


class TestCircuitFaultInjection:
    def test_stuck_at_n_rewires_both_pgs(self):
        bench = build_cell_circuit(XOR2)
        StuckAtNType("t1").apply(bench)
        device = bench.circuit.devices["xor2.t1"]
        assert device.pgs == "vdd"
        assert device.pgd == "vdd"

    def test_stuck_at_p_rewires_to_ground(self):
        bench = build_cell_circuit(XOR2)
        StuckAtPType("t3").apply(bench)
        device = bench.circuit.devices["xor2.t3"]
        assert device.pgs == "0"
        assert device.pgd == "0"

    def test_floating_pg_both(self):
        bench = build_cell_circuit(XOR2)
        FloatingPolarityGate("t1", "both", 0.6).apply(bench)
        device = bench.circuit.devices["xor2.t1"]
        assert device.pgs.startswith("_float_")
        assert device.pgd.startswith("_float_")
        # The float nodes are driven at Vcut.
        sources = [
            v for k, v in bench.circuit.vsources.items()
            if k.startswith("vcut_")
        ]
        assert len(sources) == 2

    def test_floating_pg_validation(self):
        with pytest.raises(ValueError):
            FloatingPolarityGate("t1", "drain", 0.5)

    def test_gos_swaps_model(self):
        bench = build_cell_circuit(INV)
        before = bench.circuit.devices["inv.t1"].model
        GOSFault("t1", "cg").apply(bench)
        assert bench.circuit.devices["inv.t1"].model is not before

    def test_channel_break_kills_pull_up(self):
        bench = build_cell_circuit(INV, fanout=2)
        ChannelBreakFault("t1").apply(bench)
        bench.set_vector((0,))
        op = solve_dc(bench.circuit)
        # Output can no longer be pulled high (leaks toward ground).
        assert op.voltage("out") < 1.0

    def test_stuck_on_bridges_channel(self):
        bench = build_cell_circuit(INV, fanout=2)
        StuckOnFault("t1").apply(bench)
        bench.set_vector((1,))
        op = solve_dc(bench.circuit)
        # Pull-up shorted: contention lifts the output and burns current.
        assert op.supply_current("vdd") > 1e-6

    def test_terminal_bridge(self):
        bench = build_cell_circuit(XOR2)
        TerminalBridgeFault("t1", "cg", "pgs").apply(bench)
        assert any(
            name.startswith("_tbridge_")
            for name in bench.circuit.resistors
        )

    def test_interconnect_bridge(self):
        bench = build_cell_circuit(XOR2)
        InterconnectBridgeFault("a", "b").apply(bench)
        assert any(
            r.a == "a" and r.b == "b"
            for r in bench.circuit.resistors.values()
        )

    def test_device_state_images(self):
        assert StuckAtNType("t1").device_state() == (
            "t1", DeviceState.STUCK_AT_N
        )
        assert ChannelBreakFault("t2").device_state() == (
            "t2", DeviceState.STUCK_OPEN
        )
        assert ChannelBreakFault("t2", fraction=0.5).device_state() is None

    def test_descriptions_are_informative(self):
        assert "t1" in StuckAtNType("t1").describe()
        assert "PGS" in GOSFault("t1", "pgs").describe().upper()


class TestIFA:
    def test_xor_breaks_all_masked(self):
        results = run_ifa(XOR2)
        summary = summarise_ifa(XOR2, results)
        assert summary.masked_breaks == ("t1", "t2", "t3", "t4")

    def test_nand_breaks_not_masked(self):
        results = run_ifa(NAND2)
        summary = summarise_ifa(NAND2, results)
        assert summary.masked_breaks == ()

    def test_every_site_classified(self):
        results = run_ifa(XOR2)
        assert len(results) == len(enumerate_defect_sites(XOR2))
        for r in results:
            assert r.behaviour in (
                "functional-masked",
                "wrong-output",
                "iddq",
                "wrong-output+iddq",
                "sequential",
                "analog-only",
                "benign",
            )

    def test_polarity_bridges_map_to_new_model(self):
        results = run_ifa(XOR2)
        pg_bridges = [
            r for r in results
            if r.site.detail in ("pg-vdd", "pg-gnd")
        ]
        assert pg_bridges
        for r in pg_bridges:
            assert any(
                "stuck-at n-type/p-type" in m for m in r.fault_models
            )

    def test_sp_rail_bridge_benign(self):
        """Bridging an SP pull-down's PG (already at VDD) to VDD is a
        no-op and must be classified benign."""
        results = run_ifa(NAND2)
        benign = [
            r for r in results
            if r.behaviour == "benign"
        ]
        assert len(benign) == 4  # 2 pull-ups pg-gnd + 2 pull-downs pg-vdd
