"""Tests for the ATPG stack: fault lists, PODEM, fault sim, SOF and
polarity generators, IDDQ selection, compaction."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg import (
    PolarityFault,
    StuckAtFault,
    StuckOpenFault,
    compact_tests,
    detects_polarity,
    detects_stuck_at,
    detects_stuck_open,
    generate_polarity_test,
    generate_test,
    parallel_stuck_at_simulation,
    polarity_faults,
    run_polarity_atpg,
    run_sof_atpg,
    select_iddq_vectors,
    serial_polarity_simulation,
    stuck_at_faults,
    stuck_open_faults,
)
from repro.circuits import c17, parity_tree, ripple_carry_adder
from repro.logic import simulate_outputs


def _fill(network, vector):
    full = dict(vector)
    for net in network.primary_inputs:
        full.setdefault(net, 0)
    return full


class TestFaultLists:
    def test_stuck_at_enumeration(self):
        network = c17()
        faults = stuck_at_faults(network, collapse=False)
        nets = len(network.nets())
        pins = sum(len(g.inputs) for g in network.gates.values())
        assert len(faults) == 2 * (nets + pins)

    def test_collapse_reduces(self):
        network = c17()
        assert len(stuck_at_faults(network)) < len(
            stuck_at_faults(network, collapse=False)
        )

    def test_fault_names_unique(self):
        faults = stuck_at_faults(ripple_carry_adder(2))
        names = [f.name for f in faults]
        assert len(set(names)) == len(names)

    def test_polarity_faults_only_on_dp_gates(self):
        assert polarity_faults(c17()) == []
        pf = polarity_faults(parity_tree(4))
        assert pf
        assert all(f.kind in ("n", "p") for f in pf)

    def test_polarity_local_behaviour_cached(self):
        f1 = PolarityFault("g_p0", "XOR2", "t1", "n")
        assert f1.iddq_vectors() == ((0, 0),)
        assert f1.output_detecting_vectors() == []

    def test_stuck_open_masked_flags(self):
        sop = stuck_open_faults(parity_tree(4))
        assert all(f.is_masked() for f in sop)
        sop = stuck_open_faults(c17())
        assert not any(f.is_masked() for f in sop)

    def test_validation(self):
        with pytest.raises(ValueError):
            StuckAtFault("x", 2)
        with pytest.raises(ValueError):
            PolarityFault("g", "XOR2", "t1", "z")
        with pytest.raises(ValueError):
            StuckOpenFault("g", "NOPE2", "t1")


class TestPodem:
    @pytest.mark.parametrize(
        "builder", [c17, lambda: ripple_carry_adder(3),
                    lambda: parity_tree(4)]
    )
    def test_every_generated_test_verifies(self, builder):
        """Property: PODEM output always detects its target under
        independent fault simulation."""
        network = builder()
        for fault in stuck_at_faults(network):
            result = generate_test(network, fault)
            if result.success:
                assert detects_stuck_at(
                    network, fault, _fill(network, result.vector)
                ), fault.name

    def test_c17_fully_testable(self):
        network = c17()
        for fault in stuck_at_faults(network):
            assert generate_test(network, fault).success, fault.name

    def test_untestable_reported(self):
        # y = OR(a, a) has an untestable s-a-1 on one branch?  Use a
        # redundant AND-OR: y = (a AND b) OR (a AND NOT b) OR ... keep it
        # simple: a buffer chain where the stem fault dominates.
        from repro.logic import Network

        network = Network("red")
        network.add_input("a")
        network.add_gate("g1", "BUF", ["a"], "x")
        network.add_gate("g2", "OR2", ["x", "a"], "y")
        network.add_output("y")
        network.validate()
        # x/sa1 with a=1 is consistent; with a=0, y = OR(1,0)=1 vs good 0
        # -> testable.  x/sa0: a=1 -> OR(0,1)=1 == good -> masked!
        fault = StuckAtFault("x", 0, gate="g2", pin=0)
        result = generate_test(network, fault)
        assert not result.success
        assert not result.aborted  # proven untestable, not given up


class TestFaultSimulation:
    def test_parallel_matches_serial(self):
        """Property: bit-parallel and serial stuck-at simulation agree."""
        network = ripple_carry_adder(2)
        faults = stuck_at_faults(network)
        import random

        rng = random.Random(5)
        vectors = [
            {n: rng.randint(0, 1) for n in network.primary_inputs}
            for _ in range(24)
        ]
        parallel = parallel_stuck_at_simulation(network, faults, vectors)
        for fault in faults:
            serial_hit = any(
                detects_stuck_at(network, fault, v) for v in vectors
            )
            assert serial_hit == (fault.name in parallel.detected), (
                fault.name
            )

    def test_detection_index_is_first(self):
        network = c17()
        faults = stuck_at_faults(network)
        vectors = [
            {"g1": 0, "g2": 0, "g3": 0, "g6": 0, "g7": 0},
            {"g1": 1, "g2": 1, "g3": 1, "g6": 1, "g7": 1},
        ]
        result = parallel_stuck_at_simulation(network, faults, vectors)
        for name, idx in result.detected.items():
            fault = next(f for f in faults if f.name == name)
            assert detects_stuck_at(network, fault, vectors[idx])
            for earlier in range(idx):
                assert not detects_stuck_at(
                    network, fault, vectors[earlier]
                )

    def test_polarity_iddq_detection(self):
        network = parity_tree(4)
        fault = polarity_faults(network)[0]
        test = generate_polarity_test(network, fault)
        assert test is not None
        full = _fill(network, test.vector)
        assert detects_polarity(
            network, fault, full, iddq=(test.mode == "iddq")
        )

    def test_stuck_open_two_pattern_detection(self):
        network = c17()
        result = run_sof_atpg(network)
        assert result.tests
        for test in result.tests:
            assert detects_stuck_open(
                network, test.fault, test.init_vector, test.test_vector
            )


class TestPolarityAtpg:
    def test_full_coverage_on_adder(self):
        network = ripple_carry_adder(2)
        result = run_polarity_atpg(network)
        assert result.coverage == 1.0

    def test_tests_verify(self):
        network = parity_tree(4)
        result = run_polarity_atpg(network)
        for test in result.tests:
            full = _fill(network, test.vector)
            assert detects_polarity(
                network, test.fault, full, iddq=(test.mode == "iddq")
            ), test.fault.name

    def test_classic_set_misses_polarity(self):
        """The paper's core claim at circuit level: a full stuck-at test
        set leaves polarity faults undetected at the outputs."""
        from repro.analysis.atpg_experiments import classic_stuck_at_testset

        network = parity_tree(4)
        test_set = classic_stuck_at_testset(network)
        pf = polarity_faults(network)
        by_sa = serial_polarity_simulation(network, pf, test_set)
        atpg = run_polarity_atpg(network)
        assert by_sa.coverage < atpg.coverage
        assert atpg.coverage > 0.95


class TestSofAtpg:
    def test_c17_all_covered(self):
        result = run_sof_atpg(c17())
        assert not result.masked
        assert not result.untestable
        covered = {t.fault.name for t in result.tests}
        assert len(covered) == len(stuck_open_faults(c17()))

    def test_dp_circuit_all_masked(self):
        result = run_sof_atpg(parity_tree(4))
        assert not result.tests
        assert not result.untestable
        assert len(result.masked) == len(stuck_open_faults(parity_tree(4)))

    def test_mixed_circuit(self):
        network = ripple_carry_adder(2)
        result = run_sof_atpg(network)
        # All gates are DP (XOR3/MAJ3): everything masked.
        assert len(result.masked) == len(stuck_open_faults(network))


class TestIddqSelection:
    def test_cover_is_complete_and_compact(self):
        network = parity_tree(4)
        selection = select_iddq_vectors(network)
        assert selection.coverage == 1.0
        pf = polarity_faults(network)
        # Greedy compaction should do far better than one vector per
        # fault.
        assert len(selection.vectors) < len(pf) / 2

    def test_covered_indices_valid(self):
        network = ripple_carry_adder(2)
        selection = select_iddq_vectors(network)
        for name, idx in selection.covered.items():
            assert 0 <= idx < len(selection.vectors)


class TestCompaction:
    def test_preserves_coverage(self):
        from repro.analysis.atpg_experiments import classic_stuck_at_testset

        network = c17()
        faults = stuck_at_faults(network)
        vectors = []
        for fault in faults:
            r = generate_test(network, fault)
            if r.success:
                vectors.append(_fill(network, r.vector))
        before = parallel_stuck_at_simulation(network, faults, vectors)
        compacted = compact_tests(network, vectors, faults)
        after = parallel_stuck_at_simulation(
            network, faults, compacted.vectors
        )
        assert after.coverage == before.coverage
        assert len(compacted.vectors) <= len(vectors)

    @given(st.integers(min_value=0, max_value=2**5 - 1))
    @settings(max_examples=20, deadline=None)
    def test_compacted_set_still_detects(self, seed_bits):
        """Property: each fault detected before compaction has a
        detecting vector in the compacted set."""
        network = c17()
        faults = stuck_at_faults(network)[:10]
        vectors = [
            {
                n: (seed_bits >> k ^ j) & 1
                for k, n in enumerate(network.primary_inputs)
            }
            for j in range(4)
        ]
        compacted = compact_tests(network, vectors, faults)
        before = parallel_stuck_at_simulation(network, faults, vectors)
        after = parallel_stuck_at_simulation(
            network, faults, compacted.vectors
        )
        assert set(before.detected) == set(after.detected)
