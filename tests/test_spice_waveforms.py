"""Tests for source waveforms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spice.waveforms import (
    DC,
    PWL,
    Complement,
    Pulse,
    Step,
    bit_sequence,
)


class TestDC:
    def test_constant(self):
        w = DC(0.7)
        assert w(0.0) == 0.7
        assert w(1e-6) == 0.7


class TestPWL:
    def test_interpolation(self):
        w = PWL(((0.0, 0.0), (1.0, 2.0)))
        assert w(0.5) == pytest.approx(1.0)

    def test_holds_ends(self):
        w = PWL(((1.0, 3.0), (2.0, 5.0)))
        assert w(0.0) == 3.0
        assert w(10.0) == 5.0

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            PWL(((1.0, 0.0), (1.0, 1.0)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PWL(())


class TestStep:
    def test_levels(self):
        w = Step(0.0, 1.2, t_step=1e-9, t_rise=1e-10)
        assert w(0.0) == 0.0
        assert w(2e-9) == 1.2
        assert w(1.05e-9) == pytest.approx(0.6)


class TestPulse:
    def test_period_repeats(self):
        w = Pulse(0.0, 1.0, t_delay=0.0, t_rise=0.1, t_fall=0.1,
                  t_width=0.3, t_period=1.0)
        assert w(0.2) == 1.0
        assert w(1.2) == 1.0
        assert w(0.9) == 0.0

    def test_rejects_overfull_period(self):
        with pytest.raises(ValueError):
            Pulse(0, 1, 0, 0.5, 0.5, 0.5, 1.0)


class TestComplement:
    @given(st.floats(min_value=0.0, max_value=5e-9))
    @settings(max_examples=30)
    def test_sum_is_vdd(self, t):
        base = Step(0.0, 1.2, 1e-9, 1e-10)
        comp = Complement(base, 1.2)
        assert base(t) + comp(t) == pytest.approx(1.2)


class TestBitSequence:
    def test_levels_at_bit_centres(self):
        w = bit_sequence([1, 0, 1], vdd=1.2, bit_time=1e-9)
        assert w(0.5e-9) == pytest.approx(1.2)
        assert w(1.5e-9) == pytest.approx(0.0)
        assert w(2.5e-9) == pytest.approx(1.2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            bit_sequence([], 1.2, 1e-9)

    def test_constant_sequence(self):
        w = bit_sequence([1, 1, 1], vdd=1.0, bit_time=1e-9)
        assert w(1.7e-9) == pytest.approx(1.0)
