"""Tests for the smooth activation primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device import physics


class TestLogistic10:
    def test_midpoint(self):
        assert physics.logistic10(0.0) == pytest.approx(0.5)

    def test_decade_slope_below(self):
        # One unit down -> one decade of attenuation (asymptotically).
        lo = physics.logistic10(-6.0)
        lower = physics.logistic10(-7.0)
        assert lo / lower == pytest.approx(10.0, rel=1e-3)

    def test_saturates_to_one(self):
        assert physics.logistic10(10.0) == pytest.approx(1.0, abs=1e-9)

    def test_no_overflow_at_extremes(self):
        assert physics.logistic10(-1000.0) >= 0.0
        assert physics.logistic10(1000.0) <= 1.0

    def test_vectorised(self):
        x = np.array([-1.0, 0.0, 1.0])
        y = physics.logistic10(x)
        assert y.shape == (3,)
        assert np.all(np.diff(y) > 0)


class TestActivations:
    @given(st.floats(min_value=-2.0, max_value=2.0))
    @settings(max_examples=50)
    def test_n_p_mirror_symmetry(self, v):
        """p_activation(v) == n_activation(-v) for the same thresholds."""
        n = float(physics.n_activation(-v, 0.4, 0.1))
        p = float(physics.p_activation(v, 0.4, 0.1))
        assert n == pytest.approx(p, rel=1e-9)

    def test_n_activation_monotonic(self):
        v = np.linspace(-1.0, 2.0, 101)
        a = physics.n_activation(v, 0.4, 0.1)
        assert np.all(np.diff(a) > 0)

    def test_p_activation_monotonic_decreasing(self):
        v = np.linspace(-1.0, 2.0, 101)
        a = physics.p_activation(v, 0.4, 0.1)
        assert np.all(np.diff(a) < 0)

    def test_threshold_is_half_activation(self):
        assert float(physics.n_activation(0.4, 0.4, 0.1)) == pytest.approx(
            0.5
        )


class TestSeriesActivation:
    def test_all_ones_gives_one(self):
        assert physics.series_activation(1.0, 1.0, 1.0) == pytest.approx(1.0)

    def test_limited_by_weakest(self):
        g = physics.series_activation(1e-6, 1.0, 1.0)
        assert g == pytest.approx(3e-6, rel=1e-3)

    @given(
        st.floats(min_value=1e-12, max_value=1.0),
        st.floats(min_value=1e-12, max_value=1.0),
        st.floats(min_value=1e-12, max_value=1.0),
    )
    @settings(max_examples=100)
    def test_bounded_by_min_segment(self, a, b, c):
        g = float(physics.series_activation(a, b, c))
        assert g <= 3 * min(a, b, c) + 1e-15
        assert g > 0

    def test_order_invariance(self):
        assert physics.series_activation(0.1, 0.5, 0.9) == pytest.approx(
            physics.series_activation(0.9, 0.1, 0.5)
        )

    def test_requires_segments(self):
        with pytest.raises(ValueError):
            physics.series_activation()


class TestSmoothPositive:
    def test_positive_passthrough(self):
        assert physics.smooth_positive(1.0) == pytest.approx(1.0, rel=1e-6)

    def test_negative_clamped(self):
        assert physics.smooth_positive(-1.0) == pytest.approx(0.0, abs=1e-6)

    @given(st.floats(min_value=-5.0, max_value=5.0))
    @settings(max_examples=50)
    def test_nonnegative_and_above_x(self, x):
        y = float(physics.smooth_positive(x))
        assert y >= 0.0
        assert y >= x - 1e-12

    def test_smooth_at_zero(self):
        # Derivative approx 0.5 at x=0 (no kink).
        h = 1e-7
        d = (
            physics.smooth_positive(h) - physics.smooth_positive(-h)
        ) / (2 * h)
        assert d == pytest.approx(0.5, abs=0.01)


class TestSaturationFactor:
    def test_zero_at_zero(self):
        assert physics.saturation_factor(0.0, 0.35, 9.0) == pytest.approx(0.0)

    def test_monotonic(self):
        v = np.linspace(0, 2, 50)
        f = physics.saturation_factor(v, 0.35, 9.0)
        assert np.all(np.diff(f) > 0)

    def test_linear_region(self):
        # Small vds: f ~ vds/v_dsat.
        f = float(physics.saturation_factor(0.01, 0.35, 9.0))
        assert f == pytest.approx(0.01 / 0.35, rel=0.01)


class TestDecades:
    def test_value(self):
        assert physics.decades(1000.0) == pytest.approx(3.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            physics.decades(0.0)
