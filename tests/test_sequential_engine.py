"""Differential harness for sequential circuits via time-frame expansion.

Sequential support has two halves, and both are tested here against
independent references:

* **Unrolling is semantics-preserving** — the unrolled combinational
  network's good simulation must agree frame for frame with the
  cycle-accurate reference :func:`repro.logic.sequential.simulate_sequence`
  (explicit state feedback, no unrolling), for any frame count and any
  initial state.
* **Fault lowering is engine-invariant** — one logical fault on the
  sequential netlist lowers to every-frame replica injections, and the
  multi-word, single-word compiled, and legacy dict engines must
  produce *bit-identical* detection matrices over per-cycle input
  sequences.  Nothing is allowed to be "close".

Circuits come from the sequential fuzzer
(:func:`repro.circuits.random_circuits.random_sequential_network`), the
real ISCAS-89 s27 netlist, and the seeded sequential corpus
(sqx344 / sqx1488), whose recipe provenance is asserted here too.
"""

import pathlib

import numpy as np
import pytest

from repro.atpg.fault_sim import (
    detects_polarity,
    detects_stuck_at,
    detects_stuck_open,
    parallel_polarity_simulation,
    parallel_stuck_at_simulation,
    parallel_stuck_open_simulation,
    polarity_detection_words,
    stuck_at_detection_words,
    stuck_open_detection_words,
)
from repro.circuits.random_circuits import (
    SEQ_CORPUS_RECIPES,
    build_corpus_network,
    random_sequence_vectors,
    random_sequential_network,
)
from repro.faults import get_universe
from repro.logic import (
    SequentialNetworkError,
    simulate_sequence,
    unroll_network,
)
from repro.logic.bench_format import parse_bench
from repro.logic.compiled import compile_network
from repro.logic.sequential import stuck_at_unrolled_injection
from repro.logic.simulator import simulate, simulate_outputs

NETLIST_DIR = (
    pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "netlists"
)

FUZZ_SEEDS = list(range(1, 21))  # >= 20 seeds (acceptance bar)
FRAME_COUNTS = (2, 3, 5)


def faults_of(network, universe):
    return get_universe(universe).collapse(network)


def fuzz_network(seed):
    """Small seeded sequential circuit; shape varies with the seed."""
    return random_sequential_network(
        seed,
        n_gates=14 + 5 * (seed % 7),
        n_inputs=3 + seed % 4,
        n_flops=1 + seed % 4,
        dp_fraction=0.3,
    )


def fuzz_state(network, seed):
    """A seeded binary initial state for every flop (reset pattern)."""
    return {
        q: (seed >> k) & 1 for k, q in enumerate(network.flops)
    }


def s27():
    path = NETLIST_DIR / "s27.bench"
    return parse_bench(path.read_text(), name="s27")


# ---------------------------------------------------------------------------
# Unrolling vs. the cycle-accurate reference
# ---------------------------------------------------------------------------

class TestUnrollSemantics:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS[:8])
    @pytest.mark.parametrize("frames", FRAME_COUNTS)
    def test_unrolled_good_sim_matches_cycle_accurate(self, seed, frames):
        network = fuzz_network(seed)
        uv = unroll_network(network, frames)
        state = fuzz_state(network, seed)
        for cycles in random_sequence_vectors(
            network, 10, frames, seed=seed * 13, x_fraction=0.1
        ):
            reference = simulate_sequence(network, cycles, state)
            values = simulate(uv.network, uv.flatten_vector(cycles, state))
            unrolled = [
                tuple(
                    values[uv.net_name(f, po)]
                    for po in network.primary_outputs
                )
                for f in range(frames)
            ]
            assert unrolled == reference

    def test_unknown_initial_state_is_x(self):
        # No initial_state: frame-0 flop outputs are unassigned pseudo
        # PIs, i.e. X — exactly simulate_sequence's default.
        network = fuzz_network(3)
        uv = unroll_network(network, 2)
        cycles = random_sequence_vectors(network, 1, 2, seed=9)[0]
        reference = simulate_sequence(network, cycles)
        values = simulate(uv.network, uv.flatten_vector(cycles))
        assert [
            tuple(
                values[uv.net_name(f, po)]
                for po in network.primary_outputs
            )
            for f in range(2)
        ] == reference

    def test_state_inputs_come_first_in_pi_order(self):
        network = s27()
        uv = unroll_network(network, 3)
        pis = uv.network.primary_inputs
        assert pis[: len(network.flops)] == uv.state_inputs
        assert pis[len(network.flops):][: len(network.primary_inputs)] == [
            uv.net_name(0, pi) for pi in network.primary_inputs
        ]

    def test_unroll_is_memoized(self):
        network = s27()
        assert unroll_network(network, 4) is unroll_network(s27(), 4)

    def test_too_many_cycles_raises(self):
        uv = unroll_network(s27(), 2)
        with pytest.raises(ValueError, match="2 frames"):
            uv.flatten_vector([{}, {}, {}])

    def test_initial_state_on_non_flop_raises(self):
        uv = unroll_network(s27(), 2)
        with pytest.raises(ValueError, match="non-flop"):
            uv.flatten_vector([{}], initial_state={"G0": 1})

    def test_engines_refuse_sequential_without_unroll(self):
        network = s27()
        faults = faults_of(network, "stuck_at")
        with pytest.raises(SequentialNetworkError, match="unroll"):
            stuck_at_detection_words(network, faults, [{}])
        with pytest.raises(SequentialNetworkError, match="unroll"):
            compile_network(network)
        with pytest.raises(SequentialNetworkError):
            simulate_outputs(network, {})
        with pytest.raises(SequentialNetworkError, match="unroll"):
            detects_stuck_at(network, faults[0], {})


# ---------------------------------------------------------------------------
# Differential fuzz: 20 seeds x {2, 3, 5} frames, three engines
# ---------------------------------------------------------------------------

class TestDifferentialFuzz:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    @pytest.mark.parametrize("frames", FRAME_COUNTS)
    def test_stuck_at_matrices_identical(self, seed, frames):
        network = fuzz_network(seed)
        faults = faults_of(network, "stuck_at")
        state = fuzz_state(network, seed)
        sequences = random_sequence_vectors(
            network, 60 + seed, frames, seed=seed * 17, x_fraction=0.1
        )
        multi = stuck_at_detection_words(
            network, faults, sequences, engine="multiword",
            unroll=frames, initial_state=state,
        )
        single = stuck_at_detection_words(
            network, faults, sequences, engine="compiled",
            unroll=frames, initial_state=state,
        )
        assert multi == single
        # Legacy dict oracle, spot-checked per (fault, sequence) bit.
        rng = np.random.default_rng(seed * 1000 + frames)
        for fi in rng.choice(len(faults), size=3, replace=False):
            for vi in rng.choice(len(sequences), size=3, replace=False):
                expected = detects_stuck_at(
                    network, faults[fi], sequences[vi],
                    unroll=frames, initial_state=state,
                )
                assert bool((multi[fi] >> int(vi)) & 1) == expected

    @pytest.mark.parametrize("seed", FUZZ_SEEDS[:8])
    @pytest.mark.parametrize("frames", FRAME_COUNTS)
    @pytest.mark.parametrize("iddq", [False, True])
    def test_polarity_matrices_identical(self, seed, frames, iddq):
        network = fuzz_network(seed)
        faults = faults_of(network, "polarity")
        assert faults, "fuzz recipe must include DP gates"
        state = fuzz_state(network, seed)
        sequences = random_sequence_vectors(
            network, 50 + seed, frames, seed=seed * 31, x_fraction=0.1
        )
        multi = polarity_detection_words(
            network, faults, sequences, iddq=iddq, engine="multiword",
            unroll=frames, initial_state=state,
        )
        single = polarity_detection_words(
            network, faults, sequences, iddq=iddq, engine="compiled",
            unroll=frames, initial_state=state,
        )
        assert multi == single
        rng = np.random.default_rng(seed * 100 + frames)
        for fi in rng.choice(len(faults), size=2, replace=False):
            for vi in rng.choice(len(sequences), size=3, replace=False):
                expected = detects_polarity(
                    network, faults[fi], sequences[vi], iddq=iddq,
                    unroll=frames, initial_state=state,
                )
                assert bool((multi[fi] >> int(vi)) & 1) == expected

    @pytest.mark.parametrize("seed", FUZZ_SEEDS[:5])
    @pytest.mark.parametrize("frames", (2, 3))
    def test_stuck_open_matrices_identical(self, seed, frames):
        network = fuzz_network(seed)
        faults = faults_of(network, "stuck_open")
        state = fuzz_state(network, seed)
        sequences = random_sequence_vectors(
            network, 50, frames, seed=seed * 7
        )
        pairs = list(zip(sequences[:-1], sequences[1:]))
        multi = stuck_open_detection_words(
            network, faults, pairs, engine="multiword",
            unroll=frames, initial_state=state,
        )
        single = stuck_open_detection_words(
            network, faults, pairs, engine="compiled",
            unroll=frames, initial_state=state,
        )
        assert multi == single
        rng = np.random.default_rng(seed + 200)
        for fi in rng.choice(len(faults), size=2, replace=False):
            for pi in rng.choice(len(pairs), size=3, replace=False):
                init, test = pairs[pi]
                expected = detects_stuck_open(
                    network, faults[fi], init, test,
                    unroll=frames, initial_state=state,
                )
                assert bool((multi[fi] >> int(pi)) & 1) == expected

    @pytest.mark.parametrize("seed", FUZZ_SEEDS[:4])
    def test_parallel_campaigns_identical(self, seed):
        network = fuzz_network(seed)
        sa = faults_of(network, "stuck_at")
        po = faults_of(network, "polarity")
        so = faults_of(network, "stuck_open")
        state = fuzz_state(network, seed)
        sequences = random_sequence_vectors(network, 140, 3, seed=seed)
        pairs = list(zip(sequences[:80:2], sequences[1:80:2]))
        assert parallel_stuck_at_simulation(
            network, sa, sequences, engine="multiword",
            unroll=3, initial_state=state,
        ) == parallel_stuck_at_simulation(
            network, sa, sequences, engine="compiled",
            unroll=3, initial_state=state,
        )
        for iddq in (False, True):
            assert parallel_polarity_simulation(
                network, po, sequences, iddq=iddq, engine="multiword",
                unroll=3, initial_state=state,
            ) == parallel_polarity_simulation(
                network, po, sequences, iddq=iddq, engine="compiled",
                unroll=3, initial_state=state,
            )
        assert parallel_stuck_open_simulation(
            network, so, pairs, engine="multiword",
            unroll=3, initial_state=state,
        ) == parallel_stuck_open_simulation(
            network, so, pairs, engine="compiled",
            unroll=3, initial_state=state,
        )

    def test_deeper_unroll_never_loses_detections(self):
        # A fault detected within k frames stays detected at k+1: the
        # extra frame only adds observed outputs.  (Sequences stay the
        # same; the deeper unroll leaves trailing inputs X.)
        network = fuzz_network(6)
        faults = faults_of(network, "stuck_at")
        state = fuzz_state(network, 6)
        sequences = random_sequence_vectors(network, 40, 2, seed=61)
        shallow = stuck_at_detection_words(
            network, faults, sequences, unroll=2, initial_state=state
        )
        deep = stuck_at_detection_words(
            network, faults, sequences, unroll=3, initial_state=state
        )
        for w2, w3 in zip(shallow, deep):
            assert w2 & ~w3 == 0


# ---------------------------------------------------------------------------
# PODEM fault dropping on the unrolled form
# ---------------------------------------------------------------------------

class TestBatchDropping:
    def test_batch_drop_matches_detection_words(self):
        from repro.atpg.podem_compiled import batch_drop_detected

        network = s27()
        uv = unroll_network(network, 3)
        cnet = compile_network(uv.network)
        faults = faults_of(network, "stuck_at")
        pending = {
            f.name: stuck_at_unrolled_injection(uv, cnet, f)
            for f in faults
        }
        state = {q: 0 for q in network.flops}
        sequences = random_sequence_vectors(network, 8, 3, seed=3)
        words = stuck_at_detection_words(
            network, faults, sequences, unroll=3, initial_state=state
        )
        for k, cycles in enumerate(sequences):
            flat = uv.flatten_vector(cycles, state)
            dropped = batch_drop_detected(cnet, flat, pending)
            expected = {
                f.name
                for f, w in zip(faults, words)
                if (w >> k) & 1
            }
            assert dropped == expected


# ---------------------------------------------------------------------------
# The real ISCAS-89 s27
# ---------------------------------------------------------------------------

class TestS27:
    def test_parses_as_sequential(self):
        network = s27()
        assert network.is_sequential
        assert network.flops == {"G5": "G10", "G6": "G11", "G7": "G13"}
        assert network.stats()["gates"] == 10

    def test_full_stuck_at_coverage_from_reset(self):
        network = s27()
        faults = faults_of(network, "stuck_at")
        state = {q: 0 for q in network.flops}
        sequences = random_sequence_vectors(network, 256, 3, seed=27)
        result = parallel_stuck_at_simulation(
            network, faults, sequences, unroll=3, initial_state=state
        )
        assert result.coverage == 1.0

    @pytest.mark.parametrize("engine", ["multiword", "compiled"])
    def test_engines_agree_with_serial_oracle(self, engine):
        network = s27()
        faults = faults_of(network, "stuck_at")
        state = {q: 0 for q in network.flops}
        sequences = random_sequence_vectors(network, 20, 3, seed=5)
        words = stuck_at_detection_words(
            network, faults, sequences, engine=engine,
            unroll=3, initial_state=state,
        )
        for fi, fault in enumerate(faults):
            for vi, cycles in enumerate(sequences):
                expected = detects_stuck_at(
                    network, fault, cycles, unroll=3, initial_state=state
                )
                assert bool((words[fi] >> vi) & 1) == expected


# ---------------------------------------------------------------------------
# Sequential corpus: provenance + registry + differential at scale
# ---------------------------------------------------------------------------

class TestSequentialCorpus:
    @pytest.mark.parametrize("name", sorted(SEQ_CORPUS_RECIPES))
    def test_checked_in_netlist_matches_recipe(self, name):
        """Regenerating from the recipe reproduces the checked-in bytes."""
        from repro.logic.bench_format import write_bench

        path = NETLIST_DIR / f"{name}.bench"
        assert path.exists(), (
            "corpus netlist missing; run tools/gen_scaling_netlists.py"
        )
        assert write_bench(build_corpus_network(name)) == path.read_text()

    @pytest.mark.parametrize("name", ["s27", *sorted(SEQ_CORPUS_RECIPES)])
    def test_registry_ingests_with_sequential_tag(self, name):
        from repro.campaign.registry import get_registry

        reg = get_registry()
        spec = reg.spec(name)
        assert {"corpus", "iscas-class", "sequential"} <= spec.tags
        assert reg.load(name).is_sequential

    def test_sqx344_differential(self):
        network = build_corpus_network("sqx344")
        faults = faults_of(network, "stuck_at")
        state = {q: 0 for q in network.flops}
        sequences = random_sequence_vectors(network, 96, 2, seed=1)
        assert stuck_at_detection_words(
            network, faults, sequences, engine="multiword",
            unroll=2, initial_state=state,
        ) == stuck_at_detection_words(
            network, faults, sequences, engine="compiled",
            unroll=2, initial_state=state,
        )

    @pytest.mark.slow
    @pytest.mark.parametrize("name", sorted(SEQ_CORPUS_RECIPES))
    def test_corpus_differential_full(self, name):
        """Both sequential corpus circuits: multi-word vs single-word,
        stuck-at and polarity (voltage + IDDQ), 3 frames."""
        network = build_corpus_network(name)
        state = {q: 0 for q in network.flops}
        sequences = random_sequence_vectors(
            network, 128, 3, seed=7, x_fraction=0.05
        )
        sa = faults_of(network, "stuck_at")
        assert stuck_at_detection_words(
            network, sa, sequences, engine="multiword",
            unroll=3, initial_state=state,
        ) == stuck_at_detection_words(
            network, sa, sequences, engine="compiled",
            unroll=3, initial_state=state,
        )
        po = faults_of(network, "polarity")
        for iddq in (False, True):
            assert polarity_detection_words(
                network, po, sequences, iddq=iddq, engine="multiword",
                unroll=3, initial_state=state,
            ) == polarity_detection_words(
                network, po, sequences, iddq=iddq, engine="compiled",
                unroll=3, initial_state=state,
            )

    @pytest.mark.slow
    def test_sequential_scaling_campaign_single_digit_seconds(self):
        """The sequential acceptance bar: the ~1500-gate corpus circuit
        unrolled x3 completes the fault_sim cell in single digits."""
        import time

        from repro.campaign.tasks import run_fault_sim_task

        network = build_corpus_network("sqx1488")
        assert network.stats()["gates"] >= 1000
        start = time.perf_counter()
        metrics = run_fault_sim_task(network)
        elapsed = time.perf_counter() - start
        assert metrics["n_frames"] == 3
        # sqx1488 is deep (depth > 100) and PI-starved, so random
        # sequences plateau well below full coverage — the bar here is
        # "a meaningful fraction, fast", not ATPG-grade closure.
        assert metrics["stuck_at_coverage"] > 0.4
        assert metrics["polarity_iddq_coverage"] > 0.5
        assert elapsed < 10.0, f"sequential campaign took {elapsed:.1f}s"
