"""Pluggable store backends: protocol, sqlite semantics, migration,
multi-runner coordination and cross-backend determinism.

The contract under test mirrors the engine differential harness: the
*storage* layer must never change what a campaign computes.  A grid
run against the sqlite backend — on any worker count, split across
independent runner processes, interrupted by kills — must converge to
the same records (after :func:`strip_volatile`) as the single-worker
JSONL run, and the multi-runner split must produce exactly one result
row per task: none lost, none duplicated.
"""

import json
import multiprocessing
import os
import sqlite3
import time
from pathlib import Path

import pytest

from repro.campaign.backends import (
    BACKENDS,
    JsonlBackend,
    ResultBackend,
    SqliteBackend,
    detect_backend,
    migrate_jsonl_to_sqlite,
    open_store,
)
from repro.campaign.chaos import ChaosPolicy, StorageChaos, tear_tail
from repro.campaign.runner import RetryPolicy, expand_grid, run_campaign
from repro.campaign.store import ResultStore, stores_equal, strip_volatile

needs_posix = pytest.mark.skipif(
    os.name != "posix", reason="needs POSIX kill/fork semantics"
)
needs_fork = pytest.mark.skipif(
    multiprocessing.get_context().get_start_method() != "fork",
    reason="child-process scenarios need fork start method",
)

#: Tight backoff so scenarios run in seconds.
FAST = RetryPolicy(backoff_base=0.01, backoff_max=0.05, watchdog_grace=0.3)

GRID_CIRCUITS = ("c17", "tmr_voter")
GRID_CLASSES = ("stuck_at", "polarity")


def _ok_record(task_id, n=1):
    return {
        "schema": 2, "task_id": task_id, "circuit": task_id.split("/")[0],
        "status": "ok", "metrics": {"n": n}, "runtime_s": 0.01,
    }


# ---------------------------------------------------------------------------
# Detection + protocol
# ---------------------------------------------------------------------------

class TestDetection:
    def test_existing_files_classified_by_content(self, tmp_path):
        jsonl = tmp_path / "weird.sqlite"   # misleading suffix
        jsonl.write_text('{"task_id": "a"}\n')
        assert detect_backend(jsonl) == "jsonl"

        db = tmp_path / "weird.jsonl"       # misleading suffix
        sqlite3.connect(str(db)).executescript(
            "CREATE TABLE t (x INTEGER); INSERT INTO t VALUES (1);"
        )
        assert detect_backend(db) == "sqlite"

    def test_missing_files_classified_by_suffix(self, tmp_path):
        assert detect_backend(tmp_path / "a.jsonl") == "jsonl"
        assert detect_backend(tmp_path / "a.txt") == "jsonl"
        for suffix in (".sqlite", ".sqlite3", ".db", ".sq3"):
            assert detect_backend(tmp_path / f"a{suffix}") == "sqlite"

    def test_open_store_rejects_unknown_backend(self, tmp_path):
        with pytest.raises(ValueError, match="unknown backend"):
            open_store(tmp_path / "a.jsonl", "etcd")

    def test_both_backends_satisfy_the_protocol(self, tmp_path):
        for name, cls in BACKENDS.items():
            backend = cls(tmp_path / f"p.{name}")
            assert isinstance(backend, ResultBackend)
            backend.close() if name == "sqlite" else None


# ---------------------------------------------------------------------------
# Sqlite backend semantics
# ---------------------------------------------------------------------------

class TestSqliteBackend:
    def test_append_load_latest_round_trip(self, tmp_path):
        with SqliteBackend(tmp_path / "s.sqlite").open() as store:
            store.append(_ok_record("a", 1))
            store.append(_ok_record("b", 2))
            store.append(_ok_record("a", 3))  # rerun supersedes
            assert [r["metrics"]["n"] for r in store.load()] == [1, 2, 3]
            assert store.latest()["a"]["metrics"]["n"] == 3
        # Persists across close/open.
        with open_store(tmp_path / "s.sqlite") as store:
            assert len(store.load()) == 3

    def test_provenance_stamped_and_volatile(self, tmp_path):
        with SqliteBackend(tmp_path / "s.sqlite").open() as store:
            store.append(_ok_record("a"))
            record = store.load()[0]
        assert record["backend"] == "sqlite"
        assert record["store_schema"] == SqliteBackend.STORE_SCHEMA
        stripped = strip_volatile([record])[0]
        assert "backend" not in stripped and "store_schema" not in stripped

    def test_newer_store_schema_refused(self, tmp_path):
        path = tmp_path / "s.sqlite"
        SqliteBackend(path).open().close()
        conn = sqlite3.connect(str(path))
        conn.execute(
            "UPDATE meta SET value='99' WHERE key='store_schema'"
        )
        conn.commit(); conn.close()
        with pytest.raises(RuntimeError, match="newer than this code"):
            SqliteBackend(path).open()

    def test_verify_reports_healthy_store(self, tmp_path):
        with SqliteBackend(tmp_path / "s.sqlite").open() as store:
            store.register(["a"])
            assert store.claim("a")
            store.append(_ok_record("a"))
            report = store.verify()
        assert report["ok"] is True
        assert report["n_records"] == 1
        assert report["n_corrupt"] == 0
        assert report["tasks"] == {"done": 1}


class TestSqliteClaims:
    def test_claim_is_exclusive_until_released(self, tmp_path):
        path = tmp_path / "s.sqlite"
        a = SqliteBackend(path).open()
        b = SqliteBackend(path).open()
        a.register(["t1", "t2"])
        assert a.claim("t1")
        assert not b.claim("t1")          # exactly one winner
        assert b.claim("t2")
        assert not a.claim("t2")
        # release() hands back every claim this *process* holds (both
        # connections share a PID here; real runners are processes).
        a.release()
        assert b.claim("t1")
        a.close(); b.close()

    def test_done_task_is_not_reclaimable(self, tmp_path):
        with SqliteBackend(tmp_path / "s.sqlite").open() as store:
            store.register(["t1"])
            assert store.claim("t1")
            store.append(_ok_record("t1"))
            assert not store.claim("t1")           # done, not pending
            store.register(["t1"])                 # idempotent re-register
            assert not store.claim("t1")           # latest record is ok

    def test_failed_task_requeues_on_register(self, tmp_path):
        with SqliteBackend(tmp_path / "s.sqlite").open() as store:
            store.register(["t1"])
            assert store.claim("t1")
            record = _ok_record("t1")
            record["status"] = "error"
            store.append(record)
            store.register(["t1"])     # latest record not ok -> pending
            assert store.claim("t1")

    def test_force_register_requeues_done_tasks(self, tmp_path):
        with SqliteBackend(tmp_path / "s.sqlite").open() as store:
            store.register(["t1"])
            assert store.claim("t1")
            store.append(_ok_record("t1"))
            store.register(["t1"], force=True)     # --no-resume
            assert store.claim("t1")

    @needs_posix
    def test_stale_claim_of_dead_pid_requeued_on_open(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with SqliteBackend(path).open() as store:
            store.register(["t1"])
            assert store.claim("t1")
        # Simulate the claim-then-crash runner: resurrect the claim with
        # a PID that cannot exist.
        conn = sqlite3.connect(str(path))
        conn.execute(
            "UPDATE tasks SET status='claimed', owner_pid=99999999, "
            "claimed_at=0"
        )
        conn.commit(); conn.close()
        with SqliteBackend(path).open() as store:  # open reclaims stale
            assert store.claim("t1")

    def test_live_claim_not_stolen_on_open(self, tmp_path):
        path = tmp_path / "s.sqlite"
        a = SqliteBackend(path).open()
        a.register(["t1"])
        assert a.claim("t1")                # held by this live process
        with SqliteBackend(path).open() as b:
            assert not b.claim("t1")
        a.close()


class TestSqliteCorruptionRecovery:
    def _tamper(self, path, task_id):
        conn = sqlite3.connect(str(path))
        conn.execute(
            "UPDATE results SET record = substr(record, 1, 20) "
            "WHERE task_id = ?", (task_id,),
        )
        conn.commit(); conn.close()

    def test_corrupt_row_quarantined_and_requeued(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with SqliteBackend(path).open() as store:
            store.register(["a", "b"])
            store.claim("a"); store.append(_ok_record("a"))
            store.claim("b"); store.append(_ok_record("b"))
        self._tamper(path, "a")

        # repair=False only reports.
        probe = SqliteBackend(path)
        probe._conn = sqlite3.connect(str(path), isolation_level=None)
        report = probe.verify(repair=False)
        assert report["ok"] is False and report["n_corrupt"] == 1
        probe._conn.close()

        # open() quarantines the torn row and re-queues its task.
        with SqliteBackend(path).open() as store:
            report = store.verify()
            assert report["n_quarantined"] == 1
            assert "a" not in store.latest()
            assert store.latest()["b"]["status"] == "ok"
            assert store.claim("a")            # requeued
            assert not store.claim("b")        # untouched, still done
            # Store stays not-ok until the quarantined task recomputes.
            assert report["ok"] is False
            store.append(_ok_record("a"))
            assert store.verify()["ok"] is True

    def test_campaign_recomputes_quarantined_cell(self, tmp_path):
        path = tmp_path / "s.sqlite"
        grid = expand_grid(["c17"], ["stuck_at", "polarity"])
        reference = run_campaign(grid, store=path, backend="sqlite")
        assert reference.n_failed == 0
        self._tamper(path, "c17/stuck_at/compiled")
        rerun = run_campaign(grid, store=path)
        assert rerun.n_run == 1                    # exactly the torn cell
        assert rerun.n_skipped == 1
        assert stores_equal(rerun.records, reference.records)
        with open_store(path) as store:
            assert store.verify()["ok"] is True


# ---------------------------------------------------------------------------
# Migration
# ---------------------------------------------------------------------------

class TestMigration:
    def test_jsonl_to_sqlite_preserves_records_and_resume(self, tmp_path):
        src, dst = tmp_path / "a.jsonl", tmp_path / "a.sqlite"
        grid = expand_grid(["c17"], ["stuck_at", "polarity"])
        jsonl_run = run_campaign(grid, store=src)
        assert jsonl_run.n_failed == 0

        count = migrate_jsonl_to_sqlite(src, dst)
        assert count == 2
        assert src.exists()                        # source untouched
        with open_store(dst) as store:
            assert stores_equal(store.load(), jsonl_run.records)
            assert store.verify()["ok"] is True
            assert store.load()[0]["backend"] == "sqlite"  # re-stamped

        # Resume on the migrated store computes nothing.
        resumed = run_campaign(grid, store=dst)
        assert resumed.n_run == 0 and resumed.n_skipped == 2

    def test_migration_refuses_existing_destination(self, tmp_path):
        src = tmp_path / "a.jsonl"
        ResultStore(src).append(_ok_record("a"))
        dst = tmp_path / "exists.sqlite"
        dst.write_bytes(b"precious")
        with pytest.raises(FileExistsError, match="refusing"):
            migrate_jsonl_to_sqlite(src, dst)
        assert dst.read_bytes() == b"precious"

    def test_migration_tolerates_torn_source_tail(self, tmp_path):
        src, dst = tmp_path / "a.jsonl", tmp_path / "a.sqlite"
        store = ResultStore(src)
        store.append(_ok_record("a"))
        store.append(_ok_record("b"))
        store.close()
        tear_tail(src)
        assert migrate_jsonl_to_sqlite(src, dst) == 1   # torn row dropped
        with open_store(dst) as migrated:
            assert [r["task_id"] for r in migrated.load()] == ["a"]


# ---------------------------------------------------------------------------
# JSONL backend via the protocol
# ---------------------------------------------------------------------------

class TestJsonlBackend:
    def test_wraps_store_and_stamps_provenance(self, tmp_path):
        with JsonlBackend(tmp_path / "a.jsonl") as backend:
            assert backend.claim("anything")       # vacuous claiming
            backend.append(_ok_record("a"))
        record = ResultStore(tmp_path / "a.jsonl").load()[0]
        assert record["backend"] == "jsonl"
        assert record["store_schema"] == JsonlBackend.STORE_SCHEMA

    def test_verify_reports_torn_tail_and_repairs(self, tmp_path):
        path = tmp_path / "a.jsonl"
        store = ResultStore(path)
        store.append(_ok_record("a"))
        store.append(_ok_record("b"))
        store.close()
        tear_tail(path)
        backend = JsonlBackend(path, lock=False)
        report = backend.verify()
        assert report["torn_tail"] is True
        assert report["ok"] is True        # recoverable kill signature
        assert report["n_records"] == 1    # torn row dropped by the loader
        repaired = backend.verify(repair=True)
        assert repaired["torn_tail"] is False
        assert path.read_bytes().endswith(b"\n")

    def test_verify_flags_mid_file_corruption(self, tmp_path):
        path = tmp_path / "a.jsonl"
        path.write_text('{"task_id": "a"}\nnot json\n{"task_id": "b"}\n')
        report = JsonlBackend(path, lock=False).verify()
        assert report["ok"] is False
        assert report["n_corrupt"] == 1

    def test_enospc_append_retries_and_heals(self, tmp_path):
        chaos = StorageChaos({"append": {"a": ("enospc", "torn", "ok")}})
        with JsonlBackend(tmp_path / "a.jsonl", chaos=chaos) as backend:
            backend.append(_ok_record("a"))     # 2 failures, then lands
            backend.append(_ok_record("b"))
        records = ResultStore(tmp_path / "a.jsonl").load()
        assert [r["task_id"] for r in records] == ["a", "b"]
        # The torn attempt's half line was healed away, not glued to
        # the successful rewrite.
        for line in (tmp_path / "a.jsonl").read_text().splitlines():
            json.loads(line)


class TestUtf8Tear:
    """Satellite: a tail torn *inside* a multi-byte UTF-8 sequence."""

    def _non_ascii_store(self, path):
        store = ResultStore(path)
        store.append(_ok_record("a"))
        record = _ok_record("b")
        record["error"] = "μ-fault: polarity gate Θ misread"  # multi-byte
        store.append(record)
        store.close()
        return store

    def test_tear_inside_utf8_sequence(self, tmp_path):
        path = tmp_path / "a.jsonl"
        self._non_ascii_store(path)
        tear_tail(path, inside_utf8=True)
        tail = path.read_bytes()
        with pytest.raises(UnicodeDecodeError):
            tail.decode("utf-8")               # the tear is mid-character

    def test_loader_and_healing_survive_utf8_tear(self, tmp_path):
        path = tmp_path / "a.jsonl"
        self._non_ascii_store(path)
        tear_tail(path, inside_utf8=True)
        records = ResultStore(path, lock=False).load()
        assert [r["task_id"] for r in records] == ["a"]   # torn row dropped
        store = ResultStore(path)
        store.append(_ok_record("c"))
        store.close()
        lines = path.read_bytes().split(b"\n")
        assert [json.loads(l)["task_id"] for l in lines if l] == ["a", "c"]

    def test_tear_inside_utf8_requires_multibyte_content(self, tmp_path):
        path = tmp_path / "ascii.jsonl"
        ResultStore(path).append(_ok_record("a"))
        with pytest.raises(ValueError, match="pure ASCII"):
            tear_tail(path, inside_utf8=True)


# ---------------------------------------------------------------------------
# Multi-runner coordination (the acceptance scenario)
# ---------------------------------------------------------------------------

def _runner_process(store_path, start, done_counts, index):
    """One independent runner process sharing the sqlite store."""
    start.wait()
    grid = expand_grid(GRID_CIRCUITS, GRID_CLASSES)
    result = run_campaign(
        grid, store=Path(store_path), backend="sqlite", policy=FAST,
    )
    done_counts[index] = result.n_run


@needs_posix
@needs_fork
class TestMultiRunner:
    def test_two_processes_share_one_store_no_dup_no_loss(self, tmp_path):
        """ISSUE acceptance: two concurrent runner processes complete a
        full smoke grid on one sqlite store — zero duplicated rows,
        zero lost rows, and the result equals a 1-worker JSONL run."""
        context = multiprocessing.get_context("fork")
        store_path = tmp_path / "shared.sqlite"
        start = context.Event()
        counts = context.Array("i", [0, 0])
        procs = [
            context.Process(
                target=_runner_process,
                args=(str(store_path), start, counts, k),
            )
            for k in range(2)
        ]
        for proc in procs:
            proc.start()
        start.set()
        for proc in procs:
            proc.join(120)
            assert proc.exitcode == 0

        grid = expand_grid(GRID_CIRCUITS, GRID_CLASSES)
        with open_store(store_path) as store:
            records = store.load()
            report = store.verify()
        # Zero lost, zero duplicated: exactly one row per grid cell.
        assert sorted(r["task_id"] for r in records) == sorted(
            t.task_id for t in grid
        )
        assert all(r["status"] == "ok" for r in records)
        assert report["ok"] is True
        assert report["tasks"] == {"done": len(grid)}
        # The split really happened across both processes (the grid ran
        # exactly once in total, however it was divided).
        assert counts[0] + counts[1] == len(grid)

        # And the shared-store result equals an undisturbed 1-worker
        # JSONL campaign.
        oracle = run_campaign(grid, store=tmp_path / "oracle.jsonl")
        assert stores_equal(records, oracle.records)


# ---------------------------------------------------------------------------
# Satellite: sequential cells, both backends, kill/resume + 1-vs-N
# ---------------------------------------------------------------------------

SEQ_GRID = (("s27", "sqx344"), ("fault_sim",))
SEQ_KILL_TASK = "sqx344/fault_sim/auto"


def _seq_killed_runner(store_path, backend):
    """Child: run the sequential grid but die mid-append (mid-line for
    JSONL, mid-transaction for sqlite) on the second cell."""
    chaos = ChaosPolicy(
        {}, storage=StorageChaos({"append": {SEQ_KILL_TASK: ("kill",)}})
    )
    run_campaign(
        expand_grid(*SEQ_GRID, engine="auto"),
        store=Path(store_path), backend=backend, policy=FAST, chaos=chaos,
    )


@needs_posix
@needs_fork
class TestSequentialBackendDeterminism:
    """Satellite: 1-vs-N determinism for the sequential (s27/sqx344)
    cells on BOTH backends, including kill/resume mid-grid."""

    @pytest.fixture(scope="class")
    def seq_oracle(self):
        result = run_campaign(expand_grid(*SEQ_GRID, engine="auto"))
        assert all(r["status"] == "ok" for r in result.records)
        return result.records

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_kill_mid_grid_then_parallel_resume_converges(
        self, tmp_path, seq_oracle, backend
    ):
        store_path = tmp_path / f"seq.{backend}"
        context = multiprocessing.get_context("fork")
        proc = context.Process(
            target=_seq_killed_runner, args=(str(store_path), backend)
        )
        proc.start()
        proc.join(300)
        # The runner died by SIGKILL mid-append, as scripted.
        assert proc.exitcode is not None and proc.exitcode < 0

        # The interrupted store holds only complete rows (recovery may
        # run lazily on the next open, so open through the backend).
        with open_store(store_path, backend, lock=False) as store:
            survivors = store.latest()
        assert SEQ_KILL_TASK not in survivors
        assert all(r["status"] == "ok" for r in survivors.values())

        # Resume with 2 workers: recomputes exactly the killed cell and
        # converges to the 1-worker in-memory oracle on both backends.
        result = run_campaign(
            expand_grid(*SEQ_GRID, engine="auto"),
            store=store_path, backend=backend, workers=2, policy=FAST,
        )
        assert result.n_run == 1
        assert result.n_skipped == len(survivors)
        assert stores_equal(result.records, seq_oracle)
        with open_store(store_path, backend, lock=False) as store:
            assert stores_equal(list(store.latest().values()), seq_oracle)
            assert store.verify(repair=True)["ok"] is True


# ---------------------------------------------------------------------------
# StorageChaos mechanics
# ---------------------------------------------------------------------------

class TestStorageChaos:
    def test_scripts_consumed_per_event_and_task(self):
        chaos = StorageChaos({"append": {"a": ("enospc", "torn")}})
        assert chaos.append_fault("a") == "enospc"
        assert chaos.append_fault("b") == "ok"     # other tasks clean
        assert chaos.append_fault("a") == "torn"
        assert chaos.append_fault("a") == "ok"     # past the script
        chaos.claim_fault("a")                     # no claim script: ok

    def test_unknown_event_and_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown storage chaos event"):
            StorageChaos({"fsync": {"a": ("ok",)}})
        with pytest.raises(ValueError, match="unknown append fault"):
            StorageChaos({"append": {"a": ("hang",)}})
        with pytest.raises(ValueError, match="unknown claim fault"):
            StorageChaos({"claim": {"a": ("enospc",)}})

    def test_sqlite_enospc_append_retried(self, tmp_path):
        chaos = StorageChaos({"append": {"a": ("enospc", "enospc")}})
        with SqliteBackend(tmp_path / "s.sqlite", chaos=chaos).open() as s:
            s.append(_ok_record("a"))             # retried past 2 failures
            assert len(s.load()) == 1
            assert s.verify()["ok"] is True
