"""Differential harness for the multi-word fault×vector engine.

The multi-word engine (:mod:`repro.logic.multiword`) re-expresses the
single-word dual-rail semantics of :mod:`repro.logic.compiled` as 2-D
numpy ``uint64`` sweeps; nothing here is allowed to be "close" — every
test asserts *bit-identical* detection matrices across three
independent implementations:

* the multi-word engine (``engine="multiword"``),
* the single-word compiled path (``engine="compiled"``), and
* the legacy dict simulator (``detects_*`` oracles), spot-checked
  per (fault, vector) bit since it is orders of magnitude slower.

Circuits come from three sources: hand-written benchmarks, the seeded
random-network fuzzer (:mod:`repro.circuits.random_circuits`), and the
checked-in ISCAS-class corpus, whose provenance (recipe regeneration
reproduces the checked-in bytes) is asserted here too.
"""

import pathlib

import numpy as np
import pytest

from repro.atpg.fault_sim import (
    _use_multiword,
    detects_polarity,
    detects_stuck_at,
    detects_stuck_open,
    parallel_polarity_simulation,
    parallel_stuck_at_simulation,
    parallel_stuck_open_simulation,
    polarity_detection_words,
    stuck_at_detection_words,
    stuck_at_injection,
    stuck_open_detection_words,
)
from repro.atpg.podem_compiled import batch_drop_detected
from repro.circuits import c17, parity_tree, ripple_carry_adder
from repro.circuits.random_circuits import (
    CORPUS_RECIPES,
    build_corpus_network,
    random_network,
    random_vectors,
)
from repro.faults import get_universe
from repro.logic import multiword as mw
from repro.logic.compiled import compile_network, pack_vectors

NETLIST_DIR = (
    pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "netlists"
)


def faults_of(network, universe):
    return get_universe(universe).collapse(network)


def pair_list(vectors):
    return list(zip(vectors[:-1], vectors[1:]))


# ---------------------------------------------------------------------------
# Packing primitives
# ---------------------------------------------------------------------------

class TestPacking:
    def test_word_int_roundtrip(self):
        for value in (0, 1, (1 << 64) - 1, 1 << 64, (1 << 200) - 12345):
            n_words = max(1, -(-value.bit_length() // 64))
            row = mw.words_from_int(value, n_words)
            assert row.dtype == np.dtype("<u8")
            assert mw.int_from_words(row) == value

    @pytest.mark.parametrize("n", [1, 63, 64, 65, 128, 129, 200])
    def test_vector_counts_pack_to_expected_words(self, n):
        network = c17()
        cnet = compile_network(network)
        vectors = random_vectors(network, n, seed=n)
        mv = mw.pack_vectors_multiword(cnet, vectors)
        assert mv.n == n
        assert mv.n_words == -(-n // 64)
        # Tail mask covers exactly the first n bits.
        assert mw.int_from_words(mv.mask) == (1 << n) - 1
        # Bit k of the packed rails == the single-word packing of the
        # same vector (cross-check against the proven engine).
        for base in range(0, n, 64):
            chunk = vectors[base:base + 64]
            packed = pack_vectors(cnet, chunk)
            w = base // 64
            for idx in mv.ones:
                assert int(mv.ones[idx][w]) == packed.ones[idx]
                assert int(mv.zeros[idx][w]) == packed.zeros[idx]

    def test_x_entries_stay_x(self):
        network = c17()
        cnet = compile_network(network)
        vectors = random_vectors(network, 70, seed=9, x_fraction=0.4)
        mv = mw.pack_vectors_multiword(cnet, vectors)
        for k, vector in enumerate(vectors):
            w, bit = divmod(k, 64)
            for net in network.primary_inputs:
                idx = cnet.net_index[net]
                one = (int(mv.ones[idx][w]) >> bit) & 1
                zero = (int(mv.zeros[idx][w]) >> bit) & 1
                if net not in vector:
                    assert (one, zero) == (0, 0)  # X: neither rail
                else:
                    assert (one, zero) == (
                        (1, 0) if vector[net] else (0, 1)
                    )

    def test_good_simulation_matches_single_word(self):
        network = ripple_carry_adder(4)
        cnet = compile_network(network)
        vectors = random_vectors(network, 130, seed=3, x_fraction=0.2)
        mv = mw.pack_vectors_multiword(cnet, vectors)
        ones, zeros = mw.simulate_good(cnet, mv)
        for base in range(0, len(vectors), 64):
            packed = pack_vectors(cnet, vectors[base:base + 64])
            good_ones, good_zeros = cnet.simulate(packed)
            w = base // 64
            for row in range(cnet.n_nets):
                assert int(ones[row, w]) == good_ones[row]
                assert int(zeros[row, w]) == good_zeros[row]


# ---------------------------------------------------------------------------
# Engine selection
# ---------------------------------------------------------------------------

class TestEngineSelection:
    def test_auto_thresholds(self):
        assert not _use_multiword("auto", n_faults=4, n_vectors=64)
        assert _use_multiword("auto", n_faults=4, n_vectors=129)
        assert _use_multiword("auto", n_faults=64, n_vectors=8)
        assert _use_multiword("multiword", n_faults=1, n_vectors=1)
        assert not _use_multiword("compiled", n_faults=9999, n_vectors=9999)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-sim engine"):
            _use_multiword("turbo", 1, 1)


# ---------------------------------------------------------------------------
# Differential fuzz suite: random circuits, three engines
# ---------------------------------------------------------------------------

FUZZ_SEEDS = [1, 2, 3, 5, 8, 13]


def fuzz_network(seed):
    return random_network(
        seed,
        n_gates=20 + 7 * seed,
        n_inputs=4 + seed % 5,
        dp_fraction=0.3,
    )


class TestDifferentialFuzz:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_stuck_at_matrices_identical(self, seed):
        network = fuzz_network(seed)
        faults = faults_of(network, "stuck_at")
        vectors = random_vectors(
            network, 100 + seed, seed=seed * 17, x_fraction=0.1
        )
        multi = stuck_at_detection_words(
            network, faults, vectors, engine="multiword"
        )
        single = stuck_at_detection_words(
            network, faults, vectors, engine="compiled"
        )
        assert multi == single
        # Legacy dict oracle, spot-checked per (fault, vector) bit.
        rng = np.random.default_rng(seed)
        for fi in rng.choice(len(faults), size=4, replace=False):
            for vi in rng.choice(len(vectors), size=6, replace=False):
                expected = detects_stuck_at(
                    network, faults[fi], vectors[vi]
                )
                assert bool((multi[fi] >> int(vi)) & 1) == expected

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    @pytest.mark.parametrize("iddq", [False, True])
    def test_polarity_matrices_identical(self, seed, iddq):
        network = fuzz_network(seed)
        faults = faults_of(network, "polarity")
        assert faults, "fuzz recipe must include DP gates"
        vectors = random_vectors(
            network, 90 + seed, seed=seed * 31, x_fraction=0.1
        )
        multi = polarity_detection_words(
            network, faults, vectors, iddq=iddq, engine="multiword"
        )
        single = polarity_detection_words(
            network, faults, vectors, iddq=iddq, engine="compiled"
        )
        assert multi == single
        rng = np.random.default_rng(seed + 100)
        for fi in rng.choice(len(faults), size=3, replace=False):
            for vi in rng.choice(len(vectors), size=5, replace=False):
                expected = detects_polarity(
                    network, faults[fi], vectors[vi], iddq=iddq
                )
                assert bool((multi[fi] >> int(vi)) & 1) == expected

    @pytest.mark.parametrize("seed", FUZZ_SEEDS[:4])
    def test_stuck_open_matrices_identical(self, seed):
        network = fuzz_network(seed)
        faults = faults_of(network, "stuck_open")
        pairs = pair_list(random_vectors(network, 80, seed=seed * 7))
        multi = stuck_open_detection_words(
            network, faults, pairs, engine="multiword"
        )
        single = stuck_open_detection_words(
            network, faults, pairs, engine="compiled"
        )
        assert multi == single
        rng = np.random.default_rng(seed + 200)
        for fi in rng.choice(len(faults), size=3, replace=False):
            for pi in rng.choice(len(pairs), size=4, replace=False):
                init, test = pairs[pi]
                expected = detects_stuck_open(
                    network, faults[fi], init, test
                )
                assert bool((multi[fi] >> int(pi)) & 1) == expected

    @pytest.mark.parametrize("seed", FUZZ_SEEDS[:3])
    def test_parallel_results_identical(self, seed):
        network = fuzz_network(seed)
        sa = faults_of(network, "stuck_at")
        po = faults_of(network, "polarity")
        so = faults_of(network, "stuck_open")
        vectors = random_vectors(network, 150, seed=seed, x_fraction=0.05)
        pairs = pair_list(vectors[:90])
        assert parallel_stuck_at_simulation(
            network, sa, vectors, engine="multiword"
        ) == parallel_stuck_at_simulation(
            network, sa, vectors, engine="compiled"
        )
        for iddq in (False, True):
            assert parallel_polarity_simulation(
                network, po, vectors, iddq=iddq, engine="multiword"
            ) == parallel_polarity_simulation(
                network, po, vectors, iddq=iddq, engine="compiled"
            )
        assert parallel_stuck_open_simulation(
            network, so, pairs, engine="multiword"
        ) == parallel_stuck_open_simulation(
            network, so, pairs, engine="compiled"
        )

    def test_odd_fault_chunks_identical(self):
        network = fuzz_network(3)
        cnet = compile_network(network)
        faults = faults_of(network, "stuck_at")
        vectors = random_vectors(network, 77, seed=5)
        mv = mw.pack_vectors_multiword(cnet, vectors)
        good = mw.simulate_good(cnet, mv)
        injections = [stuck_at_injection(cnet, f) for f in faults]
        reference = mw.batch_detect(cnet, mv, good, injections)
        for chunk in (1, 13, 37, 1000):
            assert (
                mw.batch_detect(
                    cnet, mv, good, injections, fault_chunk=chunk
                )
                == reference
            )


# ---------------------------------------------------------------------------
# Hand-written benchmarks (structured logic, not just random DAGs)
# ---------------------------------------------------------------------------

class TestBenchmarkCircuits:
    @pytest.mark.parametrize(
        "builder", [c17, lambda: ripple_carry_adder(8), lambda: parity_tree(8)]
    )
    def test_stuck_at_identical(self, builder):
        network = builder()
        faults = faults_of(network, "stuck_at")
        vectors = random_vectors(network, 200, seed=42, x_fraction=0.15)
        assert stuck_at_detection_words(
            network, faults, vectors, engine="multiword"
        ) == stuck_at_detection_words(
            network, faults, vectors, engine="compiled"
        )


# ---------------------------------------------------------------------------
# PODEM fault dropping through the batch path
# ---------------------------------------------------------------------------

class TestBatchDropping:
    def test_batch_drop_matches_per_fault_reference(self):
        network = build_corpus_network("cpx432")
        cnet = compile_network(network)
        faults = faults_of(network, "stuck_at")
        pending = {f.name: stuck_at_injection(cnet, f) for f in faults}
        assert len(pending) >= 512  # exercises the multi-word branch
        vector = random_vectors(network, 1, seed=5)[0]
        got = batch_drop_detected(cnet, vector, pending)
        packed = pack_vectors(cnet, [vector])
        good = cnet.simulate(packed)
        expected = {
            name
            for name, inj in pending.items()
            if cnet.detect_word(packed, good, inj)
        }
        assert got == expected
        assert got  # a random vector drops *something* at this scale


# ---------------------------------------------------------------------------
# ISCAS-class corpus: provenance + registry + differential at scale
# ---------------------------------------------------------------------------

class TestCorpus:
    @pytest.mark.parametrize("name", sorted(CORPUS_RECIPES))
    def test_checked_in_netlist_matches_recipe(self, name):
        """Regenerating from the recipe reproduces the checked-in bytes."""
        from repro.logic.bench_format import write_bench

        path = NETLIST_DIR / f"{name}.bench"
        assert path.exists(), "corpus netlist missing; run tools/gen_scaling_netlists.py"
        assert write_bench(build_corpus_network(name)) == path.read_text()

    @pytest.mark.parametrize("name", sorted(CORPUS_RECIPES))
    def test_registry_ingests_corpus(self, name):
        from repro.campaign.registry import get_registry

        reg = get_registry()
        spec = reg.spec(name)
        assert {"corpus", "iscas-class"} <= spec.tags
        network = reg.load(name)
        assert network.stats()["gates"] == CORPUS_RECIPES[name]["n_gates"]

    def test_cpx432_differential(self):
        network = build_corpus_network("cpx432")
        faults = faults_of(network, "stuck_at")
        vectors = random_vectors(network, 96, seed=1)
        assert stuck_at_detection_words(
            network, faults, vectors, engine="multiword"
        ) == stuck_at_detection_words(
            network, faults, vectors, engine="compiled"
        )

    @pytest.mark.slow
    @pytest.mark.parametrize("name", sorted(CORPUS_RECIPES))
    def test_corpus_differential_full(self, name):
        """Every corpus circuit: multi-word vs single-word, all classes."""
        network = build_corpus_network(name)
        vectors = random_vectors(network, 192, seed=7, x_fraction=0.05)
        sa = faults_of(network, "stuck_at")
        assert stuck_at_detection_words(
            network, sa, vectors, engine="multiword"
        ) == stuck_at_detection_words(
            network, sa, vectors, engine="compiled"
        )
        po = faults_of(network, "polarity")
        for iddq in (False, True):
            assert polarity_detection_words(
                network, po, vectors, iddq=iddq, engine="multiword"
            ) == polarity_detection_words(
                network, po, vectors, iddq=iddq, engine="compiled"
            )

    @pytest.mark.slow
    def test_scaling_campaign_single_digit_seconds(self):
        """The acceptance bar: ≥1000-gate full campaign under 10 s."""
        import time

        from repro.campaign.tasks import run_fault_sim_task

        network = build_corpus_network("cpx1908")
        assert network.stats()["gates"] >= 1000
        start = time.perf_counter()
        metrics = run_fault_sim_task(network)
        elapsed = time.perf_counter() - start
        assert metrics["stuck_at_coverage"] > 0.5
        assert metrics["polarity_iddq_coverage"] > 0.5
        assert elapsed < 10.0, f"scaling campaign took {elapsed:.1f}s"
