"""Tests for the paper's test algorithms (Section V)."""

import itertools

import pytest

from repro.core import (
    channel_break_procedure,
    polarity_fault_table,
    run_channel_break_procedure,
    simulate_two_pattern,
    two_pattern_sof_tests,
)
from repro.gates import (
    ALL_CELLS,
    DP_CELLS,
    INV,
    NAND2,
    NAND3,
    NOR2,
    SP_CELLS,
    XOR2,
)
from repro.logic.values import Z


class TestTwoPatternSOF:
    @pytest.mark.parametrize("cell_name", sorted(SP_CELLS))
    def test_sp_cells_fully_covered(self, cell_name):
        """Every SP-cell transistor gets a verified two-pattern test."""
        cell = SP_CELLS[cell_name]
        tests = two_pattern_sof_tests(cell)
        covered = {t for test in tests for t in test.covered}
        assert covered == {t.name for t in cell.transistors}
        for test in tests:
            for target in test.covered:
                _, final = simulate_two_pattern(cell, test, target)
                assert final != cell.function(test.test_vector)

    @pytest.mark.parametrize("cell_name", sorted(DP_CELLS))
    def test_dp_cells_have_no_usable_tests(self, cell_name):
        """DP redundancy masks all single breaks: no SOF tests exist."""
        assert two_pattern_sof_tests(DP_CELLS[cell_name]) == []

    def test_nand2_test_count_matches_paper(self):
        # The paper lists three vectors pairs; our cover is also three.
        assert len(two_pattern_sof_tests(NAND2)) == 3

    def test_papers_nand2_vectors_also_work(self):
        """The paper's own set {11->01, 11->10, 00->11} detects all four
        breaks in our implementation."""
        from repro.core.test_algorithms import TwoPatternTest

        paper_set = [
            TwoPatternTest((1, 1), (0, 1), ("t1",)),
            TwoPatternTest((1, 1), (1, 0), ("t2",)),
            TwoPatternTest((0, 0), (1, 1), ("t3", "t4")),
        ]
        for test in paper_set:
            for target in test.covered:
                _, final = simulate_two_pattern(NAND2, test, target)
                assert final != NAND2.function(test.test_vector)

    def test_fault_free_passes_two_pattern(self):
        for test in two_pattern_sof_tests(NAND2):
            _, final = simulate_two_pattern(NAND2, test, None)
            assert final == NAND2.function(test.test_vector)

    def test_nand3_covered(self):
        tests = two_pattern_sof_tests(NAND3)
        covered = {t for test in tests for t in test.covered}
        assert len(covered) == 6


class TestPolarityFaultTable:
    def test_xor2_rows_complete(self):
        rows = polarity_fault_table(XOR2)
        assert len(rows) == 8  # 4 transistors x {n, p}
        assert all(r.detecting_vector is not None for r in rows)
        assert all(r.leakage_detect for r in rows)

    def test_stuck_at_n_matches_paper(self):
        rows = {
            (r.fault_type, r.transistor): r
            for r in polarity_fault_table(XOR2)
        }
        assert rows[("stuck-at n-type", "t1")].detecting_vector == (0, 0)
        assert rows[("stuck-at n-type", "t2")].detecting_vector == (1, 1)
        assert rows[("stuck-at n-type", "t3")].detecting_vector == (0, 1)
        assert rows[("stuck-at n-type", "t4")].detecting_vector == (1, 0)
        # Pull-ups: leakage only; pull-downs: output too.
        assert not rows[("stuck-at n-type", "t1")].output_detect
        assert not rows[("stuck-at n-type", "t2")].output_detect
        assert rows[("stuck-at n-type", "t3")].output_detect
        assert rows[("stuck-at n-type", "t4")].output_detect

    def test_stuck_at_p_pair_symmetry(self):
        """s-a-p detecting vectors are the pair-swapped s-a-n ones."""
        rows = {
            (r.fault_type, r.transistor): r.detecting_vector
            for r in polarity_fault_table(XOR2)
        }
        assert rows[("stuck-at p-type", "t1")] == rows[
            ("stuck-at n-type", "t2")
        ]
        assert rows[("stuck-at p-type", "t3")] == rows[
            ("stuck-at n-type", "t4")
        ]


class TestChannelBreakProcedure:
    @pytest.mark.parametrize("cell_name", sorted(DP_CELLS))
    def test_procedure_exists_for_dp_cells(self, cell_name):
        cell = DP_CELLS[cell_name]
        for t in cell.transistors:
            procedure = channel_break_procedure(cell, t.name)
            assert procedure.steps, f"{cell_name}.{t.name}"

    def test_rejects_sp_cells(self):
        with pytest.raises(ValueError):
            channel_break_procedure(NAND2, "t1")

    @pytest.mark.parametrize("cell_name", ["XOR2", "XNOR2", "MAJ3"])
    def test_verdicts_correct_both_ways(self, cell_name):
        """Property: the procedure detects every actual break and never
        raises a false alarm on an intact device."""
        cell = ALL_CELLS[cell_name]
        for t in cell.transistors:
            assert run_channel_break_procedure(cell, t.name, broken=True)
            assert not run_channel_break_procedure(
                cell, t.name, broken=False
            )

    def test_procedure_steps_reference_table_iii(self):
        procedure = channel_break_procedure(XOR2, "t1")
        vectors = {step.vector for step in procedure.steps}
        # t1's s-a-n detecting vector 00 must be exercised.
        assert (0, 0) in vectors


class TestEssentialVectors:
    def test_inv_pull_up_essential_at_zero(self):
        from repro.core.test_algorithms import _essential_vectors

        assert _essential_vectors(INV, "t1") == [(0,)]
        assert _essential_vectors(INV, "t3") == [(1,)]

    def test_nor2_series_pull_up(self):
        from repro.core.test_algorithms import _essential_vectors

        # Both series pull-up transistors are essential only at 00.
        assert _essential_vectors(NOR2, "t1") == [(0, 0)]
        assert _essential_vectors(NOR2, "t2") == [(0, 0)]

    def test_xor_has_none(self):
        from repro.core.test_algorithms import _essential_vectors

        for t in XOR2.transistors:
            assert _essential_vectors(XOR2, t.name) == []
