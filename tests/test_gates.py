"""Tests for the CP gate library: structure and electrical behaviour."""

import itertools

import pytest

from repro.gates import (
    ALL_CELLS,
    DP_CELLS,
    INV,
    MAJ3,
    NAND2,
    SP_CELLS,
    XOR2,
    build_cell_circuit,
    dc_truth_table,
    get_cell,
    static_leakage,
    transition_delay,
    verify_truth_table,
)
from repro.gates.cell import Cell, Transistor

VDD = 1.2


class TestLibraryStructure:
    def test_categories(self):
        assert set(SP_CELLS) == {"INV", "NAND2", "NOR2", "NAND3", "NOR3"}
        assert set(DP_CELLS) == {"XOR2", "XNOR2", "XOR3", "MAJ3", "MIN3"}

    def test_get_cell_case_insensitive(self):
        assert get_cell("xor2") is XOR2

    def test_get_cell_unknown(self):
        with pytest.raises(KeyError):
            get_cell("NAND9")

    def test_sp_cells_have_rail_polarity(self):
        for cell in SP_CELLS.values():
            for t in cell.transistors:
                assert t.pgs in ("vdd", "gnd")
                assert t.pgd in ("vdd", "gnd")

    def test_dp_cells_have_signal_polarity(self):
        for cell in DP_CELLS.values():
            assert any(
                t.pgs not in ("vdd", "gnd") for t in cell.transistors
            )

    def test_paper_transistor_names(self):
        assert {t.name for t in XOR2.transistors} == {"t1", "t2", "t3", "t4"}
        assert {t.name for t in INV.transistors} == {"t1", "t3"}

    def test_xor2_roles_match_table_iii(self):
        roles = {t.name: t.role for t in XOR2.transistors}
        assert roles == {
            "t1": "pull_up",
            "t2": "pull_up",
            "t3": "pull_down",
            "t4": "pull_down",
        }

    def test_dp_networks_are_redundant_pairs(self):
        """For every conducting input combo of XOR2, exactly two devices
        conduct — one n-configured, one p-configured (full-swing pair)."""
        for a, b in itertools.product((0, 1), repeat=2):
            values = XOR2.net_values((a, b))
            conducting = []
            for t in XOR2.transistors:
                cg = values[t.cg]
                pg = values[t.pgs]
                if cg == pg == 1:
                    conducting.append((t.name, "n"))
                elif cg == pg == 0:
                    conducting.append((t.name, "p"))
            assert len(conducting) == 2
            assert {mode for _, mode in conducting} == {"n", "p"}


class TestCellDataclass:
    def test_rejects_duplicate_transistors(self):
        t = Transistor("t1", "out", "a", "gnd", "gnd", "vdd", "pull_up")
        with pytest.raises(ValueError):
            Cell("BAD", ("a",), (t, t), "SP", lambda v: 0)

    def test_rejects_sp_with_signal_pg(self):
        t = Transistor("t1", "out", "a", "b", "b", "vdd", "pull_up")
        with pytest.raises(ValueError):
            Cell("BAD", ("a", "b"), (t,), "SP", lambda v: 0)

    def test_rejects_bad_role(self):
        with pytest.raises(ValueError):
            Transistor("t1", "out", "a", "gnd", "gnd", "vdd", "sideways")

    def test_pg_property_requires_shared_net(self):
        t = Transistor("t1", "out", "a", "x", "y", "vdd", "pull_up")
        with pytest.raises(ValueError):
            _ = t.pg

    def test_truth_table_size(self):
        assert len(MAJ3.truth_table()) == 8

    def test_net_values_include_complements(self):
        values = XOR2.net_values((1, 0))
        assert values["a"] == 1
        assert values["a_n"] == 0
        assert values["b_n"] == 1

    def test_net_values_validates_width(self):
        with pytest.raises(ValueError):
            XOR2.net_values((1,))

    def test_complement_nets(self):
        assert XOR2.complement_nets() == ("a_n", "b_n")
        assert INV.complement_nets() == ()

    def test_internal_nets(self):
        assert NAND2.internal_nets() == ("x1",)


@pytest.mark.parametrize("cell_name", sorted(ALL_CELLS))
def test_dc_truth_table_matches_reference(cell_name):
    """Integration: every library cell computes its Boolean function in
    full SPICE DC analysis with FO2 loading."""
    cell = ALL_CELLS[cell_name]
    bench = build_cell_circuit(cell, fanout=2)
    assert verify_truth_table(bench)


class TestOutputQuality:
    def test_full_swing_xor(self):
        bench = build_cell_circuit(XOR2, fanout=4)
        table = dc_truth_table(bench)
        for vector, (volts, _) in table.items():
            expected = XOR2.function(vector)
            assert volts == pytest.approx(expected * VDD, abs=0.08)

    def test_nominal_leakage_sub_nanoamp(self):
        bench = build_cell_circuit(XOR2, fanout=4)
        for vector in itertools.product((0, 1), repeat=2):
            assert static_leakage(bench, vector) < 1e-9

    def test_inv_delay_reasonable(self):
        bench = build_cell_circuit(INV, fanout=4)
        d = transition_delay(bench, "a", {}, rising=False)
        assert 20e-12 < d < 500e-12

    def test_nand2_delay_direction(self):
        bench = build_cell_circuit(NAND2, fanout=4)
        d = transition_delay(bench, "a", {"b": 1}, rising=True)
        assert d < 1e-9


class TestTestbench:
    def test_set_vector_width_check(self):
        bench = build_cell_circuit(XOR2)
        with pytest.raises(ValueError):
            bench.set_vector((1,))

    def test_device_names(self):
        bench = build_cell_circuit(XOR2)
        assert bench.device_name("t1") == "xor2.t1"
        assert "xor2.t1" in bench.circuit.devices

    def test_complement_sources_track(self):
        bench = build_cell_circuit(XOR2)
        bench.set_input("a", VDD)
        assert bench.circuit.vsources["vin_a_n"].waveform(0.0) == (
            pytest.approx(0.0)
        )

    def test_fanout_zero_keeps_load_cap(self):
        bench = build_cell_circuit(INV, fanout=0)
        assert any(
            c.a == "out" or c.b == "out"
            for c in bench.circuit.capacitors.values()
        )
