"""Tests for the look-up-table compact model (Verilog-A analogue)."""

import numpy as np
import pytest

from repro.device import GateOxideShort, TIGSiNWFET, TableModel

VDD = 1.2


@pytest.fixture(scope="module")
def table():
    return TableModel(TIGSiNWFET(), grid_points=25, vds_points=17)


class TestFidelity:
    def test_on_current_close(self, table):
        exact = table.device.drain_current(VDD, VDD, VDD, VDD, 0.0)
        approx = table.drain_current(VDD, VDD, VDD, VDD, 0.0)
        assert approx == pytest.approx(exact, rel=1e-2)

    def test_log_error_bounded(self, table):
        # The paper's flow treats the table model as a faithful device
        # stand-in.  Deep-subthreshold cells change ~1.7 decades per grid
        # step, so log-linear interpolation is decade-accurate there and
        # percent-accurate in conduction; bound the worst case at 1.2
        # decades.
        assert table.max_relative_log_error(samples=300) < 1.2

    def test_on_region_percent_accurate(self, table):
        import numpy as np

        rng = np.random.default_rng(5)
        v = rng.uniform(0.8, VDD, size=(100, 3))
        exact = np.asarray(
            table.device.drain_current(v[:, 0], v[:, 1], v[:, 2], VDD, 0.0)
        )
        approx = np.asarray(
            table.drain_current(v[:, 0], v[:, 1], v[:, 2], VDD, 0.0)
        )
        np.testing.assert_allclose(approx, exact, rtol=0.25)

    def test_reverse_operation_antisymmetric(self, table):
        fwd = table.drain_current(VDD, VDD, VDD, VDD, 0.0)
        rev = table.drain_current(VDD, VDD, VDD, 0.0, VDD)
        assert rev == pytest.approx(-fwd, rel=1e-6)

    def test_vectorised_evaluation(self, table):
        v = np.linspace(0, VDD, 7)
        i = table.drain_current(v, VDD, VDD, VDD, 0.0)
        assert np.asarray(i).shape == (7,)
        # Rising transfer curve, allowing picoamp-scale interpolation
        # wiggle at the saturated top.
        assert np.all(np.diff(np.asarray(i)) > -1e-11)


class TestTerminalCurrents:
    def test_kcl(self, table):
        currents = table.terminal_currents(VDD, VDD, VDD, VDD, 0.0)
        assert sum(currents.values()) == pytest.approx(0.0, abs=1e-15)

    def test_matrix_shape(self, table):
        volts = np.tile([VDD, VDD, VDD, VDD, 0.0], (4, 1))
        out = table.terminal_current_matrix(volts)
        assert out.shape == (4, 5)

    def test_gos_table_reports_gate_current(self):
        table = TableModel(
            TIGSiNWFET(defect=GateOxideShort("cg")),
            grid_points=9,
            vds_points=9,
        )
        currents = table.terminal_currents(0.0, VDD, VDD, VDD, 0.0)
        assert currents["cg"] != 0.0
        assert sum(currents.values()) == pytest.approx(0.0, abs=1e-12)


class TestValidation:
    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            TableModel(TIGSiNWFET(), grid_points=1)

    def test_rejects_bad_volt_shape(self, table):
        with pytest.raises(ValueError):
            table.terminal_current_matrix(np.zeros((3, 4)))
