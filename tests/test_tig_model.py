"""Tests for the TIG-SiNWFET compact model and its calibration."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device import (
    DEFAULT_PARAMS,
    ChannelBreak,
    CurveMetrics,
    GateOxideShort,
    ParameterDrift,
    TIGSiNWFET,
    compare_to_fault_free,
    sweep_id_vcg,
)

VDD = DEFAULT_PARAMS.vdd


@pytest.fixture(scope="module")
def device():
    return TIGSiNWFET()


class TestConductionCondition:
    """The paper's core device property: conduction iff CG == PGS == PGD."""

    def test_logic_predicate(self, device):
        for cg, pgs, pgd in itertools.product((0, 1), repeat=3):
            assert device.conducts(cg, pgs, pgd) == (cg == pgs == pgd)

    def test_predicate_rejects_non_binary(self, device):
        with pytest.raises(ValueError):
            device.conducts(2, 0, 0)

    def test_on_off_separation_electrical(self, device):
        """Every 'on' corner carries >100x the current of any 'off' corner."""
        on_currents, off_currents = [], []
        for cg, pgs, pgd in itertools.product((0, 1), repeat=3):
            i = abs(
                device.drain_current(cg * VDD, pgs * VDD, pgd * VDD, VDD, 0.0)
            )
            (on_currents if cg == pgs == pgd else off_currents).append(i)
        assert min(on_currents) > 100 * max(off_currents)

    def test_polarity_labels(self, device):
        assert device.polarity(1, 1) == "n"
        assert device.polarity(0, 0) == "p"
        assert device.polarity(0, 1) == "off"
        assert device.polarity(1, 0) == "off"


class TestCalibration:
    """Anchors from the paper (Fig. 3, Table II context)."""

    def test_on_current(self, device):
        i_on = device.drain_current(VDD, VDD, VDD, VDD, 0.0)
        assert i_on == pytest.approx(DEFAULT_PARAMS.i_on, rel=1e-3)

    def test_p_mode_on_current_scaled_by_branch_factor(self, device):
        """Hole injection is weaker: p-mode Ion = p_branch_factor * Ion."""
        i_p = device.drain_current(0.0, 0.0, 0.0, VDD, 0.0)
        expected = DEFAULT_PARAMS.i_on * DEFAULT_PARAMS.p_branch_factor
        assert i_p == pytest.approx(expected, rel=1e-2)

    def test_transfer_metrics(self, device):
        m = CurveMetrics.from_curve(sweep_id_vcg(device, "n"))
        assert 0.2 < m.vth < 0.45
        assert 0.055 < m.ss < 0.085
        assert m.on_off > 1e4

    def test_n_and_p_transfer_curves_proportional(self, device):
        """The p curve mirrors the n curve scaled by the branch factor
        (floor-dominated points excluded)."""
        n = sweep_id_vcg(device, "n")
        p = sweep_id_vcg(device, "p")
        factor = DEFAULT_PARAMS.p_branch_factor
        # Compare in the drive region; near the floor the ambipolar
        # residue of the opposite branch breaks exact proportionality.
        mask = n.i_d > 1e-3 * DEFAULT_PARAMS.i_on
        np.testing.assert_allclose(
            p.i_d[mask], factor * n.i_d[mask], rtol=0.05
        )


class TestBidirectionality:
    """Pass-transistor use requires source/drain symmetry."""

    def test_antisymmetric_current(self, device):
        fwd = device.drain_current(VDD, VDD, VDD, VDD, 0.0)
        # Swap D and S (and the polarity gates swap roles physically).
        rev = device.drain_current(VDD, VDD, VDD, 0.0, VDD)
        assert rev == pytest.approx(-fwd, rel=1e-9)

    def test_zero_bias_zero_current(self, device):
        i = device.drain_current(VDD, VDD, VDD, 0.6, 0.6)
        assert abs(i) < 1e-15

    @given(
        st.floats(min_value=0.0, max_value=1.2),
        st.floats(min_value=0.0, max_value=1.2),
        st.floats(min_value=0.0, max_value=1.2),
        st.floats(min_value=0.0, max_value=1.2),
        st.floats(min_value=0.0, max_value=1.2),
    )
    @settings(max_examples=60, deadline=None)
    def test_reversal_antisymmetry_property(self, vcg, vpgs, vpgd, vd, vs):
        """I(d,s) == -I(s,d) with polarity gates swapped alongside."""
        dev = TIGSiNWFET()
        fwd = dev.drain_current(vcg, vpgs, vpgd, vd, vs)
        rev = dev.drain_current(vcg, vpgd, vpgs, vs, vd)
        assert float(fwd) == pytest.approx(-float(rev), rel=1e-6, abs=1e-18)


class TestMonotonicity:
    def test_monotonic_in_vcg_n_mode(self, device):
        # The ambipolar hole branch fades as VCG rises, so the top of the
        # curve may dip by a few hundred femtoamps; anything beyond that
        # would be a real monotonicity bug.
        curve = sweep_id_vcg(device, "n")
        assert np.all(np.diff(curve.i_d) > -1e-12)

    def test_monotonic_in_vds(self, device):
        vds = np.linspace(0.0, VDD, 61)
        i = np.asarray(device.drain_current(VDD, VDD, VDD, vds, 0.0))
        assert np.all(np.diff(i) > -1e-15)

    def test_monotonic_in_pg(self, device):
        vpg = np.linspace(0.0, VDD, 61)
        i = np.asarray(device.drain_current(VDD, vpg, vpg, VDD, 0.0))
        assert np.all(np.diff(i) > -1e-15)


class TestTerminalCurrents:
    def test_kcl_fault_free(self, device):
        currents = device.terminal_currents(VDD, VDD, VDD, VDD, 0.0)
        assert sum(currents.values()) == pytest.approx(0.0, abs=1e-18)
        assert currents["cg"] == 0.0

    def test_kcl_with_gos(self):
        dev = TIGSiNWFET(defect=GateOxideShort("cg"))
        currents = dev.terminal_currents(VDD, VDD, VDD, VDD, 0.0)
        assert sum(currents.values()) == pytest.approx(0.0, abs=1e-15)
        assert currents["cg"] != 0.0

    def test_matrix_matches_dict(self, device):
        volts = np.array([VDD, VDD, VDD, VDD, 0.0])
        matrix = device.terminal_current_matrix(volts)
        d = device.terminal_currents(VDD, VDD, VDD, VDD, 0.0)
        expected = [d["d"], d["cg"], d["pgs"], d["pgd"], d["s"]]
        np.testing.assert_allclose(matrix, expected, rtol=1e-12)

    def test_matrix_matches_dict_with_gos(self):
        dev = TIGSiNWFET(defect=GateOxideShort("pgs"))
        volts = np.array([0.7, 0.3, 1.1, 0.2, 0.1])
        matrix = dev.terminal_current_matrix(volts)
        d = dev.terminal_currents(0.3, 1.1, 0.2, 0.7, 0.1)
        expected = [d["d"], d["cg"], d["pgs"], d["pgd"], d["s"]]
        np.testing.assert_allclose(matrix, expected, rtol=1e-10, atol=1e-20)

    def test_matrix_shape_validation(self, device):
        with pytest.raises(ValueError):
            device.terminal_current_matrix(np.zeros(4))


class TestGOSCalibration:
    """Fig. 3 anchors: ID(SAT) ratios and threshold shifts."""

    def test_gos_pgs_strongest_reduction(self):
        r = compare_to_fault_free(TIGSiNWFET(defect=GateOxideShort("pgs")))
        assert 0.3 < r["id_sat_ratio"] < 0.55
        assert r["delta_vth"] == pytest.approx(0.17, abs=0.03)

    def test_gos_cg_milder_reduction(self):
        r_cg = compare_to_fault_free(TIGSiNWFET(defect=GateOxideShort("cg")))
        r_pgs = compare_to_fault_free(
            TIGSiNWFET(defect=GateOxideShort("pgs"))
        )
        assert r_cg["id_sat_ratio"] > r_pgs["id_sat_ratio"]
        assert 0.05 < r_cg["delta_vth"] < 0.2

    def test_gos_pgd_slight_increase_no_shift(self):
        r = compare_to_fault_free(TIGSiNWFET(defect=GateOxideShort("pgd")))
        assert 1.0 < r["id_sat_ratio"] < 1.2
        assert abs(r["delta_vth"]) < 0.03

    def test_gos_cg_negative_current_at_low_vcg(self):
        """Fig. 3b: the shunt makes ID negative when the gate is low."""
        r = compare_to_fault_free(TIGSiNWFET(defect=GateOxideShort("cg")))
        assert r["i_min"] < 0.0

    def test_severity_scales_effect(self):
        mild = compare_to_fault_free(
            TIGSiNWFET(defect=GateOxideShort("pgs", severity=0.3))
        )
        full = compare_to_fault_free(
            TIGSiNWFET(defect=GateOxideShort("pgs", severity=1.0))
        )
        assert mild["id_sat_ratio"] > full["id_sat_ratio"]
        assert mild["delta_vth"] < full["delta_vth"]

    def test_rejects_bad_location(self):
        with pytest.raises(ValueError):
            GateOxideShort("gate")

    def test_rejects_bad_severity(self):
        with pytest.raises(ValueError):
            GateOxideShort("cg", severity=0.0)


class TestChannelBreak:
    def test_full_break_kills_current(self):
        dev = TIGSiNWFET(defect=ChannelBreak())
        i = dev.drain_current(VDD, VDD, VDD, VDD, 0.0)
        assert abs(i) < 1e-11

    def test_partial_break_limits_current(self):
        dev = TIGSiNWFET(defect=ChannelBreak(0.5))
        i = dev.drain_current(VDD, VDD, VDD, VDD, 0.0)
        assert i == pytest.approx(0.5 * DEFAULT_PARAMS.i_on, rel=0.01)

    def test_is_full_break_flag(self):
        assert ChannelBreak().is_full_break
        assert not ChannelBreak(0.99).is_full_break

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            ChannelBreak(1.5)


class TestParameterDrift:
    def test_ion_factor(self):
        dev = TIGSiNWFET(defect=ParameterDrift(i_on_factor=0.7))
        i = dev.drain_current(VDD, VDD, VDD, VDD, 0.0)
        assert i == pytest.approx(0.7 * DEFAULT_PARAMS.i_on, rel=0.01)

    def test_vth_drift_shifts_curve(self):
        r = compare_to_fault_free(
            TIGSiNWFET(defect=ParameterDrift(dvth_cg=0.1))
        )
        assert r["delta_vth"] == pytest.approx(0.1, abs=0.02)

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            ParameterDrift(i_on_factor=0.0)
