"""Benchmark registry: every circuit in the repo, addressable by name.

The registry unifies the two circuit sources behind one lookup:

* the **generated benchmarks** of :mod:`repro.circuits.generators`
  (adders, ALUs, multipliers, parity trees, ...), registered at import
  time from :data:`~repro.circuits.generators.BENCHMARK_BUILDERS`, and
* **external ISCAS-style netlists** parsed through
  :mod:`repro.logic.bench_format`, registered from a text blob
  (:meth:`Registry.register_bench_text`), a ``.bench`` file on disk
  (:meth:`Registry.register_bench_file`), or a whole directory of them
  (:meth:`Registry.register_bench_dir`).  The checked-in scaling
  corpus under ``benchmarks/netlists/`` is ingested automatically into
  the default registry with the ``corpus`` / ``iscas-class`` tags.

Each entry carries a tag set (source, structural family, and a lazy
size class derived from the gate count) so campaigns can select grids
by tag instead of spelling out names::

    >>> from repro.campaign.registry import get_registry
    >>> reg = get_registry()
    >>> "c17" in reg.names()
    True
    >>> reg.load("tmr_voter").stats()["gates"]
    1
    >>> sorted(reg.names(tags={"adder"}))[:2]
    ['rca16', 'rca32']

Entries registered from bench text remain serialisable (the text rides
along in :class:`CircuitSpec.bench_text`), so campaign workers can
reconstruct them in a fresh process regardless of the multiprocessing
start method.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Callable, Iterable, Mapping

from repro.circuits.generators import BENCHMARK_BUILDERS
from repro.logic.bench_format import parse_bench
from repro.logic.network import Network

#: Checked-in ISCAS-class scaling corpus, ingested into the default
#: registry when present (repo checkout layout; absent in wheels).
CORPUS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "netlists"

#: Gate-count thresholds for the derived size tags, smallest first.
SIZE_CLASSES: tuple[tuple[str, int], ...] = (
    ("tiny", 10),
    ("small", 50),
    ("medium", 200),
    ("large", 10**9),
)

#: Structural-family tags for the generated suite (beyond "generated").
_FAMILY_TAGS: Mapping[str, tuple[str, ...]] = {
    "c17": ("iscas", "control"),
    "rca4": ("adder", "arithmetic"),
    "rca8": ("adder", "arithmetic"),
    "rca16": ("adder", "arithmetic"),
    "rca32": ("adder", "arithmetic"),
    "parity8": ("parity", "xor-tree"),
    "parity16": ("parity", "xor-tree"),
    "parity32": ("parity", "xor-tree"),
    "tmr_voter": ("voter",),
    "eq4": ("comparator",),
    "eq8": ("comparator",),
    "mux8": ("mux",),
    "alu_slice": ("alu", "arithmetic"),
    "alu4": ("alu", "arithmetic"),
    "alu8": ("alu", "arithmetic"),
    "mul4": ("multiplier", "arithmetic"),
}


def size_class(n_gates: int) -> str:
    """Map a gate count onto the coarse size tag used by the registry."""
    for tag, limit in SIZE_CLASSES:
        if n_gates < limit:
            return tag
    return SIZE_CLASSES[-1][0]


@dataclasses.dataclass
class CircuitSpec:
    """One registry entry.

    Attributes:
        name: Registry key (also the campaign record's circuit name).
        source: ``"generated"`` or ``"bench"``.
        tags: Static tags; :meth:`all_tags` adds the lazy size class.
        description: One-line human summary for ``repro list``.
        bench_text: For ``source == "bench"``: the netlist text, kept so
            the spec survives pickling into worker processes.
    """

    name: str
    source: str
    loader: Callable[[], Network]
    tags: frozenset[str] = frozenset()
    description: str = ""
    bench_text: str | None = None
    _stats: dict[str, int] | None = dataclasses.field(
        default=None, repr=False, compare=False
    )

    def build(self) -> Network:
        """Construct a fresh :class:`Network` for this entry."""
        network = self.loader()
        if self._stats is None:
            self._stats = network.stats()
        return network

    def stats(self) -> dict[str, int]:
        """Size summary (memoised — first call builds the circuit)."""
        if self._stats is None:
            self._stats = self.loader().stats()
        return self._stats

    def all_tags(self) -> frozenset[str]:
        """Static tags plus the derived size class."""
        return self.tags | {self.source, size_class(self.stats()["gates"])}


class Registry:
    """Name -> :class:`CircuitSpec` mapping with tag-based selection."""

    def __init__(self) -> None:
        self._specs: dict[str, CircuitSpec] = {}

    # -- registration -----------------------------------------------------

    def register(self, spec: CircuitSpec, replace: bool = False) -> CircuitSpec:
        if not replace and spec.name in self._specs:
            raise ValueError(f"circuit {spec.name!r} already registered")
        self._specs[spec.name] = spec
        return spec

    def register_generated(
        self,
        name: str,
        builder: Callable[[], Network],
        tags: Iterable[str] = (),
        description: str = "",
    ) -> CircuitSpec:
        """Register a circuit produced by a Python builder function."""
        return self.register(
            CircuitSpec(
                name=name,
                source="generated",
                loader=builder,
                tags=frozenset(tags),
                description=description,
            )
        )

    def register_bench_text(
        self,
        name: str,
        text: str,
        tags: Iterable[str] = (),
        description: str = "",
        replace: bool = False,
    ) -> CircuitSpec:
        """Register an ISCAS-style netlist from its text.

        The text is parsed once eagerly so malformed netlists fail at
        registration (not mid-campaign), then kept on the spec for
        worker-side reconstruction.  Netlists carrying flops get a
        ``sequential`` tag, so campaign grids can select (or exclude)
        the state-holding circuits without loading them.
        """
        network = parse_bench(text, name=name)  # validate now, not in a worker
        if network.is_sequential:
            tags = frozenset(tags) | {"sequential"}
        return self.register(
            CircuitSpec(
                name=name,
                source="bench",
                loader=lambda: parse_bench(text, name=name),
                tags=frozenset(tags),
                description=description or f"external .bench netlist {name!r}",
                bench_text=text,
            ),
            replace=replace,
        )

    def register_bench_file(
        self,
        path: str | Path,
        name: str | None = None,
        tags: Iterable[str] = (),
        replace: bool = False,
    ) -> CircuitSpec:
        """Register a ``.bench`` file; the name defaults to the stem."""
        path = Path(path)
        return self.register_bench_text(
            name or path.stem,
            path.read_text(),
            tags=tags,
            description=f"external .bench netlist from {path.name}",
            replace=replace,
        )

    def register_bench_dir(
        self,
        directory: str | Path,
        tags: Iterable[str] = (),
        replace: bool = False,
    ) -> list[CircuitSpec]:
        """Register every ``*.bench`` file in ``directory`` (sorted).

        Returns the new specs; a missing directory registers nothing
        (the corpus is optional — a source checkout without the
        benchmark netlists still imports cleanly).
        """
        directory = Path(directory)
        if not directory.is_dir():
            return []
        return [
            self.register_bench_file(path, tags=tags, replace=replace)
            for path in sorted(directory.glob("*.bench"))
        ]

    # -- lookup -----------------------------------------------------------

    def spec(self, name: str) -> CircuitSpec:
        if name not in self._specs:
            raise KeyError(
                f"unknown circuit {name!r}; available: {sorted(self._specs)}"
            )
        return self._specs[name]

    def load(self, name: str) -> Network:
        """Build the named circuit."""
        return self.spec(name).build()

    def names(self, tags: Iterable[str] | None = None) -> list[str]:
        """Registered names, optionally restricted to entries carrying
        *all* of ``tags`` (size classes count as tags).

        Circuits are only built (for their gate count) when the filter
        actually asks for a size class; static-tag filters stay cheap.
        """
        wanted = frozenset(tags or ())
        size_tags = {tag for tag, _ in SIZE_CLASSES}
        selected = []
        for name, spec in self._specs.items():
            static = spec.tags | {spec.source}
            remaining = wanted - static
            if not remaining:
                selected.append(name)
            elif remaining <= size_tags and remaining <= spec.all_tags():
                selected.append(name)
        return sorted(selected)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)


def _default_registry() -> Registry:
    registry = Registry()
    for name, builder in BENCHMARK_BUILDERS.items():
        registry.register_generated(
            name,
            builder,
            tags=_FAMILY_TAGS.get(name, ()),
            description=(builder.__doc__ or "").strip().splitlines()[0]
            if builder.__doc__
            else f"generated benchmark {name!r}",
        )
    registry.register_bench_dir(
        CORPUS_DIR, tags=("corpus", "iscas-class")
    )
    return registry


_REGISTRY: Registry | None = None


def get_registry() -> Registry:
    """The process-wide default registry (generated suite pre-loaded)."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _default_registry()
    return _REGISTRY
