"""JSONL backend: today's :class:`ResultStore` behind the protocol.

The store itself is unchanged — one line per record, torn-tail
healing, a single flock-guarded writer — this module only adapts it to
the :class:`~repro.campaign.backends.base.ResultBackend` verbs and
adds the append-retry loop the protocol promises:

* **Claiming is vacuous.**  A JSONL file cannot arbitrate rows, so
  ``claim`` always succeeds; multi-runner safety comes from the
  advisory lock instead — the second writer fails fast with
  :class:`~repro.campaign.store.StoreLockedError` (naming the holding
  PID) rather than interleaving torn records.  Use the sqlite backend
  to actually share a store.
* **Transient append failures are retried.**  An out-of-space or
  otherwise failed write may leave a fresh torn tail mid-file-life;
  between bounded-backoff retries the handle is dropped (discarding
  any partially flushed bytes) and the tail healed back to the last
  complete record, so the retry rewrites the whole line and the file
  stays one-record-per-line JSONL.

Storage chaos (:class:`repro.campaign.chaos.StorageChaos`) hooks into
``append``: ``enospc`` fails the write before any byte lands, ``torn``
writes half the encoded line straight to the descriptor and then
fails (the mid-write out-of-space signature), and ``kill`` dies by
SIGKILL mid-line — the byte-exact crash the healing path exists for.
"""

from __future__ import annotations

import errno
import json
import os
import time
from pathlib import Path
from typing import Iterable

from repro.campaign.store import SCHEMA_VERSION, ResultStore

#: Bounded backoff schedule for transient append failures.
_IO_ATTEMPTS = 5
_IO_BACKOFF_BASE = 0.02
_IO_BACKOFF_MAX = 0.5


class JsonlBackend:
    """Single-writer JSONL store behind the backend protocol."""

    name = "jsonl"
    #: The JSONL layout is versioned by its record schema.
    STORE_SCHEMA = SCHEMA_VERSION
    supports_claiming = False

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        fsync: bool = False,
        lock: bool = True,
        chaos=None,
        store: ResultStore | None = None,
    ) -> None:
        if store is None:
            if path is None:
                raise ValueError("JsonlBackend needs a path or a ResultStore")
            store = ResultStore(path, fsync=fsync, lock=lock)
        self.store = store
        self.path = store.path
        self.chaos = chaos

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> "JsonlBackend":
        """Nothing to recover eagerly: torn-tail healing runs lazily
        before the first append (readers tolerate the torn tail)."""
        return self

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "JsonlBackend":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- coordination (vacuous: the flock is the arbiter) ------------------

    def register(self, task_ids: Iterable[str], force: bool = False) -> None:
        """No task table to register into — resume is record-driven."""

    def claim(self, _task_id: str) -> bool:
        """Always ours: a locked JSONL store has exactly one writer."""
        return True

    def release(self) -> None:
        """Nothing claimed, nothing to give back."""

    # -- writing -----------------------------------------------------------

    def append(self, record: dict) -> None:
        """Stamp provenance and append, retrying transient I/O failures
        with bounded backoff (healing any torn tail they left)."""
        record["backend"] = self.name
        record["store_schema"] = self.STORE_SCHEMA
        delay = _IO_BACKOFF_BASE
        for attempt in range(1, _IO_ATTEMPTS + 1):
            try:
                self._write(record)
                return
            except OSError:
                if attempt == _IO_ATTEMPTS:
                    raise
                # Drop the handle (and any partially flushed bytes),
                # heal the tail back to the last complete record, and
                # rewrite the whole line after a short wait.
                self.store.close()
                try:
                    self.store.heal()
                except OSError:  # pragma: no cover - salvage is best-effort
                    pass
                time.sleep(delay)
                delay = min(delay * 2.0, _IO_BACKOFF_MAX)

    def _write(self, record: dict) -> None:
        """One append attempt, with the storage-chaos hook applied."""
        kind = (
            self.chaos.append_fault(record.get("task_id", ""))
            if self.chaos is not None
            else "ok"
        )
        if kind == "enospc":
            raise OSError(
                errno.ENOSPC, "injected ENOSPC before the record write"
            )
        if kind in ("torn", "kill"):
            self._torn_write(record, die=kind == "kill")
        self.store.append(record)

    def _torn_write(self, record: dict, *, die: bool) -> None:
        """Write half the encoded line straight to the descriptor — a
        flush that ran out of disk (or a process killed) mid-record —
        then fail the attempt or the whole process."""
        handle = self.store._ensure_handle()
        data = (
            json.dumps(record, sort_keys=True, ensure_ascii=False) + "\n"
        ).encode("utf-8")
        os.write(handle.fileno(), data[: max(1, len(data) // 2)])
        if die:
            from repro.campaign.chaos import _kill_self

            _kill_self()
        raise OSError(errno.ENOSPC, "injected ENOSPC mid-record write")

    # -- reading -----------------------------------------------------------

    def load(self) -> list[dict]:
        return self.store.load()

    def latest(self) -> dict[str, dict]:
        return self.store.latest()

    # -- integrity ---------------------------------------------------------

    def heal(self) -> None:
        self.store.heal()

    def verify(self, repair: bool = False) -> dict:
        """Integrity census: record count, torn tail, mid-file
        corruption.  A torn tail is the recoverable kill signature
        (``repair=True`` heals it); mid-file corruption is not."""
        report = {
            "backend": self.name,
            "path": str(self.path),
            "store_schema": self.STORE_SCHEMA,
            "ok": True,
            "n_records": 0,
            "n_tasks_ok": 0,
            "n_corrupt": 0,
            "n_quarantined": 0,
            "torn_tail": False,
            "problems": [],
        }
        if self.path.exists():
            data = self.path.read_bytes()
            report["torn_tail"] = bool(data) and not data.endswith(b"\n")
        try:
            records = self.store.load()
        except ValueError as exc:
            report["ok"] = False
            report["n_corrupt"] = 1
            report["problems"].append(str(exc))
            return report
        report["n_records"] = len(records)
        report["n_tasks_ok"] = sum(
            1
            for record in self.store.latest().values()
            if record.get("status") == "ok"
        )
        if report["torn_tail"]:
            report["problems"].append(
                "torn trailing record (kill signature; heals on the next "
                "append and its task reruns)"
            )
            if repair:
                self.heal()
                report["torn_tail"] = False
        return report
