"""Pluggable campaign result stores.

The runner talks to storage through the
:class:`~repro.campaign.backends.base.ResultBackend` protocol; this
package registers the implementations and provides the two entry
points everything above the storage layer uses:

* :func:`detect_backend` — name the backend a store *file* belongs to
  (sqlite files carry a 16-byte magic header; everything else with
  content is JSONL; for paths that do not exist yet the suffix
  decides).
* :func:`open_store` — build and :meth:`open` the right backend for a
  path, either by explicit name (``--backend jsonl|sqlite``) or by
  detection (``auto``).
"""

from __future__ import annotations

from pathlib import Path

from repro.campaign.backends.base import ResultBackend
from repro.campaign.backends.jsonl import JsonlBackend
from repro.campaign.backends.sqlite import SqliteBackend, migrate_jsonl_to_sqlite

__all__ = [
    "ResultBackend",
    "JsonlBackend",
    "SqliteBackend",
    "BACKENDS",
    "SQLITE_MAGIC",
    "detect_backend",
    "open_store",
    "migrate_jsonl_to_sqlite",
]

#: name -> backend class (the ``--backend`` registry).
BACKENDS = {
    JsonlBackend.name: JsonlBackend,
    SqliteBackend.name: SqliteBackend,
}

#: First 16 bytes of every sqlite3 database file.
SQLITE_MAGIC = b"SQLite format 3\x00"

#: Suffixes that mean sqlite when the file does not exist yet.
_SQLITE_SUFFIXES = {".sqlite", ".sqlite3", ".db", ".sq3"}


def detect_backend(path: str | Path) -> str:
    """Which backend a store path belongs to (``"jsonl"``/``"sqlite"``).

    An existing non-empty file is classified by content — the sqlite
    magic header is unambiguous, anything else is JSONL (whose lines
    can never start with the magic).  A missing or empty file is
    classified by suffix, defaulting to JSONL.
    """
    path = Path(path)
    try:
        with path.open("rb") as handle:
            head = handle.read(len(SQLITE_MAGIC))
    except OSError:
        head = b""
    if head.startswith(SQLITE_MAGIC):
        return SqliteBackend.name
    if head:
        return JsonlBackend.name
    if path.suffix.lower() in _SQLITE_SUFFIXES:
        return SqliteBackend.name
    return JsonlBackend.name


def open_store(
    path: str | Path,
    backend: str = "auto",
    *,
    fsync: bool = False,
    lock: bool = True,
    chaos=None,
) -> ResultBackend:
    """Build and open the backend for ``path``.

    ``backend`` is a registry name or ``"auto"`` (detect from the file
    / suffix).  The returned store is already recovered — opening runs
    journal recovery, corruption quarantine and stale-claim re-queue
    where the backend supports them.
    """
    name = detect_backend(path) if backend == "auto" else backend
    try:
        cls = BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS) + ["auto"])
        raise ValueError(
            f"unknown backend {name!r} (choose from: {known})"
        ) from None
    return cls(path, fsync=fsync, lock=lock, chaos=chaos).open()
