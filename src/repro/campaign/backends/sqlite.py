"""Sqlite backend: crash-safe multi-runner campaign storage.

Where the JSONL backend locks out the second writer, this backend is
built for N independent runner *processes* sharing one store and
splitting a grid between them with no duplicated and no lost rows:

* **WAL journaling.**  The database runs in write-ahead-log mode, so
  readers never block the writer, a mid-transaction SIGKILL rolls back
  on the next open (journal recovery), and ``fsync=True`` maps to
  ``synchronous=FULL`` for machine-crash durability (``NORMAL``, the
  default, already survives process kills).
* **Atomic task claiming.**  A ``tasks`` row moves ``pending →
  claimed`` via a single ``UPDATE … WHERE status='pending'`` — exactly
  one of N concurrent claimants observes ``rowcount == 1`` — and
  ``claimed → done`` happens in the *same transaction* that inserts
  the result row, so a runner killed between claim and commit leaves
  nothing but a stale claim.  Stale claims (owner PID dead, or lease
  expired where PIDs cannot be probed) are re-queued on every open.
* **Per-row checksums.**  Each result row stores the CRC-32 of its
  canonical JSON text.  ``open``/``verify(repair=True)`` recompute
  them; torn or tampered rows are moved to a ``quarantine`` table
  (evidence, not silent deletion) and their tasks re-queued, so a
  resume recomputes exactly the damaged cells.
* **Schema versioning + one-way migration.**  ``meta.store_schema``
  names the layout version (:data:`SqliteBackend.STORE_SCHEMA`); a
  store written by a newer layout refuses to open.
  :func:`migrate_jsonl_to_sqlite` lifts an existing JSONL store into a
  fresh sqlite one (source untouched), preserving record order and
  history.
* **Bounded backoff on contention.**  Writes ride sqlite's
  ``busy_timeout`` plus an explicit retry loop with exponential
  backoff, so sustained lock contention (another runner mid-commit,
  a reporting reader, injected chaos) delays a campaign instead of
  failing it.

Storage chaos (:class:`repro.campaign.chaos.StorageChaos`) hooks:
``claim`` faults fire after the claim transaction commits (``kill`` =
SIGKILL between claim and commit — the acceptance scenario), and
``append`` faults fire inside the append (``enospc`` fails the attempt
before the transaction; ``kill``/``torn`` SIGKILL after the result
``INSERT`` but before ``COMMIT`` — the mid-transaction kill WAL
recovery must erase).
"""

from __future__ import annotations

import errno
import json
import os
import sqlite3
import time
import zlib
from pathlib import Path
from typing import Iterable

from repro.campaign.store import SCHEMA_VERSION, ResultStore

#: Bounded backoff schedule for contended/failed write transactions.
_IO_ATTEMPTS = 6
_IO_BACKOFF_BASE = 0.02
_IO_BACKOFF_MAX = 1.0

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    seq      INTEGER PRIMARY KEY AUTOINCREMENT,
    task_id  TEXT NOT NULL,
    status   TEXT NOT NULL,
    record   TEXT NOT NULL,
    checksum INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_task ON results(task_id);
CREATE TABLE IF NOT EXISTS tasks (
    task_id    TEXT PRIMARY KEY,
    status     TEXT NOT NULL DEFAULT 'pending'
               CHECK (status IN ('pending', 'claimed', 'done')),
    owner_pid  INTEGER,
    claimed_at REAL
);
CREATE TABLE IF NOT EXISTS quarantine (
    seq            INTEGER,
    task_id        TEXT,
    record         TEXT NOT NULL,
    checksum       INTEGER,
    reason         TEXT NOT NULL,
    quarantined_at REAL
);
"""


def _checksum(text: str) -> int:
    """CRC-32 of the canonical record text (torn/tamper detection)."""
    return zlib.crc32(text.encode("utf-8"))


def _pid_alive(pid: int) -> bool | None:
    """Whether ``pid`` is a live process on this host; ``None`` when it
    cannot be probed (no ``os.kill(pid, 0)`` semantics)."""
    if not hasattr(os, "kill"):  # pragma: no cover - platform dependent
        return None
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # exists, owned by someone else
        return True
    except OSError:  # pragma: no cover - exotic platforms
        return None
    return True


class SqliteBackend:
    """WAL-mode sqlite result store with atomic task claiming."""

    name = "sqlite"
    #: Version of the table layout above (``meta.store_schema``).
    STORE_SCHEMA = 1
    supports_claiming = True

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: bool = False,
        lock: bool = True,  # noqa: ARG002 - sqlite locks itself; kept for
        chaos=None,         #   ctor uniformity across backends
        busy_timeout_s: float = 5.0,
        claim_lease_s: float = 3600.0,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.chaos = chaos
        self.busy_timeout_s = busy_timeout_s
        self.claim_lease_s = claim_lease_s
        self._conn: sqlite3.Connection | None = None
        #: Task ids THIS instance claimed and has not yet resolved —
        #: ``release`` hands back exactly these, not everything the PID
        #: owns, so several backend instances in one process (the job
        #: service runs one campaign per worker thread) cannot release
        #: each other's in-flight claims.
        self._claimed: set[str] = set()

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> "SqliteBackend":
        """Connect (running WAL journal recovery), create/validate the
        schema, quarantine corrupt rows and re-queue stale claims."""
        if self._conn is not None:
            return self
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(
            str(self.path),
            timeout=self.busy_timeout_s,
            isolation_level=None,  # autocommit; transactions are explicit
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute(
            f"PRAGMA synchronous={'FULL' if self.fsync else 'NORMAL'}"
        )
        conn.execute(f"PRAGMA busy_timeout={int(self.busy_timeout_s * 1000)}")
        self._conn = conn
        self._init_schema()
        self.verify(repair=True)
        self._requeue_stale()
        return self

    def close(self) -> None:
        """Give back unfinished claims and drop the connection."""
        if self._conn is None:
            return
        try:
            self.release()
        except sqlite3.Error:  # pragma: no cover - teardown is best-effort
            pass
        self._conn.close()
        self._conn = None

    def __enter__(self) -> "SqliteBackend":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            self.open()
        assert self._conn is not None
        return self._conn

    def _init_schema(self) -> None:
        assert self._conn is not None
        self._conn.executescript(_SCHEMA_SQL)
        self._conn.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
            ("store_schema", str(self.STORE_SCHEMA)),
        )
        self._conn.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
            ("record_schema", str(SCHEMA_VERSION)),
        )
        stored = int(self._meta("store_schema"))
        if stored > self.STORE_SCHEMA:
            raise RuntimeError(
                f"{self.path}: store layout v{stored} is newer than this "
                f"code understands (v{self.STORE_SCHEMA}); upgrade the "
                "checkout instead of the store"
            )
        # stored < STORE_SCHEMA is where one-way layout upgrades will
        # run when a v2 layout exists; v1 is the first.

    def _meta(self, key: str) -> str:
        row = self._connection().execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            raise KeyError(f"{self.path}: missing meta key {key!r}")
        return row[0]

    # -- contention-tolerant write helper ----------------------------------

    def _with_retry(self, operation):
        """Run a write ``operation`` with bounded exponential backoff on
        lock contention (``database is locked``) and transient OS-level
        failures (out of space)."""
        delay = _IO_BACKOFF_BASE
        for attempt in range(1, _IO_ATTEMPTS + 1):
            try:
                return operation()
            except (sqlite3.OperationalError, OSError):
                try:
                    self._connection().execute("ROLLBACK")
                except sqlite3.Error:
                    pass  # no transaction was open
                if attempt == _IO_ATTEMPTS:
                    raise
                time.sleep(delay)
                delay = min(delay * 2.0, _IO_BACKOFF_MAX)

    # -- coordination ------------------------------------------------------

    def register(
        self, task_ids: Iterable[str], force: bool = False
    ) -> None:
        """Make task rows exist (idempotent) and re-queue the ones that
        need recomputation: ``done`` rows whose latest record is not
        ``ok`` (always), ``done`` rows unconditionally when ``force``
        (the ``--no-resume`` path), and stale claims."""
        ids = list(task_ids)
        if not ids:
            return
        conn = self._connection()

        def txn() -> None:
            conn.execute("BEGIN IMMEDIATE")
            for task_id in ids:
                conn.execute(
                    "INSERT OR IGNORE INTO tasks (task_id, status) "
                    "VALUES (?, 'pending')",
                    (task_id,),
                )
                if force:
                    conn.execute(
                        "UPDATE tasks SET status='pending', owner_pid=NULL, "
                        "claimed_at=NULL WHERE task_id=? AND status='done'",
                        (task_id,),
                    )
                else:
                    # Re-queue a finished task only if its latest record
                    # is not ok — the guard that keeps a racing runner
                    # with a stale pending list from recomputing (and
                    # duplicating) a row another runner just committed.
                    conn.execute(
                        "UPDATE tasks SET status='pending', owner_pid=NULL, "
                        "claimed_at=NULL WHERE task_id=? AND status='done' "
                        "AND COALESCE((SELECT r.status FROM results r "
                        "  WHERE r.task_id = tasks.task_id "
                        "  ORDER BY r.seq DESC LIMIT 1), '') != 'ok'",
                        (task_id,),
                    )
            conn.execute("COMMIT")

        self._with_retry(txn)
        self._requeue_stale(set(ids))

    def claim(self, task_id: str) -> bool:
        """Atomically take ownership of a pending task: exactly one of
        N concurrent claimants sees the row flip under its UPDATE."""
        conn = self._connection()

        def txn() -> bool:
            cur = conn.execute(
                "UPDATE tasks SET status='claimed', owner_pid=?, "
                "claimed_at=? WHERE task_id=? AND status='pending'",
                (os.getpid(), time.time(), task_id),
            )
            return cur.rowcount == 1
        claimed = self._with_retry(txn)
        if claimed:
            self._claimed.add(task_id)
        if claimed and self.chaos is not None:
            # May SIGKILL: the crash-between-claim-and-commit scenario.
            self.chaos.claim_fault(task_id)
        return claimed

    def release(self) -> None:
        """Give back every claim this *instance* still holds (clean
        shutdown; a SIGKILLed runner's claims go stale instead and are
        re-queued on the next open).  Scoped to the instance's own
        claims — not the whole PID — because the job service runs many
        campaigns, each with its own backend instance, in one process."""
        conn = self._connection()
        pending = sorted(self._claimed)
        self._claimed.clear()

        def txn() -> None:
            conn.execute("BEGIN IMMEDIATE")
            for task_id in pending:
                conn.execute(
                    "UPDATE tasks SET status='pending', owner_pid=NULL, "
                    "claimed_at=NULL WHERE task_id=? AND status='claimed' "
                    "AND owner_pid=?",
                    (task_id, os.getpid()),
                )
            conn.execute("COMMIT")

        if pending:
            self._with_retry(txn)

    def _claim_is_stale(self, pid, claimed_at) -> bool:
        """A claim is stale when its owner is provably dead, or — where
        PID liveness cannot be probed — when its lease expired."""
        if pid is None:
            return True
        alive = _pid_alive(int(pid))
        if alive is not None:
            return not alive
        age = time.time() - (claimed_at or 0.0)
        return age > self.claim_lease_s

    def _requeue_stale(self, task_ids: set[str] | None = None) -> int:
        """Re-queue claims whose owners died (crash between claim and
        commit leaves exactly this state behind)."""
        conn = self._connection()
        rows = conn.execute(
            "SELECT task_id, owner_pid, claimed_at FROM tasks "
            "WHERE status='claimed'"
        ).fetchall()
        requeued = 0
        for task_id, pid, claimed_at in rows:
            if task_ids is not None and task_id not in task_ids:
                continue
            if not self._claim_is_stale(pid, claimed_at):
                continue
            def txn(task_id=task_id, pid=pid):
                cur = conn.execute(
                    "UPDATE tasks SET status='pending', owner_pid=NULL, "
                    "claimed_at=NULL WHERE task_id=? AND status='claimed' "
                    "AND owner_pid IS ?",
                    (task_id, pid),
                )
                return cur.rowcount
            requeued += self._with_retry(txn)
        return requeued

    # -- writing -----------------------------------------------------------

    def append(self, record: dict) -> None:
        """Insert the result row and mark its task done in one
        transaction — the claim → commit step is atomic, so a kill
        anywhere inside leaves either both effects or neither."""
        record["backend"] = self.name
        record["store_schema"] = self.STORE_SCHEMA
        task_id = record.get("task_id", "")
        status = record.get("status", "")
        text = json.dumps(record, sort_keys=True, ensure_ascii=False)
        checksum = _checksum(text)
        conn = self._connection()

        def txn() -> None:
            kind = (
                self.chaos.append_fault(task_id)
                if self.chaos is not None
                else "ok"
            )
            if kind == "enospc":
                raise OSError(
                    errno.ENOSPC, "injected ENOSPC before the transaction"
                )
            conn.execute("BEGIN IMMEDIATE")
            try:
                conn.execute(
                    "INSERT INTO results (task_id, status, record, checksum)"
                    " VALUES (?, ?, ?, ?)",
                    (task_id, status, text, checksum),
                )
                if kind in ("kill", "torn"):
                    # Die inside the transaction: WAL journal recovery
                    # must erase the uncommitted row on the next open.
                    from repro.campaign.chaos import _kill_self

                    _kill_self()
                conn.execute(
                    "INSERT INTO tasks (task_id, status) VALUES (?, 'done') "
                    "ON CONFLICT(task_id) DO UPDATE SET status='done', "
                    "owner_pid=NULL, claimed_at=NULL",
                    (task_id,),
                )
                conn.execute("COMMIT")
            except BaseException:
                try:
                    conn.execute("ROLLBACK")
                except sqlite3.Error:
                    pass
                raise

        self._with_retry(txn)
        self._claimed.discard(task_id)  # resolved with the result row

    # -- reading -----------------------------------------------------------

    def load(self) -> list[dict]:
        """All records in commit order (the JSONL file-order analogue)."""
        rows = self._connection().execute(
            "SELECT record FROM results ORDER BY seq"
        ).fetchall()
        return [json.loads(text) for (text,) in rows]

    def latest(self) -> dict[str, dict]:
        """task_id -> most recent record (reruns supersede old rows)."""
        latest: dict[str, dict] = {}
        rows = self._connection().execute(
            "SELECT task_id, record FROM results ORDER BY seq"
        ).fetchall()
        for task_id, text in rows:
            latest[task_id] = json.loads(text)
        return latest

    # -- integrity ---------------------------------------------------------

    def heal(self) -> None:
        """On-demand recovery: same pass ``open`` runs."""
        self.verify(repair=True)
        self._requeue_stale()

    def verify(self, repair: bool = False) -> dict:
        """Checksum/claim/quarantine census.

        Every result row's CRC-32 and JSON are recomputed; with
        ``repair=True`` failing rows move to the quarantine table and
        their tasks are re-queued (then a resume recomputes exactly
        those cells).  ``ok`` means: no corrupt rows remain, and every
        quarantined task has since been recomputed to an ``ok`` record
        (quarantine evidence alone does not fail a healthy store).
        """
        conn = self._connection()
        rows = conn.execute(
            "SELECT seq, task_id, record, checksum FROM results "
            "ORDER BY seq"
        ).fetchall()
        corrupt: list[tuple[int, str, str, int, str]] = []
        # Latest good record per task, computed from this same scan
        # (``self.latest()`` would choke on the corrupt rows that may
        # still be present when ``repair=False``).
        latest: dict[str, dict] = {}
        for seq, task_id, text, checksum in rows:
            reason = None
            if _checksum(text) != checksum:
                reason = "checksum mismatch (torn or tampered row)"
            else:
                try:
                    latest[task_id] = json.loads(text)
                except json.JSONDecodeError:
                    reason = "unparseable record JSON"
            if reason is not None:
                corrupt.append((seq, task_id, text, checksum, reason))
        if repair and corrupt:
            def txn() -> None:
                conn.execute("BEGIN IMMEDIATE")
                for seq, task_id, text, checksum, reason in corrupt:
                    conn.execute(
                        "INSERT INTO quarantine (seq, task_id, record, "
                        "checksum, reason, quarantined_at) "
                        "VALUES (?, ?, ?, ?, ?, ?)",
                        (seq, task_id, text, checksum, reason, time.time()),
                    )
                    conn.execute(
                        "DELETE FROM results WHERE seq = ?", (seq,)
                    )
                    # Re-queue the damaged cell so resume recomputes it.
                    conn.execute(
                        "INSERT INTO tasks (task_id, status) "
                        "VALUES (?, 'pending') ON CONFLICT(task_id) DO "
                        "UPDATE SET status='pending', owner_pid=NULL, "
                        "claimed_at=NULL",
                        (task_id,),
                    )
                conn.execute("COMMIT")

            self._with_retry(txn)
        task_counts = dict(
            conn.execute(
                "SELECT status, COUNT(*) FROM tasks GROUP BY status"
            ).fetchall()
        )
        stale = sum(
            1
            for _tid, pid, ts in conn.execute(
                "SELECT task_id, owner_pid, claimed_at FROM tasks "
                "WHERE status='claimed'"
            ).fetchall()
            if self._claim_is_stale(pid, ts)
        )
        quarantined_tasks = {
            task_id
            for (task_id,) in conn.execute(
                "SELECT DISTINCT task_id FROM quarantine"
            ).fetchall()
            if task_id
        }
        unresolved = sorted(
            task_id
            for task_id in quarantined_tasks
            if latest.get(task_id, {}).get("status") != "ok"
        )
        n_quarantined = conn.execute(
            "SELECT COUNT(*) FROM quarantine"
        ).fetchone()[0]
        report = {
            "backend": self.name,
            "path": str(self.path),
            "store_schema": int(self._meta("store_schema")),
            "ok": not corrupt and not unresolved,
            "n_records": len(rows) - (len(corrupt) if repair else 0),
            "n_tasks_ok": sum(
                1 for r in latest.values() if r.get("status") == "ok"
            ),
            "n_corrupt": len(corrupt),
            "n_quarantined": n_quarantined,
            "n_stale_claims": stale,
            "tasks": {k: task_counts[k] for k in sorted(task_counts)},
            "problems": [],
        }
        for _seq, task_id, _text, _sum, reason in corrupt:
            verb = "quarantined + re-queued" if repair else "found"
            report["problems"].append(f"{verb} {task_id or '?'}: {reason}")
        for task_id in unresolved:
            report["problems"].append(
                f"quarantined {task_id} not yet recomputed "
                "(resume the campaign)"
            )
        return report


def migrate_jsonl_to_sqlite(
    src: str | Path, dst: str | Path, *, fsync: bool = False
) -> int:
    """One-way migration of an existing JSONL store into a fresh sqlite
    store (the source file is left untouched).

    Record order and full history are preserved — every JSONL line
    becomes a result row, re-stamped with the sqlite backend's
    provenance, its task marked ``done`` — so resume, ``latest`` and
    table rendering behave identically on the migrated store.  Returns
    the number of records migrated.
    """
    src, dst = Path(src), Path(dst)
    if dst.exists():
        raise FileExistsError(
            f"{dst}: refusing to migrate onto an existing file "
            "(migration is one-way, into a fresh store)"
        )
    records = ResultStore(src, lock=False).load()  # tolerates a torn tail
    backend = SqliteBackend(dst, fsync=fsync).open()
    try:
        for record in records:
            backend.append(dict(record))
        conn = backend._connection()
        conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            ("migrated_from", str(src)),
        )
    finally:
        backend.close()
    return len(records)
