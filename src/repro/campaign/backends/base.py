"""The :class:`ResultBackend` protocol: what a campaign store provides.

The runner (:mod:`repro.campaign.runner`) talks to storage exclusively
through these verbs, so a store is pluggable — today JSONL
(:class:`~repro.campaign.backends.jsonl.JsonlBackend`, single writer
behind an advisory lock) and sqlite
(:class:`~repro.campaign.backends.sqlite.SqliteBackend`, multi-runner
with atomic task claims).  The verbs:

``open``
    Recover the store to a consistent state: journal recovery, torn /
    corrupt-row detection (quarantine + task re-queue) and stale-claim
    reclamation all happen here, so a crashed campaign's store is
    usable the moment it is opened again.
``register`` / ``claim`` / ``release``
    The multi-runner coordination surface.  ``register`` makes task
    rows exist (idempotent), ``claim`` atomically takes ownership of a
    *pending* task — exactly one of N concurrent runners wins — and
    ``release`` hands back claims a campaign will not finish.
    Backends without real claiming (JSONL) make ``claim`` vacuously
    true and coordinate by locking out the second writer entirely.
``append``
    Persist one finished record and mark its task done, atomically
    where the substrate allows; stamps the ``backend`` /
    ``store_schema`` provenance fields.  Transient I/O failures
    (out-of-space, lock contention) are retried with bounded backoff
    inside the backend.
``load`` / ``latest``
    The scan verbs: every record in commit order / the newest record
    per task id (what resume and the report renderer consume).
``heal``
    On-demand salvage (re-run the recovery ``open`` performs).
``verify``
    Integrity report — record/checksum/claim/quarantine census — as a
    flat dict; ``repair=True`` additionally quarantines and re-queues
    what it finds (``repro campaign verify-store`` renders this).

The protocol is structural (:class:`typing.Protocol`): backends do not
inherit from it, they just provide the surface, and
``isinstance(obj, ResultBackend)`` checks membership at runtime.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Protocol, runtime_checkable


@runtime_checkable
class ResultBackend(Protocol):
    """Structural protocol for campaign result stores."""

    #: Registry name of the backend (``"jsonl"`` / ``"sqlite"``) —
    #: also the value stamped into each record's ``backend`` field.
    name: str
    #: Storage-layout schema version the backend writes (stamped into
    #: each record's ``store_schema`` field).
    STORE_SCHEMA: int
    #: Whether :meth:`claim` actually arbitrates between runners.
    supports_claiming: bool
    #: Where the store lives on disk.
    path: Path

    def open(self) -> "ResultBackend": ...

    def close(self) -> None: ...

    def append(self, record: dict) -> None: ...

    def load(self) -> list[dict]: ...

    def latest(self) -> dict[str, dict]: ...

    def register(self, task_ids: Iterable[str], force: bool = False) -> None: ...

    def claim(self, task_id: str) -> bool: ...

    def release(self) -> None: ...

    def heal(self) -> None: ...

    def verify(self, repair: bool = False) -> dict: ...
