"""Fault-class task implementations: one (circuit, fault class) cell.

Each runner takes a built :class:`~repro.logic.network.Network` and the
PODEM ``engine`` selector and returns a flat, JSON-serialisable metrics
dict — the payload of one campaign record.  All runners are
deterministic: the same circuit and engine produce bit-identical
metrics in any process, which is what lets the campaign runner promise
identical stores for 1-worker and N-worker runs.

The four registered fault classes mirror the paper's Section 5:

``stuck_at``
    Classic PODEM with bit-parallel fault dropping + greedy compaction,
    then a full fault-simulation pass of the compacted set (Sec. V-A).
``polarity``
    The paper's headline gap: how many polarity bridges the classic
    stuck-at set detects at the outputs (escapes), vs. the polarity-
    aware ATPG's voltage/IDDQ coverage (Sec. V-B).
``iddq``
    Greedy compact IDDQ screening-vector selection (Sec. V-B).
``stuck_open``
    Channel-break census: DP-masked sites needing the polarity-
    inversion procedure, plus two-pattern SOF ATPG with fault dropping
    on the testable remainder (Sec. V-C).

A fifth runner, ``fault_sim``, is registered for the scaling tier but
kept out of :data:`DEFAULT_FAULT_CLASSES`: it skips ATPG entirely and
random-simulates the full stuck-at + polarity populations through the
multi-word 2-D engine (:mod:`repro.logic.multiword`), which is what
makes thousands-of-gate corpus circuits tractable per campaign cell.

Every runner sources its fault list from the unified universe registry
(:func:`repro.faults.get_universe` — ``stuck_at`` / ``polarity`` /
``stuck_open`` by name), so a new fault class is a registered
:class:`~repro.faults.universe.FaultUniverse` plus one dict entry::

    >>> from repro.campaign.tasks import TASK_RUNNERS
    >>> sorted(TASK_RUNNERS)
    ['fault_sim', 'iddq', 'polarity', 'stuck_at', 'stuck_open']

Example (runs in a few milliseconds)::

    >>> from repro.campaign.registry import get_registry
    >>> metrics = run_fault_class(get_registry().load("c17"), "stuck_at")
    >>> metrics["coverage"] == 1.0 and metrics["n_vectors"] > 0
    True
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.atpg.compaction import compact_tests
from repro.atpg.fault_sim import (
    parallel_polarity_simulation,
    parallel_stuck_at_simulation,
)
from repro.atpg.iddq import select_iddq_vectors
from repro.atpg.podem import run_stuck_at_atpg
from repro.atpg.polarity_atpg import run_polarity_atpg
from repro.atpg.sof_atpg import run_sof_atpg
from repro.faults import get_universe
from repro.logic.network import Network

TaskRunner = Callable[[Network, str], dict]


def classic_stuck_at_testset(
    network: Network, max_backtracks: int = 500, engine: str = "compiled"
) -> list[dict[str, int]]:
    """PODEM with fault dropping + greedy compaction: the classic
    production test set (the baseline every escape metric is against).
    """
    faults = get_universe("stuck_at").collapse(network)
    atpg = run_stuck_at_atpg(network, faults, max_backtracks, engine=engine)
    compacted = compact_tests(network, atpg.tests, faults)
    return compacted.vectors


def run_stuck_at_task(network: Network, engine: str = "compiled") -> dict:
    """Sec. V-A baseline: full stuck-at ATPG + compaction + fault sim."""
    faults = get_universe("stuck_at").collapse(network)
    atpg = run_stuck_at_atpg(network, faults, engine=engine)
    compacted = compact_tests(network, atpg.tests, faults)
    sim = parallel_stuck_at_simulation(network, faults, compacted.vectors)
    return {
        "n_faults": len(faults),
        "n_tests_generated": len(atpg.tests),
        "n_vectors": len(compacted.vectors),
        "coverage": sim.coverage,
        "n_untestable": len(atpg.untestable),
        "n_aborted": len(atpg.aborted),
        "backtracks": atpg.total_backtracks,
    }


def run_polarity_task(network: Network, engine: str = "compiled") -> dict:
    """Sec. V-B gap: polarity escapes of the classic set vs. the
    polarity-aware ATPG.  Circuits without DP gates report ``None``
    coverages (rendered as ``n/a``)."""
    faults = get_universe("polarity").collapse(network)
    if not faults:
        return {
            "n_faults": 0,
            "coverage_by_stuck_at_set": None,
            "n_escapes": 0,
            "atpg_coverage": None,
            "n_voltage_tests": 0,
            "n_iddq_tests": 0,
            "n_untestable": 0,
        }
    sa_set = classic_stuck_at_testset(network, engine=engine)
    by_sa = parallel_polarity_simulation(network, faults, sa_set)
    atpg = run_polarity_atpg(network, faults, engine=engine)
    modes: dict[str, int] = {}
    for test in atpg.tests:
        modes[test.mode] = modes.get(test.mode, 0) + 1
    return {
        "n_faults": len(faults),
        "coverage_by_stuck_at_set": by_sa.coverage,
        "n_escapes": len(by_sa.undetected),
        "atpg_coverage": atpg.coverage,
        "n_voltage_tests": modes.get("voltage", 0),
        "n_iddq_tests": modes.get("iddq", 0),
        "n_untestable": len(atpg.untestable),
    }


def run_iddq_task(network: Network, engine: str = "compiled") -> dict:
    """Sec. V-B screening: greedy compact IDDQ vector selection."""
    faults = get_universe("polarity").collapse(network)
    if not faults:
        return {
            "n_faults": 0,
            "n_vectors": 0,
            "coverage": None,
            "n_detected": 0,
            "n_uncovered": 0,
        }
    selection = select_iddq_vectors(network, faults, engine=engine)
    return {
        "n_faults": len(faults),
        "n_vectors": len(selection.vectors),
        "coverage": selection.coverage,
        "n_detected": len(selection.covered),
        "n_uncovered": len(selection.uncovered),
    }


def run_stuck_open_task(network: Network, engine: str = "compiled") -> dict:
    """Sec. V-C census: masked channel breaks + two-pattern SOF ATPG
    with fault dropping on the testable remainder."""
    faults = get_universe("stuck_open").collapse(network)
    atpg = run_sof_atpg(network, faults, drop_detected=True, engine=engine)
    return {
        "n_faults": len(faults),
        "n_masked": len(atpg.masked),
        "n_tests": len(atpg.tests),
        "n_dropped": len(atpg.dropped),
        "n_untestable": len(atpg.untestable),
        "coverage": atpg.coverage,
    }


#: Vectors per :func:`run_fault_sim_task` sweep — two multi-word
#: chunks on every circuit, so the 2-D packing is always exercised.
FAULT_SIM_VECTORS = 256

#: Clock cycles per sequential test in :func:`run_fault_sim_task` —
#: enough frames for state faults to reach the outputs on the
#: ISCAS-89-class corpus circuits while the unrolled problem stays a
#: small multiple of the combinational one.
FAULT_SIM_FRAMES = 3


def run_fault_sim_task(network: Network, engine: str = "auto") -> dict:
    """Scaling-tier cell: pure multi-word random fault simulation.

    No ATPG — a seeded random vector sweep (seed derived from the
    circuit name, so any process regenerates the identical set) fault-
    simulates the whole collapsed stuck-at population plus the polarity
    population in voltage and IDDQ modes as 2-D fault×vector sweeps.
    This is the only runner that stays single-digit seconds on the
    ≥1000-gate corpus circuits, and its metrics are bit-identical
    across processes and worker counts by construction.

    Sequential circuits run through the same sweeps time-frame expanded
    (:data:`FAULT_SIM_FRAMES` cycles per test, flops reset to 0): each
    random test is a per-cycle input sequence and a fault counts as
    detected when any frame's outputs differ.  The metrics dict then
    carries ``n_frames`` / ``n_flops`` alongside the shared keys, so
    combinational and sequential cells stay directly comparable.
    """
    import zlib

    from repro.atpg.fault_sim import polarity_detection_words
    from repro.circuits.random_circuits import (
        random_sequence_vectors,
        random_vectors,
    )

    seed = zlib.crc32(network.name.encode("utf-8"))
    sequence_opts: dict = {}
    metrics: dict = {}
    if network.is_sequential:
        vectors = random_sequence_vectors(
            network, FAULT_SIM_VECTORS, FAULT_SIM_FRAMES, seed=seed
        )
        sequence_opts = dict(
            unroll=FAULT_SIM_FRAMES,
            initial_state={q: 0 for q in network.flops},
        )
        metrics = {
            "n_frames": FAULT_SIM_FRAMES,
            "n_flops": len(network.flops),
        }
    else:
        vectors = random_vectors(network, FAULT_SIM_VECTORS, seed=seed)
    sa_faults = get_universe("stuck_at").collapse(network)
    sa = parallel_stuck_at_simulation(
        network, sa_faults, vectors, engine=engine, **sequence_opts
    )
    po_faults = get_universe("polarity").collapse(network)
    metrics.update({
        "n_vectors": len(vectors),
        "n_stuck_at_faults": len(sa_faults),
        "stuck_at_coverage": sa.coverage,
        "n_polarity_faults": len(po_faults),
        "polarity_voltage_coverage": None,
        "polarity_iddq_coverage": None,
    })
    if po_faults:
        voltage = polarity_detection_words(
            network, po_faults, vectors, engine=engine, **sequence_opts
        )
        iddq = polarity_detection_words(
            network, po_faults, vectors, iddq=True, engine=engine,
            **sequence_opts
        )
        metrics["polarity_voltage_coverage"] = sum(
            1 for w in voltage if w
        ) / len(po_faults)
        metrics["polarity_iddq_coverage"] = sum(
            1 for w in iddq if w
        ) / len(po_faults)
    return metrics


#: Fault-class name -> runner.  Tests and downstream users may add
#: entries; campaign workers resolve the name in their own process.
#: Caveat: runtime registrations reach workers only under the ``fork``
#: start method (Linux default) — ``spawn``-started workers re-import
#: this module fresh, so on those platforms custom classes must be
#: registered at import time or run with ``workers=1``.
TASK_RUNNERS: dict[str, TaskRunner] = {
    "stuck_at": run_stuck_at_task,
    "polarity": run_polarity_task,
    "iddq": run_iddq_task,
    "stuck_open": run_stuck_open_task,
    "fault_sim": run_fault_sim_task,
}

#: Grid default: the paper's four Section 5 fault classes, in
#: narrative order.  ``fault_sim`` is opt-in — it is the scaling-tier
#: cell, not part of the paper's per-class story.
DEFAULT_FAULT_CLASSES: tuple[str, ...] = (
    "stuck_at", "polarity", "iddq", "stuck_open",
)


def run_fault_class(
    network: Network, fault_class: str, engine: str = "compiled"
) -> dict:
    """Dispatch one (circuit, fault class) cell to its runner."""
    try:
        runner = TASK_RUNNERS[fault_class]
    except KeyError:
        raise KeyError(
            f"unknown fault class {fault_class!r}; "
            f"available: {sorted(TASK_RUNNERS)}"
        ) from None
    return runner(network, engine)
