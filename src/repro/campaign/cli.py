"""``python -m repro``: one entry point for every scenario in the repo.

Subcommands::

    repro list          circuits + fault classes the grids are built from
    repro run           run a (circuit x fault-class) grid, checkpointed
    repro report        re-render tables from a stored campaign
    repro paper-tables  the paper's Section 5 coverage/escape tables
    repro experiment    single paper artifacts (Table I-III, Fig. 3-5, V-C)
    repro demo          the narrated walkthroughs behind ``examples/``
    repro faults        the fault-universe registry (list / census)
    repro campaign      store maintenance (list / verify-store / migrate-store)
    repro serve         the async job service (docs/SERVICE.md)
    repro cache stats   in-process memo counters (device/table/compile)

``list``, ``campaign list`` and ``faults census`` take ``--json`` for
machine-readable output (what API clients and the load harness consume
instead of scraping the human tables).

``run`` and ``paper-tables`` shut down gracefully on SIGTERM/SIGINT:
the campaign stops between cells, releases its sqlite claims and
flushes the store (exit code 130), so a rerun resumes instead of
waiting out stale leases.

Copy-paste invocations for each paper table live in
``docs/CAMPAIGNS.md``; the end-to-end walkthrough in
``docs/TUTORIAL.md``.  Typical session::

    python -m repro list --tag tiny
    python -m repro run --circuits c17 rca4 --fault-classes stuck_at polarity
    python -m repro report --store campaign_store.jsonl
    python -m repro paper-tables

``run`` and ``paper-tables`` resume from their store by default:
interrupt them mid-grid and the rerun recomputes only unfinished tasks.
The store is pluggable (``--backend jsonl|sqlite``, default: detect
from the file): JSONL is the single-writer default; sqlite coordinates
*multiple concurrent runner processes* sharing one store via atomic
task claims — point N ``repro run`` invocations at the same
``--backend sqlite --store grid.sqlite`` and they split the grid.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.campaign.backends import (
    BACKENDS,
    migrate_jsonl_to_sqlite,
    open_store,
)
from repro.campaign.registry import get_registry
from repro.campaign.runner import RetryPolicy, expand_grid, run_campaign
from repro.campaign.store import StoreLockedError
from repro.campaign.tables import (
    SECTION5_READING,
    SECTION5_SUITE as PAPER_SUITE,
    coverage_table,
    escape_table,
    render_report,
    run_table,
)
from repro.campaign.tasks import DEFAULT_FAULT_CLASSES, TASK_RUNNERS

#: ``--smoke`` grid: 2 circuits x 2 fault classes, seconds on 2 workers
#: (the CI job), still crossing an SP-only and a DP circuit.
SMOKE_CIRCUITS: tuple[str, ...] = ("c17", "tmr_voter")
SMOKE_FAULT_CLASSES: tuple[str, ...] = ("stuck_at", "polarity")

DEFAULT_STORE = "campaign_store.jsonl"
PAPER_STORE = "benchmarks/out/paper_campaign.jsonl"

#: Static name lists so parser construction stays import-light (the
#: drivers behind them are imported lazily by their subcommands).
EXPERIMENT_NAMES: tuple[str, ...] = (
    "table1", "table2", "table3", "fig3", "fig4", "fig5", "sec5c",
    "atpg-coverage",
)
DEMO_NAMES: tuple[str, ...] = (
    "quickstart", "device-characterization", "iddq-screening",
    "channel-break", "atpg-flow", "batched-sweeps",
)


def _add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--circuits", nargs="+", metavar="NAME",
        help="registry circuit names (see 'repro list')",
    )
    parser.add_argument(
        "--tag", nargs="+", default=None, metavar="TAG",
        help="select circuits carrying all of these tags instead",
    )
    parser.add_argument(
        "--fault-classes", nargs="+", metavar="CLASS",
        choices=sorted(TASK_RUNNERS), default=None,
        help=f"subset of {sorted(TASK_RUNNERS)} (default: all)",
    )
    parser.add_argument(
        "--engine", default="compiled", choices=("compiled", "legacy"),
        help="PODEM engine backing every generation step",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="pool size (default 1; 1 = inline, no subprocesses; "
             "--smoke defaults to 2 unless given)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-task soft wall-clock bound (overruns become 'timeout' "
             "records); with workers > 1 a hard watchdog kills workers "
             "stuck past it (see --watchdog-grace)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="retry budget for transient task failures "
             f"(default {RetryPolicy.max_attempts}, exponential backoff)",
    )
    parser.add_argument(
        "--watchdog-grace", type=float, default=None, metavar="SECONDS",
        help="extra time past --timeout before the supervisor kills a "
             f"stuck worker from outside (default "
             f"{RetryPolicy.watchdog_grace:g}s)",
    )
    parser.add_argument(
        "--backend", default="auto",
        choices=("auto", *sorted(BACKENDS)),
        help="store backend: jsonl (single writer, fails fast if "
             "locked) or sqlite (multi-runner, atomic task claims); "
             "auto detects from the store file (default)",
    )
    parser.add_argument(
        "--fsync", action="store_true",
        help="fsync the store after every record (survives machine "
             "crashes, not just process kills)",
    )
    parser.add_argument(
        "--no-resume", action="store_true",
        help="recompute every task even if the store already has it",
    )
    parser.add_argument(
        "--bench", nargs="+", default=(), metavar="FILE",
        help="register external .bench netlists before expanding the grid",
    )


def _register_bench_files(paths) -> list[str]:
    registry = get_registry()
    names = []
    for path in paths:
        names.append(registry.register_bench_file(path, replace=True).name)
    return names


def _retry_policy(args) -> RetryPolicy:
    """The grid flags' retry/watchdog overrides on top of the defaults."""
    overrides = {}
    if args.max_attempts is not None:
        overrides["max_attempts"] = args.max_attempts
    if args.watchdog_grace is not None:
        overrides["watchdog_grace"] = args.watchdog_grace
    return RetryPolicy(**overrides)


def _resolve_store(args, default: str) -> str:
    """The effective store path: when ``--backend sqlite`` is asked
    for but the store path was left at its JSONL-named default, swap
    the suffix so the two backends' default stores do not collide."""
    if args.store == default and getattr(args, "backend", "auto") == "sqlite":
        return str(Path(default).with_suffix(".sqlite"))
    return args.store


def _run_grid(args, circuits, fault_classes, store_path) -> int:
    from repro.campaign.supervisor import graceful_shutdown

    grid = expand_grid(
        circuits, fault_classes, engine=args.engine
    )
    try:
        store = open_store(store_path, args.backend, fsync=args.fsync)
    except StoreLockedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    try:
        with store, graceful_shutdown() as stop:
            result = run_campaign(
                grid,
                store=store,
                workers=args.workers or 1,
                timeout=args.timeout,
                resume=not args.no_resume,
                progress=lambda line: print(line, file=sys.stderr),
                policy=_retry_policy(args),
                should_stop=stop.is_set,
            )
    except StoreLockedError as exc:
        # JSONL locks lazily, on the first append.
        print(f"error: {exc}", file=sys.stderr)
        return 3
    print(render_report(result.records))
    if result.store_path is not None:
        external = (
            f", {result.n_external} run elsewhere" if result.n_external else ""
        )
        print(f"\nstore: {result.store_path} "
              f"({result.n_run} run, {result.n_skipped} resumed, "
              f"{result.n_failed} failed{external})")
    if result.interrupted:
        print("interrupted: claims released, store flushed — rerun to "
              "resume", file=sys.stderr)
        return 130
    # Exit nonzero whenever any cell did not finish ok (error, timeout
    # or poisoned) so CI grids actually gate on campaign health.
    return 1 if result.n_failed else 0


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------

def registry_listing(tags=None) -> dict:
    """Machine-readable registry listing (the ``--json`` payload shared
    by ``repro list`` and ``repro campaign list``)."""
    registry = get_registry()
    circuits = []
    for name in registry.names(tags=tags):
        spec = registry.spec(name)
        stats = spec.stats()
        circuits.append({
            "name": name,
            "gates": stats["gates"],
            "inputs": stats["inputs"],
            "outputs": stats["outputs"],
            "depth": stats["depth"],
            "tags": sorted(spec.all_tags()),
        })
    return {
        "circuits": circuits,
        "fault_classes": sorted(TASK_RUNNERS),
        "default_fault_classes": list(DEFAULT_FAULT_CLASSES),
    }


def cmd_list(args) -> int:
    from repro.analysis.report import ascii_table

    listing = registry_listing(tags=args.tag)
    if getattr(args, "json", False):
        print(json.dumps(listing, indent=1, sort_keys=True))
        return 0
    rows = [
        (
            c["name"], c["gates"], c["inputs"], c["outputs"], c["depth"],
            " ".join(c["tags"]),
        )
        for c in listing["circuits"]
    ]
    print(ascii_table(
        ("circuit", "gates", "PIs", "POs", "depth", "tags"), rows
    ))
    print(f"\nfault classes: {' '.join(DEFAULT_FAULT_CLASSES)}")
    return 0


def cmd_cache_stats(args) -> int:
    """In-process cache counters (device/table models + compile memo),
    from the same source the ``/metrics`` gauges render."""
    from repro.service.metrics import cache_stats

    stats = cache_stats()
    if getattr(args, "json", False):
        print(json.dumps(stats, indent=1, sort_keys=True))
        return 0
    from repro.analysis.report import ascii_table

    rows = [
        (cache, *(counters.get(k, 0) for k in ("hits", "misses")),
         counters.get("instance_hits", ""), counters.get("evictions", ""))
        for cache, counters in sorted(stats.items())
    ]
    print(ascii_table(
        ("cache", "hits", "misses", "instance_hits", "evictions"), rows
    ))
    print("\n(counters are per-process; the service exposes them live "
          "as repro_cache_events on /metrics)")
    return 0


def cmd_serve(args) -> int:
    from repro.service.api import serve_forever

    return serve_forever(
        args.state_dir,
        host=args.host,
        port=args.port,
        job_workers=args.job_workers,
    )


def _select_circuits(args) -> list[str]:
    """Grid circuit selection shared by ``run`` and ``paper-tables``:
    explicit names, tag selection, and any just-registered ``--bench``
    netlists (which select themselves)."""
    bench_names = _register_bench_files(args.bench)
    if args.tag:
        circuits = get_registry().names(tags=args.tag)
    else:
        circuits = list(args.circuits or ())
    circuits.extend(n for n in bench_names if n not in circuits)
    return circuits


def cmd_run(args) -> int:
    circuits = _select_circuits(args)
    if args.smoke:
        circuits = circuits or list(SMOKE_CIRCUITS)
        fault_classes = list(args.fault_classes or SMOKE_FAULT_CLASSES)
        if args.workers is None:
            args.workers = 2
    else:
        fault_classes = list(args.fault_classes or DEFAULT_FAULT_CLASSES)
        if not circuits:
            print("no circuits selected: pass --circuits, --tag, --bench "
                  "or --smoke", file=sys.stderr)
            return 2
    return _run_grid(
        args, circuits, fault_classes, _resolve_store(args, DEFAULT_STORE)
    )


def cmd_report(args) -> int:
    if not Path(args.store).exists():
        print(f"no store at {args.store}", file=sys.stderr)
        return 1
    with open_store(args.store, args.backend, lock=False) as store:
        records = list(store.latest().values())
    if not records:
        print(f"no records in {args.store}", file=sys.stderr)
        return 1
    if args.table == "coverage":
        print(coverage_table(records))
    elif args.table == "escapes":
        print(escape_table(records))
    elif args.table == "tasks":
        print(run_table(records))
    else:
        print(render_report(records))
    return 0


def cmd_paper_tables(args) -> int:
    from repro.campaign.supervisor import graceful_shutdown

    grid = expand_grid(
        _select_circuits(args) or list(PAPER_SUITE),
        args.fault_classes or DEFAULT_FAULT_CLASSES,
        engine=args.engine,
    )
    try:
        with open_store(
            _resolve_store(args, PAPER_STORE), args.backend,
            fsync=args.fsync,
        ) as store, graceful_shutdown() as stop:
            result = run_campaign(
                grid,
                store=store,
                workers=args.workers or 1,
                timeout=args.timeout,
                resume=not args.no_resume,
                progress=lambda line: print(line, file=sys.stderr),
                policy=_retry_policy(args),
                should_stop=stop.is_set,
            )
    except StoreLockedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    if result.interrupted:
        print("interrupted: claims released, store flushed — rerun to "
              "resume", file=sys.stderr)
        return 130
    print("Section 5 coverage study: "
          "classic stuck-at tests vs CP fault models")
    print(coverage_table(result.records))
    print()
    print("Escapes of the classic flow "
          "(the faults needing the paper's new tests):")
    print(escape_table(result.records))
    print()
    print(SECTION5_READING)
    if result.store_path is not None:
        external = (
            f", {result.n_external} run elsewhere" if result.n_external else ""
        )
        print(f"\nstore: {result.store_path} "
              f"({result.n_run} run, {result.n_skipped} resumed, "
              f"{result.n_failed} failed{external})")
    return 1 if result.n_failed else 0


def cmd_verify_store(args) -> int:
    """Integrity census of a campaign store (``--repair`` additionally
    heals torn tails / quarantines corrupt rows and re-queues their
    tasks).  Exit 0 iff the store is healthy."""
    if not Path(args.store).exists():
        print(f"no store at {args.store}", file=sys.stderr)
        return 1
    with open_store(args.store, args.backend, lock=False) as store:
        report = store.verify(repair=args.repair)
    for key in (
        "backend", "path", "store_schema", "n_records", "n_tasks_ok",
        "n_corrupt", "n_quarantined", "n_stale_claims", "torn_tail",
    ):
        if key in report:
            print(f"{key:>15}: {report[key]}")
    if report.get("tasks"):
        print(f"{'tasks':>15}: {json.dumps(report['tasks'])}")
    for problem in report["problems"]:
        print(f"{'problem':>15}: {problem}")
    print(f"{'ok':>15}: {report['ok']}")
    return 0 if report["ok"] else 1


def cmd_migrate_store(args) -> int:
    """One-way JSONL → sqlite store migration (source left in place)."""
    src, dst = Path(args.store), Path(args.to)
    if not src.exists():
        print(f"no store at {src}", file=sys.stderr)
        return 1
    try:
        count = migrate_jsonl_to_sqlite(src, dst, fsync=args.fsync)
    except (FileExistsError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"migrated {count} record(s): {src} -> {dst}")
    print(f"verify with: repro campaign verify-store --store {dst}")
    return 0


def cmd_experiment(args) -> int:
    from repro.analysis.experiments import EXPERIMENTS

    driver = EXPERIMENTS[args.name]
    _result, report = driver()
    print(report)
    if args.out:
        from repro.analysis.report import save_report

        path = save_report(args.name, report, directory=args.out)
        print(f"\nsaved: {path}", file=sys.stderr)
    return 0


def cmd_demo(args) -> int:
    from repro.analysis.demos import DEMOS

    DEMOS[args.name]()
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Campaign orchestration for the CP-SiNWFET fault-modeling "
            "reproduction (see docs/CAMPAIGNS.md)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser(
        "list", help="list registered circuits and fault classes"
    )
    p_list.add_argument("--tag", nargs="+", default=None)
    p_list.add_argument(
        "--json", action="store_true",
        help="machine-readable listing (what API clients consume)",
    )
    p_list.set_defaults(func=cmd_list)

    p_run = sub.add_parser(
        "run", help="run a (circuit x fault-class) grid with checkpointing"
    )
    _add_grid_arguments(p_run)
    p_run.add_argument(
        "--store", default=DEFAULT_STORE, metavar="PATH",
        help=f"JSONL checkpoint/result store (default {DEFAULT_STORE})",
    )
    p_run.add_argument(
        "--smoke", action="store_true",
        help=(
            "CI grid: "
            f"{' '.join(SMOKE_CIRCUITS)} x {' '.join(SMOKE_FAULT_CLASSES)}"
            " on 2 workers"
        ),
    )
    p_run.set_defaults(func=cmd_run)

    p_report = sub.add_parser(
        "report", help="render tables from a stored campaign"
    )
    p_report.add_argument("--store", default=DEFAULT_STORE, metavar="PATH")
    p_report.add_argument(
        "--backend", default="auto", choices=("auto", *sorted(BACKENDS)),
    )
    p_report.add_argument(
        "--table", default="all",
        choices=("all", "coverage", "escapes", "tasks"),
    )
    p_report.set_defaults(func=cmd_report)

    p_campaign = sub.add_parser(
        "campaign",
        help="store maintenance: integrity checks and backend migration",
    )
    campaign_sub = p_campaign.add_subparsers(
        dest="campaign_command", required=True
    )
    pc_list = campaign_sub.add_parser(
        "list",
        help="list registered circuits and fault classes "
             "(alias of 'repro list')",
    )
    pc_list.add_argument("--tag", nargs="+", default=None)
    pc_list.add_argument(
        "--json", action="store_true",
        help="machine-readable listing (what API clients consume)",
    )
    pc_list.set_defaults(func=cmd_list)
    pc_verify = campaign_sub.add_parser(
        "verify-store",
        help="checksum/claim/quarantine census of a store "
             "(exit 0 iff healthy)",
    )
    pc_verify.add_argument("--store", default=DEFAULT_STORE, metavar="PATH")
    pc_verify.add_argument(
        "--backend", default="auto", choices=("auto", *sorted(BACKENDS)),
    )
    pc_verify.add_argument(
        "--repair", action="store_true",
        help="also heal torn tails / quarantine corrupt rows and "
             "re-queue their tasks",
    )
    pc_verify.set_defaults(func=cmd_verify_store)
    pc_migrate = campaign_sub.add_parser(
        "migrate-store",
        help="one-way JSONL -> sqlite migration (source untouched)",
    )
    pc_migrate.add_argument(
        "--store", required=True, metavar="SRC", help="JSONL source store"
    )
    pc_migrate.add_argument(
        "--to", required=True, metavar="DST",
        help="fresh sqlite destination (must not exist)",
    )
    pc_migrate.add_argument(
        "--fsync", action="store_true",
        help="write the destination with synchronous=FULL",
    )
    pc_migrate.set_defaults(func=cmd_migrate_store)

    p_paper = sub.add_parser(
        "paper-tables",
        help="reproduce the paper's Section 5 coverage/escape tables",
    )
    _add_grid_arguments(p_paper)
    p_paper.add_argument(
        "--store", default=PAPER_STORE, metavar="PATH",
        help=f"JSONL store (default {PAPER_STORE})",
    )
    p_paper.set_defaults(func=cmd_paper_tables)

    p_exp = sub.add_parser(
        "experiment",
        help="run one paper-artifact driver (tables I-III, figs 3-5, V-C)",
    )
    p_exp.add_argument("name", choices=EXPERIMENT_NAMES)
    p_exp.add_argument(
        "--out", default=None, metavar="DIR",
        help="also save the report under DIR",
    )
    p_exp.set_defaults(func=cmd_experiment)

    p_demo = sub.add_parser(
        "demo", help="run a narrated walkthrough (backs examples/*.py)"
    )
    p_demo.add_argument("name", choices=DEMO_NAMES)
    p_demo.set_defaults(func=cmd_demo)

    # Imported here (not at module top) to keep parser construction
    # import-light, like the experiment/demo drivers.
    from repro.faults.cli import cmd_faults_census, cmd_faults_list

    p_faults = sub.add_parser(
        "faults",
        help="fault-universe registry tools (see docs/FAULT_UNIVERSES.md)",
    )
    faults_sub = p_faults.add_subparsers(dest="faults_command", required=True)
    pf_list = faults_sub.add_parser(
        "list", help="list registered fault universes"
    )
    pf_list.set_defaults(func=cmd_faults_list)
    pf_census = faults_sub.add_parser(
        "census",
        help="per-universe fault counts (before/after collapsing) "
             "for registry circuits",
    )
    pf_census.add_argument("circuits", nargs="+", metavar="CIRCUIT")
    pf_census.add_argument(
        "--universes", nargs="+", default=None, metavar="NAME",
        help="restrict the census to these universes (default: all)",
    )
    pf_census.add_argument(
        "--json", action="store_true",
        help="machine-readable census (what API clients and the load "
             "harness consume)",
    )
    pf_census.set_defaults(func=cmd_faults_census)

    p_serve = sub.add_parser(
        "serve",
        help="run the async campaign job service (docs/SERVICE.md)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default local)"
    )
    p_serve.add_argument(
        "--port", type=int, default=8089, help="bind port (default 8089)"
    )
    p_serve.add_argument(
        "--state-dir", default="service_state", metavar="DIR",
        help="job specs + the shared sqlite store live here; a restart "
             "re-attaches and resumes unfinished jobs",
    )
    p_serve.add_argument(
        "--job-workers", type=int, default=2, metavar="N",
        help="concurrent campaigns (worker threads; default 2)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_cache = sub.add_parser(
        "cache",
        help="in-process cache tools (device/table models, compile memo)",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    pc_stats = cache_sub.add_parser(
        "stats",
        help="hit/miss counters of the model caches and the "
             "compile_network memo",
    )
    pc_stats.add_argument(
        "--json", action="store_true", help="machine-readable counters"
    )
    pc_stats.set_defaults(func=cmd_cache_stats)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
