"""Supervised worker-process layer: the fault-tolerant campaign engine.

``multiprocessing.Pool`` treats a dead worker as a fatal event: one
segfaulting, OOM-killed or wedged cell aborts the whole campaign, and
the in-worker ``SIGALRM`` soft timeout cannot interrupt native
numpy/sparse-solver code.  This module replaces the pool with a parent
that *owns* its workers and supervises them from outside:

* **One task in flight per worker** — the parent always knows which
  cell a worker holds, so every failure is attributable.
* **Hard watchdog** — a worker that overruns
  ``timeout + policy.watchdog_grace`` is SIGKILLed from the parent,
  covering native-code hangs and platforms without ``SIGALRM``.
* **Death detection + respawn** — a worker that dies mid-task
  (segfault, OOM killer, SIGKILL) is detected by liveness polling; the
  parent respawns a replacement and reschedules the cell.
* **Retry with exponential backoff** — transient task errors
  (classified by :func:`repro.campaign.runner.classify_transient`) and
  worker deaths/hangs are retried on the
  :class:`~repro.campaign.runner.RetryPolicy` schedule; permanent
  errors fail fast (after the in-worker engine fallback chain).
* **Poison-task quarantine** — a cell that keeps killing workers is
  finalised as ``status: "poisoned"`` after
  ``policy.max_crash_attempts`` deaths instead of crash-looping the
  campaign; repeated watchdog kills finalise as ``status: "timeout"``.
  Both stay resumable: non-``ok`` records rerun on the next campaign.

The parent emits exactly one final record per pending cell (the same
contract the pool had), so :func:`repro.campaign.runner.run_campaign`
checkpointing, resume and determinism guarantees apply unchanged —
``tests/test_campaign_chaos.py`` proves a campaign under injected
kills/hangs/transient errors converges to the same store as an
undisturbed single-worker run.
"""

from __future__ import annotations

import collections
import contextlib
import dataclasses
import heapq
import multiprocessing
import os
import queue as queue_module
import signal
import threading
import time
from typing import Callable, Iterator

from repro.campaign.runner import (
    RetryPolicy,
    TaskSpec,
    execute_task,
)
from repro.campaign.store import SCHEMA_VERSION

#: Parent event-loop tick: result-queue poll timeout, which also bounds
#: watchdog/liveness detection latency.
_POLL_INTERVAL = 0.02

#: How long to wait for a worker to exit after SIGKILL / shutdown.
_JOIN_TIMEOUT = 5.0


def _worker_main(task_queue, result_queue, chaos) -> None:
    """Worker loop: one cell at a time, result tagged with our pid so
    the parent can attribute it.  ``None`` is the shutdown sentinel.
    SIGINT is ignored — campaign interruption is the parent's call."""
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    while True:
        item = task_queue.get()
        if item is None:
            return
        spec, timeout, attempt = item
        record = execute_task(spec, timeout, attempt=attempt, chaos=chaos)
        result_queue.put((os.getpid(), record))


@dataclasses.dataclass
class _TaskState:
    """Parent-side bookkeeping for one pending cell."""

    spec: TaskSpec
    attempt: int = 1
    crashes: int = 0
    hangs: int = 0
    failures: list = dataclasses.field(default_factory=list)
    first_started: float | None = None
    #: Whether this runner already owns the cell's store claim (claims
    #: are taken once and survive retries — the claim is only resolved
    #: when the final record is appended).
    claimed: bool = False


class _Worker:
    """One supervised child process with its private task queue."""

    def __init__(self, context, result_queue, chaos) -> None:
        self.task_queue = context.Queue()
        self.process = context.Process(
            target=_worker_main,
            args=(self.task_queue, result_queue, chaos),
            daemon=True,
        )
        self.process.start()
        self.busy: _TaskState | None = None
        self.deadline: float | None = None

    def dispatch(
        self, state: _TaskState, timeout: float | None, grace: float
    ) -> None:
        state.first_started = state.first_started or time.perf_counter()
        self.busy = state
        self.deadline = (
            None if timeout is None else time.monotonic() + timeout + grace
        )
        self.task_queue.put((state.spec, timeout, state.attempt))

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.kill()
        self.process.join(_JOIN_TIMEOUT)

    def shutdown(self) -> None:
        if self.process.is_alive():
            try:
                self.task_queue.put_nowait(None)
            except Exception:  # pragma: no cover - full pipe on teardown
                pass
            self.process.join(_JOIN_TIMEOUT)
        self.kill()


def _synthetic_record(
    state: _TaskState, status: str, error: str
) -> dict:
    """Final record for a cell that never returned from a worker
    (quarantined crash loop or exhausted watchdog kills)."""
    record = {
        "schema": SCHEMA_VERSION,
        "task_id": state.spec.task_id,
        "circuit": state.spec.circuit,
        "fault_class": state.spec.fault_class,
        "engine": state.spec.engine,
        "attempt": state.attempt,
        "status": status,
        "error": error,
    }
    if state.failures:
        record["failures"] = list(state.failures)
    started = state.first_started or time.perf_counter()
    record["runtime_s"] = round(time.perf_counter() - started, 6)
    return record


def run_supervised(
    tasks: list[TaskSpec],
    *,
    workers: int,
    timeout: float | None,
    policy: RetryPolicy,
    chaos,
    emit: Callable[[dict], None],
    claim: Callable[[str], bool] | None = None,
    external: Callable[[TaskSpec], None] | None = None,
    should_stop: Callable[[], bool] | None = None,
) -> bool:
    """Run ``tasks`` on supervised workers, calling ``emit`` exactly
    once per cell with its final record (completion order).

    With a ``claim`` callback (claiming store backends), each cell is
    claimed exactly once before its first dispatch; a cell another
    runner owns is dropped from this run and reported via ``external``
    instead of ``emit`` — the other runner's store row is its record.
    Retries reuse the original claim (the claim resolves only when the
    final record is appended).

    ``should_stop`` is the cooperative-cancel hook, polled once per
    event-loop tick: when it fires, dispatch stops, in-flight workers
    are killed (their cells emit nothing — a resume recomputes them)
    and the call returns ``True`` instead of ``False``.  The caller
    (:func:`repro.campaign.runner.run_campaign`) then releases store
    claims and flushes/closes the store in its ``finally``.

    See the module docstring for the failure-handling state machine;
    the knobs live on ``policy`` (:class:`RetryPolicy`).
    """
    context = multiprocessing.get_context()
    result_queue = context.Queue()
    states = {spec.task_id: _TaskState(spec) for spec in tasks}
    ready: collections.deque[TaskSpec] = collections.deque(tasks)
    delayed: list[tuple[float, int, TaskSpec]] = []  # (ready_at, seq, spec)
    sequence = 0
    n_final = 0

    def finalize(record: dict) -> None:
        nonlocal n_final
        n_final += 1
        emit(record)

    def reschedule(state: _TaskState) -> None:
        nonlocal sequence
        delay = policy.backoff(state.attempt)
        state.attempt += 1
        sequence += 1
        heapq.heappush(
            delayed, (time.monotonic() + delay, sequence, state.spec)
        )

    def handle_result(state: _TaskState, record: dict) -> None:
        if (
            record["status"] == "error"
            and record.get("transient")
            and state.attempt < policy.max_attempts
        ):
            state.failures.append(
                {
                    "attempt": state.attempt,
                    "kind": "transient",
                    "error": record.get("error", ""),
                }
            )
            reschedule(state)
            return
        if state.failures:
            record["failures"] = state.failures + record.get("failures", [])
        finalize(record)

    def handle_crash(state: _TaskState, exitcode: int | None) -> None:
        state.crashes += 1
        state.failures.append(
            {
                "attempt": state.attempt,
                "kind": "crash",
                "error": f"worker died (exitcode {exitcode}) "
                         f"while running the cell",
            }
        )
        if state.crashes >= policy.max_crash_attempts:
            finalize(
                _synthetic_record(
                    state,
                    "poisoned",
                    f"cell killed {state.crashes} worker(s) in a row; "
                    "quarantined",
                )
            )
        else:
            reschedule(state)

    def handle_hang(state: _TaskState, budget: float) -> None:
        state.hangs += 1
        state.failures.append(
            {
                "attempt": state.attempt,
                "kind": "hang",
                "error": f"watchdog killed worker after {budget:g}s",
            }
        )
        if state.hangs >= policy.max_crash_attempts:
            finalize(
                _synthetic_record(
                    state,
                    "timeout",
                    f"cell exceeded the {budget:g}s watchdog on "
                    f"{state.hangs} attempt(s)",
                )
            )
        else:
            reschedule(state)

    pool = [
        _Worker(context, result_queue, chaos)
        for _ in range(max(1, min(workers, len(tasks))))
    ]
    interrupted = False
    try:
        while n_final < len(states):
            if should_stop is not None and should_stop():
                # Wind down: no new dispatches, kill in-flight workers
                # (their cells stay unfinished — a resume recomputes
                # them), and let the caller release claims and flush
                # the store in its ``finally``.
                interrupted = True
                break
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _, _, spec = heapq.heappop(delayed)
                ready.append(spec)

            for index, worker in enumerate(pool):
                if worker.busy is None and ready:
                    state = states[ready.popleft().task_id]
                    if claim is not None and not state.claimed:
                        if not claim(state.spec.task_id):
                            # Another runner owns this cell; its store
                            # row is the record — nothing to emit here.
                            n_final += 1
                            if external is not None:
                                external(state.spec)
                            continue
                        state.claimed = True
                    if not worker.process.is_alive():
                        # Died while idle (should not happen, but never
                        # strand a slot) — replace before dispatching.
                        worker.kill()
                        worker = pool[index] = _Worker(
                            context, result_queue, chaos
                        )
                    worker.dispatch(state, timeout, policy.watchdog_grace)

            try:
                pid, record = result_queue.get(timeout=_POLL_INTERVAL)
            except queue_module.Empty:
                pid, record = None, None
            if record is not None:
                for worker in pool:
                    if worker.busy is not None and worker.process.pid == pid:
                        state, worker.busy = worker.busy, None
                        worker.deadline = None
                        handle_result(state, record)
                        break
                # No matching busy worker: the sender was already
                # killed/declared dead and its cell rescheduled — drop
                # the stale record (the retry recomputes it).

            now = time.monotonic()
            for index, worker in enumerate(pool):
                if worker.busy is None:
                    continue
                if not worker.process.is_alive():
                    state = worker.busy
                    exitcode = worker.process.exitcode
                    worker.kill()
                    pool[index] = _Worker(context, result_queue, chaos)
                    handle_crash(state, exitcode)
                elif worker.deadline is not None and now > worker.deadline:
                    state = worker.busy
                    worker.kill()
                    pool[index] = _Worker(context, result_queue, chaos)
                    handle_hang(state, timeout + policy.watchdog_grace)
    finally:
        for worker in pool:
            if interrupted and worker.busy is not None:
                worker.kill()
            else:
                worker.shutdown()
        result_queue.close()
    return interrupted


@contextlib.contextmanager
def graceful_shutdown(
    signals: tuple[int, ...] = (signal.SIGTERM, signal.SIGINT),
) -> Iterator[threading.Event]:
    """Turn SIGTERM/SIGINT into a cooperative campaign stop.

    Yields a :class:`threading.Event`; pass ``event.is_set`` as
    ``run_campaign``'s ``should_stop``.  The first signal sets the
    event — the campaign winds down between cells, releases its sqlite
    claims and flushes/closes the store before the process exits,
    instead of leaving leases to expire for dead-PID reclaim.  A
    second signal restores the default disposition and re-raises
    itself, so a wedged campaign can still be killed the hard way.

    Only the main thread may install signal handlers; anywhere else
    (e.g. the job service's worker threads, which have their own
    cancel events) this is a no-op that yields a never-set event.
    """
    event = threading.Event()
    if threading.current_thread() is not threading.main_thread():
        yield event
        return

    def handler(signum, _frame):
        if event.is_set():  # second signal: die for real
            signal.signal(signum, signal.SIG_DFL)
            os.kill(os.getpid(), signum)
        event.set()

    previous = {}
    for signum in signals:
        try:
            previous[signum] = signal.signal(signum, handler)
        except (ValueError, OSError):  # pragma: no cover - exotic platform
            pass
    try:
        yield event
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)
