"""Render the paper's campaign tables from stored JSONL records.

This is the read side of the campaign subsystem: everything here is a
pure function of the record dicts (:mod:`repro.campaign.store`), so
tables can be re-rendered from a store file long after the grid ran —
``repro report`` and ``repro paper-tables`` are thin wrappers over
these functions.  Rendering sorts and merges by task id, so stores
written by different worker counts or resumed runs produce identical
text.

Three views:

* :func:`coverage_table` — the paper's Section 5 headline: classic
  stuck-at coverage vs. the CP fault universe per circuit.
* :func:`escape_table` — the defect-escape view: polarity bridges the
  classic set misses and channel breaks masked by DP redundancy.
* :func:`run_table` — per-task status/runtime bookkeeping.

:func:`render_report` stitches the applicable views into one text
report from whatever record mix the store holds.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.analysis.report import ascii_table


#: The benchmark suite behind the paper's Section 5 tables (shared by
#: ``repro paper-tables`` and ``experiment_atpg_coverage``).
SECTION5_SUITE: tuple[str, ...] = (
    "c17", "rca4", "parity8", "tmr_voter", "eq4", "alu_slice"
)

#: How to read the Section 5 tables — printed by both entry points.
SECTION5_READING = (
    "Reading: the classic stuck-at set leaves most polarity faults\n"
    "undetected at the outputs; the polarity-aware ATPG (voltage +\n"
    "IDDQ modes) closes the gap, and every DP-gate open is masked,\n"
    "requiring the paper's channel-break procedure."
)


def _pct(value: float | None) -> str:
    return "n/a" if value is None else f"{value * 100:.0f}%"


def by_circuit(records: Iterable[Mapping]) -> dict[str, dict[str, Mapping]]:
    """circuit -> fault_class -> latest ok record, preserving the order
    circuits first appear in the record stream (grid/report row order)."""
    grouped: dict[str, dict[str, Mapping]] = {}
    for record in records:
        if record.get("status") != "ok":
            continue
        grouped.setdefault(record["circuit"], {})[record["fault_class"]] = (
            record
        )
    return grouped


def coverage_table(records: Sequence[Mapping]) -> str:
    """The Section 5 coverage study: classic stuck-at tests vs. the CP
    fault models, one row per circuit (needs ``stuck_at`` records;
    other fault classes fill in as available)."""
    rows = []
    for circuit, cells in by_circuit(records).items():
        sa = cells.get("stuck_at", {}).get("metrics", {})
        pol = cells.get("polarity", {}).get("metrics", {})
        iddq = cells.get("iddq", {}).get("metrics", {})
        sop = cells.get("stuck_open", {}).get("metrics", {})
        stats = next(iter(cells.values())).get("circuit_stats", {})
        rows.append(
            (
                circuit,
                stats.get("gates", "?"),
                sa.get("n_vectors", "n/a"),
                _pct(sa.get("coverage")),
                pol.get("n_faults", "n/a"),
                _pct(pol.get("coverage_by_stuck_at_set")),
                _pct(pol.get("atpg_coverage")),
                iddq.get("n_vectors", "n/a"),
                sop.get("n_masked", "n/a"),
                sop.get("n_faults", "n/a"),
            )
        )
    return ascii_table(
        (
            "circuit",
            "gates",
            "SA vecs",
            "SA cov",
            "pol faults",
            "pol cov by SA set",
            "pol cov (new ATPG)",
            "IDDQ vecs",
            "masked opens",
            "opens",
        ),
        rows,
    )


def escape_table(records: Sequence[Mapping]) -> str:
    """The defect-escape view: what a classic stuck-at flow ships.

    Polarity escapes are bridges the stuck-at set misses at the
    outputs; masked opens are channel breaks no two-pattern test can
    expose (both need the paper's new procedures)."""
    rows = []
    for circuit, cells in by_circuit(records).items():
        pol = cells.get("polarity", {}).get("metrics", {})
        iddq = cells.get("iddq", {}).get("metrics", {})
        sop = cells.get("stuck_open", {}).get("metrics", {})
        n_pol = pol.get("n_faults")
        n_escapes = pol.get("n_escapes")
        escape_rate = (
            None
            if not n_pol or n_escapes is None
            else n_escapes / n_pol
        )
        n_sop = sop.get("n_faults")
        n_masked = sop.get("n_masked")
        masked_rate = (
            None if not n_sop or n_masked is None else n_masked / n_sop
        )
        rows.append(
            (
                circuit,
                "n/a" if n_pol is None else n_pol,
                "n/a" if n_escapes is None else n_escapes,
                _pct(escape_rate),
                iddq.get("n_vectors", "n/a"),
                _pct(iddq.get("coverage")),
                "n/a" if n_sop is None else n_sop,
                "n/a" if n_masked is None else n_masked,
                _pct(masked_rate),
            )
        )
    return ascii_table(
        (
            "circuit",
            "pol faults",
            "pol escapes",
            "escape rate",
            "IDDQ vecs",
            "IDDQ cov",
            "opens",
            "masked opens",
            "masked rate",
        ),
        rows,
    )


def run_table(records: Sequence[Mapping]) -> str:
    """Per-task bookkeeping: status, headline metric, runtime."""
    latest: dict[str, Mapping] = {}
    for record in records:
        latest[record["task_id"]] = record
    rows = []
    for task_id in sorted(latest):
        record = latest[task_id]
        metrics = record.get("metrics", {})
        coverage = metrics.get(
            "coverage", metrics.get("atpg_coverage")
        )
        rows.append(
            (
                task_id,
                record.get("status", "?"),
                _pct(coverage) if coverage is not None else "n/a",
                f"{record.get('runtime_s', 0.0):.2f}s",
                record.get("error", ""),
            )
        )
    return ascii_table(
        ("task", "status", "coverage", "runtime", "error"), rows
    )


def render_report(records: Sequence[Mapping]) -> str:
    """Full text report from a record stream (store or fresh run)."""
    if not records:
        return "no campaign records"
    classes = {r["fault_class"] for r in records if r.get("status") == "ok"}
    sections = [
        "Campaign report "
        f"({len(records)} records, {len(by_circuit(records))} circuits)",
        "",
        "Task summary:",
        run_table(records),
    ]
    if "stuck_at" in classes:
        sections += [
            "",
            "Coverage: classic stuck-at tests vs CP fault models",
            coverage_table(records),
        ]
    if classes & {"polarity", "iddq", "stuck_open"}:
        sections += [
            "",
            "Escapes of the classic flow (needing the paper's new tests):",
            escape_table(records),
        ]
    return "\n".join(sections)
