"""JSONL result store: the campaign's checkpoint and report substrate.

One line per finished task, appended and flushed as results arrive, so
a killed campaign loses at most the record being written.  The loader
tolerates a torn final line (the kill signature) by dropping it; a
rerun then recomputes exactly the missing tasks and appends them —
resume semantics fall out of the file format.

Durability and coordination knobs (all opt-in or zero-config):

* The store holds **one persistent append handle** for its lifetime
  (flushed per record) instead of reopening the file per append;
  :meth:`ResultStore.close` (or garbage collection) releases it.
* ``fsync=True`` adds an ``os.fsync`` after every record, so a machine
  crash — not just a process kill — loses at most the in-flight line.
* **Advisory file locking** (``flock``, where the platform has it)
  makes the append handle exclusive: two campaigns pointed at one
  store file fail fast with :class:`StoreLockedError` instead of
  interleaving torn writes.  Readers never take the lock.

Record schema (``schema: 2``) — see ``docs/CAMPAIGNS.md`` for the
field-by-field reference::

    {
      "schema": 2,
      "task_id": "rca4/polarity/compiled",
      "circuit": "rca4", "fault_class": "polarity", "engine": "compiled",
      "engine_used": "compiled",       # engine that produced metrics
      "attempt": 1,                    # attempt that produced the record
      "status": "ok",                  # or "error"/"timeout"/"poisoned"
      "runtime_s": 0.31,
      "circuit_stats": {"gates": 8, "inputs": 9, "outputs": 5, ...},
      "metrics": {...},                # fault-class specific, see tasks.py
      "error": "...",                  # only on status != "ok"
      "transient": false,              # error classification (errors only)
      "failures": [...]                # retry/fallback provenance trail
    }

Schema-1 records (pre-supervisor) load and resume unchanged — the
reader is schema-agnostic and the resume key (``task_id`` + ``status``)
is common to both.

``runtime_s``, ``attempt`` and ``failures`` are the nondeterministic
fields (they depend on wall-clock and on which injected/real faults a
run happened to survive); the storage provenance stamps ``backend``
and ``store_schema`` (added by the pluggable backends of
:mod:`repro.campaign.backends`) likewise differ between stores that
hold the same results.  :func:`strip_volatile` removes them all so
stores from different runs/worker counts/backends compare equal.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Iterable, Sequence

try:  # POSIX advisory locking; absent e.g. on Windows -> lock is a no-op
    import fcntl
except ImportError:  # pragma: no cover - platform dependent
    fcntl = None  # type: ignore[assignment]

SCHEMA_VERSION = 2

#: Fields that legitimately differ between runs that computed the same
#: results: wall-clock, the retry/fault-injection history, and the
#: storage backend the record happens to live in.
VOLATILE_FIELDS: tuple[str, ...] = (
    "runtime_s", "attempt", "failures", "backend", "store_schema",
)


class StoreLockedError(RuntimeError):
    """Another campaign holds the append lock on this store file.

    ``pid`` is the holder's process id when it could be discovered
    (via the sidecar ``<store>.lock`` pidfile the lock owner writes);
    the message carries a retry hint either way.
    """

    def __init__(self, path: "str | Path", pid: int | None = None) -> None:
        self.path = Path(path)
        self.pid = pid
        holder = f"PID {pid}" if pid is not None else "another process"
        super().__init__(
            f"{path}: store is locked by {holder} (two JSONL writers "
            "would interleave torn records); wait for that campaign to "
            "finish and retry, or share the store through the sqlite "
            "backend (--backend sqlite), which coordinates multiple "
            "runners with atomic task claims"
        )


class ResultStore:
    """Append-only JSONL record store with corrupt-tail tolerance.

    The first :meth:`append` heals a torn tail, opens the file once and
    (where supported) takes an exclusive advisory lock; the handle is
    then reused for every subsequent record and released by
    :meth:`close` (also a context-manager exit).
    """

    def __init__(
        self, path: str | Path, *, fsync: bool = False, lock: bool = True
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.lock = lock
        self._tail_healed = False
        self._handle: IO[str] | None = None
        self._owns_pidfile = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def _pidfile(self) -> Path:
        """Sidecar advertising the lock holder's PID (best-effort; the
        flock on the store file itself is the actual exclusion)."""
        return self.path.with_name(self.path.name + ".lock")

    def _lock_holder(self) -> int | None:
        """The PID the current lock holder advertised, if readable."""
        try:
            return int(self._pidfile.read_text().strip())
        except (OSError, ValueError):
            return None

    def _heal_torn_tail(self) -> None:
        """Drop a trailing partial line (mid-write kill) before the
        first append, so the file stays clean one-record-per-line JSONL.
        The dropped record's task simply reruns."""
        if self._tail_healed:
            return
        self._tail_healed = True
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        if data and not data.endswith(b"\n"):
            keep = data.rfind(b"\n") + 1  # 0 when no newline at all
            with self.path.open("r+b") as raw:
                raw.truncate(keep)

    def heal(self) -> None:
        """Re-run torn-tail healing on demand (backends call this
        between append retries after a failed/partial write, which can
        leave a fresh torn tail at any point in the store's life)."""
        self._tail_healed = False
        self._heal_torn_tail()

    def _ensure_handle(self) -> IO[str]:
        """The persistent append handle (healed, opened and locked on
        first use; transparently reopened after :meth:`close`)."""
        if self._handle is not None and not self._handle.closed:
            return self._handle
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._heal_torn_tail()
        handle = self.path.open("a")
        if self.lock and fcntl is not None:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                holder = self._lock_holder()
                handle.close()
                raise StoreLockedError(self.path, holder) from None
            try:
                self._pidfile.write_text(f"{os.getpid()}\n")
                self._owns_pidfile = True
            except OSError:  # pragma: no cover - pidfile is best-effort
                pass
        self._handle = handle
        return handle

    def close(self) -> None:
        """Release the append handle (and with it the advisory lock)."""
        if self._handle is not None:
            if not self._handle.closed:
                self._handle.close()
            self._handle = None
        if self._owns_pidfile:
            self._owns_pidfile = False
            try:
                self._pidfile.unlink()
            except OSError:  # pragma: no cover - pidfile is best-effort
                pass

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    # -- writing -----------------------------------------------------------

    def append(self, record: dict) -> None:
        """Append one record and flush (the checkpoint write); with
        ``fsync=True`` also force it to stable storage."""
        handle = self._ensure_handle()
        handle.write(
            json.dumps(record, sort_keys=True, ensure_ascii=False) + "\n"
        )
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    # -- reading -----------------------------------------------------------

    def load(self) -> list[dict]:
        """All parseable records, in file order.

        A torn trailing line (interrupted write) is skipped — including
        one truncated *inside* a multi-byte UTF-8 sequence, which is
        why decoding happens per line, on bytes.  A corrupt line in the
        *middle* of the file raises, because that means the store was
        edited, not killed.
        """
        if not self.path.exists():
            return []
        records: list[dict] = []
        data = self.path.read_bytes()
        terminated = data.endswith(b"\n")
        lines = data.split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()  # the terminator itself, not an empty record
        for k, raw in enumerate(lines):
            if not raw.strip():
                continue
            try:
                records.append(json.loads(raw.decode("utf-8")))
            except (UnicodeDecodeError, json.JSONDecodeError):
                # Only an *unterminated* final line is the kill
                # signature; a newline-terminated corrupt line anywhere
                # means the store was edited.
                if k == len(lines) - 1 and not terminated:
                    break
                raise ValueError(
                    f"{self.path}: corrupt record on line {k + 1}"
                ) from None
        return records

    def latest(self) -> dict[str, dict]:
        """task_id -> most recent record (reruns supersede old rows)."""
        latest: dict[str, dict] = {}
        for record in self.load():
            latest[record["task_id"]] = record
        return latest


def strip_volatile(records: Iterable[dict]) -> list[dict]:
    """Drop nondeterministic fields (:data:`VOLATILE_FIELDS` —
    ``runtime_s``, the retry provenance ``attempt``/``failures``, and
    the storage provenance ``backend``/``store_schema``) so stores
    from different runs — and different backends — compare equal;
    sorted by task id for set-like comparison regardless of completion
    order."""
    stripped = []
    for record in records:
        record = dict(record)
        for field in VOLATILE_FIELDS:
            record.pop(field, None)
        stripped.append(record)
    return sorted(stripped, key=lambda r: r["task_id"])


def stores_equal(a: Sequence[dict], b: Sequence[dict]) -> bool:
    """Record-set equality up to volatile fields and completion order."""
    return strip_volatile(a) == strip_volatile(b)
