"""JSONL result store: the campaign's checkpoint and report substrate.

One line per finished task, appended and flushed as results arrive, so
a killed campaign loses at most the record being written.  The loader
tolerates a torn final line (the kill signature) by dropping it; a
rerun then recomputes exactly the missing tasks and appends them —
resume semantics fall out of the file format.

Record schema (``schema: 1``) — see ``docs/CAMPAIGNS.md`` for the
field-by-field reference::

    {
      "schema": 1,
      "task_id": "rca4/polarity/compiled",
      "circuit": "rca4", "fault_class": "polarity", "engine": "compiled",
      "status": "ok",                  # or "error" / "timeout"
      "runtime_s": 0.31,
      "circuit_stats": {"gates": 8, "inputs": 9, "outputs": 5, ...},
      "metrics": {...},                # fault-class specific, see tasks.py
      "error": "..."                   # only on status != "ok"
    }

Only ``runtime_s`` is nondeterministic; :func:`strip_volatile` removes
it so stores from different runs/worker counts compare equal.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

SCHEMA_VERSION = 1


class ResultStore:
    """Append-only JSONL record store with corrupt-tail tolerance."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._tail_healed = False

    def _heal_torn_tail(self) -> None:
        """Drop a trailing partial line (mid-write kill) before the
        first append, so the file stays clean one-record-per-line JSONL.
        The dropped record's task simply reruns."""
        if self._tail_healed:
            return
        self._tail_healed = True
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        if data and not data.endswith(b"\n"):
            keep = data.rfind(b"\n") + 1  # 0 when no newline at all
            with self.path.open("r+b") as raw:
                raw.truncate(keep)

    def append(self, record: dict) -> None:
        """Append one record and flush (the checkpoint write)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._heal_torn_tail()
        with self.path.open("a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()

    def load(self) -> list[dict]:
        """All parseable records, in file order.

        A torn trailing line (interrupted write) is skipped; a corrupt
        line in the *middle* of the file raises, because that means the
        store was edited, not killed.
        """
        if not self.path.exists():
            return []
        records: list[dict] = []
        text = self.path.read_text()
        terminated = text.endswith("\n")
        lines = text.splitlines()
        for k, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                # Only an *unterminated* final line is the kill
                # signature; a newline-terminated corrupt line anywhere
                # means the store was edited.
                if k == len(lines) - 1 and not terminated:
                    break
                raise ValueError(
                    f"{self.path}: corrupt record on line {k + 1}"
                ) from None
        return records

    def latest(self) -> dict[str, dict]:
        """task_id -> most recent record (reruns supersede old rows)."""
        latest: dict[str, dict] = {}
        for record in self.load():
            latest[record["task_id"]] = record
        return latest

def strip_volatile(records: Iterable[dict]) -> list[dict]:
    """Drop nondeterministic fields (``runtime_s``) so stores from
    different runs compare equal; sorted by task id for set-like
    comparison regardless of completion order."""
    stripped = []
    for record in records:
        record = dict(record)
        record.pop("runtime_s", None)
        stripped.append(record)
    return sorted(stripped, key=lambda r: r["task_id"])


def stores_equal(a: Sequence[dict], b: Sequence[dict]) -> bool:
    """Record-set equality up to volatile fields and completion order."""
    return strip_volatile(a) == strip_volatile(b)
