"""Deterministic fault injection for the campaign orchestrator.

The differential-harness discipline the simulation engines get from
``tests/test_multiword_engine.py`` — every engine must agree bit-for-
bit with an oracle — applied to the *orchestrator*: a campaign is
subjected to scripted worker kills, native-style hangs, transient and
permanent exceptions and mid-write store truncation, and must converge
to the same final store as an undisturbed single-worker run
(``tests/test_campaign_chaos.py``).

Injection is scripted, not random: a :class:`ChaosPolicy` maps a task
id to the fault each attempt should suffer, so every chaos scenario is
reproducible and assertable::

    ChaosPolicy({
        "c17/stuck_at/compiled": ("kill", "ok"),       # die once, then pass
        "c17/polarity/compiled": ("transient",),       # fail once, retried
        "tmr_voter/stuck_at/compiled": ("hang",),      # wedge; watchdog kills
    })

Fault kinds (attempts past the end of a script run clean):

``ok``
    No injection.
``kill``
    The worker SIGKILLs itself before running the cell — the
    segfault/OOM-killer signature.  Supervised (``workers>1``) runs
    only: inline it would kill the campaign process itself.
``hang``
    The worker blocks ``SIGALRM`` and sleeps forever, mimicking a cell
    wedged inside native code where the soft timeout cannot fire; only
    the supervisor's external watchdog can reclaim it.  Supervised
    runs only.
``transient``
    Raises :class:`ChaosTransientError` (a
    :class:`~repro.campaign.runner.TransientTaskError`): retried with
    backoff.
``permanent``
    Raises :class:`ChaosPermanentError`: fails fast, no retry.
``engine``
    The first engine of the cell's fallback chain raises
    :class:`ChaosEngineError`, forcing degradation to the next engine
    (``engine_used`` then records the fallback).

Storage-layer chaos lives alongside the worker-layer script:

* :class:`StorageChaos` scripts faults at the *backend* seam — a
  SIGKILL right after a task claim commits (crash between claim and
  commit), a mid-transaction / mid-line kill during ``append``, and
  simulated out-of-space (``enospc``) failures the backends' bounded
  retries must absorb.  Attach it as ``ChaosPolicy(storage=...)`` (or
  hand it to a backend directly) and the runner threads it through.
* :func:`tear_tail` truncates the final store record mid-line, the
  exact signature of a campaign killed mid-write, so resume-after-
  torn-write is testable without actually killing a process;
  ``inside_utf8=True`` cuts *inside* a multi-byte UTF-8 sequence — the
  nastiest legal torn tail, which healing must also survive.
* :func:`hold_sqlite_write_lock` camps on a sqlite store's write lock
  for a while, producing the sustained lock contention the sqlite
  backend's busy-timeout + backoff must ride out.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time
from pathlib import Path
from typing import Mapping, Sequence

from repro.campaign.runner import TransientTaskError

#: Legal per-attempt fault kinds in a :class:`ChaosPolicy` script.
FAULT_KINDS = frozenset(
    {"ok", "kill", "hang", "transient", "permanent", "engine"}
)


class ChaosError(RuntimeError):
    """Base class for injected failures (so tests can catch them)."""


class ChaosTransientError(ChaosError, TransientTaskError):
    """Injected transient failure — classified retryable."""


class ChaosPermanentError(ChaosError):
    """Injected permanent failure — fails fast, no retry."""


class ChaosEngineError(ChaosError):
    """Injected engine failure — triggers the fallback chain."""


def hang_forever(poll_s: float = 0.05) -> None:  # pragma: no cover
    """Simulate a cell wedged in native code: disarm the soft-timeout
    signal (native code never re-enters the interpreter, so the Python
    ``SIGALRM`` handler can never fire there) and never return.  Only
    an external kill reclaims this."""
    if hasattr(signal, "SIGALRM"):
        signal.signal(signal.SIGALRM, signal.SIG_IGN)
    while True:
        time.sleep(poll_s)


def _kill_self() -> None:  # pragma: no cover - dies by design
    """Die the way a segfault/OOM kill looks from outside: no cleanup,
    no exit handlers, no exception."""
    if hasattr(signal, "SIGKILL"):
        os.kill(os.getpid(), signal.SIGKILL)
    os._exit(113)  # platforms without SIGKILL: still an abrupt death


@dataclasses.dataclass(frozen=True)
class ChaosPolicy:
    """Scripted fault injection, keyed by ``(task_id, attempt)``.

    ``script`` maps a task id to the fault kind per 1-based attempt;
    unlisted tasks and attempts past a script's end run clean.  The
    policy is immutable and picklable, so forked/spawned workers carry
    the identical script — injection is fully deterministic.

    ``storage`` optionally carries a :class:`StorageChaos` script; the
    runner hands it to the store backend it opens, so one policy
    object describes a scenario's worker-layer *and* storage-layer
    faults together.
    """

    script: Mapping[str, Sequence[str]]
    storage: "StorageChaos | None" = None

    def __post_init__(self) -> None:
        for task_id, faults in self.script.items():
            unknown = set(faults) - FAULT_KINDS
            if unknown:
                raise ValueError(
                    f"unknown chaos fault kind(s) {sorted(unknown)} for "
                    f"{task_id!r}; expected {sorted(FAULT_KINDS)}"
                )

    def fault(self, task_id: str, attempt: int) -> str:
        """The scripted fault for this attempt (``"ok"`` if none)."""
        faults = self.script.get(task_id, ())
        if 1 <= attempt <= len(faults):
            return faults[attempt - 1]
        return "ok"

    def before_attempt(self, task_id: str, attempt: int) -> None:
        """Worker-side hook, called before the cell executes."""
        kind = self.fault(task_id, attempt)
        if kind == "kill":
            _kill_self()
        elif kind == "hang":
            hang_forever()
        elif kind == "transient":
            raise ChaosTransientError(
                f"injected transient failure ({task_id}, attempt {attempt})"
            )
        elif kind == "permanent":
            raise ChaosPermanentError(
                f"injected permanent failure ({task_id}, attempt {attempt})"
            )

    def engine_fault(
        self,
        task_id: str,
        attempt: int,
        engine: str,
        chain: Sequence[str],
    ) -> None:
        """Worker-side hook, called before each engine of the fallback
        chain runs: an ``"engine"`` fault breaks the chain's *first*
        engine, so the cell must degrade to finish."""
        if (
            self.fault(task_id, attempt) == "engine"
            and len(chain) > 1
            and engine == chain[0]
        ):
            raise ChaosEngineError(
                f"injected failure in engine {engine!r} "
                f"({task_id}, attempt {attempt})"
            )


#: Legal storage fault kinds, per injection point.
STORAGE_FAULT_KINDS: dict[str, frozenset[str]] = {
    "claim": frozenset({"ok", "kill"}),
    "append": frozenset({"ok", "enospc", "torn", "kill"}),
}


class StorageChaos:
    """Scripted storage-layer faults, keyed by ``(event, task_id)``.

    ``script`` maps an event name to ``{task_id: (kind, kind, ...)}``;
    each occurrence of that event for that task consumes the next kind
    in its script (occurrences past the end run clean), so scenarios
    like "the first append of this cell tears, the retry succeeds" are
    one tuple.  Events and their kinds:

    ``claim``
        Fires right after a task claim *commits*.  ``kill`` SIGKILLs
        the runner process on the spot — the crash between claim and
        commit that must leave nothing behind but a stale claim.
    ``append``
        Fires inside a record append.  ``enospc`` fails the attempt
        with an out-of-space :class:`OSError` before any byte/row
        lands (the backend's bounded-backoff retry absorbs it);
        ``torn`` leaves a half-written line (JSONL) or fails
        mid-transaction (sqlite) and fails the attempt; ``kill``
        SIGKILLs mid-write/mid-transaction — healing (JSONL) or WAL
        journal recovery (sqlite) must erase the partial effect.

    Unlike :class:`ChaosPolicy` this object is stateful (it tracks how
    far each script has been consumed); build one per scenario/process.
    """

    def __init__(
        self, script: Mapping[str, Mapping[str, Sequence[str]]]
    ) -> None:
        for event, per_task in script.items():
            legal = STORAGE_FAULT_KINDS.get(event)
            if legal is None:
                raise ValueError(
                    f"unknown storage chaos event {event!r}; expected "
                    f"{sorted(STORAGE_FAULT_KINDS)}"
                )
            for task_id, kinds in per_task.items():
                unknown = set(kinds) - legal
                if unknown:
                    raise ValueError(
                        f"unknown {event} fault kind(s) {sorted(unknown)} "
                        f"for {task_id!r}; expected {sorted(legal)}"
                    )
        self.script = script
        self._cursors: dict[tuple[str, str], int] = {}

    def _next(self, event: str, task_id: str) -> str:
        kinds = self.script.get(event, {}).get(task_id, ())
        cursor = self._cursors.get((event, task_id), 0)
        self._cursors[(event, task_id)] = cursor + 1
        return kinds[cursor] if cursor < len(kinds) else "ok"

    def claim_fault(self, task_id: str) -> None:
        """Backend hook, fired after a claim commits; may not return."""
        if self._next("claim", task_id) == "kill":
            _kill_self()

    def append_fault(self, task_id: str) -> str:
        """Backend hook, fired per append attempt; returns the kind
        (the backend implements the fault at its own write seam)."""
        return self._next("append", task_id)


def tear_tail(
    path: str | Path, fraction: float = 0.5, *, inside_utf8: bool = False
) -> Path:
    """Truncate the final store record mid-line — the byte-exact
    signature of a campaign killed during a write.  The store's
    torn-tail healing must recover the file and resume must recompute
    exactly the torn record's task.

    ``inside_utf8=True`` places the cut one byte after the last
    multi-byte UTF-8 lead byte of the line, i.e. *inside* a multi-byte
    sequence — a perfectly possible kill point that additionally makes
    the torn tail undecodable, not just unparseable.  Raises
    :class:`ValueError` if the final record contains no multi-byte
    character to tear through.
    """
    path = Path(path)
    data = path.read_bytes()
    lines = data.splitlines(keepends=True)
    if not lines:
        raise ValueError(f"{path}: empty store, nothing to tear")
    last = lines[-1]
    if inside_utf8:
        # UTF-8 lead bytes of multi-byte sequences are 0xC2..0xF4;
        # cutting right after one strands its continuation bytes.
        lead = max(
            (k for k, byte in enumerate(last) if byte >= 0xC2), default=None
        )
        if lead is None:
            raise ValueError(
                f"{path}: final record is pure ASCII, no multi-byte "
                "UTF-8 sequence to tear inside"
            )
        cut = lead + 1
    else:
        cut = max(1, min(len(last) - 2, int(len(last) * fraction)))
    path.write_bytes(data[: len(data) - len(last)] + last[:cut])
    return path


def hold_sqlite_write_lock(
    path: str | Path, hold_s: float, ready=None
) -> None:
    """Camp on a sqlite store's write lock for ``hold_s`` seconds —
    the sustained lock contention a concurrent runner's busy-timeout
    and bounded backoff must ride out.  ``ready`` (an
    ``Event``-like with ``set``) is signalled once the lock is held.
    Run in a thread or child process alongside the campaign."""
    import sqlite3

    conn = sqlite3.connect(str(path), isolation_level=None)
    try:
        conn.execute("BEGIN IMMEDIATE")
        # Touch a real table so the intent lock escalates to a held
        # write lock even on pristine stores.
        conn.execute(
            "CREATE TABLE IF NOT EXISTS _chaos_contention (x INTEGER)"
        )
        conn.execute("INSERT INTO _chaos_contention VALUES (1)")
        if ready is not None:
            ready.set()
        time.sleep(hold_s)
        conn.execute("ROLLBACK")
    finally:
        conn.close()
