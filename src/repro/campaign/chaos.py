"""Deterministic fault injection for the campaign orchestrator.

The differential-harness discipline the simulation engines get from
``tests/test_multiword_engine.py`` — every engine must agree bit-for-
bit with an oracle — applied to the *orchestrator*: a campaign is
subjected to scripted worker kills, native-style hangs, transient and
permanent exceptions and mid-write store truncation, and must converge
to the same final store as an undisturbed single-worker run
(``tests/test_campaign_chaos.py``).

Injection is scripted, not random: a :class:`ChaosPolicy` maps a task
id to the fault each attempt should suffer, so every chaos scenario is
reproducible and assertable::

    ChaosPolicy({
        "c17/stuck_at/compiled": ("kill", "ok"),       # die once, then pass
        "c17/polarity/compiled": ("transient",),       # fail once, retried
        "tmr_voter/stuck_at/compiled": ("hang",),      # wedge; watchdog kills
    })

Fault kinds (attempts past the end of a script run clean):

``ok``
    No injection.
``kill``
    The worker SIGKILLs itself before running the cell — the
    segfault/OOM-killer signature.  Supervised (``workers>1``) runs
    only: inline it would kill the campaign process itself.
``hang``
    The worker blocks ``SIGALRM`` and sleeps forever, mimicking a cell
    wedged inside native code where the soft timeout cannot fire; only
    the supervisor's external watchdog can reclaim it.  Supervised
    runs only.
``transient``
    Raises :class:`ChaosTransientError` (a
    :class:`~repro.campaign.runner.TransientTaskError`): retried with
    backoff.
``permanent``
    Raises :class:`ChaosPermanentError`: fails fast, no retry.
``engine``
    The first engine of the cell's fallback chain raises
    :class:`ChaosEngineError`, forcing degradation to the next engine
    (``engine_used`` then records the fallback).

:func:`tear_tail` is the store-side injection: it truncates the final
record mid-line, the exact signature of a campaign killed mid-write,
so resume-after-torn-write is testable without actually killing a
process.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time
from pathlib import Path
from typing import Mapping, Sequence

from repro.campaign.runner import TransientTaskError

#: Legal per-attempt fault kinds in a :class:`ChaosPolicy` script.
FAULT_KINDS = frozenset(
    {"ok", "kill", "hang", "transient", "permanent", "engine"}
)


class ChaosError(RuntimeError):
    """Base class for injected failures (so tests can catch them)."""


class ChaosTransientError(ChaosError, TransientTaskError):
    """Injected transient failure — classified retryable."""


class ChaosPermanentError(ChaosError):
    """Injected permanent failure — fails fast, no retry."""


class ChaosEngineError(ChaosError):
    """Injected engine failure — triggers the fallback chain."""


def hang_forever(poll_s: float = 0.05) -> None:  # pragma: no cover
    """Simulate a cell wedged in native code: disarm the soft-timeout
    signal (native code never re-enters the interpreter, so the Python
    ``SIGALRM`` handler can never fire there) and never return.  Only
    an external kill reclaims this."""
    if hasattr(signal, "SIGALRM"):
        signal.signal(signal.SIGALRM, signal.SIG_IGN)
    while True:
        time.sleep(poll_s)


def _kill_self() -> None:  # pragma: no cover - dies by design
    """Die the way a segfault/OOM kill looks from outside: no cleanup,
    no exit handlers, no exception."""
    if hasattr(signal, "SIGKILL"):
        os.kill(os.getpid(), signal.SIGKILL)
    os._exit(113)  # platforms without SIGKILL: still an abrupt death


@dataclasses.dataclass(frozen=True)
class ChaosPolicy:
    """Scripted fault injection, keyed by ``(task_id, attempt)``.

    ``script`` maps a task id to the fault kind per 1-based attempt;
    unlisted tasks and attempts past a script's end run clean.  The
    policy is immutable and picklable, so forked/spawned workers carry
    the identical script — injection is fully deterministic.
    """

    script: Mapping[str, Sequence[str]]

    def __post_init__(self) -> None:
        for task_id, faults in self.script.items():
            unknown = set(faults) - FAULT_KINDS
            if unknown:
                raise ValueError(
                    f"unknown chaos fault kind(s) {sorted(unknown)} for "
                    f"{task_id!r}; expected {sorted(FAULT_KINDS)}"
                )

    def fault(self, task_id: str, attempt: int) -> str:
        """The scripted fault for this attempt (``"ok"`` if none)."""
        faults = self.script.get(task_id, ())
        if 1 <= attempt <= len(faults):
            return faults[attempt - 1]
        return "ok"

    def before_attempt(self, task_id: str, attempt: int) -> None:
        """Worker-side hook, called before the cell executes."""
        kind = self.fault(task_id, attempt)
        if kind == "kill":
            _kill_self()
        elif kind == "hang":
            hang_forever()
        elif kind == "transient":
            raise ChaosTransientError(
                f"injected transient failure ({task_id}, attempt {attempt})"
            )
        elif kind == "permanent":
            raise ChaosPermanentError(
                f"injected permanent failure ({task_id}, attempt {attempt})"
            )

    def engine_fault(
        self,
        task_id: str,
        attempt: int,
        engine: str,
        chain: Sequence[str],
    ) -> None:
        """Worker-side hook, called before each engine of the fallback
        chain runs: an ``"engine"`` fault breaks the chain's *first*
        engine, so the cell must degrade to finish."""
        if (
            self.fault(task_id, attempt) == "engine"
            and len(chain) > 1
            and engine == chain[0]
        ):
            raise ChaosEngineError(
                f"injected failure in engine {engine!r} "
                f"({task_id}, attempt {attempt})"
            )


def tear_tail(path: str | Path, fraction: float = 0.5) -> Path:
    """Truncate the final store record mid-line — the byte-exact
    signature of a campaign killed during a write.  The store's
    torn-tail healing must recover the file and resume must recompute
    exactly the torn record's task."""
    path = Path(path)
    data = path.read_bytes()
    lines = data.splitlines(keepends=True)
    if not lines:
        raise ValueError(f"{path}: empty store, nothing to tear")
    last = lines[-1]
    cut = max(1, min(len(last) - 2, int(len(last) * fraction)))
    path.write_bytes(data[: len(data) - len(last)] + last[:cut])
    return path
