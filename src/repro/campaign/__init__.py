"""Campaign orchestration: sharded, resumable test campaigns.

The layer above the per-circuit engines: a benchmark registry
(:mod:`~repro.campaign.registry`), deterministic fault-class tasks
(:mod:`~repro.campaign.tasks`), a fault-tolerant grid runner with
pluggable crash-safe checkpoint stores — single-writer JSONL or
multi-runner sqlite with atomic task claims
(:mod:`~repro.campaign.runner` / :mod:`~repro.campaign.store` /
:mod:`~repro.campaign.backends`) — over a supervised worker-process layer
with watchdog kills, crash respawn, retry/backoff and poison-task
quarantine (:mod:`~repro.campaign.supervisor`, chaos-tested via
:mod:`~repro.campaign.chaos`), report rendering from stored records
(:mod:`~repro.campaign.tables`), and the ``python -m repro`` CLI
(:mod:`~repro.campaign.cli`).

Programmatic quickstart::

    from repro.campaign import expand_grid, run_campaign, render_report

    grid = expand_grid(["c17", "rca4"], ["stuck_at", "polarity"])
    result = run_campaign(grid, store="campaign.jsonl", workers=4)
    print(render_report(result.records))
"""

from repro.campaign.backends import (
    JsonlBackend,
    ResultBackend,
    SqliteBackend,
    detect_backend,
    migrate_jsonl_to_sqlite,
    open_store,
)
from repro.campaign.registry import CircuitSpec, Registry, get_registry
from repro.campaign.runner import (
    FALLBACK_CHAINS,
    CampaignResult,
    RetryPolicy,
    TaskSpec,
    TransientTaskError,
    execute_task,
    expand_grid,
    run_campaign,
    run_task_with_retries,
)
from repro.campaign.store import (
    ResultStore,
    StoreLockedError,
    stores_equal,
    strip_volatile,
)
from repro.campaign.tables import (
    coverage_table,
    escape_table,
    render_report,
    run_table,
)
from repro.campaign.tasks import (
    DEFAULT_FAULT_CLASSES,
    TASK_RUNNERS,
    run_fault_class,
)

__all__ = [
    "CampaignResult",
    "CircuitSpec",
    "DEFAULT_FAULT_CLASSES",
    "FALLBACK_CHAINS",
    "JsonlBackend",
    "Registry",
    "ResultBackend",
    "ResultStore",
    "RetryPolicy",
    "SqliteBackend",
    "StoreLockedError",
    "TASK_RUNNERS",
    "TaskSpec",
    "TransientTaskError",
    "coverage_table",
    "detect_backend",
    "escape_table",
    "execute_task",
    "expand_grid",
    "get_registry",
    "migrate_jsonl_to_sqlite",
    "open_store",
    "render_report",
    "run_campaign",
    "run_fault_class",
    "run_table",
    "run_task_with_retries",
    "stores_equal",
    "strip_volatile",
]
