"""Campaign runner: a (circuit x fault-class x engine) grid over a pool.

The runner turns the per-circuit engines of :mod:`repro.atpg` into
orchestrated campaigns:

* **Grid expansion** — :func:`expand_grid` crosses registry circuit
  names with fault classes into :class:`TaskSpec` cells; every cell is
  independent and deterministic.
* **Fan-out** — :func:`run_campaign` runs cells on a ``multiprocessing``
  pool (``workers=1`` runs inline, which is also the debugging path).
  Workers reconstruct each circuit themselves; the process-wide
  :func:`repro.logic.compiled.compile_network` memo then makes every
  later task on a structurally identical circuit reuse the compiled
  network and its search structures, so a worker that sees the same
  circuit for four fault classes compiles it once.
* **Per-task timeouts** — a ``SIGALRM`` interval timer inside the
  worker bounds each cell; a cell that overruns yields a ``timeout``
  record instead of wedging the campaign (platforms without
  ``SIGALRM`` run unbounded).
* **Checkpointing** — each finished record is appended to the JSONL
  :class:`~repro.campaign.store.ResultStore` immediately; with
  ``resume=True`` (default) a rerun skips every task whose latest
  stored record succeeded, so an interrupted campaign continues
  instead of restarting.

Because tasks are deterministic and records carry no worker identity,
the *final store content* is identical (up to ``runtime_s`` and line
order) for 1-worker and N-worker runs, and for interrupted-then-resumed
runs — ``tests/test_campaign.py`` enforces both.

Example::

    >>> from repro.campaign.runner import expand_grid, run_campaign
    >>> grid = expand_grid(["c17"], ["stuck_at"])
    >>> result = run_campaign(grid)           # in-memory, no store
    >>> result.records[0]["status"]
    'ok'
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import signal
import time
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.campaign.registry import Registry, get_registry
from repro.circuits.generators import BENCHMARK_BUILDERS
from repro.campaign.store import SCHEMA_VERSION, ResultStore
from repro.campaign.tasks import DEFAULT_FAULT_CLASSES, run_fault_class
from repro.logic.bench_format import parse_bench
from repro.logic.network import Network


@dataclasses.dataclass(frozen=True)
class TaskSpec:
    """One grid cell.  ``bench_text`` makes externally-registered
    netlists self-contained, so a worker process can rebuild the
    circuit without sharing the parent's registry."""

    circuit: str
    fault_class: str
    engine: str = "compiled"
    bench_text: str | None = None

    @property
    def task_id(self) -> str:
        return f"{self.circuit}/{self.fault_class}/{self.engine}"

    def build_network(self) -> Network:
        if self.bench_text is not None:
            return parse_bench(self.bench_text, name=self.circuit)
        return get_registry().load(self.circuit)


@dataclasses.dataclass
class CampaignResult:
    """Outcome of :func:`run_campaign`.

    ``records`` is the latest record per task in grid order (including
    records recovered from the store for skipped tasks)."""

    records: list[dict]
    n_run: int
    n_skipped: int
    store_path: Path | None

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.records if r.get("status") != "ok")


def expand_grid(
    circuits: Sequence[str],
    fault_classes: Sequence[str] = DEFAULT_FAULT_CLASSES,
    engine: str = "compiled",
    registry: Registry | None = None,
) -> list[TaskSpec]:
    """Cross circuits with fault classes into grid cells (circuit-major
    order, which is also the report's row order).

    Cells are self-contained: circuits that a worker process could not
    rebuild from the default registry — entries of a custom
    ``registry``, or runtime registrations a spawn-started worker would
    not inherit — are serialised to bench text here (which normalises
    gate names to the ``g_<net>`` convention of the format).
    """
    from repro.logic.bench_format import write_bench

    registry = registry or get_registry()
    tasks = []
    for circuit in circuits:
        spec = registry.spec(circuit)  # fail fast on unknown names
        bench_text = spec.bench_text
        if bench_text is None and (
            registry is not get_registry() or circuit not in BENCHMARK_BUILDERS
        ):
            bench_text = write_bench(spec.build())
        for fault_class in fault_classes:
            tasks.append(
                TaskSpec(
                    circuit=circuit,
                    fault_class=fault_class,
                    engine=engine,
                    bench_text=bench_text,
                )
            )
    return tasks


class _TaskTimeout(Exception):
    pass


def _alarm(_signum, _frame):
    raise _TaskTimeout()


def execute_task(spec: TaskSpec, timeout: float | None = None) -> dict:
    """Run one grid cell to a finished record (never raises for task
    failures — errors and timeouts become record statuses)."""
    record = {
        "schema": SCHEMA_VERSION,
        "task_id": spec.task_id,
        "circuit": spec.circuit,
        "fault_class": spec.fault_class,
        "engine": spec.engine,
    }
    use_alarm = timeout is not None and hasattr(signal, "SIGALRM")
    previous = None
    start = time.perf_counter()
    try:
        if use_alarm:
            previous = signal.signal(signal.SIGALRM, _alarm)
            signal.setitimer(signal.ITIMER_REAL, timeout)
        network = spec.build_network()
        record["circuit_stats"] = network.stats()
        record["metrics"] = run_fault_class(
            network, spec.fault_class, spec.engine
        )
        record["status"] = "ok"
    except _TaskTimeout:
        record["status"] = "timeout"
        record["error"] = f"task exceeded {timeout:g}s"
    except Exception as exc:  # noqa: BLE001 — campaign must outlive cells
        record["status"] = "error"
        record["error"] = f"{type(exc).__name__}: {exc}"
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
    record["runtime_s"] = round(time.perf_counter() - start, 6)
    return record


def _pool_entry(args: tuple[TaskSpec, float | None]) -> dict:
    spec, timeout = args
    return execute_task(spec, timeout)


def run_campaign(
    tasks: Sequence[TaskSpec],
    store: ResultStore | str | Path | None = None,
    workers: int = 1,
    timeout: float | None = None,
    resume: bool = True,
    progress: Callable[[str], None] | None = None,
) -> CampaignResult:
    """Run a task grid with checkpointing and resume.

    Args:
        tasks: Grid cells from :func:`expand_grid` (or hand-built).
        store: JSONL checkpoint target; ``None`` runs purely in memory.
        workers: Pool size; ``1`` executes inline in this process.
        timeout: Per-task wall-clock bound in seconds.
        resume: Skip tasks whose latest stored record is ``ok``.
        progress: Optional sink for one-line progress messages.
    """
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)
    say = progress or (lambda _line: None)

    done: dict[str, dict] = {}
    if store is not None and resume:
        done = {
            task_id: record
            for task_id, record in store.latest().items()
            if record.get("status") == "ok"
        }
    pending = [t for t in tasks if t.task_id not in done]
    n_skipped = len(tasks) - len(pending)
    if n_skipped:
        say(f"resume: {n_skipped} task(s) already in "
            f"{store.path if store else 'store'}, {len(pending)} to run")

    fresh: dict[str, dict] = {}

    def finish(record: dict) -> None:
        fresh[record["task_id"]] = record
        if store is not None:
            store.append(record)
        status = record["status"]
        extra = "" if status == "ok" else f" ({record.get('error', '')})"
        say(f"[{len(fresh)}/{len(pending)}] {record['task_id']}: "
            f"{status} in {record['runtime_s']:.2f}s{extra}")

    if pending:
        if workers <= 1:
            for spec in pending:
                finish(execute_task(spec, timeout))
        else:
            context = multiprocessing.get_context()
            with context.Pool(processes=workers) as pool:
                payload = [(spec, timeout) for spec in pending]
                for record in pool.imap_unordered(_pool_entry, payload):
                    finish(record)

    records = [
        fresh.get(t.task_id) or done[t.task_id] for t in tasks
    ]
    return CampaignResult(
        records=records,
        n_run=len(pending),
        n_skipped=n_skipped,
        store_path=store.path if store is not None else None,
    )
