"""Campaign runner: a (circuit x fault-class x engine) grid over workers.

The runner turns the per-circuit engines of :mod:`repro.atpg` into
orchestrated campaigns:

* **Grid expansion** — :func:`expand_grid` crosses registry circuit
  names with fault classes into :class:`TaskSpec` cells; every cell is
  independent and deterministic.
* **Fan-out** — :func:`run_campaign` runs cells on the supervised
  worker layer of :mod:`repro.campaign.supervisor` (``workers=1`` runs
  inline, which is also the debugging path).  Workers reconstruct each
  circuit themselves; the process-wide
  :func:`repro.logic.compiled.compile_network` memo then makes every
  later task on a structurally identical circuit reuse the compiled
  network and its search structures, so a worker that sees the same
  circuit for four fault classes compiles it once.
* **Fault tolerance** — each cell runs under a two-level timeout (a
  ``SIGALRM`` soft bound inside the worker plus the supervisor's hard
  watchdog that kills workers wedged in native code or on platforms
  without ``SIGALRM``), a transient-vs-permanent error classification
  with exponential-backoff **retries**, an **engine fallback chain**
  (:data:`FALLBACK_CHAINS`, e.g. ``auto → compiled → legacy``) for
  cells one engine cannot finish, and **poison-task quarantine** for
  cells that repeatedly kill their worker.  Failure modes become
  record statuses (``error`` / ``timeout`` / ``poisoned``) — never a
  crashed campaign.
* **Checkpointing** — each finished record is appended to the JSONL
  :class:`~repro.campaign.store.ResultStore` immediately; with
  ``resume=True`` (default) a rerun skips every task whose latest
  stored record succeeded, so an interrupted campaign continues
  instead of restarting.

Because tasks are deterministic and records carry no worker identity,
the *final store content* is identical (up to the volatile
``runtime_s`` / ``attempt`` / ``failures`` fields and line order) for
1-worker and N-worker runs, for interrupted-then-resumed runs, and for
runs disturbed by injected worker kills/hangs/transient errors —
``tests/test_campaign.py`` and ``tests/test_campaign_chaos.py``
enforce all three.

Example::

    >>> from repro.campaign.runner import expand_grid, run_campaign
    >>> grid = expand_grid(["c17"], ["stuck_at"])
    >>> result = run_campaign(grid)           # in-memory, no store
    >>> result.records[0]["status"]
    'ok'
"""

from __future__ import annotations

import dataclasses
import signal
import threading
import time
from pathlib import Path
from typing import Callable, Sequence

from repro.campaign.backends import JsonlBackend, ResultBackend, open_store
from repro.campaign.registry import Registry, get_registry
from repro.circuits.generators import BENCHMARK_BUILDERS
from repro.campaign.store import SCHEMA_VERSION, ResultStore
from repro.campaign.tasks import DEFAULT_FAULT_CLASSES, run_fault_class
from repro.logic.bench_format import parse_bench
from repro.logic.network import Network
from repro.service.metrics import counter, histogram

#: Whether the in-worker soft timeout is available.  Module-level so
#: tests can simulate SIGALRM-less platforms (the supervisor's watchdog
#: is then the only timeout enforcement).
_HAS_SIGALRM = hasattr(signal, "SIGALRM")

#: Live campaign instrumentation (see docs/SERVICE.md for the
#: catalogue).  Declared here — not in the service layer — so every
#: campaign entry point (CLI, job API, direct ``run_campaign`` calls)
#: feeds the same process-wide registry.  Counters are incremented on
#: the *parent* side of the supervised path (the ``finish`` emit), so
#: worker subprocesses never need to ship metrics across processes.
TASKS_TOTAL = counter(
    "repro_campaign_tasks_total",
    "Finished campaign cells by final record status",
    ("status",),
)
TASKS_RESUMED = counter(
    "repro_campaign_tasks_resumed_total",
    "Cells skipped because the store already holds an ok record",
)
TASK_FAILURES = counter(
    "repro_campaign_task_failures_total",
    "Non-final cell failures by kind (transient/crash/hang/engine)",
    ("kind",),
)
TASK_RUNTIME = histogram(
    "repro_campaign_task_runtime_seconds",
    "Cell wall-clock by fault class and the engine that produced it",
    ("fault_class", "engine"),
)


class TransientTaskError(RuntimeError):
    """Base class for errors worth retrying (resource pressure, flaky
    I/O, injected chaos) as opposed to deterministic task bugs."""


#: Exception types classified as transient: the same cell may well
#: succeed on a retried attempt.  Everything else is permanent — a
#: deterministic cell would fail identically again.
TRANSIENT_EXCEPTION_TYPES: tuple[type[BaseException], ...] = (
    MemoryError,
    OSError,          # includes ConnectionError/TimeoutError/BrokenPipeError
    TransientTaskError,
)


def classify_transient(exc: BaseException) -> bool:
    """Transient (retry with backoff) vs permanent (fail fast)."""
    return isinstance(exc, TRANSIENT_EXCEPTION_TYPES)


#: Engine degradation chains: when an engine raises a *permanent* error
#: on a cell, the cell is retried in-attempt on the next engine in its
#: chain (fast numpy/compiled paths degrade to the slow-but-simple
#: legacy oracle).  The record's ``engine_used`` names the engine that
#: actually produced the metrics; ``engine`` (and the task id) keep the
#: requested one so resume keys are stable.
FALLBACK_CHAINS: dict[str, tuple[str, ...]] = {
    "auto": ("auto", "compiled", "legacy"),
    "multiword": ("multiword", "compiled", "legacy"),
    "compiled": ("compiled", "legacy"),
    "legacy": ("legacy",),
}


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/watchdog knobs for one campaign.

    ``max_attempts`` bounds transient-error retries; ``max_crash_attempts``
    bounds how often a cell may kill (or hang) its worker before it is
    quarantined as ``poisoned`` (crashes) or finalised as ``timeout``
    (watchdog kills).  Backoff is deterministic exponential:
    ``base * factor**(attempt-1)`` capped at ``backoff_max``.
    ``watchdog_grace`` is how long past the soft ``timeout`` the
    supervisor waits before killing a worker from outside.
    """

    max_attempts: int = 3
    max_crash_attempts: int = 3
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    watchdog_grace: float = 5.0

    def backoff(self, attempt: int) -> float:
        """Delay before retrying after the ``attempt``-th failure."""
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )


@dataclasses.dataclass(frozen=True)
class TaskSpec:
    """One grid cell.  ``bench_text`` makes externally-registered
    netlists self-contained, so a worker process can rebuild the
    circuit without sharing the parent's registry."""

    circuit: str
    fault_class: str
    engine: str = "compiled"
    bench_text: str | None = None

    @property
    def task_id(self) -> str:
        return f"{self.circuit}/{self.fault_class}/{self.engine}"

    def build_network(self) -> Network:
        if self.bench_text is not None:
            return parse_bench(self.bench_text, name=self.circuit)
        return get_registry().load(self.circuit)


@dataclasses.dataclass
class CampaignResult:
    """Outcome of :func:`run_campaign`.

    ``records`` is the latest record per task in grid order (including
    records recovered from the store for skipped tasks)."""

    records: list[dict]
    n_run: int
    n_skipped: int
    store_path: Path | None
    #: Tasks another runner process claimed first (multi-runner sqlite
    #: campaigns only): not computed here, recovered from the store
    #: scan where already committed.
    n_external: int = 0
    #: Whether the campaign stopped early because its ``should_stop``
    #: hook fired (cooperative cancel / graceful shutdown).  Unfinished
    #: cells are simply absent from ``records`` — the store stays
    #: resumable.
    interrupted: bool = False

    @property
    def n_failed(self) -> int:
        """Tasks whose final record is not ``ok`` (``error`` /
        ``timeout`` / ``poisoned``) — the CLI exit-code source."""
        return sum(1 for r in self.records if r.get("status") != "ok")


def expand_grid(
    circuits: Sequence[str],
    fault_classes: Sequence[str] = DEFAULT_FAULT_CLASSES,
    engine: str = "compiled",
    registry: Registry | None = None,
) -> list[TaskSpec]:
    """Cross circuits with fault classes into grid cells (circuit-major
    order, which is also the report's row order).

    Cells are self-contained: circuits that a worker process could not
    rebuild from the default registry — entries of a custom
    ``registry``, or runtime registrations a spawn-started worker would
    not inherit — are serialised to bench text here (which normalises
    gate names to the ``g_<net>`` convention of the format).
    """
    from repro.logic.bench_format import write_bench

    registry = registry or get_registry()
    tasks = []
    for circuit in circuits:
        spec = registry.spec(circuit)  # fail fast on unknown names
        bench_text = spec.bench_text
        if bench_text is None and (
            registry is not get_registry() or circuit not in BENCHMARK_BUILDERS
        ):
            bench_text = write_bench(spec.build())
        for fault_class in fault_classes:
            tasks.append(
                TaskSpec(
                    circuit=circuit,
                    fault_class=fault_class,
                    engine=engine,
                    bench_text=bench_text,
                )
            )
    return tasks


class _TaskTimeout(Exception):
    pass


def _alarm(_signum, _frame):
    raise _TaskTimeout()


def _format_error(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def execute_task(
    spec: TaskSpec,
    timeout: float | None = None,
    *,
    attempt: int = 1,
    chaos=None,
) -> dict:
    """Run one grid cell to a finished record (never raises for task
    failures — errors and timeouts become record statuses).

    One *attempt*: the engine fallback chain runs inside it (permanent
    engine errors degrade to the next engine, recorded in the
    ``failures`` provenance), while transient errors abort the attempt
    immediately so the caller can retry the cell with backoff.  The
    soft ``SIGALRM`` timeout spans the whole attempt, fallbacks
    included.  ``chaos`` is the fault-injection hook of
    :class:`repro.campaign.chaos.ChaosPolicy` (tests only).
    """
    record = {
        "schema": SCHEMA_VERSION,
        "task_id": spec.task_id,
        "circuit": spec.circuit,
        "fault_class": spec.fault_class,
        "engine": spec.engine,
        "attempt": attempt,
    }
    chain = FALLBACK_CHAINS.get(spec.engine, (spec.engine,))
    failures: list[dict] = []
    # SIGALRM handlers can only be installed from the main thread; the
    # job service runs inline campaigns on worker *threads*, where the
    # soft timeout silently degrades to the caller's cancel/watchdog.
    use_alarm = (
        timeout is not None
        and _HAS_SIGALRM
        and threading.current_thread() is threading.main_thread()
    )
    previous = None
    start = time.perf_counter()
    try:
        if use_alarm:
            previous = signal.signal(signal.SIGALRM, _alarm)
            signal.setitimer(signal.ITIMER_REAL, timeout)
        if chaos is not None:
            chaos.before_attempt(spec.task_id, attempt)
        network = spec.build_network()
        record["circuit_stats"] = network.stats()
        for index, engine in enumerate(chain):
            try:
                if chaos is not None:
                    chaos.engine_fault(spec.task_id, attempt, engine, chain)
                record["metrics"] = run_fault_class(
                    network, spec.fault_class, engine
                )
                record["engine_used"] = engine
                record["status"] = "ok"
                break
            except _TaskTimeout:
                raise
            except Exception as exc:  # noqa: BLE001 — degrade, don't die
                if classify_transient(exc) or index == len(chain) - 1:
                    raise
                failures.append(
                    {
                        "attempt": attempt,
                        "kind": "engine",
                        "engine": engine,
                        "error": _format_error(exc),
                    }
                )
    except _TaskTimeout:
        record["status"] = "timeout"
        record["error"] = f"task exceeded {timeout:g}s"
    except Exception as exc:  # noqa: BLE001 — campaign must outlive cells
        record["status"] = "error"
        record["error"] = _format_error(exc)
        record["transient"] = classify_transient(exc)
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
    if failures:
        record["failures"] = failures
    record["runtime_s"] = round(time.perf_counter() - start, 6)
    return record


def run_task_with_retries(
    spec: TaskSpec,
    timeout: float | None = None,
    policy: RetryPolicy | None = None,
    chaos=None,
) -> dict:
    """Inline attempt loop: :func:`execute_task` plus transient-error
    retries with exponential backoff (the ``workers=1`` twin of the
    supervisor's parent-side retry logic; worker-death recovery needs
    the supervised path)."""
    policy = policy or RetryPolicy()
    failures: list[dict] = []
    attempt = 1
    while True:
        record = execute_task(spec, timeout, attempt=attempt, chaos=chaos)
        if (
            record["status"] == "error"
            and record.get("transient")
            and attempt < policy.max_attempts
        ):
            failures.append(
                {
                    "attempt": attempt,
                    "kind": "transient",
                    "error": record.get("error", ""),
                }
            )
            time.sleep(policy.backoff(attempt))
            attempt += 1
            continue
        if failures:
            record["failures"] = failures + record.get("failures", [])
        return record


def run_campaign(
    tasks: Sequence[TaskSpec],
    store: ResultBackend | ResultStore | str | Path | None = None,
    workers: int = 1,
    timeout: float | None = None,
    resume: bool = True,
    progress: Callable[[str], None] | None = None,
    policy: RetryPolicy | None = None,
    chaos=None,
    backend: str = "auto",
    should_stop: Callable[[], bool] | None = None,
) -> CampaignResult:
    """Run a task grid with checkpointing, resume and fault tolerance.

    Args:
        tasks: Grid cells from :func:`expand_grid` (or hand-built).
        store: Checkpoint target; ``None`` runs purely in memory.  A
            path gets a backend the campaign opens and closes itself
            (``backend`` selects which); a backend instance — or a bare
            :class:`ResultStore`, wrapped in a
            :class:`~repro.campaign.backends.jsonl.JsonlBackend` — stays
            caller-owned (so its ``fsync``/``lock`` configuration and
            handle lifetime are the caller's).
        workers: Pool size; ``1`` executes inline in this process,
            ``>1`` fans out over the supervised worker layer
            (:mod:`repro.campaign.supervisor`) with watchdog kills,
            crash respawn and poison quarantine.
        timeout: Per-task soft wall-clock bound in seconds; the
            supervised path adds a hard watchdog at
            ``timeout + policy.watchdog_grace``.
        resume: Skip tasks whose latest stored record is ``ok``.
        progress: Optional sink for one-line progress messages.
        policy: Retry/backoff/watchdog knobs (:class:`RetryPolicy`).
        chaos: Fault-injection hook for the chaos test harness
            (:class:`repro.campaign.chaos.ChaosPolicy`; its ``storage``
            script reaches the backend of a campaign-owned store).
        backend: Store backend name for path targets — ``"jsonl"``,
            ``"sqlite"`` or ``"auto"`` (detect from the file).
        should_stop: Cooperative-cancel hook, polled between cells (and
            every supervisor tick).  Once it returns True no new cell
            is started, in-flight supervised workers are killed, claims
            are released and the result comes back with
            ``interrupted=True`` — the store is left resumable.

    On a claiming backend (sqlite) the pending tasks are registered
    and then *claimed* one by one, so N independent runner processes
    pointed at one store split the grid between them: a cell another
    runner claimed first is skipped here (counted in ``n_external``)
    and its record recovered from the final store scan.
    """
    owns_store = isinstance(store, (str, Path))
    if owns_store:
        store = open_store(
            store, backend, chaos=getattr(chaos, "storage", None)
        )
    elif isinstance(store, ResultStore):
        store = JsonlBackend(store=store, chaos=getattr(chaos, "storage", None))
    policy = policy or RetryPolicy()
    say = progress or (lambda _line: None)

    done: dict[str, dict] = {}
    if store is not None and resume:
        done = {
            task_id: record
            for task_id, record in store.latest().items()
            if record.get("status") == "ok"
        }
    pending = [t for t in tasks if t.task_id not in done]
    n_skipped = len(tasks) - len(pending)
    if n_skipped:
        TASKS_RESUMED.inc(n_skipped)
        say(f"resume: {n_skipped} task(s) already in "
            f"{store.path if store else 'store'}, {len(pending)} to run")

    claiming = store is not None and store.supports_claiming
    if claiming and pending:
        store.register(
            [spec.task_id for spec in pending], force=not resume
        )

    fresh: dict[str, dict] = {}
    external: list[TaskSpec] = []
    scanned: dict[str, dict] = {}

    def finish(record: dict) -> None:
        fresh[record["task_id"]] = record
        if store is not None:
            store.append(record)
        status = record["status"]
        TASKS_TOTAL.labels(status=status).inc()
        TASK_RUNTIME.labels(
            fault_class=record.get("fault_class", ""),
            engine=record.get("engine_used", record.get("engine", "")),
        ).observe(record.get("runtime_s", 0.0))
        for failure in record.get("failures", ()):
            TASK_FAILURES.labels(kind=failure.get("kind", "unknown")).inc()
        extra = "" if status == "ok" else f" ({record.get('error', '')})"
        say(f"[{len(fresh)}/{len(pending)}] {record['task_id']}: "
            f"{status} in {record['runtime_s']:.2f}s{extra}")

    def lost_claim(spec: TaskSpec) -> None:
        external.append(spec)
        say(f"{spec.task_id}: claimed by another runner, skipping")

    interrupted = False
    try:
        if pending:
            if workers <= 1:
                for spec in pending:
                    if should_stop is not None and should_stop():
                        interrupted = True
                        break
                    if claiming and not store.claim(spec.task_id):
                        lost_claim(spec)
                        continue
                    finish(
                        run_task_with_retries(spec, timeout, policy, chaos)
                    )
            else:
                from repro.campaign.supervisor import run_supervised

                interrupted = run_supervised(
                    pending,
                    workers=workers,
                    timeout=timeout,
                    policy=policy,
                    chaos=chaos,
                    emit=finish,
                    claim=store.claim if claiming else None,
                    external=lost_claim,
                    should_stop=should_stop,
                )
        if interrupted:
            say(f"interrupted: {len(fresh)}/{len(pending)} cell(s) "
                "finished; store left resumable")
    finally:
        if claiming:
            store.release()  # hand back claims an exception left behind
        # Cells another runner claimed are (usually) in the store by
        # now; recover their records from a final scan.  A cell still
        # being computed elsewhere is simply absent from this result.
        if external and store is not None:
            scanned = store.latest()
        if owns_store and store is not None:
            store.close()

    records = []
    for t in tasks:
        record = (
            fresh.get(t.task_id)
            or done.get(t.task_id)
            or scanned.get(t.task_id)
        )
        if record is not None:
            records.append(record)
    return CampaignResult(
        records=records,
        n_run=len(fresh),
        n_skipped=n_skipped,
        store_path=store.path if store is not None else None,
        n_external=len(external),
        interrupted=interrupted,
    )
