"""PODEM test-pattern generation over the five-valued D-calculus.

The core routine :func:`generate_test` handles classic stuck-at faults;
:func:`justify_and_propagate` exposes the underlying machinery in a more
general form used by the polarity-fault and stuck-open generators: it
accepts a *condition* (required good-machine values on arbitrary nets —
typically a DP gate's local activation vector) plus a faulty-machine
*gate override*, and searches primary-input assignments that satisfy the
condition and (optionally) propagate the resulting D/D' to an output.

Two implementations back the same search:

* the **compiled engine** (default, ``engine="compiled"`` —
  :mod:`repro.atpg.podem_compiled`): the D-calculus encoded in the
  dual-rail words of :class:`repro.logic.compiled.CompiledNetwork`
  with index-level event-driven implication, sharing the per-network
  compilation memo with the fault simulator; and
* the **legacy dict-based machine** (``engine="legacy"`` — this
  module's :class:`_FaultMachine` and helpers), kept as the
  transparent cross-check oracle.

Both make bit-identical decisions, so vectors, backtrack counts and
testable/untestable/aborted classifications agree exactly
(``tests/test_podem_compiled.py``); the compiled path is ≥5x faster
end-to-end on the benchmark circuits (``benchmarks/bench_atpg_speed``).
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.faults.logic import PolarityFault, StuckAtFault
from repro.logic.eval import CONTROLLING, INVERTING, eval_dvalue
from repro.logic.network import Gate, Network
from repro.logic.values import (
    DValue,
    ONE,
    X,
    ZERO,
    from_ternary,
)


@dataclasses.dataclass
class PodemResult:
    """Outcome of a PODEM run.

    Attributes:
        success: A test was found.
        vector: PI assignment (nets not listed are don't-care).
        backtracks: Decision backtracks consumed.
        aborted: True when the backtrack budget ran out (fault is
            *possibly* testable); False + no success means proven
            untestable under the search bound.
    """

    success: bool
    vector: dict[str, int]
    backtracks: int
    aborted: bool = False


class _FaultMachine:
    """Five-valued forward implication with a fault installed."""

    def __init__(
        self,
        network: Network,
        line_fault: StuckAtFault | None = None,
        gate_fault_name: str | None = None,
        gate_fault_table: Mapping[tuple[int, ...], int] | None = None,
    ) -> None:
        self.network = network
        self.line_fault = line_fault
        self.gate_fault_name = gate_fault_name
        self.gate_fault_table = gate_fault_table

    def _apply_line_fault(self, net: str, value: DValue) -> DValue:
        fault = self.line_fault
        if fault is None or fault.is_branch or fault.net != net:
            return value
        return DValue(value.good, fault.value)

    def imply(self, assignment: Mapping[str, int]) -> dict[str, DValue]:
        """Forward-simulate both machines from a PI assignment."""
        values: dict[str, DValue] = {}
        for net in self.network.primary_inputs:
            value = from_ternary(assignment.get(net, X))
            values[net] = self._apply_line_fault(net, value)
        for gate in self.network.levelized():
            pins: list[DValue] = []
            for k, net in enumerate(gate.inputs):
                pin = values[net]
                fault = self.line_fault
                if (
                    fault is not None
                    and fault.is_branch
                    and fault.gate == gate.name
                    and fault.pin == k
                ):
                    pin = DValue(pin.good, fault.value)
                pins.append(pin)
            if gate.name == self.gate_fault_name:
                good = eval_dvalue(
                    gate.gtype, [DValue(p.good, p.good) for p in pins]
                ).good
                faulty = self._faulty_eval(pins)
                out = DValue(good, faulty)
            else:
                out = eval_dvalue(gate.gtype, pins)
            values[gate.output] = self._apply_line_fault(gate.output, out)
        return values

    def _faulty_eval(self, pins: Sequence[DValue]) -> int:
        """Faulty-machine output of the overridden gate."""
        faulty_pins = tuple(p.faulty for p in pins)
        if any(p not in (ZERO, ONE) for p in faulty_pins):
            return X
        assert self.gate_fault_table is not None
        return self.gate_fault_table[faulty_pins]


def _d_frontier(
    network: Network,
    values: Mapping[str, DValue],
    fault_gate: str | None,
) -> list[Gate]:
    """Gates through which the fault effect could advance.

    Includes the classic D-frontier (fault effect on an input, X on the
    output) plus the faulted gate itself while its output is still
    unresolved — for branch and functional faults, the D materialises
    *at* that gate once its side inputs are assigned.
    """
    frontier = []
    for gate in network.levelized():
        out = values[gate.output]
        if out.good != X and out.faulty != X:
            continue
        if gate.name == fault_gate or any(
            values[n].is_fault_effect for n in gate.inputs
        ):
            frontier.append(gate)
    return frontier


def _x_path_exists(
    network: Network,
    values: Mapping[str, DValue],
    origin: str | None,
) -> bool:
    """Check some fault effect can still reach a primary output through
    X-valued nets.

    ``origin`` is the net where the fault effect first materialises
    (stem net, or the faulted gate's output for branch/functional
    faults); while that net is still X-ish it seeds the search even
    though no D exists yet.
    """
    effect_nets = {
        n for n, v in values.items() if v.is_fault_effect
    }
    if not effect_nets and origin is not None:
        value = values.get(origin)
        if value is not None and (value.good == X or value.faulty == X):
            effect_nets = {origin}
    if not effect_nets:
        return False
    if any(n in network.primary_outputs for n in effect_nets):
        return True
    reachable = set(effect_nets)
    changed = True
    while changed:
        changed = False
        for gate in network.levelized():
            if gate.output in reachable:
                continue
            out = values[gate.output]
            if out.good != X and out.faulty != X:
                continue  # blocked: output already resolved
            if any(n in reachable for n in gate.inputs):
                reachable.add(gate.output)
                changed = True
    return any(n in network.primary_outputs for n in reachable)


def _backtrace(
    network: Network,
    values: Mapping[str, DValue],
    net: str,
    target: int,
) -> tuple[str, int] | None:
    """Map an objective (net, value) to a PI assignment through X lines."""
    for _ in range(len(network.gates) + len(network.primary_inputs) + 1):
        if net in network.primary_inputs:
            return net, target
        gate = network.driver_of(net)
        if gate is None:
            return None
        if gate.gtype in INVERTING:
            target = 1 - target
        x_inputs = [
            n for n in gate.inputs
            if values[n].good == X or values[n].faulty == X
        ]
        if not x_inputs:
            return None
        net = x_inputs[0]
    return None


def justify_and_propagate(
    network: Network,
    condition: Sequence[tuple[str, int]],
    line_fault: StuckAtFault | None = None,
    gate_fault: PolarityFault | None = None,
    gate_fault_table: Mapping[tuple[int, ...], int] | None = None,
    propagate: bool = True,
    max_backtracks: int = 500,
    engine: str = "compiled",
) -> PodemResult:
    """Generic PODEM: justify ``condition`` and propagate the fault effect.

    Args:
        network: Circuit under test.
        condition: Required good-machine values as (net, value) pairs —
            the fault's activation condition.
        line_fault: Classic stuck-at fault to install (optional).
        gate_fault: Polarity fault whose faulty table overrides its gate
            (optional; ``gate_fault_table`` may be given directly).
        propagate: When False, succeed as soon as the condition is
            justified (IDDQ-style testing: no output propagation needed).
        max_backtracks: Search budget.
        engine: ``"compiled"`` (index-level event-driven implication on
            the compiled network — the fast default) or ``"legacy"``
            (this module's dict-based machine, the cross-check oracle).
            Both return identical results.
    """
    if gate_fault is not None and gate_fault_table is None:
        gate_fault_table = gate_fault.faulty_table()
    if engine == "compiled":
        from repro.atpg.podem_compiled import compiled_justify_and_propagate

        return compiled_justify_and_propagate(
            network,
            condition,
            line_fault=line_fault,
            gate_fault_name=gate_fault.gate if gate_fault else None,
            gate_fault_table=gate_fault_table,
            propagate=propagate,
            max_backtracks=max_backtracks,
        )
    if engine != "legacy":
        raise ValueError(f"unknown PODEM engine {engine!r}")
    machine = _FaultMachine(
        network,
        line_fault=line_fault,
        gate_fault_name=gate_fault.gate if gate_fault else None,
        gate_fault_table=gate_fault_table,
    )
    # Where the fault effect first materialises.
    fault_gate_name: str | None = None
    origin: str | None = None
    if gate_fault is not None:
        fault_gate_name = gate_fault.gate
        origin = network.gates[gate_fault.gate].output
    elif line_fault is not None:
        if line_fault.is_branch:
            fault_gate_name = line_fault.gate
            origin = network.gates[line_fault.gate].output
        else:
            origin = line_fault.net
    assignment: dict[str, int] = {}
    # Decision stack: (pi, value, tried_both)
    stack: list[tuple[str, int, bool]] = []
    backtracks = 0

    def status() -> tuple[bool, bool, dict[str, DValue]]:
        """Returns (success, dead_end, values)."""
        values = machine.imply(assignment)
        # Condition conflicts?
        for net, required in condition:
            good = values[net].good
            if good != X and good != required:
                return False, True, values
        justified = all(
            values[net].good == required for net, required in condition
        )
        if not propagate:
            return justified, False, values
        if justified:
            for po in network.primary_outputs:
                if values[po].is_fault_effect:
                    return True, False, values
            if not _x_path_exists(network, values, origin):
                return False, True, values
        return False, False, values

    for _ in range(20000):  # hard safety bound
        success, dead, values = status()
        if success:
            return PodemResult(True, dict(assignment), backtracks)
        if dead:
            # Backtrack.
            while stack:
                pi, value, tried = stack.pop()
                del assignment[pi]
                if not tried:
                    assignment[pi] = 1 - value
                    stack.append((pi, 1 - value, True))
                    backtracks += 1
                    break
            else:
                return PodemResult(False, {}, backtracks)
            if backtracks > max_backtracks:
                return PodemResult(False, {}, backtracks, aborted=True)
            continue
        # Pick the next objective.
        objective: tuple[str, int] | None = None
        for net, required in condition:
            if values[net].good == X:
                objective = (net, required)
                break
        if objective is None and propagate:
            frontier = _d_frontier(network, values, fault_gate_name)
            for gate in frontier:
                x_pins = [
                    n for n in gate.inputs
                    if values[n].good == X or values[n].faulty == X
                ]
                if not x_pins:
                    continue
                control = CONTROLLING.get(gate.gtype)
                value = 1 - control[0] if control else 0
                objective = (x_pins[0], value)
                break
        if objective is None:
            # Nothing left to decide but no success: dead end.
            while stack:
                pi, value, tried = stack.pop()
                del assignment[pi]
                if not tried:
                    assignment[pi] = 1 - value
                    stack.append((pi, 1 - value, True))
                    backtracks += 1
                    break
            else:
                return PodemResult(False, {}, backtracks)
            if backtracks > max_backtracks:
                return PodemResult(False, {}, backtracks, aborted=True)
            continue
        decision = _backtrace(network, values, *objective)
        if decision is None:
            # Objective unreachable: backtrack.
            while stack:
                pi, value, tried = stack.pop()
                del assignment[pi]
                if not tried:
                    assignment[pi] = 1 - value
                    stack.append((pi, 1 - value, True))
                    backtracks += 1
                    break
            else:
                return PodemResult(False, {}, backtracks)
            if backtracks > max_backtracks:
                return PodemResult(False, {}, backtracks, aborted=True)
            continue
        pi, value = decision
        assignment[pi] = value
        stack.append((pi, value, False))
    return PodemResult(False, {}, backtracks, aborted=True)


def generate_test(
    network: Network,
    fault: StuckAtFault,
    max_backtracks: int = 500,
    engine: str = "compiled",
) -> PodemResult:
    """Classic PODEM for a stuck-at fault."""
    condition = [(fault.net, 1 - fault.value)]
    return justify_and_propagate(
        network,
        condition,
        line_fault=fault,
        max_backtracks=max_backtracks,
        engine=engine,
    )


@dataclasses.dataclass
class StuckAtAtpgResult:
    """Outcome of a full stuck-at ATPG campaign with fault dropping.

    Attributes:
        tests: Generated vectors (fully specified), in generation order.
        detected: Fault name -> index into ``tests`` of the detecting
            vector (for dropped faults, the test that dropped them).
        untestable: Faults proven untestable within the search bound.
        aborted: Faults the backtrack budget gave up on.
        total_backtracks: Backtracks summed over every PODEM search of
            the campaign (the effort metric the campaign layer stores).
    """

    tests: list[dict[str, int]]
    detected: dict[str, int]
    untestable: list[str]
    aborted: list[str]
    total_backtracks: int = 0

    @property
    def coverage(self) -> float:
        total = (
            len(self.detected) + len(self.untestable) + len(self.aborted)
        )
        return len(self.detected) / total if total else 1.0


def run_stuck_at_atpg(
    network: Network,
    faults: Sequence[StuckAtFault] | None = None,
    max_backtracks: int = 500,
    engine: str = "compiled",
) -> StuckAtAtpgResult:
    """PODEM over a fault list with bit-parallel fault dropping.

    After each successful generation the new vector is fault-simulated
    (on the compiled engine) against every still-undetected fault, and
    all detected faults are dropped — the classic ATPG loop that avoids
    generating a dedicated test per fault.  ``engine`` selects the
    PODEM implementation (compiled default / legacy oracle); dropping
    always runs on the compiled simulator.
    """
    from repro.atpg.fault_sim import stuck_at_injection
    from repro.atpg.podem_compiled import batch_drop_detected
    from repro.faults import get_universe
    from repro.logic.compiled import compile_network

    if faults is None:
        faults = get_universe("stuck_at").collapse(network)
    cnet = compile_network(network)
    names = [f.name for f in faults]
    injections = [stuck_at_injection(cnet, f) for f in faults]
    tests: list[dict[str, int]] = []
    detected: dict[str, int] = {}
    untestable: list[str] = []
    aborted: list[str] = []
    suspect: list[str] = []
    dead: set[str] = set()  # proven untestable / aborted: never dropped
    total_backtracks = 0
    for fault, fault_name in zip(faults, names):
        if fault_name in detected:
            continue
        result = generate_test(network, fault, max_backtracks, engine=engine)
        total_backtracks += result.backtracks
        if not result.success:
            (aborted if result.aborted else untestable).append(fault_name)
            dead.add(fault_name)
            continue
        vector = dict(result.vector)
        for net in network.primary_inputs:
            vector.setdefault(net, 0)
        index = len(tests)
        tests.append(vector)
        pending = {
            name: injection
            for name, injection in zip(names, injections)
            if name not in detected and name not in dead
        }
        for name in batch_drop_detected(cnet, vector, pending):
            detected[name] = index
        if fault_name not in detected:
            # PODEM claimed success but simulation disagrees; the fault
            # stays live for collateral detection and is reported as
            # aborted only if nothing ever detects it.
            suspect.append(fault_name)
    aborted.extend(n for n in suspect if n not in detected)
    return StuckAtAtpgResult(
        tests=tests,
        detected=detected,
        untestable=sorted(untestable),
        aborted=sorted(aborted),
        total_backtracks=total_backtracks,
    )
