"""Compiled PODEM: the five-valued D-calculus on the bit-parallel engine.

This is the fast counterpart of the dict-based search in
:mod:`repro.atpg.podem`, built directly on the flattened op arrays of
:class:`repro.logic.compiled.CompiledNetwork` (obtained through the
:func:`repro.logic.compiled.compile_network` memo, so PODEM and the
fault simulator share one compiled form per network structure).

**D-calculus in the dual-rail words.**  The compiled engine packs one
simulation "vector" per bit of its dual-rail (ones, zeros) words; here
the batch is the two machines of the D-calculus: bit 0 is the *good*
machine and bit 1 the *faulty* machine.  A net's five-valued state is
then a pair of 2-bit words, and every gate evaluates both machines at
once through the same bitwise Kleene operators the fault simulator
uses (:func:`repro.logic.compiled._eval_gate`):

===========  ==========  ===========
value        ones word   zeros word
===========  ==========  ===========
``0``        ``0b00``    ``0b11``
``1``        ``0b11``    ``0b00``
``D``        ``0b01``    ``0b10``
``D'``       ``0b10``    ``0b01``
``X``        pins unset on the unknown machine
===========  ==========  ===========

Faults enter exactly as in the simulator's override contract: a stem
stuck-at forces the faulty bit wherever the net is written, a branch
fault forces the faulty bit of one gate input pin, and a functional
(gate) fault evaluates the faulty machine through a local truth table
(:func:`repro.logic.compiled.eval_table_packed` with the faulty-bit
mask).

**Event-driven implication.**  Instead of re-simulating the whole
network per PODEM decision (the legacy ``_FaultMachine.imply``), the
:class:`_DMachine` keeps the full net state resident and propagates a
primary-input (un)assignment only through its fanout cone: consumer
ops are processed in topological order off a heap and propagation
stops where a recomputed output equals the stored value.  Backtracking
is just another event — re-implication from the flipped PI — so no
state snapshots are needed.

**Search equivalence.**  The search mirrors the legacy decision rules
*exactly* (objective order, D-frontier traversal in levelized order,
first-X-input backtrace, backtrack bookkeeping, safety bounds), so for
any fault both engines make identical decisions, consume identical
backtrack budgets, and return identical vectors and identical
testable / untestable / aborted classifications —
``tests/test_podem_compiled.py`` enforces this across every generated
benchmark and fault class.  The precomputed SCOAP-style
controllability estimates (:class:`repro.logic.compiled.
NetworkStructures`) drive an optional ``heuristic="controllability"``
backtrace that picks the cheapest X input instead of the first one;
it trades the bit-exact mirror for fewer backtracks on deep circuits.
"""

from __future__ import annotations

import heapq
from typing import Mapping, Sequence

from repro.atpg.podem import PodemResult
from repro.logic.compiled import (
    OP_AND,
    OP_INV,
    OP_MAJ,
    OP_MIN,
    OP_NAND,
    OP_NOR,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    CompiledNetwork,
    _eval_gate,
    compile_network,
    eval_table_packed,
)
from repro.logic.network import Network
from repro.logic.values import X

if False:  # pragma: no cover - typing only
    from repro.atpg.faults import StuckAtFault

#: Bit of the good (fault-free) machine in the 2-bit rail words.
GOOD = 0b01
#: Bit of the faulty machine.
FAULT = 0b10
#: Both machines.
BOTH = 0b11


def _force_faulty(o: int, z: int, value: int) -> tuple[int, int]:
    """Force the faulty-machine bit of one dual-rail word to ``value``."""
    if value:
        return (o & GOOD) | FAULT, z & GOOD
    return o & GOOD, (z & GOOD) | FAULT


class _DMachine:
    """Event-driven five-valued implication over flattened op arrays.

    The index-level replacement for the legacy ``_FaultMachine``: net
    state lives in two integer lists of 2-bit dual-rail words (bit 0
    good machine, bit 1 faulty machine), faults are installed as index
    -level overrides, and :meth:`set_pi` re-implies only the changed
    fanout cone.
    """

    def __init__(
        self,
        cnet: CompiledNetwork,
        line_idx: int = -1,
        line_value: int = 0,
        pin_forces: Mapping[int, tuple[tuple[int, int], ...]] | None = None,
        tables: Mapping[int, Mapping[tuple[int, ...], int]] | None = None,
    ) -> None:
        self.cnet = cnet
        self.structs = cnet.structures()
        self.ops = cnet.ops
        self.line_idx = line_idx
        self.line_value = line_value
        self.pin_forces = dict(pin_forces or {})
        self.tables = dict(tables or {})
        self.assign: dict[int, int] = {}
        n_ops = len(self.ops)
        self._queued = bytearray(n_ops)
        # Ops the inlined fast path must route through the slow
        # evaluator: pin/table overrides and the faulted net's driver.
        special = bytearray(n_ops)
        for pos in self.pin_forces:
            special[pos] = 1
        for pos in self.tables:
            special[pos] = 1
        if line_idx >= 0:
            driver = self.structs.driver_op[line_idx]
            if driver >= 0:
                special[driver] = 1
        self._special = bytes(special)
        # Start from the cached fault-free all-X fixpoint and re-imply
        # only the fault's cone, instead of evaluating every op.
        base = getattr(cnet, "_dcalc_base", None)
        if base is None:
            base = self._all_x_base(cnet)
            cnet._dcalc_base = base
        self.ones = list(base[0])
        self.zeros = list(base[1])
        seeds: list[int] = []
        if line_idx >= 0:
            if self.structs.is_pi[line_idx]:
                self.ones[line_idx], self.zeros[line_idx] = self._pi_word(
                    line_idx
                )
                seeds.extend(self.structs.fanout_ops[line_idx])
            else:
                seeds.append(self.structs.driver_op[line_idx])
        seeds.extend(self.pin_forces)
        seeds.extend(self.tables)
        if seeds:
            self._propagate(seeds)

    @staticmethod
    def _all_x_base(cnet: CompiledNetwork) -> tuple[list[int], list[int]]:
        """Fault-free net state under the empty assignment (all PIs X)."""
        ones = [0] * cnet.n_nets
        zeros = [0] * cnet.n_nets
        for code, out, ins in cnet.ops:
            o, z = _eval_gate(code, [(ones[i], zeros[i]) for i in ins])
            ones[out] = o
            zeros[out] = z
        return ones, zeros

    # ------------------------------------------------------------------
    def _pi_word(self, idx: int) -> tuple[int, int]:
        """Dual-rail word a primary input loads (assignment + fault)."""
        value = self.assign.get(idx, X)
        if value == 1:
            o, z = BOTH, 0
        elif value == 0:
            o, z = 0, BOTH
        else:
            o, z = 0, 0
        if idx == self.line_idx:
            o, z = _force_faulty(o, z, self.line_value)
        return o, z

    def _eval_pos(self, pos: int) -> tuple[int, int]:
        """Evaluate one op over the current state (faults applied)."""
        code, out, ins = self.ops[pos]
        ones = self.ones
        zeros = self.zeros
        pw = [(ones[i], zeros[i]) for i in ins]
        forces = self.pin_forces.get(pos)
        if forces is not None:
            for pin, value in forces:
                po, pz = pw[pin]
                pw[pin] = _force_faulty(po, pz, value)
        table = self.tables.get(pos)
        if table is None:
            o, z = _eval_gate(code, pw)
        else:
            # Good machine through the healthy gate function, faulty
            # machine through the local truth table (any X pin -> X).
            go, gz = _eval_gate(code, pw)
            fo, fz = eval_table_packed(
                table, [(po & FAULT, pz & FAULT) for po, pz in pw], FAULT
            )
            o = (go & GOOD) | fo
            z = (gz & GOOD) | fz
        if out == self.line_idx:
            o, z = _force_faulty(o, z, self.line_value)
        return o, z

    def set_pi(self, idx: int, value: int) -> None:
        """(Un)assign one primary input and re-imply its fanout cone.

        ``value`` is 0, 1 or :data:`~repro.logic.values.X` (unassign).
        Consumer ops are processed in topological order; propagation
        dies out where a recomputed output matches the stored state, so
        the cost is the size of the *changed* cone, not the network.
        """
        if value == X:
            self.assign.pop(idx, None)
        else:
            self.assign[idx] = value
        o, z = self._pi_word(idx)
        if o == self.ones[idx] and z == self.zeros[idx]:
            return
        self.ones[idx] = o
        self.zeros[idx] = z
        self._propagate(self.structs.fanout_ops[idx])

    def _propagate(self, seed_positions: Sequence[int]) -> None:
        """Re-imply from the given op positions until the state settles.

        The hot loop of the engine: plain ops are evaluated inline on
        the local rail lists (no call, no pin-word list); only ops
        carrying an override (``self._special``) go through the full
        :meth:`_eval_pos`.
        """
        ones = self.ones
        zeros = self.zeros
        ops = self.ops
        fanout = self.structs.fanout_ops
        queued = self._queued
        special = self._special
        heappush = heapq.heappush
        heappop = heapq.heappop
        heap = list(seed_positions)
        for pos in heap:
            queued[pos] = 1
        heapq.heapify(heap)
        while heap:
            pos = heappop(heap)
            queued[pos] = 0
            code, out, ins = ops[pos]
            if special[pos]:
                o, z = self._eval_pos(pos)
            else:
                i = ins[0]
                o = ones[i]
                z = zeros[i]
                if code == OP_AND or code == OP_NAND:
                    for i in ins[1:]:
                        o &= ones[i]
                        z |= zeros[i]
                    if code == OP_NAND:
                        o, z = z, o
                elif code == OP_OR or code == OP_NOR:
                    for i in ins[1:]:
                        o |= ones[i]
                        z &= zeros[i]
                    if code == OP_NOR:
                        o, z = z, o
                elif code == OP_XOR or code == OP_XNOR:
                    for i in ins[1:]:
                        b1 = ones[i]
                        b0 = zeros[i]
                        o, z = (o & b0) | (z & b1), (o & b1) | (z & b0)
                    if code == OP_XNOR:
                        o, z = z, o
                elif code == OP_MAJ or code == OP_MIN:
                    i1 = ins[1]
                    i2 = ins[2]
                    b1 = ones[i1]
                    c1 = ones[i2]
                    b0 = zeros[i1]
                    c0 = zeros[i2]
                    o = (o & b1) | (b1 & c1) | (o & c1)
                    z = (z & b0) | (b0 & c0) | (z & c0)
                    if code == OP_MIN:
                        o, z = z, o
                elif code == OP_INV:
                    o, z = z, o
                # OP_BUF falls through with (o, z) already correct.
            if o != ones[out] or z != zeros[out]:
                ones[out] = o
                zeros[out] = z
                for nxt in fanout[out]:
                    if not queued[nxt]:
                        queued[nxt] = 1
                        heappush(heap, nxt)

    # ------------------------------------------------------------------
    def good_value(self, idx: int) -> int:
        """Good-machine ternary value of one net (0/1/X)."""
        if (self.ones[idx] | self.zeros[idx]) & GOOD:
            return self.ones[idx] & GOOD
        return X

    def is_effect(self, idx: int) -> bool:
        """True when the net carries D or D' (machines disagree)."""
        o, z = self.ones[idx], self.zeros[idx]
        return bool(((o & (z >> 1)) | (z & (o >> 1))) & GOOD)

    def is_unresolved(self, idx: int) -> bool:
        """True when either machine is still X on the net."""
        return ((self.ones[idx] | self.zeros[idx]) & BOTH) != BOTH


def _x_path_exists(
    machine: _DMachine, origin: int, cone_start: int
) -> bool:
    """Can some fault effect still reach a primary output through
    unresolved nets?

    Single forward pass over the topologically ordered ops (the legacy
    fixpoint collapses to one sweep because every edge points forward),
    with seeds pruned by the static output-reachability mask — an
    effect on a net that cannot structurally reach a PO never matters.
    """
    cnet = machine.cnet
    ones = machine.ones
    zeros = machine.zeros
    po_reach = machine.structs.po_reachable
    ops = cnet.ops
    reach = bytearray(cnet.n_nets)
    seeded = False
    has_effect = False
    # Effects can only live on the origin net or on op outputs inside
    # the fault cone — no need to scan the whole net array.
    candidates = [ops[pos][1] for pos in range(cone_start, len(ops))]
    if origin >= 0:
        candidates.append(origin)
    for idx in candidates:
        o, z = ones[idx], zeros[idx]
        if ((o & (z >> 1)) | (z & (o >> 1))) & GOOD:
            has_effect = True
            if po_reach[idx]:
                reach[idx] = 1
                seeded = True
    if not has_effect and origin >= 0:
        # No D yet: the origin net (where the effect will materialise)
        # seeds the search while it is still unresolved.
        if (
            ((ones[origin] | zeros[origin]) & BOTH) != BOTH
            and po_reach[origin]
        ):
            reach[origin] = 1
            seeded = True
    if not seeded:
        return False
    ops = cnet.ops
    for pos in range(cone_start, len(ops)):
        _, out, ins = ops[pos]
        if reach[out]:
            continue
        if ((ones[out] | zeros[out]) & BOTH) == BOTH:
            continue  # blocked: output already resolved in both machines
        for i in ins:
            if reach[i]:
                reach[out] = 1
                break
    for idx in cnet.po_index:
        if reach[idx]:
            return True
    return False


def compiled_justify_and_propagate(
    network: Network,
    condition: Sequence[tuple[str, int]],
    line_fault: "StuckAtFault | None" = None,
    gate_fault_name: str | None = None,
    gate_fault_table: Mapping[tuple[int, ...], int] | None = None,
    propagate: bool = True,
    max_backtracks: int = 500,
    heuristic: str = "mirror",
) -> PodemResult:
    """Generic PODEM on the compiled engine.

    Same contract as :func:`repro.atpg.podem.justify_and_propagate`
    (which dispatches here by default); ``heuristic`` selects the
    backtrace input choice: ``"mirror"`` replicates the legacy
    first-X-input rule bit-for-bit, ``"controllability"`` picks the
    X input with the cheapest SCOAP-style estimate for the required
    value.
    """
    if heuristic not in ("mirror", "controllability"):
        raise ValueError(f"unknown backtrace heuristic {heuristic!r}")
    cnet = compile_network(network)
    structs = cnet.structures()
    net_index = cnet.net_index
    cond = [(net_index[net], required) for net, required in condition]

    line_idx = -1
    line_value = 0
    pin_forces: dict[int, tuple[tuple[int, int], ...]] = {}
    tables: dict[int, Mapping[tuple[int, ...], int]] = {}
    fault_op = -1  # op where the fault effect first materialises
    origin = -1  # net where it first materialises
    if gate_fault_name is not None:
        fault_op = cnet.gate_op[gate_fault_name]
        tables[fault_op] = gate_fault_table or {}
        origin = cnet.ops[fault_op][1]
    if line_fault is not None:
        if line_fault.is_branch:
            pos = cnet.gate_op[line_fault.gate]
            pin_forces[pos] = ((line_fault.pin, line_fault.value),)
            if fault_op < 0:
                fault_op = pos
                origin = cnet.ops[pos][1]
        else:
            line_idx = net_index[line_fault.net]
            line_value = line_fault.value
            if origin < 0:
                origin = line_idx
    n_ops = len(cnet.ops)
    # Earliest op position a fault effect (and thus a D-frontier gate)
    # can exist at: everything before the fault's cone is skipped by
    # the frontier scan and the X-path sweep.
    cone_start = n_ops
    if fault_op >= 0:
        cone_start = fault_op
    if line_idx >= 0:
        cone_start = min(cone_start, cnet.net_first_op[line_idx])

    machine = _DMachine(
        cnet,
        line_idx=line_idx,
        line_value=line_value,
        pin_forces=pin_forces,
        tables=tables,
    )
    ones = machine.ones
    zeros = machine.zeros
    stack: list[tuple[int, int, bool]] = []
    backtracks = 0

    def result_vector() -> dict[str, int]:
        names = cnet.net_names
        return {names[i]: v for i, v in machine.assign.items()}

    def status() -> tuple[bool, bool]:
        """Returns (success, dead_end) over the resident state."""
        justified = True
        for idx, required in cond:
            good = machine.good_value(idx)
            if good == X:
                justified = False
            elif good != required:
                return False, True
        if not propagate:
            return justified, False
        if justified:
            for idx in cnet.po_index:
                if machine.is_effect(idx):
                    return True, False
            if not _x_path_exists(machine, origin, cone_start):
                return False, True
        return False, False

    def pick_objective() -> tuple[int, int] | None:
        for idx, required in cond:
            if machine.good_value(idx) == X:
                return idx, required
        if not propagate:
            return None
        # D-frontier walk in levelized order: first unresolved gate
        # carrying (or materialising) the fault effect that still has
        # an X pin to justify.
        ops = cnet.ops
        objective_value = structs.objective_value
        for pos in range(cone_start, n_ops):
            _, out, ins = ops[pos]
            if ((ones[out] | zeros[out]) & BOTH) == BOTH:
                continue  # output resolved: fault cannot advance here
            if pos != fault_op:
                for i in ins:
                    o, z = ones[i], zeros[i]
                    if ((o & (z >> 1)) | (z & (o >> 1))) & GOOD:
                        break
                else:
                    continue  # no fault effect on any input
            for i in ins:
                if ((ones[i] | zeros[i]) & BOTH) != BOTH:
                    return i, objective_value[pos]
        return None

    def backtrace(net: int, target: int) -> tuple[int, int] | None:
        """Map an objective to a PI decision through X lines."""
        is_pi = structs.is_pi
        driver = structs.driver_op
        inverting = structs.inverting
        controllability = heuristic == "controllability"
        for _ in range(n_ops + len(cnet.pi_index) + 1):
            if is_pi[net]:
                return net, target
            pos = driver[net]
            if pos < 0:
                return None
            if inverting[pos]:
                target = 1 - target
            ins = cnet.ops[pos][2]
            nxt = -1
            if controllability:
                cc = structs.cc1 if target else structs.cc0
                best = -1
                for i in ins:
                    if ((ones[i] | zeros[i]) & BOTH) != BOTH and (
                        nxt < 0 or cc[i] < best
                    ):
                        nxt, best = i, cc[i]
            else:
                for i in ins:
                    if ((ones[i] | zeros[i]) & BOTH) != BOTH:
                        nxt = i
                        break
            if nxt < 0:
                return None
            net = nxt
        return None

    def backtrack_step() -> bool:
        """Flip the deepest untried decision; False when exhausted."""
        nonlocal backtracks
        while stack:
            pi, value, tried = stack.pop()
            if not tried:
                machine.set_pi(pi, 1 - value)
                stack.append((pi, 1 - value, True))
                backtracks += 1
                return True
            machine.set_pi(pi, X)
        return False

    for _ in range(20000):  # hard safety bound (mirrors the legacy)
        success, dead = status()
        if success:
            return PodemResult(True, result_vector(), backtracks)
        objective = None if dead else pick_objective()
        decision = (
            backtrace(*objective) if objective is not None else None
        )
        if decision is None:
            # Dead end, nothing to decide, or unreachable objective.
            if not backtrack_step():
                return PodemResult(False, {}, backtracks)
            if backtracks > max_backtracks:
                return PodemResult(False, {}, backtracks, aborted=True)
            continue
        pi, value = decision
        machine.set_pi(pi, value)
        stack.append((pi, value, False))
    return PodemResult(False, {}, backtracks, aborted=True)


_BATCH_DROP_MIN_FAULTS = 512


def batch_drop_detected(
    cnet: CompiledNetwork,
    vector: Mapping[str, int],
    pending: Mapping[str, "FaultInjection"],
) -> set[str]:
    """Names in ``pending`` whose fault ``vector`` detects.

    The fault-dropping inner loop of :func:`repro.atpg.podem.
    run_stuck_at_atpg`: one freshly generated test against every
    still-undetected fault.  Below ``_BATCH_DROP_MIN_FAULTS`` pending
    faults the per-fault single-word :meth:`CompiledNetwork.detect_word`
    resimulation wins (one vector packs into one bit); at ISCAS scale
    the pending set dominates, so the whole set runs as a single
    fault-major 2-D sweep on :mod:`repro.logic.multiword` instead of a
    Python loop of full resimulations.  Both paths score detection with
    the same strict dual-rail diff, so the drop set is bit-identical.
    """
    names = list(pending)
    if len(names) >= _BATCH_DROP_MIN_FAULTS:
        from repro.logic import multiword as mw

        mv = mw.pack_vectors_multiword(cnet, [vector])
        good = mw.simulate_good(cnet, mv)
        words = mw.batch_detect(
            cnet, mv, good, [pending[n] for n in names], fault_chunk=1024
        )
        return {n for n, w in zip(names, words) if w}
    from repro.logic.compiled import pack_vectors

    packed = pack_vectors(cnet, [vector])
    good = cnet.simulate(packed)
    return {
        n for n in names if cnet.detect_word(packed, good, pending[n])
    }
