"""ATPG for controllable-polarity circuits.

The package covers the full test flow of the paper's Section 5: fault
list generation (the ``stuck_at`` / ``polarity`` / ``stuck_open``
universes of :mod:`repro.faults`, re-exported here for convenience —
``repro.atpg.faults`` is a deprecation shim), PODEM test generation over
the five-valued D-calculus (:mod:`~repro.atpg.podem`), polarity-fault
and two-pattern stuck-open generators (:mod:`~repro.atpg.polarity_atpg`,
:mod:`~repro.atpg.sof_atpg`), IDDQ vector selection
(:mod:`~repro.atpg.iddq`), bit-parallel fault simulation
(:mod:`~repro.atpg.fault_sim`) and greedy test-set compaction
(:mod:`~repro.atpg.compaction`).

Fault simulation runs on the compiled engine of
:mod:`repro.logic.compiled`; the serial per-vector checks
(``detects_*``) remain as cross-check oracles.  The fault-injection
override contract (line vs. pin vs. gate overrides) is documented in
:mod:`repro.logic.compiled`.

Test generation likewise has two engines behind one API: every
generator (``generate_test``, ``justify_and_propagate``,
``run_stuck_at_atpg``, ``run_polarity_atpg``, ``run_sof_atpg``,
``select_iddq_vectors``) takes ``engine="compiled"`` (the fast
D-calculus search of :mod:`repro.atpg.podem_compiled`, default) or
``engine="legacy"`` (the dict-based oracle in
:mod:`repro.atpg.podem`); both produce bit-identical results.

Usage — generate, fault-simulate and compact a stuck-at test set::

    from repro.atpg import (
        compact_tests, parallel_stuck_at_simulation,
        run_stuck_at_atpg, stuck_at_faults,
    )
    from repro.circuits import ripple_carry_adder

    network = ripple_carry_adder(8)
    faults = stuck_at_faults(network)
    atpg = run_stuck_at_atpg(network, faults)   # PODEM + fault dropping
    assert atpg.coverage == 1.0
    compacted = compact_tests(network, atpg.tests, faults)
    result = parallel_stuck_at_simulation(
        network, faults, compacted.vectors
    )
    print(f"{result.coverage:.0%} with {len(compacted.vectors)} vectors")

The CP-specific campaigns follow the same shape: build the fault list
(:func:`polarity_faults` / :func:`stuck_open_faults`), generate tests
(:func:`run_polarity_atpg` / :func:`run_sof_atpg`), then batch-verify
(:func:`parallel_polarity_simulation` /
:func:`parallel_stuck_open_simulation`).
"""

from repro.atpg.compaction import CompactionResult, compact_tests
from repro.atpg.fault_sim import (
    FaultSimResult,
    detects_polarity,
    detects_stuck_at,
    detects_stuck_open,
    parallel_polarity_simulation,
    parallel_stuck_at_simulation,
    parallel_stuck_open_simulation,
    polarity_detection_words,
    polarity_injection,
    serial_polarity_simulation,
    stuck_at_detection_words,
    stuck_at_injection,
    stuck_open_detection_words,
)
from repro.atpg.iddq import IddqSelection, select_iddq_vectors
from repro.atpg.podem import (
    PodemResult,
    StuckAtAtpgResult,
    generate_test,
    justify_and_propagate,
    run_stuck_at_atpg,
)
from repro.atpg.polarity_atpg import (
    PolarityAtpgResult,
    PolarityTest,
    generate_polarity_test,
    run_polarity_atpg,
)
from repro.atpg.sof_atpg import (
    SofAtpgResult,
    StuckOpenTest,
    generate_stuck_open_test,
    run_sof_atpg,
)
from repro.faults.logic import (
    PolarityFault,
    StuckAtFault,
    StuckOpenFault,
    polarity_faults,
    stuck_at_faults,
    stuck_open_faults,
)

__all__ = [
    "CompactionResult",
    "FaultSimResult",
    "IddqSelection",
    "PodemResult",
    "PolarityAtpgResult",
    "PolarityFault",
    "PolarityTest",
    "SofAtpgResult",
    "StuckAtAtpgResult",
    "StuckAtFault",
    "StuckOpenFault",
    "StuckOpenTest",
    "compact_tests",
    "detects_polarity",
    "detects_stuck_at",
    "detects_stuck_open",
    "generate_polarity_test",
    "generate_stuck_open_test",
    "generate_test",
    "justify_and_propagate",
    "parallel_polarity_simulation",
    "parallel_stuck_at_simulation",
    "parallel_stuck_open_simulation",
    "polarity_detection_words",
    "polarity_faults",
    "polarity_injection",
    "run_polarity_atpg",
    "run_sof_atpg",
    "run_stuck_at_atpg",
    "select_iddq_vectors",
    "serial_polarity_simulation",
    "stuck_at_detection_words",
    "stuck_at_faults",
    "stuck_at_injection",
    "stuck_open_detection_words",
    "stuck_open_faults",
]
