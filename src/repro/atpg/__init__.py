"""ATPG: PODEM stuck-at test generation, polarity-fault ATPG, two-pattern
stuck-open ATPG, fault simulation, IDDQ selection and compaction."""

from repro.atpg.compaction import CompactionResult, compact_tests
from repro.atpg.fault_sim import (
    FaultSimResult,
    detects_polarity,
    detects_stuck_at,
    detects_stuck_open,
    parallel_stuck_at_simulation,
    serial_polarity_simulation,
)
from repro.atpg.faults import (
    PolarityFault,
    StuckAtFault,
    StuckOpenFault,
    polarity_faults,
    stuck_at_faults,
    stuck_open_faults,
)
from repro.atpg.iddq import IddqSelection, select_iddq_vectors
from repro.atpg.podem import (
    PodemResult,
    generate_test,
    justify_and_propagate,
)
from repro.atpg.polarity_atpg import (
    PolarityAtpgResult,
    PolarityTest,
    generate_polarity_test,
    run_polarity_atpg,
)
from repro.atpg.sof_atpg import (
    SofAtpgResult,
    StuckOpenTest,
    generate_stuck_open_test,
    run_sof_atpg,
)

__all__ = [
    "CompactionResult",
    "FaultSimResult",
    "IddqSelection",
    "PodemResult",
    "PolarityAtpgResult",
    "PolarityFault",
    "PolarityTest",
    "SofAtpgResult",
    "StuckAtFault",
    "StuckOpenFault",
    "StuckOpenTest",
    "compact_tests",
    "detects_polarity",
    "detects_stuck_at",
    "detects_stuck_open",
    "generate_polarity_test",
    "generate_stuck_open_test",
    "generate_test",
    "justify_and_propagate",
    "parallel_stuck_at_simulation",
    "polarity_faults",
    "run_polarity_atpg",
    "run_sof_atpg",
    "select_iddq_vectors",
    "serial_polarity_simulation",
    "stuck_at_faults",
    "stuck_open_faults",
]
