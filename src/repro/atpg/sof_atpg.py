"""Two-pattern stuck-open ATPG (and the DP channel-break alternative).

For an SP-gate stuck-open fault, a two-pattern test must:

1. (init) set the faulty gate's local inputs so its output takes the
   value the break will wrongly retain, and
2. (test) switch the local inputs to a combination under which the
   broken transistor was the *only* conducting path — the output floats,
   keeps the init value, and the wrong value must propagate to a primary
   output.

On DP gates every single break is masked by the redundant pair, so
:func:`run_sof_atpg` reports them as requiring the paper's channel-break
procedure (Section V-C) instead of returning a pattern pair.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.atpg.fault_sim import detects_stuck_open
from repro.atpg.podem import justify_and_propagate
from repro.faults.logic import StuckOpenFault
from repro.gates.library import ALL_CELLS
from repro.logic.network import Network


@dataclasses.dataclass
class StuckOpenTest:
    """A two-pattern test for a stuck-open fault."""

    fault: StuckOpenFault
    init_vector: dict[str, int]
    test_vector: dict[str, int]
    local_init: tuple[int, ...]
    local_test: tuple[int, ...]


@dataclasses.dataclass
class SofAtpgResult:
    tests: list[StuckOpenTest]
    masked: list[StuckOpenFault]
    """DP-masked faults: need the channel-break procedure."""
    untestable: list[StuckOpenFault]
    dropped: dict[str, int] = dataclasses.field(default_factory=dict)
    """Fault name -> index into ``tests`` of the pattern pair that
    detected it during fault dropping (no dedicated test generated)."""

    @property
    def coverage(self) -> float:
        covered = len(self.tests) + len(self.dropped)
        total = covered + len(self.masked) + len(self.untestable)
        return covered / total if total else 1.0


def _fill_dont_cares(network: Network, vector: dict[str, int]) -> dict[str, int]:
    filled = dict(vector)
    for net in network.primary_inputs:
        filled.setdefault(net, 0)
    return filled


def generate_stuck_open_test(
    network: Network,
    fault: StuckOpenFault,
    max_backtracks: int = 500,
    engine: str = "compiled",
) -> StuckOpenTest | None:
    """Generate and *verify* a two-pattern test for one SOF."""
    cell = ALL_CELLS[fault.gtype]
    gate = network.gates[fault.gate]
    floating = fault.floating_vectors()
    if not floating:
        return None
    for local_test in floating:
        expected = cell.function(local_test)
        # The test pattern must propagate the retained (wrong) value:
        # treat the gate as producing the complement under local_test.
        table = {
            v: cell.function(v) for v in
            itertools.product((0, 1), repeat=cell.n_inputs)
        }
        table[local_test] = 1 - expected
        condition = list(zip(gate.inputs, local_test))
        # Reuse the generic PODEM machinery with an explicit faulty
        # table: under local_test the broken gate emits the retained
        # (complemented) value.
        result = justify_and_propagate(
            network,
            condition,
            gate_fault=_TableFault(fault.gate),
            gate_fault_table=table,
            propagate=True,
            max_backtracks=max_backtracks,
            engine=engine,
        )
        if not result.success:
            continue
        test_vector = result.vector
        # Init pattern: justify a local vector whose fault-free output is
        # the complement of the expected test output.
        for local_init in itertools.product((0, 1), repeat=cell.n_inputs):
            if cell.function(local_init) != 1 - expected:
                continue
            init_condition = list(zip(gate.inputs, local_init))
            init_result = justify_and_propagate(
                network,
                init_condition,
                propagate=False,
                max_backtracks=max_backtracks,
                engine=engine,
            )
            if not init_result.success:
                continue
            init_vector = _fill_dont_cares(network, init_result.vector)
            full_test = _fill_dont_cares(network, test_vector)
            # Independent verification through the two-pattern fault
            # simulator (ATPG output is never trusted unverified).
            if detects_stuck_open(network, fault, init_vector, full_test):
                return StuckOpenTest(
                    fault=fault,
                    init_vector=init_vector,
                    test_vector=full_test,
                    local_init=local_init,
                    local_test=local_test,
                )
    return None


class _TableFault:
    """Minimal gate-fault shim for :func:`justify_and_propagate`."""

    def __init__(self, gate: str) -> None:
        self.gate = gate


def run_sof_atpg(
    network: Network,
    faults: list[StuckOpenFault] | None = None,
    max_backtracks: int = 500,
    drop_detected: bool = False,
    engine: str = "compiled",
) -> SofAtpgResult:
    """Two-pattern ATPG over all (or the given) stuck-open faults.

    With ``drop_detected``, every generated pattern pair is batch
    fault-simulated (compiled engine) against the still-untargeted
    faults; collaterally detected faults are dropped instead of getting
    a dedicated test — far fewer PODEM searches on large circuits.
    ``engine`` selects the PODEM implementation (compiled default /
    legacy oracle) for both patterns of every two-pattern search.
    """
    from repro.atpg.fault_sim import stuck_open_detection_words
    from repro.faults import get_universe

    if faults is None:
        faults = get_universe("stuck_open").collapse(network)
    tests: list[StuckOpenTest] = []
    masked: list[StuckOpenFault] = []
    untestable: list[StuckOpenFault] = []
    dropped: dict[str, int] = {}
    for k, fault in enumerate(faults):
        if fault.name in dropped:
            continue
        if fault.is_masked():
            masked.append(fault)
            continue
        test = generate_stuck_open_test(
            network, fault, max_backtracks=max_backtracks, engine=engine
        )
        if test is None:
            untestable.append(fault)
            continue
        tests.append(test)
        if not drop_detected:
            continue
        candidates = [
            f for f in faults[k + 1:]
            if f.name not in dropped and not f.is_masked()
        ]
        words = stuck_open_detection_words(
            network, candidates,
            [(test.init_vector, test.test_vector)],
        )
        for candidate, word in zip(candidates, words):
            if word:
                dropped[candidate.name] = len(tests) - 1
    return SofAtpgResult(
        tests=tests, masked=masked, untestable=untestable, dropped=dropped
    )
