"""Deprecated shim: the gate-level fault vocabulary moved to
:mod:`repro.faults.logic`.

Every historical name (:class:`StuckAtFault`, :class:`PolarityFault`,
:class:`StuckOpenFault` and the ``*_faults`` enumerators) still resolves
here, but importing through this module raises a
:class:`~repro.faults.universe.ReproDeprecationWarning` — the test
suite escalates first-party uses to errors (see ``pytest.ini``).

Migrate to either the canonical classes::

    from repro.faults import StuckAtFault, stuck_at_faults

or, for enumeration, the registry protocol::

    from repro.faults import get_universe
    faults = get_universe("stuck_at").collapse(network)
"""

from __future__ import annotations

import warnings

from repro.faults import logic as _logic
from repro.faults.universe import ReproDeprecationWarning

#: Names this shim forwards (the module's historical public surface).
_MOVED = (
    "StuckAtFault",
    "PolarityFault",
    "StuckOpenFault",
    "stuck_at_faults",
    "polarity_faults",
    "stuck_open_faults",
)


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.atpg.faults.{name} is deprecated; import it from "
            f"repro.faults (canonical home: repro.faults.logic)",
            ReproDeprecationWarning,
            stacklevel=2,
        )
        return getattr(_logic, name)
    if (
        name.startswith("_")
        and not name.startswith("__")
        and hasattr(_logic, name)
    ):
        # Private helpers forward silently (internal cross-checks only).
        # Public names outside _MOVED must NOT resolve here: the shim
        # covers the historical surface only, so new repro.faults.logic
        # API never becomes silently reachable through a deprecated path.
        return getattr(_logic, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def __dir__() -> list[str]:
    return sorted(_MOVED)
