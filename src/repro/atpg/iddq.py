"""IDDQ test selection for polarity faults.

Section V-B: pull-up polarity faults are observable only through supply
current.  This module selects a compact set of vectors such that every
polarity fault is driven into (at least) one of its conflict-activating
local input combinations — a classic set-cover problem solved greedily.
"""

from __future__ import annotations

import dataclasses

from repro.atpg.fault_sim import detects_polarity
from repro.atpg.polarity_atpg import generate_polarity_test
from repro.faults.logic import PolarityFault
from repro.logic.network import Network


@dataclasses.dataclass
class IddqSelection:
    """A compact IDDQ vector set.

    Attributes:
        vectors: Selected PI vectors (fully specified).
        covered: Fault name -> index of the covering vector.
        uncovered: Faults no generated vector could activate.
    """

    vectors: list[dict[str, int]]
    covered: dict[str, int]
    uncovered: list[str]

    @property
    def coverage(self) -> float:
        total = len(self.covered) + len(self.uncovered)
        return len(self.covered) / total if total else 1.0


def _fill(network: Network, vector: dict[str, int]) -> dict[str, int]:
    full = dict(vector)
    for net in network.primary_inputs:
        full.setdefault(net, 0)
    return full


def select_iddq_vectors(
    network: Network,
    faults: list[PolarityFault] | None = None,
    max_backtracks: int = 300,
    engine: str = "compiled",
) -> IddqSelection:
    """Generate candidate vectors per fault, then greedily compact.

    Candidate generation goes through the justification-only ATPG; the
    greedy pass then keeps the subset of vectors that still covers every
    coverable fault, largest marginal gain first.
    """
    if faults is None:
        from repro.faults import get_universe

        faults = get_universe("polarity").collapse(network)

    candidates: list[dict[str, int]] = []
    fault_of_candidate: list[str] = []
    uncovered_names: list[str] = []
    for fault in faults:
        test = generate_polarity_test(
            network, fault, allow_iddq=True,
            max_backtracks=max_backtracks, engine=engine,
        )
        if test is None:
            uncovered_names.append(fault.name)
            continue
        candidates.append(_fill(network, test.vector))
        fault_of_candidate.append(fault.name)

    # Detection matrix: candidate index -> set of covered fault names.
    coverable = [f for f in faults if f.name not in set(uncovered_names)]
    matrix: list[set[str]] = []
    for vector in candidates:
        covered = {
            f.name
            for f in coverable
            if detects_polarity(network, f, vector, iddq=True)
            or detects_polarity(network, f, vector, iddq=False)
        }
        matrix.append(covered)

    remaining = {f.name for f in coverable}
    chosen: list[int] = []
    while remaining:
        best, best_gain = None, 0
        for k, covered in enumerate(matrix):
            gain = len(covered & remaining)
            if gain > best_gain:
                best, best_gain = k, gain
        if best is None:
            uncovered_names.extend(sorted(remaining))
            break
        chosen.append(best)
        remaining -= matrix[best]

    vectors = [candidates[k] for k in chosen]
    covered: dict[str, int] = {}
    for order, k in enumerate(chosen):
        for name in matrix[k]:
            covered.setdefault(name, order)
    return IddqSelection(
        vectors=vectors,
        covered=covered,
        uncovered=sorted(set(uncovered_names)),
    )
