"""ATPG for the paper's stuck-at n-type / p-type polarity faults.

For each polarity fault the generator derives the local activation
vectors from the switch-level cell analysis and then uses the generic
PODEM machinery to lift them to primary inputs:

* **Voltage tests** require the faulty gate's local inputs to equal an
  output-corrupting vector *and* the resulting D/D' to propagate to a
  primary output.
* **IDDQ tests** only require justification of a conflict-activating
  local vector — the elevated supply current is globally observable
  (Section V-B: ">10^6 x" leakage through the shorted networks).
"""

from __future__ import annotations

import dataclasses

from repro.atpg.podem import PodemResult, justify_and_propagate
from repro.faults.logic import PolarityFault
from repro.logic.network import Network


@dataclasses.dataclass
class PolarityTest:
    """A generated test for one polarity fault.

    Attributes:
        fault: The target fault.
        vector: PI assignment (missing inputs are don't-care).
        mode: 'voltage' or 'iddq'.
        local_vector: The faulty gate's local input combination the test
            establishes.
    """

    fault: PolarityFault
    vector: dict[str, int]
    mode: str
    local_vector: tuple[int, ...]


@dataclasses.dataclass
class PolarityAtpgResult:
    tests: list[PolarityTest]
    untestable: list[PolarityFault]
    aborted: list[PolarityFault]

    @property
    def coverage(self) -> float:
        total = len(self.tests) + len(self.untestable) + len(self.aborted)
        return len(self.tests) / total if total else 1.0


def generate_polarity_test(
    network: Network,
    fault: PolarityFault,
    allow_iddq: bool = True,
    max_backtracks: int = 500,
    engine: str = "compiled",
) -> PolarityTest | None:
    """Generate a test for one polarity fault (voltage first, then IDDQ)."""
    gate = network.gates[fault.gate]

    # Voltage-mode attempts: justify a corrupting local vector and
    # propagate the difference.
    for local in fault.output_detecting_vectors():
        condition = list(zip(gate.inputs, local))
        result: PodemResult = justify_and_propagate(
            network,
            condition,
            gate_fault=fault,
            propagate=True,
            max_backtracks=max_backtracks,
            engine=engine,
        )
        if result.success:
            return PolarityTest(
                fault=fault,
                vector=result.vector,
                mode="voltage",
                local_vector=local,
            )
    if not allow_iddq:
        return None
    # IDDQ attempts: justification only.
    for local in fault.iddq_vectors():
        condition = list(zip(gate.inputs, local))
        result = justify_and_propagate(
            network,
            condition,
            propagate=False,
            max_backtracks=max_backtracks,
            engine=engine,
        )
        if result.success:
            return PolarityTest(
                fault=fault,
                vector=result.vector,
                mode="iddq",
                local_vector=local,
            )
    return None


def run_polarity_atpg(
    network: Network,
    faults: list[PolarityFault] | None = None,
    allow_iddq: bool = True,
    max_backtracks: int = 500,
    engine: str = "compiled",
) -> PolarityAtpgResult:
    """Generate tests for all (or the given) polarity faults."""
    from repro.faults import get_universe

    if faults is None:
        faults = get_universe("polarity").collapse(network)
    tests: list[PolarityTest] = []
    untestable: list[PolarityFault] = []
    for fault in faults:
        test = generate_polarity_test(
            network, fault, allow_iddq=allow_iddq,
            max_backtracks=max_backtracks, engine=engine,
        )
        if test is not None:
            tests.append(test)
        else:
            untestable.append(fault)
    return PolarityAtpgResult(tests=tests, untestable=untestable, aborted=[])
