"""Fault simulation: serial ternary, parallel-pattern bitwise, and
two-pattern stuck-open simulation."""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.atpg.faults import (
    PolarityFault,
    StuckAtFault,
    StuckOpenFault,
)
from repro.gates.library import ALL_CELLS
from repro.logic.network import Network
from repro.logic.simulator import simulate_outputs, vectors_differ
from repro.logic.switch_level import DeviceState, evaluate
from repro.logic.values import X, Z


TestVector = Mapping[str, int]


def detects_stuck_at(
    network: Network, fault: StuckAtFault, vector: TestVector
) -> bool:
    """Serial check: does ``vector`` detect ``fault`` at the outputs?"""
    good = simulate_outputs(network, vector)
    bad = simulate_outputs(network, vector, **fault.overrides())
    return vectors_differ(good, bad)


def detects_polarity(
    network: Network,
    fault: PolarityFault,
    vector: TestVector,
    iddq: bool = False,
) -> bool:
    """Does ``vector`` detect a polarity fault?

    Voltage mode compares primary outputs; IDDQ mode checks whether the
    vector drives the faulty gate into one of its conflict (elevated
    leakage) input combinations.
    """
    if iddq:
        values = {}
        good = simulate_outputs(network, vector)  # also fills net values
        del good
        from repro.logic.simulator import simulate

        values = simulate(network, vector)
        gate = network.gates[fault.gate]
        local = tuple(values[n] for n in gate.inputs)
        if any(v not in (0, 1) for v in local):
            return False
        return local in fault.iddq_vectors()
    good = simulate_outputs(network, vector)
    bad = simulate_outputs(network, vector, **fault.overrides())
    return vectors_differ(good, bad)


def detects_stuck_open(
    network: Network,
    fault: StuckOpenFault,
    init_vector: TestVector,
    test_vector: TestVector,
) -> bool:
    """Two-pattern stuck-open detection.

    The faulty gate's output under the test pattern floats (retaining
    the init-pattern value) whenever the broken transistor was the only
    conducting path; the retained value then propagates like any logic
    difference.
    """
    cell = ALL_CELLS[fault.gtype]
    from repro.logic.simulator import simulate

    # First pattern: the broken gate still drives (possibly through the
    # healthy partner network); compute its local output.
    def faulty_gate_override(previous: dict):
        def override(gate, pins) -> int:
            key = tuple(pins)
            if any(p not in (0, 1) for p in key):
                return X
            result = evaluate(
                cell,
                key,
                {fault.transistor: DeviceState.STUCK_OPEN},
                previous_output=previous.get("value", X),
            )
            out = result.output
            if out == Z:
                out = previous.get("value", X)
            previous["value"] = out
            return out

        return override

    state: dict = {}
    override = faulty_gate_override(state)
    simulate(
        network, init_vector, gate_overrides={fault.gate: override}
    )
    bad = simulate_outputs(
        network, test_vector, gate_overrides={fault.gate: override}
    )
    good = simulate_outputs(network, test_vector)
    return vectors_differ(good, bad)


# ---------------------------------------------------------------------------
# Parallel-pattern stuck-at fault simulation (64 patterns per word)
# ---------------------------------------------------------------------------

_WORD_BITS = 64


def _pack_patterns(
    network: Network, vectors: Sequence[TestVector]
) -> dict[str, int]:
    packed: dict[str, int] = {}
    for net in network.primary_inputs:
        word = 0
        for k, vector in enumerate(vectors):
            if vector.get(net, 0) == 1:
                word |= 1 << k
        packed[net] = word
    return packed


def _eval_packed(gtype: str, pins: list[int], mask: int) -> int:
    a = pins[0]
    if gtype == "BUF":
        return a
    if gtype == "INV":
        return ~a & mask
    if gtype in ("AND2", "AND3"):
        out = a
        for p in pins[1:]:
            out &= p
        return out
    if gtype in ("OR2", "OR3"):
        out = a
        for p in pins[1:]:
            out |= p
        return out
    if gtype in ("NAND2", "NAND3"):
        out = a
        for p in pins[1:]:
            out &= p
        return ~out & mask
    if gtype in ("NOR2", "NOR3"):
        out = a
        for p in pins[1:]:
            out |= p
        return ~out & mask
    if gtype in ("XOR2", "XOR3"):
        out = a
        for p in pins[1:]:
            out ^= p
        return out
    if gtype == "XNOR2":
        return ~(a ^ pins[1]) & mask
    if gtype == "MAJ3":
        b, c = pins[1], pins[2]
        return (a & b) | (b & c) | (a & c)
    if gtype == "MIN3":
        b, c = pins[1], pins[2]
        return ~((a & b) | (b & c) | (a & c)) & mask
    raise ValueError(f"unknown gate type {gtype!r}")


def _simulate_packed(
    network: Network,
    packed_inputs: dict[str, int],
    mask: int,
    fault: StuckAtFault | None = None,
) -> dict[str, int]:
    stuck_word = None
    if fault is not None:
        stuck_word = mask if fault.value == 1 else 0
    values: dict[str, int] = {}
    for net in network.primary_inputs:
        word = packed_inputs.get(net, 0)
        if fault is not None and not fault.is_branch and fault.net == net:
            word = stuck_word
        values[net] = word
    for gate in network.levelized():
        pins = []
        for k, net in enumerate(gate.inputs):
            word = values[net]
            if (
                fault is not None
                and fault.is_branch
                and fault.gate == gate.name
                and fault.pin == k
            ):
                word = stuck_word
            pins.append(word)
        out = _eval_packed(gate.gtype, pins, mask)
        if fault is not None and not fault.is_branch and (
            fault.net == gate.output
        ):
            out = stuck_word
        values[gate.output] = out
    return values


@dataclasses.dataclass
class FaultSimResult:
    """Coverage summary of a fault-simulation campaign.

    Attributes:
        detected: Fault name -> index of the first detecting test.
        undetected: Names of faults no test detected.
        coverage: detected / total.
    """

    detected: dict[str, int]
    undetected: list[str]

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0


def parallel_stuck_at_simulation(
    network: Network,
    faults: Sequence[StuckAtFault],
    vectors: Sequence[TestVector],
) -> FaultSimResult:
    """Bit-parallel stuck-at fault simulation (64 patterns per pass)."""
    detected: dict[str, int] = {}
    undetected = {f.name for f in faults}
    po = network.primary_outputs
    for base in range(0, len(vectors), _WORD_BITS):
        chunk = vectors[base:base + _WORD_BITS]
        mask = (1 << len(chunk)) - 1
        packed = _pack_patterns(network, chunk)
        good = _simulate_packed(network, packed, mask)
        for fault in faults:
            if fault.name not in undetected:
                continue
            bad = _simulate_packed(network, packed, mask, fault)
            diff = 0
            for net in po:
                diff |= good[net] ^ bad[net]
            if diff:
                first = (diff & -diff).bit_length() - 1
                detected[fault.name] = base + first
                undetected.discard(fault.name)
    return FaultSimResult(
        detected=detected, undetected=sorted(undetected)
    )


def serial_polarity_simulation(
    network: Network,
    faults: Sequence[PolarityFault],
    vectors: Sequence[TestVector],
    iddq: bool = False,
) -> FaultSimResult:
    """Serial polarity-fault simulation (voltage or IDDQ observables)."""
    detected: dict[str, int] = {}
    undetected = {f.name for f in faults}
    for k, vector in enumerate(vectors):
        for fault in faults:
            if fault.name not in undetected:
                continue
            if detects_polarity(network, fault, vector, iddq=iddq):
                detected[fault.name] = k
                undetected.discard(fault.name)
    return FaultSimResult(
        detected=detected, undetected=sorted(undetected)
    )
