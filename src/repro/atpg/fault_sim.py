"""Fault simulation campaigns on the compiled bit-parallel engines.

Three layers live here:

* **Serial oracles** (:func:`detects_stuck_at`, :func:`detects_polarity`,
  :func:`detects_stuck_open`) — one fault, one vector, evaluated on the
  dict-based ternary simulator.  Slow but transparently close to the
  definitions; the batched engines are validated against them
  vector-for-vector in ``tests/test_compiled_engine.py`` and
  ``tests/test_multiword_engine.py``.
* **Single-word batches** — up-to-64-vector passes on
  :class:`repro.logic.compiled.CompiledNetwork` Python-int words with
  per-fault delta resimulation; the fastest path for fault dropping
  (one vector, one fault at a time).
* **Multi-word 2-D batches** (:mod:`repro.logic.multiword`) — any
  vector count x whole fault batches as vectorized numpy ``uint64``
  sweeps; the scaling path for thousands-of-gate netlists.

The campaign entry points (:func:`parallel_stuck_at_simulation`,
:func:`parallel_polarity_simulation`,
:func:`parallel_stuck_open_simulation`) and detection-matrix builders
(:func:`stuck_at_detection_words` & friends) take ``engine="auto" |
"multiword" | "compiled"`` and produce bit-identical results on every
setting — ``auto`` (default) picks the multi-word engine once the
(faults x vectors) problem is large enough to amortize numpy dispatch.

**Sequential netlists** run through the same entry points via the
``unroll=`` knob: pass ``unroll=<n_frames>`` and each *vector* becomes a
per-cycle input sequence (``vector[k]`` drives clock cycle ``k``; an
optional ``initial_state=`` pins frame-0 flop outputs, default X).  The
network is time-frame expanded (:mod:`repro.logic.sequential`), each
logical fault is lowered to one injection covering its every-frame
replicas, and detection means *any* frame's primary outputs differ —
so per-frame detection semantics come from observing all frames'
outputs.  Without ``unroll=``, sequential networks raise
:class:`~repro.logic.network.SequentialNetworkError`.

For stuck-open faults on sequential netlists the engines share a
first-order approximation: each replica's retained/floating output is
derived from the *fault-free* init/test simulations (the standard
good-machine local-input assumption of the combinational path, applied
per frame).  All three engines implement the same definition, so their
results stay bit-identical.

The fault-injection override contract (line vs. pin vs. gate overrides)
is documented once, in :mod:`repro.logic.compiled`.
"""

from __future__ import annotations

import dataclasses
import functools
import itertools
from typing import Mapping, Sequence

from repro.faults.logic import (
    PolarityFault,
    StuckAtFault,
    StuckOpenFault,
)
from repro.gates.library import ALL_CELLS
from repro.logic import sequential
from repro.logic.compiled import (
    CompiledNetwork,
    FaultInjection,
    compile_network,
    eval_table_packed,
    minterm_word,
    pack_vectors,
)
from repro.logic.network import Network
from repro.logic.simulator import simulate, simulate_outputs, vectors_differ
from repro.logic.switch_level import DeviceState, evaluate
from repro.logic.values import X, Z


TestVector = Mapping[str, int]

#: Vectors per batched pass of the single-word engine.  Campaigns chunk
#: so that fault dropping can skip already-detected faults on later
#: chunks (64 balances word width against dropping granularity);
#: detection-matrix builders pack everything into one pass.
_CHUNK_BITS = 64

#: ``engine="auto"`` switches the campaign entry points to the
#: multi-word fault-parallel engine once the (faults x vectors) problem
#: is big enough that numpy dispatch overhead amortizes; below the
#: thresholds the single-word per-fault delta path wins.
_MULTIWORD_MIN_FAULTS = 64
_MULTIWORD_MIN_BITS = 2 * _CHUNK_BITS


def _use_multiword(engine: str, n_faults: int, n_vectors: int) -> bool:
    """Resolve the campaign ``engine`` selector (see module doc)."""
    if engine == "multiword":
        return True
    if engine == "compiled":
        return False
    if engine != "auto":
        raise ValueError(
            f"unknown fault-sim engine {engine!r}; "
            "expected 'auto', 'multiword' or 'compiled'"
        )
    return (
        n_vectors > _MULTIWORD_MIN_BITS
        or n_faults >= _MULTIWORD_MIN_FAULTS
    )


# ---------------------------------------------------------------------------
# Serial oracles (one fault x one vector, ternary simulator)
# ---------------------------------------------------------------------------

def detects_stuck_at(
    network: Network,
    fault: StuckAtFault,
    vector,
    unroll: int | None = None,
    initial_state: Mapping[str, int] | None = None,
) -> bool:
    """Serial check: does ``vector`` detect ``fault`` at the outputs?

    With ``unroll=``, ``vector`` is a per-cycle input sequence and the
    fault is present in every frame.
    """
    if unroll is None:
        sequential.require_combinational(network, "detects_stuck_at")
        good = simulate_outputs(network, vector)
        bad = simulate_outputs(network, vector, **fault.overrides())
        return vectors_differ(good, bad)
    uv = sequential.unroll_network(network, unroll)
    flat = uv.flatten_vector(vector, initial_state)
    good = simulate_outputs(uv.network, flat)
    bad = simulate_outputs(
        uv.network, flat, **sequential.stuck_at_serial_overrides(uv, fault)
    )
    return vectors_differ(good, bad)


def detects_polarity(
    network: Network,
    fault: PolarityFault,
    vector,
    iddq: bool = False,
    unroll: int | None = None,
    initial_state: Mapping[str, int] | None = None,
) -> bool:
    """Does ``vector`` detect a polarity fault?

    Voltage mode compares primary outputs; IDDQ mode checks whether the
    vector drives the faulty gate into one of its conflict (elevated
    leakage) input combinations — with ``unroll=``, into a conflict in
    *any* frame (the defect leaks whenever activated in any cycle).
    """
    if unroll is None:
        sequential.require_combinational(network, "detects_polarity")
        if iddq:
            values = simulate(network, vector)
            gate = network.gates[fault.gate]
            local = tuple(values[n] for n in gate.inputs)
            if any(v not in (0, 1) for v in local):
                return False
            return local in fault.iddq_vectors()
        good = simulate_outputs(network, vector)
        bad = simulate_outputs(network, vector, **fault.overrides())
        return vectors_differ(good, bad)
    uv = sequential.unroll_network(network, unroll)
    flat = uv.flatten_vector(vector, initial_state)
    if iddq:
        values = simulate(uv.network, flat)
        minterms = fault.iddq_vectors()
        for gname in uv.replica_gates(fault.gate):
            gate = uv.network.gates[gname]
            local = tuple(values[n] for n in gate.inputs)
            if all(v in (0, 1) for v in local) and local in minterms:
                return True
        return False
    good = simulate_outputs(uv.network, flat)
    bad = simulate_outputs(
        uv.network, flat, **sequential.polarity_serial_overrides(uv, fault)
    )
    return vectors_differ(good, bad)


def detects_stuck_open(
    network: Network,
    fault: StuckOpenFault,
    init_vector,
    test_vector,
    unroll: int | None = None,
    initial_state: Mapping[str, int] | None = None,
) -> bool:
    """Two-pattern stuck-open detection.

    The faulty gate's output under the test pattern floats (retaining
    the init-pattern value) whenever the broken transistor was the only
    conducting path; the retained value then propagates like any logic
    difference.

    With ``unroll=``, both patterns are per-cycle sequences and every
    frame replica of the gate carries the break; each replica's
    retained/floating value is derived from the fault-free init/test
    frames (the same first-order approximation as the batched engines,
    so all three paths agree bit for bit).
    """
    if unroll is None:
        sequential.require_combinational(network, "detects_stuck_open")
        cell = ALL_CELLS[fault.gtype]

        # First pattern: the broken gate still drives (possibly through
        # the healthy partner network); compute its local output.
        def faulty_gate_override(previous: dict):
            def override(gate, pins) -> int:
                key = tuple(pins)
                if any(p not in (0, 1) for p in key):
                    return X
                result = evaluate(
                    cell,
                    key,
                    {fault.transistor: DeviceState.STUCK_OPEN},
                    previous_output=previous.get("value", X),
                )
                out = result.output
                if out == Z:
                    out = previous.get("value", X)
                previous["value"] = out
                return out

            return override

        state: dict = {}
        override = faulty_gate_override(state)
        simulate(
            network, init_vector, gate_overrides={fault.gate: override}
        )
        bad = simulate_outputs(
            network, test_vector, gate_overrides={fault.gate: override}
        )
        good = simulate_outputs(network, test_vector)
        return vectors_differ(good, bad)

    uv = sequential.unroll_network(network, unroll)
    flat_init = uv.flatten_vector(init_vector, initial_state)
    flat_test = uv.flatten_vector(test_vector, initial_state)
    init_values = simulate(uv.network, flat_init)
    test_values = simulate(uv.network, flat_test)
    table = _broken_local_table(fault.gtype, fault.transistor)
    line_overrides: dict[str, int] = {}
    for gname in uv.replica_gates(fault.gate):
        gate = uv.network.gates[gname]
        init_pins = tuple(init_values[n] for n in gate.inputs)
        test_pins = tuple(test_values[n] for n in gate.inputs)
        if all(p in (0, 1) for p in init_pins):
            retained = table[init_pins]
            if retained == Z:
                retained = X  # floats with no earlier pattern: unknown
        else:
            retained = X
        if all(p in (0, 1) for p in test_pins):
            forced = table[test_pins]
            if forced == Z:
                forced = retained
        else:
            forced = X
        line_overrides[gate.output] = forced
    good = simulate_outputs(uv.network, flat_test)
    bad = simulate_outputs(
        uv.network, flat_test, line_overrides=line_overrides
    )
    return vectors_differ(good, bad)


# ---------------------------------------------------------------------------
# Fault -> index-level injection conversion
# ---------------------------------------------------------------------------

def stuck_at_injection(
    cnet: CompiledNetwork, fault: StuckAtFault
) -> FaultInjection:
    """Index-level injection for a stuck-at fault (stem or branch)."""
    if fault.is_branch:
        return FaultInjection(
            pins={(cnet.gate_op[fault.gate], fault.pin): fault.value}
        )
    return FaultInjection(lines={cnet.net_index[fault.net]: fault.value})


def polarity_injection(
    cnet: CompiledNetwork, fault: PolarityFault
) -> FaultInjection:
    """Index-level injection for a polarity fault (gate-table override)."""
    return FaultInjection(
        tables={cnet.gate_op[fault.gate]: fault.faulty_table()}
    )


@functools.lru_cache(maxsize=None)
def _broken_local_table(
    gtype: str, transistor: str
) -> dict[tuple[int, ...], int]:
    """Local table of a gate with one channel broken: 0/1/X/Z per
    binary input vector (Z = output floats, retains previous value)."""
    cell = ALL_CELLS[gtype]
    return {
        vector: evaluate(
            cell, vector, {transistor: DeviceState.STUCK_OPEN}
        ).output
        for vector in itertools.product((0, 1), repeat=cell.n_inputs)
    }


# ---------------------------------------------------------------------------
# Problem lowering: (network, faults, vectors, unroll) -> compiled form
# ---------------------------------------------------------------------------

def _stuck_at_problem(network, faults, vectors, unroll, initial_state):
    """Compile + lower a stuck-at problem (unrolling when asked)."""
    if unroll is None:
        sequential.require_combinational(
            network, "stuck-at simulation"
        )
        cnet = compile_network(network)
        return cnet, [stuck_at_injection(cnet, f) for f in faults], vectors
    uv = sequential.unroll_network(network, unroll)
    cnet = compile_network(uv.network)
    injections = [
        sequential.stuck_at_unrolled_injection(uv, cnet, f)
        for f in faults
    ]
    return cnet, injections, uv.flatten_vectors(vectors, initial_state)


def _polarity_problem(network, faults, vectors, unroll, initial_state):
    """Compile + lower a polarity problem.

    Returns ``(cnet, injections, gate_lists, vectors)`` — ``gate_lists``
    holds, per fault, the gate replicas whose local inputs activate the
    IDDQ conflict (one gate combinationally, one per frame unrolled).
    """
    if unroll is None:
        sequential.require_combinational(
            network, "polarity simulation"
        )
        cnet = compile_network(network)
        injections = [polarity_injection(cnet, f) for f in faults]
        gate_lists = [[f.gate] for f in faults]
        return cnet, injections, gate_lists, vectors
    uv = sequential.unroll_network(network, unroll)
    cnet = compile_network(uv.network)
    injections = [
        sequential.polarity_unrolled_injection(uv, cnet, f)
        for f in faults
    ]
    gate_lists = [uv.replica_gates(f.gate) for f in faults]
    return (
        cnet, injections, gate_lists,
        uv.flatten_vectors(vectors, initial_state),
    )


def _stuck_open_problem(network, faults, pairs, unroll, initial_state):
    """Compile + lower a two-pattern stuck-open problem.

    Returns ``(cnet, gate_lists, pairs)`` with per-fault gate-replica
    lists; the per-chunk retained-value injections are built against
    each chunk's good init/test words.
    """
    if unroll is None:
        sequential.require_combinational(
            network, "stuck-open simulation"
        )
        cnet = compile_network(network)
        return cnet, [[f.gate] for f in faults], pairs
    uv = sequential.unroll_network(network, unroll)
    cnet = compile_network(uv.network)
    flat_pairs = [
        (
            uv.flatten_vector(init, initial_state),
            uv.flatten_vector(test, initial_state),
        )
        for init, test in pairs
    ]
    return cnet, [uv.replica_gates(f.gate) for f in faults], flat_pairs


# ---------------------------------------------------------------------------
# Campaign result type
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class FaultSimResult:
    """Coverage summary of a fault-simulation campaign.

    Attributes:
        detected: Fault name -> index of the first detecting test.
        undetected: Names of faults no test detected.
        coverage: detected / total.
    """

    detected: dict[str, int]
    undetected: list[str]

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0


# ---------------------------------------------------------------------------
# Batched stuck-at campaigns
# ---------------------------------------------------------------------------

def _multiword_detection_words(
    cnet, injections: Sequence[FaultInjection],
    vectors: Sequence[TestVector],
) -> list[int]:
    """One 2-D fault x vector sweep over the whole problem."""
    from repro.logic import multiword as mw

    mv = mw.pack_vectors_multiword(cnet, vectors)
    good = mw.simulate_good(cnet, mv)
    return mw.batch_detect(cnet, mv, good, injections)


def _result_from_words(
    names: Sequence[str], words: Sequence[int]
) -> FaultSimResult:
    """Fold a full detection matrix into first-detection campaign form."""
    detected: dict[str, int] = {}
    undetected: list[str] = []
    for name, word in zip(names, words):
        if word:
            detected[name] = (word & -word).bit_length() - 1
        else:
            undetected.append(name)
    return FaultSimResult(detected=detected, undetected=sorted(undetected))


def _injection_detection_words(
    cnet, injections, vectors, engine
) -> list[int]:
    """Detection matrix over prebuilt injections (engine dispatch)."""
    if _use_multiword(engine, len(injections), len(vectors)):
        return _multiword_detection_words(cnet, injections, vectors)
    packed = pack_vectors(cnet, vectors)
    good = cnet.simulate(packed)
    return [
        cnet.detect_word(packed, good, injection)
        for injection in injections
    ]


def _injection_campaign(
    cnet, names, injections, vectors, engine
) -> FaultSimResult:
    """First-detection campaign over prebuilt injections with dropping."""
    if _use_multiword(engine, len(names), len(vectors)):
        return _result_from_words(
            names, _multiword_detection_words(cnet, injections, vectors)
        )
    detected: dict[str, int] = {}
    undetected = set(names)
    for base in range(0, len(vectors), _CHUNK_BITS):
        if not undetected:
            break
        packed = pack_vectors(cnet, vectors[base:base + _CHUNK_BITS])
        good = cnet.simulate(packed)
        for name, injection in zip(names, injections):
            if name not in undetected:
                continue
            diff = cnet.detect_word(packed, good, injection)
            if diff:
                detected[name] = base + (diff & -diff).bit_length() - 1
                undetected.discard(name)
    return FaultSimResult(
        detected=detected, undetected=sorted(undetected)
    )


def stuck_at_detection_words(
    network: Network,
    faults: Sequence[StuckAtFault],
    vectors,
    engine: str = "auto",
    unroll: int | None = None,
    initial_state: Mapping[str, int] | None = None,
) -> list[int]:
    """Full detection matrix: per fault, a word whose bit ``k`` is set
    iff ``vectors[k]`` detects the fault (no dropping).

    With ``unroll=``, each vector is a per-cycle input sequence and bit
    ``k`` covers detection at any frame of sequence ``k``.
    """
    cnet, injections, vectors = _stuck_at_problem(
        network, faults, vectors, unroll, initial_state
    )
    return _injection_detection_words(cnet, injections, vectors, engine)


def parallel_stuck_at_simulation(
    network: Network,
    faults: Sequence[StuckAtFault],
    vectors,
    engine: str = "auto",
    unroll: int | None = None,
    initial_state: Mapping[str, int] | None = None,
) -> FaultSimResult:
    """Bit-parallel stuck-at campaign with fault dropping.

    On the multi-word engine the whole (faults x vectors) matrix runs
    as one 2-D sweep (dropping is implicit — everything is computed at
    once); the single-word path processes :data:`_CHUNK_BITS` vectors
    per pass and never re-simulates a fault detected in an earlier
    chunk.  Both report the same first-detection indices.
    """
    names = [f.name for f in faults]
    cnet, injections, vectors = _stuck_at_problem(
        network, faults, vectors, unroll, initial_state
    )
    return _injection_campaign(cnet, names, injections, vectors, engine)


# ---------------------------------------------------------------------------
# Batched polarity campaigns (voltage and IDDQ observables)
# ---------------------------------------------------------------------------

def _multiword_polarity_words(
    cnet,
    faults: Sequence[PolarityFault],
    injections,
    gate_lists,
    vectors: Sequence[TestVector],
    iddq: bool,
) -> list[int]:
    """Multi-word polarity detection matrix (voltage or IDDQ mode).

    Voltage mode is a fault-parallel table-override sweep; IDDQ mode
    needs only the shared good simulation — per fault, the word of
    vectors driving any of its gate replicas into a conflict-activating
    combination.
    """
    from repro.logic import multiword as mw

    mv = mw.pack_vectors_multiword(cnet, vectors)
    good = mw.simulate_good(cnet, mv)
    if not iddq:
        return mw.batch_detect(cnet, mv, good, injections)
    words = []
    for fault, gates in zip(faults, gate_lists):
        word = 0
        for gname in gates:
            pin_rows = mw.gate_input_rows(cnet, good, gname)
            for minterm in fault.iddq_vectors():
                word |= mw.int_from_words(
                    mw.minterm_word_multiword(pin_rows, minterm, mv.mask)
                )
        words.append(word)
    return words


def _iddq_word(cnet, good, gates, minterms, mask) -> int:
    """Single-word IDDQ activation word over a fault's gate replicas."""
    word = 0
    for gname in gates:
        pin_words = cnet.gate_input_words(good, gname)
        for minterm in minterms:
            word |= minterm_word(pin_words, minterm, mask)
    return word


def polarity_detection_words(
    network: Network,
    faults: Sequence[PolarityFault],
    vectors,
    iddq: bool = False,
    engine: str = "auto",
    unroll: int | None = None,
    initial_state: Mapping[str, int] | None = None,
) -> list[int]:
    """Per-fault detection words for polarity faults.

    Voltage mode injects the faulty local table and compares outputs;
    IDDQ mode needs only the shared fault-free simulation — a vector
    covers a fault when it drives the gate into a conflict-activating
    local combination (in any frame, with ``unroll=``).
    """
    cnet, injections, gate_lists, vectors = _polarity_problem(
        network, faults, vectors, unroll, initial_state
    )
    if _use_multiword(engine, len(faults), len(vectors)):
        return _multiword_polarity_words(
            cnet, faults, injections, gate_lists, vectors, iddq
        )
    packed = pack_vectors(cnet, vectors)
    good = cnet.simulate(packed)
    words = []
    for fault, injection, gates in zip(faults, injections, gate_lists):
        if iddq:
            words.append(
                _iddq_word(
                    cnet, good, gates, fault.iddq_vectors(), packed.mask
                )
            )
        else:
            words.append(cnet.detect_word(packed, good, injection))
    return words


def parallel_polarity_simulation(
    network: Network,
    faults: Sequence[PolarityFault],
    vectors,
    iddq: bool = False,
    engine: str = "auto",
    unroll: int | None = None,
    initial_state: Mapping[str, int] | None = None,
) -> FaultSimResult:
    """Batched polarity-fault campaign (voltage or IDDQ observables)."""
    cnet, injections, gate_lists, vectors = _polarity_problem(
        network, faults, vectors, unroll, initial_state
    )
    if not iddq:
        return _injection_campaign(
            cnet, [f.name for f in faults], injections, vectors, engine
        )
    if _use_multiword(engine, len(faults), len(vectors)):
        return _result_from_words(
            [f.name for f in faults],
            _multiword_polarity_words(
                cnet, faults, injections, gate_lists, vectors, iddq=True
            ),
        )
    detected: dict[str, int] = {}
    undetected = {f.name for f in faults}
    for base in range(0, len(vectors), _CHUNK_BITS):
        if not undetected:
            break
        packed = pack_vectors(cnet, vectors[base:base + _CHUNK_BITS])
        good = cnet.simulate(packed)
        for fault, gates in zip(faults, gate_lists):
            if fault.name not in undetected:
                continue
            word = _iddq_word(
                cnet, good, gates, fault.iddq_vectors(), packed.mask
            )
            if word:
                detected[fault.name] = base + (word & -word).bit_length() - 1
                undetected.discard(fault.name)
    return FaultSimResult(
        detected=detected, undetected=sorted(undetected)
    )


def serial_polarity_simulation(
    network: Network,
    faults: Sequence[PolarityFault],
    vectors,
    iddq: bool = False,
    unroll: int | None = None,
    initial_state: Mapping[str, int] | None = None,
) -> FaultSimResult:
    """Serial polarity campaign — kept as the cross-check oracle for
    :func:`parallel_polarity_simulation`."""
    detected: dict[str, int] = {}
    undetected = {f.name for f in faults}
    for k, vector in enumerate(vectors):
        for fault in faults:
            if fault.name not in undetected:
                continue
            if detects_polarity(
                network, fault, vector, iddq=iddq,
                unroll=unroll, initial_state=initial_state,
            ):
                detected[fault.name] = k
                undetected.discard(fault.name)
    return FaultSimResult(
        detected=detected, undetected=sorted(undetected)
    )


# ---------------------------------------------------------------------------
# Batched two-pattern stuck-open campaigns
# ---------------------------------------------------------------------------

def _stuck_open_bad_words(
    cnet: CompiledNetwork,
    fault: StuckOpenFault,
    gate_name: str,
    good_init,
    good_test,
    mask: int,
) -> tuple[int, int]:
    """Faulty-gate output words under the test patterns.

    The broken gate's local inputs equal the fault-free values (the
    fault is at the gate itself), so the retained init value and the
    floating/test behaviour come straight from the precomputed broken
    table: definite entries drive their rails, Z entries copy the
    init-pattern output word bitwise.
    """
    table = _broken_local_table(fault.gtype, fault.transistor)
    init_pins = cnet.gate_input_words(good_init, gate_name)
    test_pins = cnet.gate_input_words(good_test, gate_name)
    init_ones, init_zeros = eval_table_packed(table, init_pins, mask)
    ones = 0
    zeros = 0
    for minterm, value in table.items():
        word = minterm_word(test_pins, minterm, mask)
        if not word:
            continue
        if value == 1:
            ones |= word
        elif value == 0:
            zeros |= word
        elif value == Z:
            ones |= word & init_ones
            zeros |= word & init_zeros
    return ones, zeros


def _stuck_open_injection(
    cnet, fault, gates, good_init, good_test, mask
) -> FaultInjection:
    """Retained-value injection covering every replica of the break."""
    return FaultInjection(words={
        cnet.gate_output_index(gname): _stuck_open_bad_words(
            cnet, fault, gname, good_init, good_test, mask
        )
        for gname in gates
    })


def _multiword_stuck_open_words(
    cnet,
    faults: Sequence[StuckOpenFault],
    gate_lists,
    pairs: Sequence[tuple[TestVector, TestVector]],
) -> list[int]:
    """Multi-word two-pattern stuck-open detection matrix.

    Mirrors :func:`_stuck_open_bad_words` on multi-word rows: per
    fault, the retained/floating output under the test patterns is
    assembled from the broken-gate table (Z entries copy the
    init-pattern output bitwise), then the whole fault list runs as one
    word-forced 2-D sweep against the shared good test simulation.
    """
    from repro.logic import multiword as mw

    init_mv = mw.pack_vectors_multiword(cnet, [p[0] for p in pairs])
    test_mv = mw.pack_vectors_multiword(cnet, [p[1] for p in pairs])
    good_init = mw.simulate_good(cnet, init_mv)
    good_test = mw.simulate_good(cnet, test_mv)
    injections = []
    for fault, gates in zip(faults, gate_lists):
        table = _broken_local_table(fault.gtype, fault.transistor)
        words = {}
        for gname in gates:
            init_pins = mw.gate_input_rows(cnet, good_init, gname)
            test_pins = mw.gate_input_rows(cnet, good_test, gname)
            init_ones, init_zeros = mw._eval_table_row(
                table, init_pins, init_mv.mask
            )
            ones = test_mv.mask & 0
            zeros = test_mv.mask & 0
            for minterm, value in table.items():
                word = mw.minterm_word_multiword(
                    test_pins, minterm, test_mv.mask
                )
                if not word.any():
                    continue
                if value == 1:
                    ones |= word
                elif value == 0:
                    zeros |= word
                elif value == Z:
                    ones |= word & init_ones
                    zeros |= word & init_zeros
            words[cnet.gate_output_index(gname)] = (
                mw.int_from_words(ones),
                mw.int_from_words(zeros),
            )
        injections.append(FaultInjection(words=words))
    return mw.batch_detect(cnet, test_mv, good_test, injections)


def stuck_open_detection_words(
    network: Network,
    faults: Sequence[StuckOpenFault],
    pairs,
    engine: str = "auto",
    unroll: int | None = None,
    initial_state: Mapping[str, int] | None = None,
) -> list[int]:
    """Per-fault detection words over (init, test) two-pattern pairs.

    With ``unroll=``, each pattern of a pair is a per-cycle input
    sequence (a scan-style two-sequence test).
    """
    cnet, gate_lists, pairs = _stuck_open_problem(
        network, faults, pairs, unroll, initial_state
    )
    if _use_multiword(engine, len(faults), len(pairs)):
        return _multiword_stuck_open_words(cnet, faults, gate_lists, pairs)
    init_packed = pack_vectors(cnet, [p[0] for p in pairs])
    test_packed = pack_vectors(cnet, [p[1] for p in pairs])
    good_init = cnet.simulate(init_packed)
    good_test = cnet.simulate(test_packed)
    return [
        cnet.detect_word(
            test_packed,
            good_test,
            _stuck_open_injection(
                cnet, fault, gates, good_init, good_test,
                test_packed.mask,
            ),
        )
        for fault, gates in zip(faults, gate_lists)
    ]


def parallel_stuck_open_simulation(
    network: Network,
    faults: Sequence[StuckOpenFault],
    pairs,
    engine: str = "auto",
    unroll: int | None = None,
    initial_state: Mapping[str, int] | None = None,
) -> FaultSimResult:
    """Batched two-pattern stuck-open campaign with fault dropping."""
    cnet, gate_lists, pairs = _stuck_open_problem(
        network, faults, pairs, unroll, initial_state
    )
    if _use_multiword(engine, len(faults), len(pairs)):
        words = _multiword_stuck_open_words(
            cnet, faults, gate_lists, pairs
        )
        return _result_from_words([f.name for f in faults], words)
    detected: dict[str, int] = {}
    undetected = {f.name for f in faults}
    for base in range(0, len(pairs), _CHUNK_BITS):
        if not undetected:
            break
        chunk = pairs[base:base + _CHUNK_BITS]
        init_packed = pack_vectors(cnet, [p[0] for p in chunk])
        test_packed = pack_vectors(cnet, [p[1] for p in chunk])
        good_init = cnet.simulate(init_packed)
        good_test = cnet.simulate(test_packed)
        for fault, gates in zip(faults, gate_lists):
            if fault.name not in undetected:
                continue
            diff = cnet.detect_word(
                test_packed,
                good_test,
                _stuck_open_injection(
                    cnet, fault, gates, good_init, good_test,
                    test_packed.mask,
                ),
            )
            if diff:
                detected[fault.name] = base + (diff & -diff).bit_length() - 1
                undetected.discard(fault.name)
    return FaultSimResult(
        detected=detected, undetected=sorted(undetected)
    )
