"""Fault simulation campaigns on the compiled bit-parallel engine.

Two layers live here:

* **Serial oracles** (:func:`detects_stuck_at`, :func:`detects_polarity`,
  :func:`detects_stuck_open`) — one fault, one vector, evaluated on the
  dict-based ternary simulator.  Slow but transparently close to the
  definitions; the batched engine is validated against them
  vector-for-vector in ``tests/test_compiled_engine.py``.
* **Batched campaigns** (:func:`parallel_stuck_at_simulation`,
  :func:`parallel_polarity_simulation`,
  :func:`parallel_stuck_open_simulation`) and **detection matrices**
  (:func:`stuck_at_detection_words` & friends) — whole fault lists over
  whole vector sets on :class:`repro.logic.compiled.CompiledNetwork`,
  with faults expressed as index-level :class:`~repro.logic.compiled.
  FaultInjection` overrides instead of per-call dicts.

The fault-injection override contract (line vs. pin vs. gate overrides)
is documented once, in :mod:`repro.logic.compiled`.
"""

from __future__ import annotations

import dataclasses
import functools
import itertools
from typing import Mapping, Sequence

from repro.faults.logic import (
    PolarityFault,
    StuckAtFault,
    StuckOpenFault,
)
from repro.gates.library import ALL_CELLS
from repro.logic.compiled import (
    CompiledNetwork,
    FaultInjection,
    compile_network,
    eval_table_packed,
    minterm_word,
    pack_vectors,
)
from repro.logic.network import Network
from repro.logic.simulator import simulate, simulate_outputs, vectors_differ
from repro.logic.switch_level import DeviceState, evaluate
from repro.logic.values import X, Z


TestVector = Mapping[str, int]

#: Vectors per batched pass.  Campaigns chunk so that fault dropping
#: can skip already-detected faults on later chunks (64 balances word
#: width against dropping granularity); detection-matrix builders pack
#: everything into one pass.
_CHUNK_BITS = 64


# ---------------------------------------------------------------------------
# Serial oracles (one fault x one vector, ternary simulator)
# ---------------------------------------------------------------------------

def detects_stuck_at(
    network: Network, fault: StuckAtFault, vector: TestVector
) -> bool:
    """Serial check: does ``vector`` detect ``fault`` at the outputs?"""
    good = simulate_outputs(network, vector)
    bad = simulate_outputs(network, vector, **fault.overrides())
    return vectors_differ(good, bad)


def detects_polarity(
    network: Network,
    fault: PolarityFault,
    vector: TestVector,
    iddq: bool = False,
) -> bool:
    """Does ``vector`` detect a polarity fault?

    Voltage mode compares primary outputs; IDDQ mode checks whether the
    vector drives the faulty gate into one of its conflict (elevated
    leakage) input combinations.
    """
    if iddq:
        values = simulate(network, vector)
        gate = network.gates[fault.gate]
        local = tuple(values[n] for n in gate.inputs)
        if any(v not in (0, 1) for v in local):
            return False
        return local in fault.iddq_vectors()
    good = simulate_outputs(network, vector)
    bad = simulate_outputs(network, vector, **fault.overrides())
    return vectors_differ(good, bad)


def detects_stuck_open(
    network: Network,
    fault: StuckOpenFault,
    init_vector: TestVector,
    test_vector: TestVector,
) -> bool:
    """Two-pattern stuck-open detection.

    The faulty gate's output under the test pattern floats (retaining
    the init-pattern value) whenever the broken transistor was the only
    conducting path; the retained value then propagates like any logic
    difference.
    """
    cell = ALL_CELLS[fault.gtype]

    # First pattern: the broken gate still drives (possibly through the
    # healthy partner network); compute its local output.
    def faulty_gate_override(previous: dict):
        def override(gate, pins) -> int:
            key = tuple(pins)
            if any(p not in (0, 1) for p in key):
                return X
            result = evaluate(
                cell,
                key,
                {fault.transistor: DeviceState.STUCK_OPEN},
                previous_output=previous.get("value", X),
            )
            out = result.output
            if out == Z:
                out = previous.get("value", X)
            previous["value"] = out
            return out

        return override

    state: dict = {}
    override = faulty_gate_override(state)
    simulate(
        network, init_vector, gate_overrides={fault.gate: override}
    )
    bad = simulate_outputs(
        network, test_vector, gate_overrides={fault.gate: override}
    )
    good = simulate_outputs(network, test_vector)
    return vectors_differ(good, bad)


# ---------------------------------------------------------------------------
# Fault -> index-level injection conversion
# ---------------------------------------------------------------------------

def stuck_at_injection(
    cnet: CompiledNetwork, fault: StuckAtFault
) -> FaultInjection:
    """Index-level injection for a stuck-at fault (stem or branch)."""
    if fault.is_branch:
        return FaultInjection(
            pins={(cnet.gate_op[fault.gate], fault.pin): fault.value}
        )
    return FaultInjection(lines={cnet.net_index[fault.net]: fault.value})


def polarity_injection(
    cnet: CompiledNetwork, fault: PolarityFault
) -> FaultInjection:
    """Index-level injection for a polarity fault (gate-table override)."""
    return FaultInjection(
        tables={cnet.gate_op[fault.gate]: fault.faulty_table()}
    )


@functools.lru_cache(maxsize=None)
def _broken_local_table(
    gtype: str, transistor: str
) -> dict[tuple[int, ...], int]:
    """Local table of a gate with one channel broken: 0/1/X/Z per
    binary input vector (Z = output floats, retains previous value)."""
    cell = ALL_CELLS[gtype]
    return {
        vector: evaluate(
            cell, vector, {transistor: DeviceState.STUCK_OPEN}
        ).output
        for vector in itertools.product((0, 1), repeat=cell.n_inputs)
    }


# ---------------------------------------------------------------------------
# Campaign result type
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class FaultSimResult:
    """Coverage summary of a fault-simulation campaign.

    Attributes:
        detected: Fault name -> index of the first detecting test.
        undetected: Names of faults no test detected.
        coverage: detected / total.
    """

    detected: dict[str, int]
    undetected: list[str]

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0


# ---------------------------------------------------------------------------
# Batched stuck-at campaigns
# ---------------------------------------------------------------------------

def stuck_at_detection_words(
    network: Network,
    faults: Sequence[StuckAtFault],
    vectors: Sequence[TestVector],
) -> list[int]:
    """Full detection matrix: per fault, a word whose bit ``k`` is set
    iff ``vectors[k]`` detects the fault (no dropping)."""
    cnet = compile_network(network)
    packed = pack_vectors(cnet, vectors)
    good = cnet.simulate(packed)
    return [
        cnet.detect_word(packed, good, stuck_at_injection(cnet, fault))
        for fault in faults
    ]


def parallel_stuck_at_simulation(
    network: Network,
    faults: Sequence[StuckAtFault],
    vectors: Sequence[TestVector],
) -> FaultSimResult:
    """Bit-parallel stuck-at campaign with fault dropping.

    Processes :data:`_CHUNK_BITS` vectors per pass; a fault detected in
    an earlier chunk is never re-simulated.
    """
    cnet = compile_network(network)
    names = [f.name for f in faults]
    injections = [stuck_at_injection(cnet, f) for f in faults]
    detected: dict[str, int] = {}
    undetected = set(names)
    for base in range(0, len(vectors), _CHUNK_BITS):
        if not undetected:
            break
        packed = pack_vectors(cnet, vectors[base:base + _CHUNK_BITS])
        good = cnet.simulate(packed)
        for name, injection in zip(names, injections):
            if name not in undetected:
                continue
            diff = cnet.detect_word(packed, good, injection)
            if diff:
                detected[name] = base + (diff & -diff).bit_length() - 1
                undetected.discard(name)
    return FaultSimResult(
        detected=detected, undetected=sorted(undetected)
    )


# ---------------------------------------------------------------------------
# Batched polarity campaigns (voltage and IDDQ observables)
# ---------------------------------------------------------------------------

def polarity_detection_words(
    network: Network,
    faults: Sequence[PolarityFault],
    vectors: Sequence[TestVector],
    iddq: bool = False,
) -> list[int]:
    """Per-fault detection words for polarity faults.

    Voltage mode injects the faulty local table and compares outputs;
    IDDQ mode needs only the shared fault-free simulation — a vector
    covers a fault when it drives the gate into a conflict-activating
    local combination.
    """
    cnet = compile_network(network)
    packed = pack_vectors(cnet, vectors)
    good = cnet.simulate(packed)
    words = []
    for fault in faults:
        if iddq:
            pin_words = cnet.gate_input_words(good, fault.gate)
            word = 0
            for minterm in fault.iddq_vectors():
                word |= minterm_word(pin_words, minterm, packed.mask)
            words.append(word)
        else:
            words.append(
                cnet.detect_word(
                    packed, good, polarity_injection(cnet, fault)
                )
            )
    return words


def parallel_polarity_simulation(
    network: Network,
    faults: Sequence[PolarityFault],
    vectors: Sequence[TestVector],
    iddq: bool = False,
) -> FaultSimResult:
    """Batched polarity-fault campaign (voltage or IDDQ observables)."""
    cnet = compile_network(network)
    detected: dict[str, int] = {}
    undetected = {f.name for f in faults}
    for base in range(0, len(vectors), _CHUNK_BITS):
        if not undetected:
            break
        chunk = vectors[base:base + _CHUNK_BITS]
        packed = pack_vectors(cnet, chunk)
        good = cnet.simulate(packed)
        for fault in faults:
            if fault.name not in undetected:
                continue
            if iddq:
                pin_words = cnet.gate_input_words(good, fault.gate)
                word = 0
                for minterm in fault.iddq_vectors():
                    word |= minterm_word(pin_words, minterm, packed.mask)
            else:
                word = cnet.detect_word(
                    packed, good, polarity_injection(cnet, fault)
                )
            if word:
                detected[fault.name] = base + (word & -word).bit_length() - 1
                undetected.discard(fault.name)
    return FaultSimResult(
        detected=detected, undetected=sorted(undetected)
    )


def serial_polarity_simulation(
    network: Network,
    faults: Sequence[PolarityFault],
    vectors: Sequence[TestVector],
    iddq: bool = False,
) -> FaultSimResult:
    """Serial polarity campaign — kept as the cross-check oracle for
    :func:`parallel_polarity_simulation`."""
    detected: dict[str, int] = {}
    undetected = {f.name for f in faults}
    for k, vector in enumerate(vectors):
        for fault in faults:
            if fault.name not in undetected:
                continue
            if detects_polarity(network, fault, vector, iddq=iddq):
                detected[fault.name] = k
                undetected.discard(fault.name)
    return FaultSimResult(
        detected=detected, undetected=sorted(undetected)
    )


# ---------------------------------------------------------------------------
# Batched two-pattern stuck-open campaigns
# ---------------------------------------------------------------------------

def _stuck_open_bad_words(
    cnet: CompiledNetwork,
    fault: StuckOpenFault,
    good_init,
    good_test,
    mask: int,
) -> tuple[int, int]:
    """Faulty-gate output words under the test patterns.

    The broken gate's local inputs equal the fault-free values (the
    fault is at the gate itself), so the retained init value and the
    floating/test behaviour come straight from the precomputed broken
    table: definite entries drive their rails, Z entries copy the
    init-pattern output word bitwise.
    """
    table = _broken_local_table(fault.gtype, fault.transistor)
    init_pins = cnet.gate_input_words(good_init, fault.gate)
    test_pins = cnet.gate_input_words(good_test, fault.gate)
    init_ones, init_zeros = eval_table_packed(table, init_pins, mask)
    ones = 0
    zeros = 0
    for minterm, value in table.items():
        word = minterm_word(test_pins, minterm, mask)
        if not word:
            continue
        if value == 1:
            ones |= word
        elif value == 0:
            zeros |= word
        elif value == Z:
            ones |= word & init_ones
            zeros |= word & init_zeros
    return ones, zeros


def stuck_open_detection_words(
    network: Network,
    faults: Sequence[StuckOpenFault],
    pairs: Sequence[tuple[TestVector, TestVector]],
) -> list[int]:
    """Per-fault detection words over (init, test) two-pattern pairs."""
    cnet = compile_network(network)
    init_packed = pack_vectors(cnet, [p[0] for p in pairs])
    test_packed = pack_vectors(cnet, [p[1] for p in pairs])
    good_init = cnet.simulate(init_packed)
    good_test = cnet.simulate(test_packed)
    words = []
    for fault in faults:
        forced = _stuck_open_bad_words(
            cnet, fault, good_init, good_test, test_packed.mask
        )
        words.append(
            cnet.detect_word(
                test_packed,
                good_test,
                FaultInjection(
                    words={cnet.gate_output_index(fault.gate): forced}
                ),
            )
        )
    return words


def parallel_stuck_open_simulation(
    network: Network,
    faults: Sequence[StuckOpenFault],
    pairs: Sequence[tuple[TestVector, TestVector]],
) -> FaultSimResult:
    """Batched two-pattern stuck-open campaign with fault dropping."""
    cnet = compile_network(network)
    detected: dict[str, int] = {}
    undetected = {f.name for f in faults}
    for base in range(0, len(pairs), _CHUNK_BITS):
        if not undetected:
            break
        chunk = pairs[base:base + _CHUNK_BITS]
        init_packed = pack_vectors(cnet, [p[0] for p in chunk])
        test_packed = pack_vectors(cnet, [p[1] for p in chunk])
        good_init = cnet.simulate(init_packed)
        good_test = cnet.simulate(test_packed)
        for fault in faults:
            if fault.name not in undetected:
                continue
            forced = _stuck_open_bad_words(
                cnet, fault, good_init, good_test, test_packed.mask
            )
            diff = cnet.detect_word(
                test_packed,
                good_test,
                FaultInjection(
                    words={cnet.gate_output_index(fault.gate): forced}
                ),
            )
            if diff:
                detected[fault.name] = base + (diff & -diff).bit_length() - 1
                undetected.discard(fault.name)
    return FaultSimResult(
        detected=detected, undetected=sorted(undetected)
    )
