"""Test-set compaction (greedy set cover over a detection matrix).

The detection matrix comes from one batched pass of the compiled
engine (:func:`repro.atpg.fault_sim.stuck_at_detection_words`): every
fault yields a word whose bit ``k`` marks detection by test ``k``, and
the greedy cover then runs entirely on integer popcounts.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.atpg.fault_sim import stuck_at_detection_words
from repro.faults.logic import StuckAtFault
from repro.logic.network import Network


@dataclasses.dataclass
class CompactionResult:
    """Outcome of compaction.

    Attributes:
        kept: Indices (into the original test list) of retained tests.
        vectors: The retained tests themselves.
        coverage: Stuck-at coverage of the compacted set.
    """

    kept: list[int]
    vectors: list[dict[str, int]]
    coverage: float


def compact_tests(
    network: Network,
    tests: Sequence[Mapping[str, int]],
    faults: Sequence[StuckAtFault],
) -> CompactionResult:
    """Greedy compaction: keep the minimal-ish subset of ``tests`` that
    preserves the original stuck-at coverage."""
    full = [dict(t) for t in tests]
    for t in full:
        for net in network.primary_inputs:
            t.setdefault(net, 0)

    # One batched pass gives the whole fault x test detection matrix;
    # transpose it into per-test fault masks for the set cover.
    fault_words = stuck_at_detection_words(network, faults, full)
    detection_masks = [0] * len(full)
    for fi, word in enumerate(fault_words):
        while word:
            low = word & -word
            detection_masks[low.bit_length() - 1] |= 1 << fi
            word ^= low

    remaining = 0
    for mask in detection_masks:
        remaining |= mask
    kept: list[int] = []
    while remaining:
        best, best_gain = None, 0
        for k, mask in enumerate(detection_masks):
            if k in kept:
                continue
            gain = (mask & remaining).bit_count()
            if gain > best_gain:
                best, best_gain = k, gain
        if best is None:
            break
        kept.append(best)
        remaining &= ~detection_masks[best]

    kept.sort()
    covered = 0
    for k in kept:
        covered |= detection_masks[k]
    coverage = covered.bit_count() / len(faults) if faults else 1.0
    return CompactionResult(
        kept=kept,
        vectors=[full[k] for k in kept],
        coverage=coverage,
    )
