"""Test-set compaction (greedy set cover over a detection matrix)."""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.atpg.fault_sim import parallel_stuck_at_simulation
from repro.atpg.faults import StuckAtFault
from repro.logic.network import Network


@dataclasses.dataclass
class CompactionResult:
    """Outcome of compaction.

    Attributes:
        kept: Indices (into the original test list) of retained tests.
        vectors: The retained tests themselves.
        coverage: Stuck-at coverage of the compacted set.
    """

    kept: list[int]
    vectors: list[dict[str, int]]
    coverage: float


def compact_tests(
    network: Network,
    tests: Sequence[Mapping[str, int]],
    faults: Sequence[StuckAtFault],
) -> CompactionResult:
    """Greedy compaction: keep the minimal-ish subset of ``tests`` that
    preserves the original stuck-at coverage."""
    full = [dict(t) for t in tests]
    for t in full:
        for net in network.primary_inputs:
            t.setdefault(net, 0)

    # Per-test detection sets via bit-parallel simulation, one test at a
    # time (cheap: the fault list dominates).
    detection_sets: list[set[str]] = []
    for t in full:
        result = parallel_stuck_at_simulation(network, faults, [t])
        detection_sets.append(set(result.detected))

    target: set[str] = set()
    for s in detection_sets:
        target |= s

    remaining = set(target)
    kept: list[int] = []
    while remaining:
        best, best_gain = None, 0
        for k, s in enumerate(detection_sets):
            if k in kept:
                continue
            gain = len(s & remaining)
            if gain > best_gain:
                best, best_gain = k, gain
        if best is None:
            break
        kept.append(best)
        remaining -= detection_sets[best]

    kept.sort()
    covered: set[str] = set()
    for k in kept:
        covered |= detection_sets[k]
    coverage = len(covered) / len(faults) if faults else 1.0
    return CompactionResult(
        kept=kept,
        vectors=[full[k] for k in kept],
        coverage=coverage,
    )
