"""Multi-word 2-D (fault x vector) packed simulation on numpy uint64.

The single-word engine of :mod:`repro.logic.compiled` packs one test
vector per bit of an unbounded Python integer; that is unbeatable for
the 1-vector delta resimulation at the heart of PODEM fault dropping,
but campaigns on thousands-of-gate netlists want the other axis too:
*fault-parallel* simulation, where a whole batch of faulty machines
advances through the circuit in lockstep.  This module provides that as
a thin numpy layer over the same flattened op arrays:

**Packing layout.**  Vector ``k`` of a batch lives in bit ``k & 63`` of
word ``k >> 6`` — i.e. the vector axis is split across ``W =
ceil(n / 64)`` little-endian ``uint64`` words (*vector-major* within a
word, word-major across the row).  A net's fault-free state is a pair
of ``(W,)`` rail rows (ones rail / zeros rail, identical Kleene
semantics to the single-word engine); a fault batch of ``F`` machines
widens every net to ``(F, W)`` — the *fault-major* axis is axis 0, so
one numpy bitwise op advances all ``F`` faulty machines over all ``n``
vectors at once.  The tail of the last word (bits ``n .. 63``) is
*ragged*: both rails keep it 0 (= X), so it can never produce a
detection, and every word handed back to callers is additionally ANDed
with the tail mask so forced-line writes (which set full 64-bit words)
cannot leak tail bits into detection results.

**Equivalence.**  For any fault list and vector set the detection
words produced here are bit-identical to the single-word engine's
(:func:`repro.logic.compiled.CompiledNetwork.detect_word`) and to the
serial dict simulator — enforced by the differential harness in
``tests/test_multiword_engine.py`` on random circuits and the ISCAS-
class corpus under ``benchmarks/netlists/``.

Usage::

    from repro.logic.multiword import (
        FaultBatch, pack_vectors_multiword, simulate_good,
    )

    cnet = network.compiled()
    mv = pack_vectors_multiword(cnet, vectors)     # any vector count
    good = simulate_good(cnet, mv)                 # (n_nets, W) rails
    words = batch_detect(cnet, mv, good, injections)
    # words[f] is a Python int: bit k set -> vectors[k] detects fault f
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

import numpy as np

from repro.logic.compiled import (
    OP_AND,
    OP_BUF,
    OP_INV,
    OP_MAJ,
    OP_MIN,
    OP_NAND,
    OP_NOR,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    CompiledNetwork,
    FaultInjection,
)
from repro.logic.values import X

WORD_BITS = 64
_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)
_DTYPE = np.dtype("<u8")

#: Fault rows simulated per vectorized pass.  Bounds the working-set
#: memory (n_nets x chunk x W x 16 bytes) while keeping the per-op
#: numpy dispatch overhead amortized over a wide fault axis.
DEFAULT_FAULT_CHUNK = 256

#: Dual-rail multi-word net state: (ones, zeros) uint64 arrays, shape
#: (n_nets, W) for the good machine and (n_nets, F, W) for a batch.
MultiwordState = tuple[np.ndarray, np.ndarray]


def words_from_int(value: int, n_words: int) -> np.ndarray:
    """Split a packed Python-int word into ``n_words`` uint64 words."""
    return np.frombuffer(
        value.to_bytes(n_words * 8, "little"), dtype=_DTYPE
    ).copy()


def int_from_words(row: np.ndarray) -> int:
    """Reassemble a multi-word row into the single-word Python int."""
    return int.from_bytes(np.ascontiguousarray(row, dtype=_DTYPE).tobytes(),
                          "little")


@dataclasses.dataclass(frozen=True)
class MultiwordVectors:
    """A vector batch packed bit-per-vector into multi-word rail rows.

    Attributes:
        n: Number of vectors.
        n_words: ``ceil(n / 64)`` (at least 1, so empty batches still
            carry well-formed arrays).
        mask: ``(n_words,)`` tail mask — all-ones words except the last,
            whose bits ``n % 64 ..`` are clear (the ragged tail).
        ones / zeros: Primary-input net index -> ``(n_words,)`` rail row.
    """

    n: int
    n_words: int
    mask: np.ndarray
    ones: dict[int, np.ndarray]
    zeros: dict[int, np.ndarray]


def pack_vectors_multiword(
    cnet: CompiledNetwork,
    vectors: Sequence[Mapping[str, int]],
) -> MultiwordVectors:
    """Pack test vectors for ``cnet``; missing / X entries stay X.

    Mirrors :func:`repro.logic.compiled.pack_vectors` (and therefore the
    serial simulator's missing-input-is-X convention), with the batch
    split across ``ceil(n / 64)`` uint64 words instead of one Python
    int.
    """
    n = len(vectors)
    n_words = max(1, (n + WORD_BITS - 1) // WORD_BITS)
    ones: dict[int, np.ndarray] = {}
    zeros: dict[int, np.ndarray] = {}
    for net, idx in cnet.pi_items:
        o = z = 0
        for k, vector in enumerate(vectors):
            value = vector.get(net, X)
            if value == 1:
                o |= 1 << k
            elif value == 0:
                z |= 1 << k
        ones[idx] = words_from_int(o, n_words)
        zeros[idx] = words_from_int(z, n_words)
    mask = words_from_int((1 << n) - 1 if n else 0, n_words)
    return MultiwordVectors(
        n=n, n_words=n_words, mask=mask, ones=ones, zeros=zeros
    )


def _eval_gate_np(
    code: int, pw: Sequence[tuple[np.ndarray, np.ndarray]]
) -> tuple[np.ndarray, np.ndarray]:
    """Dual-rail evaluation of one opcode over rail arrays.

    Shape-agnostic: the pin arrays may be ``(W,)`` (good machine) or
    ``(F, W)`` (fault batch).  Always returns fresh arrays (never views
    of the inputs), so callers may patch per-fault rows in place.
    """
    a1, a0 = pw[0]
    if code == OP_BUF:
        return a1.copy(), a0.copy()
    if code == OP_INV:
        return a0.copy(), a1.copy()
    if code == OP_AND or code == OP_NAND:
        o, z = a1.copy(), a0.copy()
        for b1, b0 in pw[1:]:
            o &= b1
            z |= b0
        return (z, o) if code == OP_NAND else (o, z)
    if code == OP_OR or code == OP_NOR:
        o, z = a1.copy(), a0.copy()
        for b1, b0 in pw[1:]:
            o |= b1
            z &= b0
        return (z, o) if code == OP_NOR else (o, z)
    if code == OP_XOR or code == OP_XNOR:
        o, z = a1, a0
        for b1, b0 in pw[1:]:
            o, z = (o & b0) | (z & b1), (o & b1) | (z & b0)
        if o is a1:  # single-input XOR: still must not alias
            o, z = o.copy(), z.copy()
        return (z, o) if code == OP_XNOR else (o, z)
    # OP_MAJ / OP_MIN
    b1, b0 = pw[1]
    c1, c0 = pw[2]
    o = (a1 & b1) | (b1 & c1) | (a1 & c1)
    z = (a0 & b0) | (b0 & c0) | (a0 & c0)
    return (z, o) if code == OP_MIN else (o, z)


def simulate_good(
    cnet: CompiledNetwork, mv: MultiwordVectors
) -> MultiwordState:
    """Fault-free simulation of the whole batch; ``(n_nets, W)`` rails."""
    ones = np.zeros((cnet.n_nets, mv.n_words), dtype=_DTYPE)
    zeros = np.zeros((cnet.n_nets, mv.n_words), dtype=_DTYPE)
    for idx in cnet.pi_index:
        ones[idx] = mv.ones[idx]
        zeros[idx] = mv.zeros[idx]
    for code, out, ins in cnet.ops:
        o, z = _eval_gate_np(code, [(ones[i], zeros[i]) for i in ins])
        ones[out] = o
        zeros[out] = z
    return ones, zeros


def _eval_table_row(
    table: Mapping[tuple[int, ...], int],
    pin_rows: Sequence[tuple[np.ndarray, np.ndarray]],
    mask: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Local-truth-table evaluation over ``(W,)`` pin rows (one fault).

    The multi-word counterpart of :func:`repro.logic.compiled.
    eval_table_packed`: table values outside (0, 1) contribute to
    neither rail, so those vectors come out X.
    """
    ones = np.zeros_like(mask)
    zeros = np.zeros_like(mask)
    for minterm, value in table.items():
        if value != 1 and value != 0:
            continue
        word = mask.copy()
        for (o, z), bit in zip(pin_rows, minterm):
            word &= o if bit else z
            if not word.any():
                break
        else:
            if value == 1:
                ones |= word
            else:
                zeros |= word
    return ones, zeros


def minterm_word_multiword(
    pin_rows: Sequence[tuple[np.ndarray, np.ndarray]],
    minterm: Sequence[int],
    mask: np.ndarray,
) -> np.ndarray:
    """Word of vectors whose pins definitely equal ``minterm``.

    Multi-word counterpart of :func:`repro.logic.compiled.minterm_word`
    (vectors with any X pin match no minterm).
    """
    word = mask.copy()
    for (o, z), bit in zip(pin_rows, minterm):
        word &= o if bit else z
        if not word.any():
            break
    return word


def gate_input_rows(
    cnet: CompiledNetwork, state: MultiwordState, gate: str
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Dual-rail ``(W,)`` rows on one gate's input pins (good state)."""
    ones, zeros = state
    _, _, ins = cnet.ops[cnet.gate_op[gate]]
    return [(ones[i], zeros[i]) for i in ins]


class FaultBatch:
    """Index-level overrides for ``F`` faults, grouped for array writes.

    Built from a sequence of single-fault
    :class:`~repro.logic.compiled.FaultInjection` objects; fault ``f``
    of the batch owns row ``f`` of every ``(F, W)`` net-state array.
    The grouping turns each override class into the cheapest possible
    vectorized write:

    * ``line_rows``: net index -> (rows forced to 1, rows forced to 0)
      — applied at every write of the net, as full-word row assignments.
    * ``word_rows``: net index -> [(row, ones_row, zeros_row)] — the
      per-vector forced patterns of the stuck-open engine.
    * ``pin_rows``: op position -> [(pin, row, value)] — branch faults,
      patched onto a copy of the gathered pin array.
    * ``table_rows``: op position -> [(row, table)] — functional
      (polarity) faults, re-evaluated per affected row.
    """

    def __init__(
        self,
        cnet: CompiledNetwork,
        injections: Sequence[FaultInjection],
        n_words: int,
    ) -> None:
        self.size = len(injections)
        line1: dict[int, list[int]] = {}
        line0: dict[int, list[int]] = {}
        self.word_rows: dict[int, list[tuple[int, np.ndarray, np.ndarray]]]
        self.word_rows = {}
        self.pin_rows: dict[int, list[tuple[int, int, int]]] = {}
        self.table_rows: dict[int, list[tuple[int, Mapping]]] = {}
        for row, injection in enumerate(injections):
            for idx, value in injection.lines.items():
                (line1 if value else line0).setdefault(idx, []).append(row)
            for idx, (o, z) in injection.words.items():
                self.word_rows.setdefault(idx, []).append(
                    (row, words_from_int(o, n_words),
                     words_from_int(z, n_words))
                )
            for (pos, pin), value in injection.pins.items():
                self.pin_rows.setdefault(pos, []).append((pin, row, value))
            for pos, table in injection.tables.items():
                self.table_rows.setdefault(pos, []).append((row, table))
        self.line_rows = {
            idx: (
                np.asarray(line1.get(idx, ()), dtype=np.intp),
                np.asarray(line0.get(idx, ()), dtype=np.intp),
            )
            for idx in line1.keys() | line0.keys()
        }
        self.forced_nets = sorted(self.line_rows.keys()
                                  | self.word_rows.keys())

    def apply_forces(
        self, idx: int, ones_row: np.ndarray, zeros_row: np.ndarray
    ) -> None:
        """Apply line/word forces for net ``idx`` onto ``(F, W)`` rows."""
        entry = self.line_rows.get(idx)
        if entry is not None:
            rows1, rows0 = entry
            if rows1.size:
                ones_row[rows1] = _FULL
                zeros_row[rows1] = 0
            if rows0.size:
                ones_row[rows0] = 0
                zeros_row[rows0] = _FULL
        for row, o, z in self.word_rows.get(idx, ()):
            ones_row[row] = o
            zeros_row[row] = z


def simulate_batch(
    cnet: CompiledNetwork,
    mv: MultiwordVectors,
    good: MultiwordState,
    batch: FaultBatch,
) -> MultiwordState:
    """Simulate ``F`` faulty machines over the whole vector batch.

    Returns ``(ones, zeros)`` of shape ``(n_nets, F, W)``: row ``f`` is
    the complete net state of fault ``f``'s machine.  The good state
    seeds every row (a fault that changes nothing costs only the
    re-evaluation sweep), then the batch's grouped overrides are applied
    at the contract points: line/word forces at every write of their
    net, pin forces on the gathered pin arrays, table overrides per
    affected row after the healthy gate function.
    """
    good_ones, good_zeros = good
    n_nets, n_words = good_ones.shape
    f = batch.size
    ones = np.repeat(good_ones[:, None, :], f, axis=1)
    zeros = np.repeat(good_zeros[:, None, :], f, axis=1)
    for idx in batch.forced_nets:
        batch.apply_forces(idx, ones[idx], zeros[idx])
    pin_rows = batch.pin_rows
    table_rows = batch.table_rows
    for pos, (code, out, ins) in enumerate(cnet.ops):
        pw = []
        for k, i in enumerate(ins):
            o, z = ones[i], zeros[i]
            forces = pin_rows.get(pos)
            if forces:
                patched = False
                for pin, row, value in forces:
                    if pin != k:
                        continue
                    if not patched:
                        o, z = o.copy(), z.copy()
                        patched = True
                    if value:
                        o[row] = _FULL
                        z[row] = 0
                    else:
                        o[row] = 0
                        z[row] = _FULL
            pw.append((o, z))
        o, z = _eval_gate_np(code, pw)
        tables = table_rows.get(pos)
        if tables:
            for row, table in tables:
                ro, rz = _eval_table_row(
                    table, [(p1[row], p0[row]) for p1, p0 in pw], mv.mask
                )
                o[row] = ro
                z[row] = rz
        batch.apply_forces(out, o, z)
        ones[out] = o
        zeros[out] = z
    return ones, zeros


def batch_detection_matrix(
    cnet: CompiledNetwork,
    mv: MultiwordVectors,
    good: MultiwordState,
    batch: FaultBatch,
) -> np.ndarray:
    """Detection matrix for one simulated batch: ``(F, W)`` uint64.

    Bit ``k & 63`` of word ``k >> 6`` in row ``f`` is set iff vector
    ``k`` *definitely* detects fault ``f`` at a primary output (strict
    X semantics, matching :meth:`CompiledNetwork.output_diff`); the
    ragged tail is masked off.
    """
    good_ones, good_zeros = good
    bad_ones, bad_zeros = simulate_batch(cnet, mv, good, batch)
    diff = np.zeros((batch.size, mv.n_words), dtype=_DTYPE)
    for idx in cnet.po_index:
        diff |= (good_ones[idx][None, :] & bad_zeros[idx]) | (
            good_zeros[idx][None, :] & bad_ones[idx]
        )
    diff &= mv.mask[None, :]
    return diff


def batch_detect(
    cnet: CompiledNetwork,
    mv: MultiwordVectors,
    good: MultiwordState,
    injections: Sequence[FaultInjection],
    fault_chunk: int = DEFAULT_FAULT_CHUNK,
) -> list[int]:
    """Detection words for every injection, chunked along the fault axis.

    The result is index-aligned with ``injections``; each entry is the
    same Python-int detection word the single-word engine's
    :meth:`~repro.logic.compiled.CompiledNetwork.detect_word` produces
    over the full vector set (bit ``k`` set iff vector ``k`` detects
    the fault).  ``fault_chunk`` bounds the ``(n_nets, F, W)`` working
    set; the final ragged chunk simply runs narrower.
    """
    words: list[int] = []
    for base in range(0, len(injections), fault_chunk):
        chunk = injections[base:base + fault_chunk]
        batch = FaultBatch(cnet, chunk, mv.n_words)
        diff = batch_detection_matrix(cnet, mv, good, batch)
        words.extend(int_from_words(diff[f]) for f in range(len(chunk)))
    return words


def first_detection_index(word: int) -> int | None:
    """Index of the lowest set bit (= first detecting vector), or None."""
    if not word:
        return None
    return (word & -word).bit_length() - 1
