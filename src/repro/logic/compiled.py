"""Compiled bit-parallel gate-level simulation.

This module is the fast counterpart of :mod:`repro.logic.simulator`.
A :class:`CompiledNetwork` flattens a (levelized) :class:`~repro.logic.
network.Network` once into integer-indexed op arrays — every net gets a
dense index, every gate becomes an ``(opcode, output_index,
input_indices)`` triple in topological order — so that simulation is a
tight loop over machine integers instead of a walk over dicts of
strings.

**Word-packed dual-rail encoding.**  A whole batch of test vectors is
evaluated per pass: vector ``k`` of the batch lives in bit ``k`` of two
Python integers per net, the *ones* rail and the *zeros* rail.  A bit
set in the ones rail means "this vector definitely produces 1 on this
net"; set in the zeros rail means "definitely 0"; set in neither means
X (unknown).  Python's big integers make the batch width unbounded —
64+ vectors per machine word, any number of words — and every gate of
the network is evaluated once per batch with a handful of bitwise
AND/OR operations, exactly matching the Kleene ternary semantics of
:func:`repro.logic.eval.eval_ternary` (equivalence is enforced by
``tests/test_compiled_engine.py``).

**Fault-injection override contract.**  This is the single normative
description of how faults enter a simulation; the serial simulator's
keyword arguments (``line_overrides`` / ``pin_overrides`` /
``gate_overrides`` in :func:`repro.logic.simulator.simulate`) and the
index-level :class:`FaultInjection` used here express the same three
mechanisms:

* **Line override** — force a *net* to a constant.  Applied wherever
  the net's value is written: at primary-input load and after the
  driving gate evaluates.  This models *stem* stuck-at faults and, in
  word form (:attr:`FaultInjection.words`), lets a caller force an
  arbitrary per-vector pattern onto a net (used by the two-pattern
  stuck-open engine to inject retained values).
* **Pin override** — force one *input pin* of one gate, leaving the
  net itself (and its other fanout branches) untouched.  This models
  *branch* stuck-at faults.  Keyed ``(gate, pin_index)`` serially,
  ``(op_index, pin_index)`` here.
* **Gate override** — replace a gate's local function.  Serially this
  is a callable; here it is the equivalent *local truth table* mapping
  binary input tuples to 0/1/X (any non-binary pin yields X).  This
  models the paper's polarity faults, whose faulty tables come from the
  switch-level engine via
  :meth:`repro.atpg.faults.PolarityFault.faulty_table`.

Usage::

    from repro.circuits import ripple_carry_adder
    from repro.logic.compiled import FaultInjection, pack_vectors

    network = ripple_carry_adder(8)
    cnet = network.compiled()                  # built once, cached
    packed = pack_vectors(cnet, vectors)       # all vectors, one batch
    good = cnet.simulate(packed)
    sa0 = FaultInjection(lines={cnet.net_index["s3"]: 0})
    bad = cnet.simulate(packed, sa0)
    diff = cnet.output_diff(good, bad)         # bit k set -> vector k
                                               # detects the fault
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Mapping, Sequence, TYPE_CHECKING

from repro.logic.values import X

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.logic.network import Network

# Opcodes: arity is implied by the stored input-index tuple, so the
# 2- and 3-input variants of a function share one opcode.
OP_BUF = 0
OP_INV = 1
OP_AND = 2
OP_OR = 3
OP_NAND = 4
OP_NOR = 5
OP_XOR = 6
OP_XNOR = 7
OP_MAJ = 8
OP_MIN = 9

_OPCODE = {
    "BUF": OP_BUF,
    "INV": OP_INV,
    "AND2": OP_AND,
    "AND3": OP_AND,
    "OR2": OP_OR,
    "OR3": OP_OR,
    "NAND2": OP_NAND,
    "NAND3": OP_NAND,
    "NOR2": OP_NOR,
    "NOR3": OP_NOR,
    "XOR2": OP_XOR,
    "XOR3": OP_XOR,
    "XNOR2": OP_XNOR,
    "MAJ3": OP_MAJ,
    "MIN3": OP_MIN,
}

#: Dual-rail net state for one batch: (ones_rails, zeros_rails), each a
#: list indexed by net index.
PackedState = tuple[list[int], list[int]]


@dataclasses.dataclass(frozen=True)
class PackedVectors:
    """A batch of test vectors packed bit-per-vector into rail words.

    Attributes:
        n: Number of vectors in the batch.
        mask: ``(1 << n) - 1`` — the all-vectors word.
        ones: Primary-input net index -> ones-rail word.
        zeros: Primary-input net index -> zeros-rail word.
        binary: True when no vector carries an X — every net value is
            then the complement pair ``(w, mask ^ w)``, enabling the
            single-rail fast path for binary-preserving faults.
    """

    n: int
    mask: int
    ones: dict[int, int]
    zeros: dict[int, int]
    binary: bool = False


def pack_vectors(
    cnet: CompiledNetwork,
    vectors: Sequence[Mapping[str, int]],
) -> PackedVectors:
    """Pack test vectors for ``cnet``; missing / X entries stay X.

    Mirrors the serial simulator's convention that a primary input
    absent from the vector is unknown.
    """
    n = len(vectors)
    ones: dict[int, int] = {}
    zeros: dict[int, int] = {}
    for net, idx in cnet.pi_items:
        o = z = 0
        for k, vector in enumerate(vectors):
            value = vector.get(net, X)
            if value == 1:
                o |= 1 << k
            elif value == 0:
                z |= 1 << k
        ones[idx] = o
        zeros[idx] = z
    mask = (1 << n) - 1 if n else 0
    binary = all(ones[i] | zeros[i] == mask for i in ones)
    return PackedVectors(n=n, mask=mask, ones=ones, zeros=zeros,
                         binary=binary)


@dataclasses.dataclass(frozen=True)
class FaultInjection:
    """Index-level fault overrides for one compiled simulation.

    See the module docstring for the override contract.  All maps are
    optional; an empty injection is the fault-free machine.

    Attributes:
        lines: Net index -> forced constant (0/1), applied at every
            write of that net (stem stuck-at faults).
        pins: ``(op_index, pin_index)`` -> forced constant (0/1),
            applied to that single gate input (branch stuck-at faults).
        tables: Op index -> faulty local truth table (binary input
            tuple -> 0/1/X) replacing the gate function (polarity
            faults and other functional faults).
        words: Net index -> forced ``(ones, zeros)`` rail words,
            applied like a line override but with per-vector values
            (stuck-open retained-value injection).
    """

    lines: Mapping[int, int] = dataclasses.field(default_factory=dict)
    pins: Mapping[tuple[int, int], int] = dataclasses.field(
        default_factory=dict
    )
    tables: Mapping[int, Mapping[tuple[int, ...], int]] = dataclasses.field(
        default_factory=dict
    )
    words: Mapping[int, tuple[int, int]] = dataclasses.field(
        default_factory=dict
    )


def minterm_word(
    pin_words: Sequence[tuple[int, int]],
    minterm: Sequence[int],
    mask: int,
) -> int:
    """Word of vectors whose pins definitely equal ``minterm``.

    A vector with any X pin matches no minterm (the serial engines
    treat non-binary local inputs as unresolvable).
    """
    word = mask
    for (o, z), bit in zip(pin_words, minterm):
        word &= o if bit else z
        if not word:
            break
    return word


def eval_table_packed(
    table: Mapping[tuple[int, ...], int],
    pin_words: Sequence[tuple[int, int]],
    mask: int,
) -> tuple[int, int]:
    """Evaluate a local truth table over packed dual-rail pin words.

    Table values outside (0, 1) — X, Z — contribute to neither rail, so
    those vectors come out X, matching the serial gate-override path.
    """
    ones = 0
    zeros = 0
    for minterm, value in table.items():
        if value == 1:
            ones |= minterm_word(pin_words, minterm, mask)
        elif value == 0:
            zeros |= minterm_word(pin_words, minterm, mask)
    return ones, zeros


def _eval_gate(
    code: int, pw: Sequence[tuple[int, int]]
) -> tuple[int, int]:
    """Dual-rail evaluation of one opcode over packed pin words."""
    a1, a0 = pw[0]
    if code == OP_BUF:
        return a1, a0
    if code == OP_INV:
        return a0, a1
    if code == OP_AND or code == OP_NAND:
        o, z = a1, a0
        for b1, b0 in pw[1:]:
            o &= b1
            z |= b0
        return (z, o) if code == OP_NAND else (o, z)
    if code == OP_OR or code == OP_NOR:
        o, z = a1, a0
        for b1, b0 in pw[1:]:
            o |= b1
            z &= b0
        return (z, o) if code == OP_NOR else (o, z)
    if code == OP_XOR or code == OP_XNOR:
        o, z = a1, a0
        for b1, b0 in pw[1:]:
            o, z = (o & b0) | (z & b1), (o & b1) | (z & b0)
        return (z, o) if code == OP_XNOR else (o, z)
    # OP_MAJ / OP_MIN
    b1, b0 = pw[1]
    c1, c0 = pw[2]
    o = (a1 & b1) | (b1 & c1) | (a1 & c1)
    z = (a0 & b0) | (b0 & c0) | (a0 & c0)
    return (z, o) if code == OP_MIN else (o, z)


def _eval_gate_binary(
    code: int, pv: Sequence[int], mask: int
) -> int:
    """Single-rail (no-X) evaluation of one opcode over packed words."""
    a = pv[0]
    if code == OP_BUF:
        return a
    if code == OP_INV:
        return a ^ mask
    if code == OP_AND or code == OP_NAND:
        for b in pv[1:]:
            a &= b
        return a ^ mask if code == OP_NAND else a
    if code == OP_OR or code == OP_NOR:
        for b in pv[1:]:
            a |= b
        return a ^ mask if code == OP_NOR else a
    if code == OP_XOR or code == OP_XNOR:
        for b in pv[1:]:
            a ^= b
        return a ^ mask if code == OP_XNOR else a
    # OP_MAJ / OP_MIN
    b, c = pv[1], pv[2]
    out = (a & b) | (b & c) | (a & c)
    return out ^ mask if code == OP_MIN else out


class CompiledNetwork:
    """A :class:`~repro.logic.network.Network` flattened for speed.

    Build once per network (``network.compiled()`` caches the instance
    alongside the levelization cache) and reuse across any number of
    batches and fault injections.

    Attributes:
        network: The source network.
        net_names: Dense index -> net name.
        net_index: Net name -> dense index.
        pi_index / po_index: Primary input/output net indices, in the
            network's declared order.
        ops: Per-gate ``(opcode, output_index, input_indices)`` in
            topological order.
        gate_op: Gate name -> position in :attr:`ops`.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        order = network.levelized()
        self.net_index: dict[str, int] = {}
        self.net_names: list[str] = []

        def index_of(net: str) -> int:
            idx = self.net_index.get(net)
            if idx is None:
                idx = len(self.net_names)
                self.net_index[net] = idx
                self.net_names.append(net)
            return idx

        self.pi_index = [index_of(n) for n in network.primary_inputs]
        self.pi_items = list(
            zip(network.primary_inputs, self.pi_index)
        )
        self.ops: list[tuple[int, int, tuple[int, ...]]] = []
        self.gate_op: dict[str, int] = {}
        for gate in order:
            ins = tuple(index_of(n) for n in gate.inputs)
            out = index_of(gate.output)
            self.gate_op[gate.name] = len(self.ops)
            self.ops.append((_OPCODE[gate.gtype], out, ins))
        self.po_index = [index_of(n) for n in network.primary_outputs]
        self.n_nets = len(self.net_names)
        # Earliest op position touching each net (its driver, or for
        # primary inputs the first reader) — lets delta resimulation
        # skip straight to a fault's cone.
        self.net_first_op = [len(self.ops)] * self.n_nets
        first = self.net_first_op
        for pos, (_, out, ins) in enumerate(self.ops):
            for i in ins:
                if first[i] > pos:
                    first[i] = pos
            if first[out] > pos:
                first[out] = pos

    # ------------------------------------------------------------------
    def simulate(
        self,
        packed: PackedVectors,
        fault: FaultInjection | None = None,
    ) -> PackedState:
        """Simulate the whole batch; returns (ones, zeros) rail arrays."""
        mask = packed.mask
        lines = fault.lines if fault is not None else None
        pins = fault.pins if fault is not None else None
        tables = fault.tables if fault is not None else None
        words = fault.words if fault is not None else None
        forced = (lines or words) if fault is not None else None

        ones = [0] * self.n_nets
        zeros = [0] * self.n_nets
        for idx in self.pi_index:
            ones[idx] = packed.ones[idx]
            zeros[idx] = packed.zeros[idx]
        if forced:
            for idx in self.pi_index:
                o, z = self._force(idx, ones[idx], zeros[idx],
                                   lines, words, mask)
                ones[idx], zeros[idx] = o, z

        for pos, (code, out, ins) in enumerate(self.ops):
            pw = [(ones[i], zeros[i]) for i in ins]
            if pins:
                for k in range(len(ins)):
                    value = pins.get((pos, k))
                    if value is not None:
                        pw[k] = (mask, 0) if value else (0, mask)
            if tables and pos in tables:
                o, z = eval_table_packed(tables[pos], pw, mask)
            else:
                o, z = _eval_gate(code, pw)
            if forced:
                o, z = self._force(out, o, z, lines, words, mask)
            ones[out] = o
            zeros[out] = z
        return ones, zeros

    @staticmethod
    def _force(idx, o, z, lines, words, mask):
        if lines:
            value = lines.get(idx)
            if value is not None:
                return (mask, 0) if value else (0, mask)
        if words:
            forced = words.get(idx)
            if forced is not None:
                return forced
        return o, z

    # ------------------------------------------------------------------
    def simulate_delta(
        self,
        packed: PackedVectors,
        good: PackedState,
        fault: FaultInjection,
    ) -> dict[int, tuple[int, int]]:
        """Event-driven single-fault resimulation against a good state.

        Instead of re-evaluating the whole network, only gates whose
        inputs changed (or that carry an override) are recomputed; a
        fault effect that dies re-converges to the good value and stops
        propagating.  Returns net index -> (ones, zeros) for exactly
        the nets that differ from ``good``.
        """
        if packed.binary and not fault.tables and not fault.words:
            mask = packed.mask
            return {
                idx: (word, mask ^ word)
                for idx, word in self._delta_binary(
                    packed, good, fault
                ).items()
            }
        gones, gzeros = good
        mask = packed.mask
        pins = fault.pins
        tables = fault.tables
        forced: dict[int, tuple[int, int]] = dict(fault.words)
        for idx, value in fault.lines.items():
            forced[idx] = (mask, 0) if value else (0, mask)

        delta: dict[int, tuple[int, int]] = {}
        pi_set = set(self.pi_index)
        for idx, fw in forced.items():
            if idx in pi_set and fw != (gones[idx], gzeros[idx]):
                delta[idx] = fw
        affected = {pos for pos, _ in pins}
        affected.update(tables)
        if not delta and not affected and not forced:
            return delta

        # The fault's cone starts at the earliest seeded position and
        # the effect is dead once no net differs past the last seed.
        first = self.net_first_op
        start = len(self.ops)
        last_seed = -1
        for pos in affected:
            start = min(start, pos)
            last_seed = max(last_seed, pos)
        for idx in itertools.chain(forced, delta):
            start = min(start, first[idx])
            last_seed = max(last_seed, first[idx])

        ops = self.ops
        for pos in range(start, len(ops)):
            code, out, ins = ops[pos]
            touched = pos in affected
            if not touched:
                for i in ins:
                    if i in delta:
                        touched = True
                        break
            if touched:
                pw = []
                for k, i in enumerate(ins):
                    value = pins.get((pos, k)) if pins else None
                    if value is not None:
                        pw.append((mask, 0) if value else (0, mask))
                    else:
                        d = delta.get(i)
                        pw.append(d if d is not None
                                  else (gones[i], gzeros[i]))
                table = tables.get(pos) if tables else None
                if table is not None:
                    o, z = eval_table_packed(table, pw, mask)
                else:
                    o, z = _eval_gate(code, pw)
            else:
                o, z = gones[out], gzeros[out]
            if forced:
                fw = forced.get(out)
                if fw is not None:
                    o, z = fw
            if o != gones[out] or z != gzeros[out]:
                delta[out] = (o, z)
            elif not delta and pos >= last_seed:
                return delta
        return delta

    def detect_word(
        self,
        packed: PackedVectors,
        good: PackedState,
        fault: FaultInjection,
    ) -> int:
        """Campaign fast path: delta-resimulate ``fault`` and return
        the strict-difference word over the primary outputs directly."""
        if packed.binary and not fault.tables and not fault.words:
            delta = self._delta_binary(packed, good, fault)
            if not delta:
                return 0
            gones = good[0]
            diff = 0
            for idx in self.po_index:
                word = delta.get(idx)
                if word is not None:
                    diff |= word ^ gones[idx]
            return diff
        return self.output_diff_delta(
            good, self.simulate_delta(packed, good, fault)
        )

    def _delta_binary(
        self,
        packed: PackedVectors,
        good: PackedState,
        fault: FaultInjection,
    ) -> dict[int, int]:
        """Single-rail delta resimulation: X-free batch, line/pin fault.

        The zeros rail is everywhere the complement of the ones rail,
        so only ones words are propagated; returns changed nets' ones
        words.
        """
        gones = good[0]
        mask = packed.mask
        pins = fault.pins
        forced = {
            idx: mask if value else 0
            for idx, value in fault.lines.items()
        }
        delta: dict[int, int] = {}
        pi_set = set(self.pi_index)
        for idx, fw in forced.items():
            if idx in pi_set and fw != gones[idx]:
                delta[idx] = fw
        affected = {pos for pos, _ in pins}
        if delta or affected or forced:
            first = self.net_first_op
            ops = self.ops
            start = len(ops)
            last_seed = -1
            for pos in affected:
                start = min(start, pos)
                last_seed = max(last_seed, pos)
            for idx in itertools.chain(forced, delta):
                start = min(start, first[idx])
                last_seed = max(last_seed, first[idx])
            get_delta = delta.get
            get_forced = forced.get if forced else None
            for pos in range(start, len(ops)):
                code, out, ins = ops[pos]
                touched = affected and pos in affected
                if not touched:
                    for i in ins:
                        if i in delta:
                            touched = True
                            break
                if touched:
                    if pins:
                        pv = []
                        for k, i in enumerate(ins):
                            value = pins.get((pos, k))
                            if value is not None:
                                pv.append(mask if value else 0)
                            else:
                                d = get_delta(i)
                                pv.append(d if d is not None
                                          else gones[i])
                    else:
                        pv = [
                            d if (d := get_delta(i)) is not None
                            else gones[i]
                            for i in ins
                        ]
                    word = _eval_gate_binary(code, pv, mask)
                else:
                    word = gones[out]
                if get_forced is not None:
                    fw = get_forced(out)
                    if fw is not None:
                        word = fw
                if word != gones[out]:
                    delta[out] = word
                elif not delta and pos >= last_seed:
                    break
        return delta

    def output_diff_delta(
        self, good: PackedState, delta: Mapping[int, tuple[int, int]]
    ) -> int:
        """Strict-difference word over POs for a delta resimulation."""
        gones, gzeros = good
        diff = 0
        for idx in self.po_index:
            d = delta.get(idx)
            if d is not None:
                diff |= (gones[idx] & d[1]) | (gzeros[idx] & d[0])
        return diff

    # ------------------------------------------------------------------
    def output_diff(self, good: PackedState, bad: PackedState) -> int:
        """Word of vectors on which the machines *definitely* differ.

        Matches :func:`repro.logic.simulator.vectors_differ` in strict
        mode: an X on either side is never counted as a difference.
        """
        go, gz = good
        bo, bz = bad
        diff = 0
        for idx in self.po_index:
            diff |= (go[idx] & bz[idx]) | (gz[idx] & bo[idx])
        return diff

    def gate_input_words(
        self, state: PackedState, gate: str
    ) -> list[tuple[int, int]]:
        """Dual-rail words on one gate's input pins."""
        ones, zeros = state
        _, _, ins = self.ops[self.gate_op[gate]]
        return [(ones[i], zeros[i]) for i in ins]

    def gate_output_index(self, gate: str) -> int:
        """Net index of one gate's output."""
        return self.ops[self.gate_op[gate]][1]

    def outputs_unpacked(
        self, state: PackedState, k: int
    ) -> tuple[int, ...]:
        """Ternary primary-output values of vector ``k`` (debug aid)."""
        ones, zeros = state
        bit = 1 << k
        return tuple(
            1 if ones[i] & bit else 0 if zeros[i] & bit else X
            for i in self.po_index
        )

    def __repr__(self) -> str:
        return (
            f"CompiledNetwork({self.network.name!r}: "
            f"{self.n_nets} nets, {len(self.ops)} ops)"
        )
