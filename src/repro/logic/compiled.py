"""Compiled bit-parallel gate-level simulation.

This module is the fast counterpart of :mod:`repro.logic.simulator`.
A :class:`CompiledNetwork` flattens a (levelized) :class:`~repro.logic.
network.Network` once into integer-indexed op arrays — every net gets a
dense index, every gate becomes an ``(opcode, output_index,
input_indices)`` triple in topological order — so that simulation is a
tight loop over machine integers instead of a walk over dicts of
strings.

**Word-packed dual-rail encoding.**  A whole batch of test vectors is
evaluated per pass: vector ``k`` of the batch lives in bit ``k`` of two
Python integers per net, the *ones* rail and the *zeros* rail.  A bit
set in the ones rail means "this vector definitely produces 1 on this
net"; set in the zeros rail means "definitely 0"; set in neither means
X (unknown).  Python's big integers make the batch width unbounded —
64+ vectors per machine word, any number of words — and every gate of
the network is evaluated once per batch with a handful of bitwise
AND/OR operations, exactly matching the Kleene ternary semantics of
:func:`repro.logic.eval.eval_ternary` (equivalence is enforced by
``tests/test_compiled_engine.py``).

**Fault-injection override contract.**  This is the single normative
description of how faults enter a simulation; the serial simulator's
keyword arguments (``line_overrides`` / ``pin_overrides`` /
``gate_overrides`` in :func:`repro.logic.simulator.simulate`) and the
index-level :class:`FaultInjection` used here express the same three
mechanisms:

* **Line override** — force a *net* to a constant.  Applied wherever
  the net's value is written: at primary-input load and after the
  driving gate evaluates.  This models *stem* stuck-at faults and, in
  word form (:attr:`FaultInjection.words`), lets a caller force an
  arbitrary per-vector pattern onto a net (used by the two-pattern
  stuck-open engine to inject retained values).
* **Pin override** — force one *input pin* of one gate, leaving the
  net itself (and its other fanout branches) untouched.  This models
  *branch* stuck-at faults.  Keyed ``(gate, pin_index)`` serially,
  ``(op_index, pin_index)`` here.
* **Gate override** — replace a gate's local function.  Serially this
  is a callable; here it is the equivalent *local truth table* mapping
  binary input tuples to 0/1/X (any non-binary pin yields X).  This
  models the paper's polarity faults, whose faulty tables come from the
  switch-level engine via
  :meth:`repro.faults.PolarityFault.faulty_table`.

**Compilation memo.**  :func:`compile_network` maps a
:class:`~repro.logic.network.Network` to its :class:`CompiledNetwork`
through a process-wide memo keyed on a cheap structural fingerprint
(PIs, POs and the gate set), so that repeated campaigns which rebuild
structurally identical networks — ``experiment_table3``, compaction,
SOF ATPG, the benchmark drivers — stop recompiling and relevelizing.
``Network.compiled()`` routes through the memo; structural edits drop
the per-instance cache and :func:`invalidate_network` evicts the memo
entry explicitly for mutated networks.

The flattened form also carries :meth:`CompiledNetwork.structures`:
precomputed integer structures (net drivers, levelized fanout cones,
primary-output reachability masks, SCOAP-style controllability
estimates) shared by the fault simulator and the compiled PODEM engine
(:mod:`repro.atpg.podem_compiled`).

Usage::

    from repro.circuits import ripple_carry_adder
    from repro.logic.compiled import FaultInjection, pack_vectors

    network = ripple_carry_adder(8)
    cnet = network.compiled()                  # built once, memoized
    packed = pack_vectors(cnet, vectors)       # all vectors, one batch
    good = cnet.simulate(packed)
    sa0 = FaultInjection(lines={cnet.net_index["s3"]: 0})
    bad = cnet.simulate(packed, sa0)
    diff = cnet.output_diff(good, bad)         # bit k set -> vector k
                                               # detects the fault
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Mapping, Sequence, TYPE_CHECKING

from repro.logic.values import X

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.logic.network import Network

# Opcodes: arity is implied by the stored input-index tuple, so the
# 2- and 3-input variants of a function share one opcode.
OP_BUF = 0
OP_INV = 1
OP_AND = 2
OP_OR = 3
OP_NAND = 4
OP_NOR = 5
OP_XOR = 6
OP_XNOR = 7
OP_MAJ = 8
OP_MIN = 9

_OPCODE = {
    "BUF": OP_BUF,
    "INV": OP_INV,
    "AND2": OP_AND,
    "AND3": OP_AND,
    "OR2": OP_OR,
    "OR3": OP_OR,
    "NAND2": OP_NAND,
    "NAND3": OP_NAND,
    "NOR2": OP_NOR,
    "NOR3": OP_NOR,
    "XOR2": OP_XOR,
    "XOR3": OP_XOR,
    "XNOR2": OP_XNOR,
    "MAJ3": OP_MAJ,
    "MIN3": OP_MIN,
}

#: Opcodes whose output inverts the justification target during PODEM
#: backtrace (mirror of :data:`repro.logic.eval.INVERTING`).
INVERTING_OPS = frozenset({OP_INV, OP_NAND, OP_NOR, OP_XNOR, OP_MIN})

#: Opcode -> non-controlling input value (the PODEM D-frontier
#: objective); opcodes without a controlling value justify 0 (mirror of
#: the legacy :data:`repro.logic.eval.CONTROLLING` handling).
_OBJECTIVE_VALUE = {OP_AND: 1, OP_NAND: 1, OP_OR: 0, OP_NOR: 0}

#: Dual-rail net state for one batch: (ones_rails, zeros_rails), each a
#: list indexed by net index.
PackedState = tuple[list[int], list[int]]


@dataclasses.dataclass(frozen=True)
class NetworkStructures:
    """Precomputed integer structures for search-style algorithms.

    Built once per :class:`CompiledNetwork` (so once per structural
    fingerprint, via the :func:`compile_network` memo) and shared by
    every PODEM search and campaign over the network.

    Attributes:
        driver_op: Net index -> position of the driving op, -1 for
            primary inputs / undriven nets.
        is_pi: Net index -> 1 when the net is a primary input.
        fanout_ops: Net index -> op positions consuming the net, in
            topological (levelized) order — the net's fanout cone
            frontier for event-driven implication.
        inverting: Op position -> 1 when the op inverts (backtrace
            flips the justification target through it).
        objective_value: Op position -> the value PODEM justifies on an
            X input to advance the D-frontier through this op
            (non-controlling value, or 0 for XOR/MAJ-class ops).
        po_reachable: Net index -> 1 when some path leads to a primary
            output (static output-reachability mask; nets with 0 can
            never propagate a fault effect).
        cc0 / cc1: SCOAP-style controllability estimates per net: the
            minimum number of PI assignments (plus gate hops) needed to
            justify a 0 / 1.  Primary inputs cost 1.
    """

    driver_op: tuple[int, ...]
    is_pi: bytes
    fanout_ops: tuple[tuple[int, ...], ...]
    inverting: bytes
    objective_value: bytes
    po_reachable: bytes
    cc0: tuple[int, ...]
    cc1: tuple[int, ...]


@dataclasses.dataclass(frozen=True)
class PackedVectors:
    """A batch of test vectors packed bit-per-vector into rail words.

    Attributes:
        n: Number of vectors in the batch.
        mask: ``(1 << n) - 1`` — the all-vectors word.
        ones: Primary-input net index -> ones-rail word.
        zeros: Primary-input net index -> zeros-rail word.
        binary: True when no vector carries an X — every net value is
            then the complement pair ``(w, mask ^ w)``, enabling the
            single-rail fast path for binary-preserving faults.
    """

    n: int
    mask: int
    ones: dict[int, int]
    zeros: dict[int, int]
    binary: bool = False


def pack_vectors(
    cnet: CompiledNetwork,
    vectors: Sequence[Mapping[str, int]],
) -> PackedVectors:
    """Pack test vectors for ``cnet``; missing / X entries stay X.

    Mirrors the serial simulator's convention that a primary input
    absent from the vector is unknown.
    """
    n = len(vectors)
    ones: dict[int, int] = {}
    zeros: dict[int, int] = {}
    for net, idx in cnet.pi_items:
        o = z = 0
        for k, vector in enumerate(vectors):
            value = vector.get(net, X)
            if value == 1:
                o |= 1 << k
            elif value == 0:
                z |= 1 << k
        ones[idx] = o
        zeros[idx] = z
    mask = (1 << n) - 1 if n else 0
    binary = all(ones[i] | zeros[i] == mask for i in ones)
    return PackedVectors(n=n, mask=mask, ones=ones, zeros=zeros,
                         binary=binary)


@dataclasses.dataclass(frozen=True)
class FaultInjection:
    """Index-level fault overrides for one compiled simulation.

    See the module docstring for the override contract.  All maps are
    optional; an empty injection is the fault-free machine.

    Attributes:
        lines: Net index -> forced constant (0/1), applied at every
            write of that net (stem stuck-at faults).
        pins: ``(op_index, pin_index)`` -> forced constant (0/1),
            applied to that single gate input (branch stuck-at faults).
        tables: Op index -> faulty local truth table (binary input
            tuple -> 0/1/X) replacing the gate function (polarity
            faults and other functional faults).
        words: Net index -> forced ``(ones, zeros)`` rail words,
            applied like a line override but with per-vector values
            (stuck-open retained-value injection).
    """

    lines: Mapping[int, int] = dataclasses.field(default_factory=dict)
    pins: Mapping[tuple[int, int], int] = dataclasses.field(
        default_factory=dict
    )
    tables: Mapping[int, Mapping[tuple[int, ...], int]] = dataclasses.field(
        default_factory=dict
    )
    words: Mapping[int, tuple[int, int]] = dataclasses.field(
        default_factory=dict
    )


def minterm_word(
    pin_words: Sequence[tuple[int, int]],
    minterm: Sequence[int],
    mask: int,
) -> int:
    """Word of vectors whose pins definitely equal ``minterm``.

    A vector with any X pin matches no minterm (the serial engines
    treat non-binary local inputs as unresolvable).
    """
    word = mask
    for (o, z), bit in zip(pin_words, minterm):
        word &= o if bit else z
        if not word:
            break
    return word


def eval_table_packed(
    table: Mapping[tuple[int, ...], int],
    pin_words: Sequence[tuple[int, int]],
    mask: int,
) -> tuple[int, int]:
    """Evaluate a local truth table over packed dual-rail pin words.

    Table values outside (0, 1) — X, Z — contribute to neither rail, so
    those vectors come out X, matching the serial gate-override path.
    """
    ones = 0
    zeros = 0
    for minterm, value in table.items():
        if value == 1:
            ones |= minterm_word(pin_words, minterm, mask)
        elif value == 0:
            zeros |= minterm_word(pin_words, minterm, mask)
    return ones, zeros


def _eval_gate(
    code: int, pw: Sequence[tuple[int, int]]
) -> tuple[int, int]:
    """Dual-rail evaluation of one opcode over packed pin words."""
    a1, a0 = pw[0]
    if code == OP_BUF:
        return a1, a0
    if code == OP_INV:
        return a0, a1
    if code == OP_AND or code == OP_NAND:
        o, z = a1, a0
        for b1, b0 in pw[1:]:
            o &= b1
            z |= b0
        return (z, o) if code == OP_NAND else (o, z)
    if code == OP_OR or code == OP_NOR:
        o, z = a1, a0
        for b1, b0 in pw[1:]:
            o |= b1
            z &= b0
        return (z, o) if code == OP_NOR else (o, z)
    if code == OP_XOR or code == OP_XNOR:
        o, z = a1, a0
        for b1, b0 in pw[1:]:
            o, z = (o & b0) | (z & b1), (o & b1) | (z & b0)
        return (z, o) if code == OP_XNOR else (o, z)
    # OP_MAJ / OP_MIN
    b1, b0 = pw[1]
    c1, c0 = pw[2]
    o = (a1 & b1) | (b1 & c1) | (a1 & c1)
    z = (a0 & b0) | (b0 & c0) | (a0 & c0)
    return (z, o) if code == OP_MIN else (o, z)


def _eval_gate_binary(
    code: int, pv: Sequence[int], mask: int
) -> int:
    """Single-rail (no-X) evaluation of one opcode over packed words."""
    a = pv[0]
    if code == OP_BUF:
        return a
    if code == OP_INV:
        return a ^ mask
    if code == OP_AND or code == OP_NAND:
        for b in pv[1:]:
            a &= b
        return a ^ mask if code == OP_NAND else a
    if code == OP_OR or code == OP_NOR:
        for b in pv[1:]:
            a |= b
        return a ^ mask if code == OP_NOR else a
    if code == OP_XOR or code == OP_XNOR:
        for b in pv[1:]:
            a ^= b
        return a ^ mask if code == OP_XNOR else a
    # OP_MAJ / OP_MIN
    b, c = pv[1], pv[2]
    out = (a & b) | (b & c) | (a & c)
    return out ^ mask if code == OP_MIN else out


class CompiledNetwork:
    """A :class:`~repro.logic.network.Network` flattened for speed.

    Build once per network (``network.compiled()`` caches the instance
    alongside the levelization cache) and reuse across any number of
    batches and fault injections.

    Attributes:
        network: The source network.
        net_names: Dense index -> net name.
        net_index: Net name -> dense index.
        pi_index / po_index: Primary input/output net indices, in the
            network's declared order.
        ops: Per-gate ``(opcode, output_index, input_indices)`` in
            topological order.
        gate_op: Gate name -> position in :attr:`ops`.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        order = network.levelized()
        self.net_index: dict[str, int] = {}
        self.net_names: list[str] = []

        def index_of(net: str) -> int:
            idx = self.net_index.get(net)
            if idx is None:
                idx = len(self.net_names)
                self.net_index[net] = idx
                self.net_names.append(net)
            return idx

        self.pi_index = [index_of(n) for n in network.primary_inputs]
        self.pi_items = list(
            zip(network.primary_inputs, self.pi_index)
        )
        self.ops: list[tuple[int, int, tuple[int, ...]]] = []
        self.gate_op: dict[str, int] = {}
        op_gtypes: list[str] = []
        for gate in order:
            ins = tuple(index_of(n) for n in gate.inputs)
            out = index_of(gate.output)
            self.gate_op[gate.name] = len(self.ops)
            self.ops.append((_OPCODE[gate.gtype], out, ins))
            op_gtypes.append(gate.gtype)
        # Snapshot of the source gate types, aligned with ops: derived
        # structures must never re-read the live network — a memoized
        # CompiledNetwork can outlive (or be shared across) instances
        # whose gate sets have since been edited.
        self.op_gtypes = tuple(op_gtypes)
        self.po_index = [index_of(n) for n in network.primary_outputs]
        self.n_nets = len(self.net_names)
        # Earliest op position touching each net (its driver, or for
        # primary inputs the first reader) — lets delta resimulation
        # skip straight to a fault's cone.
        self.net_first_op = [len(self.ops)] * self.n_nets
        first = self.net_first_op
        for pos, (_, out, ins) in enumerate(self.ops):
            for i in ins:
                if first[i] > pos:
                    first[i] = pos
            if first[out] > pos:
                first[out] = pos
        self._structures: NetworkStructures | None = None
        # Reusable queued-op flags for the hot delta path; every flag
        # is cleared again by the time a delta walk returns.
        self._delta_scratch = bytearray(len(self.ops))

    # ------------------------------------------------------------------
    def structures(self) -> NetworkStructures:
        """Precomputed search structures (built lazily, cached)."""
        if self._structures is None:
            self._structures = self._build_structures()
        return self._structures

    def _build_structures(self) -> NetworkStructures:
        from repro.logic.eval import eval_binary

        n = self.n_nets
        driver_op = [-1] * n
        fanout: list[list[int]] = [[] for _ in range(n)]
        inverting = bytearray(len(self.ops))
        objective = bytearray(len(self.ops))
        for pos, (code, out, ins) in enumerate(self.ops):
            driver_op[out] = pos
            for i in ins:
                fanout[i].append(pos)
            inverting[pos] = 1 if code in INVERTING_OPS else 0
            objective[pos] = _OBJECTIVE_VALUE.get(code, 0)
        is_pi = bytearray(n)
        for idx in self.pi_index:
            is_pi[idx] = 1
        # Static output reachability: reverse sweep over the ops.
        po_reachable = bytearray(n)
        for idx in self.po_index:
            po_reachable[idx] = 1
        for _, out, ins in reversed(self.ops):
            if po_reachable[out]:
                for i in ins:
                    po_reachable[i] = 1
        # SCOAP-style controllability: cheapest binary local assignment
        # producing each output value, via the cell truth function.
        big = 1 << 30
        cc0 = [big] * n
        cc1 = [big] * n
        for idx in self.pi_index:
            cc0[idx] = cc1[idx] = 1
        for (_, out, ins), gtype in zip(self.ops, self.op_gtypes):
            best = [big, big]
            for bits in itertools.product((0, 1), repeat=len(ins)):
                cost = sum(
                    cc1[i] if bit else cc0[i]
                    for i, bit in zip(ins, bits)
                )
                value = eval_binary(gtype, bits)
                if cost < best[value]:
                    best[value] = cost
            cc0[out] = min(big, best[0] + 1)
            cc1[out] = min(big, best[1] + 1)
        return NetworkStructures(
            driver_op=tuple(driver_op),
            is_pi=bytes(is_pi),
            fanout_ops=tuple(tuple(f) for f in fanout),
            inverting=bytes(inverting),
            objective_value=bytes(objective),
            po_reachable=bytes(po_reachable),
            cc0=tuple(cc0),
            cc1=tuple(cc1),
        )

    # ------------------------------------------------------------------
    def simulate(
        self,
        packed: PackedVectors,
        fault: FaultInjection | None = None,
    ) -> PackedState:
        """Simulate the whole batch; returns (ones, zeros) rail arrays."""
        mask = packed.mask
        lines = fault.lines if fault is not None else None
        pins = fault.pins if fault is not None else None
        tables = fault.tables if fault is not None else None
        words = fault.words if fault is not None else None
        forced = (lines or words) if fault is not None else None

        ones = [0] * self.n_nets
        zeros = [0] * self.n_nets
        for idx in self.pi_index:
            ones[idx] = packed.ones[idx]
            zeros[idx] = packed.zeros[idx]
        if forced:
            for idx in self.pi_index:
                o, z = self._force(idx, ones[idx], zeros[idx],
                                   lines, words, mask)
                ones[idx], zeros[idx] = o, z

        for pos, (code, out, ins) in enumerate(self.ops):
            pw = [(ones[i], zeros[i]) for i in ins]
            if pins:
                for k in range(len(ins)):
                    value = pins.get((pos, k))
                    if value is not None:
                        pw[k] = (mask, 0) if value else (0, mask)
            if tables and pos in tables:
                o, z = eval_table_packed(tables[pos], pw, mask)
            else:
                o, z = _eval_gate(code, pw)
            if forced:
                o, z = self._force(out, o, z, lines, words, mask)
            ones[out] = o
            zeros[out] = z
        return ones, zeros

    @staticmethod
    def _force(idx, o, z, lines, words, mask):
        if lines:
            value = lines.get(idx)
            if value is not None:
                return (mask, 0) if value else (0, mask)
        if words:
            forced = words.get(idx)
            if forced is not None:
                return forced
        return o, z

    # ------------------------------------------------------------------
    def simulate_delta(
        self,
        packed: PackedVectors,
        good: PackedState,
        fault: FaultInjection,
    ) -> dict[int, tuple[int, int]]:
        """Event-driven single-fault resimulation against a good state.

        Only the fault's actually-changing cone is recomputed: seed
        positions (override carriers and the drivers/consumers of
        forced nets) go onto a min-heap of op positions, consumers of
        changed outputs are pushed as changes surface, and a fault
        effect that dies re-converges to the good value and stops
        propagating.  Because ops are topologically ordered and fanout
        only points forward, every op is evaluated at most once with
        final input values.  Returns net index -> (ones, zeros) for
        exactly the nets that differ from ``good``.
        """
        if packed.binary and not fault.tables and not fault.words:
            mask = packed.mask
            return {
                idx: (word, mask ^ word)
                for idx, word in self._delta_binary(
                    packed, good, fault
                ).items()
            }
        gones, gzeros = good
        mask = packed.mask
        pins = fault.pins
        tables = fault.tables
        forced: dict[int, tuple[int, int]] = dict(fault.words)
        for idx, value in fault.lines.items():
            forced[idx] = (mask, 0) if value else (0, mask)

        structs = self.structures()
        fanout = structs.fanout_ops
        is_pi = structs.is_pi
        driver = structs.driver_op
        ops = self.ops
        delta: dict[int, tuple[int, int]] = {}
        queued = self._delta_scratch
        heap: list[int] = []
        for idx, fw in forced.items():
            if is_pi[idx]:
                if fw != (gones[idx], gzeros[idx]):
                    delta[idx] = fw
                    for pos in fanout[idx]:
                        if not queued[pos]:
                            queued[pos] = 1
                            heap.append(pos)
            else:
                pos = driver[idx]
                if pos >= 0 and not queued[pos]:
                    queued[pos] = 1
                    heap.append(pos)
        for pos, _pin in pins:
            if not queued[pos]:
                queued[pos] = 1
                heap.append(pos)
        for pos in tables:
            if not queued[pos]:
                queued[pos] = 1
                heap.append(pos)
        heapq.heapify(heap)
        while heap:
            pos = heapq.heappop(heap)
            queued[pos] = 0
            code, out, ins = ops[pos]
            pw = []
            for k, i in enumerate(ins):
                value = pins.get((pos, k)) if pins else None
                if value is not None:
                    pw.append((mask, 0) if value else (0, mask))
                else:
                    d = delta.get(i)
                    pw.append(d if d is not None
                              else (gones[i], gzeros[i]))
            table = tables.get(pos) if tables else None
            if table is not None:
                o, z = eval_table_packed(table, pw, mask)
            else:
                o, z = _eval_gate(code, pw)
            fw = forced.get(out)
            if fw is not None:
                o, z = fw
            if o != gones[out] or z != gzeros[out]:
                delta[out] = (o, z)
                for nxt in fanout[out]:
                    if not queued[nxt]:
                        queued[nxt] = 1
                        heapq.heappush(heap, nxt)
        return delta

    def detect_word(
        self,
        packed: PackedVectors,
        good: PackedState,
        fault: FaultInjection,
    ) -> int:
        """Campaign fast path: delta-resimulate ``fault`` and return
        the strict-difference word over the primary outputs directly."""
        if packed.binary and not fault.tables and not fault.words:
            delta = self._delta_binary(packed, good, fault)
            if not delta:
                return 0
            gones = good[0]
            diff = 0
            for idx in self.po_index:
                word = delta.get(idx)
                if word is not None:
                    diff |= word ^ gones[idx]
            return diff
        return self.output_diff_delta(
            good, self.simulate_delta(packed, good, fault)
        )

    def _delta_binary(
        self,
        packed: PackedVectors,
        good: PackedState,
        fault: FaultInjection,
    ) -> dict[int, int]:
        """Single-rail delta resimulation: X-free batch, line/pin fault.

        The zeros rail is everywhere the complement of the ones rail,
        so only ones words are propagated.  Same heap-driven fanout
        walk as :meth:`simulate_delta` — only ops inside the changing
        cone are evaluated — returning changed nets' ones words.
        """
        gones = good[0]
        mask = packed.mask
        pins = fault.pins
        lines = fault.lines
        # Fast paths for the campaign-dominant single-fault shapes: a
        # lone stem (line) or branch (pin) fault.  A stem force applies
        # at the net's every write, so the forced word *is* the net's
        # value — no driver re-evaluation needed — and an unexcited
        # fault (forced word equals the good word) changes nothing.
        if not pins and len(lines) == 1:
            idx, value = next(iter(lines.items()))
            fw = mask if value else 0
            if fw == gones[idx]:
                return {}
            return self._walk_binary({idx: fw}, gones, mask)
        if not lines and len(pins) == 1:
            (pos, k), value = next(iter(pins.items()))
            code, out, ins = self.ops[pos]
            fw = mask if value else 0
            if fw == gones[ins[k]]:
                return {}
            pv = [gones[i] for i in ins]
            pv[k] = fw
            word = _eval_gate_binary(code, pv, mask)
            if word == gones[out]:
                return {}
            return self._walk_binary({out: word}, gones, mask)
        structs = self.structures()
        fanout = structs.fanout_ops
        is_pi = structs.is_pi
        driver = structs.driver_op
        ops = self.ops
        delta: dict[int, int] = {}
        queued = self._delta_scratch
        heap: list[int] = []
        forced = {
            idx: mask if value else 0
            for idx, value in lines.items()
        }
        for idx, fw in forced.items():
            if is_pi[idx]:
                if fw != gones[idx]:
                    delta[idx] = fw
                    for pos in fanout[idx]:
                        if not queued[pos]:
                            queued[pos] = 1
                            heap.append(pos)
            else:
                pos = driver[idx]
                if pos >= 0 and not queued[pos]:
                    queued[pos] = 1
                    heap.append(pos)
        for pos, _pin in pins:
            if not queued[pos]:
                queued[pos] = 1
                heap.append(pos)
        heapq.heapify(heap)
        heappush = heapq.heappush
        heappop = heapq.heappop
        get_delta = delta.get
        get_forced = forced.get
        while heap:
            pos = heappop(heap)
            queued[pos] = 0
            code, out, ins = ops[pos]
            if pins:
                pv = []
                for k, i in enumerate(ins):
                    value = pins.get((pos, k))
                    if value is not None:
                        pv.append(mask if value else 0)
                    else:
                        d = get_delta(i)
                        pv.append(d if d is not None else gones[i])
            else:
                pv = [
                    d if (d := get_delta(i)) is not None
                    else gones[i]
                    for i in ins
                ]
            word = _eval_gate_binary(code, pv, mask)
            fw = get_forced(out)
            if fw is not None:
                word = fw
            if word != gones[out]:
                delta[out] = word
                for nxt in fanout[out]:
                    if not queued[nxt]:
                        queued[nxt] = 1
                        heappush(heap, nxt)
        return delta

    def _walk_binary(
        self, delta: dict[int, int], gones: list[int], mask: int
    ) -> dict[int, int]:
        """Propagate seeded single-rail deltas through the fanout cones.

        ``delta`` maps already-changed nets to their faulty ones words;
        no per-op overrides apply (the single-fault fast paths fold the
        override into the seed), so the walk is pure gate evaluation.
        """
        fanout = self.structures().fanout_ops
        ops = self.ops
        queued = self._delta_scratch
        heap: list[int] = []
        for idx in delta:
            for pos in fanout[idx]:
                if not queued[pos]:
                    queued[pos] = 1
                    heap.append(pos)
        heapq.heapify(heap)
        heappush = heapq.heappush
        heappop = heapq.heappop
        get_delta = delta.get
        while heap:
            pos = heappop(heap)
            queued[pos] = 0
            code, out, ins = ops[pos]
            pv = [
                d if (d := get_delta(i)) is not None else gones[i]
                for i in ins
            ]
            word = _eval_gate_binary(code, pv, mask)
            if word != gones[out]:
                delta[out] = word
                for nxt in fanout[out]:
                    if not queued[nxt]:
                        queued[nxt] = 1
                        heappush(heap, nxt)
        return delta

    def output_diff_delta(
        self, good: PackedState, delta: Mapping[int, tuple[int, int]]
    ) -> int:
        """Strict-difference word over POs for a delta resimulation."""
        gones, gzeros = good
        diff = 0
        for idx in self.po_index:
            d = delta.get(idx)
            if d is not None:
                diff |= (gones[idx] & d[1]) | (gzeros[idx] & d[0])
        return diff

    # ------------------------------------------------------------------
    def output_diff(self, good: PackedState, bad: PackedState) -> int:
        """Word of vectors on which the machines *definitely* differ.

        Matches :func:`repro.logic.simulator.vectors_differ` in strict
        mode: an X on either side is never counted as a difference.
        """
        go, gz = good
        bo, bz = bad
        diff = 0
        for idx in self.po_index:
            diff |= (go[idx] & bz[idx]) | (gz[idx] & bo[idx])
        return diff

    def gate_input_words(
        self, state: PackedState, gate: str
    ) -> list[tuple[int, int]]:
        """Dual-rail words on one gate's input pins."""
        ones, zeros = state
        _, _, ins = self.ops[self.gate_op[gate]]
        return [(ones[i], zeros[i]) for i in ins]

    def gate_output_index(self, gate: str) -> int:
        """Net index of one gate's output."""
        return self.ops[self.gate_op[gate]][1]

    def outputs_unpacked(
        self, state: PackedState, k: int
    ) -> tuple[int, ...]:
        """Ternary primary-output values of vector ``k`` (debug aid)."""
        ones, zeros = state
        bit = 1 << k
        return tuple(
            1 if ones[i] & bit else 0 if zeros[i] & bit else X
            for i in self.po_index
        )

    def __repr__(self) -> str:
        return (
            f"CompiledNetwork({self.network.name!r}: "
            f"{self.n_nets} nets, {len(self.ops)} ops)"
        )


# ---------------------------------------------------------------------------
# Per-structure compilation memo
# ---------------------------------------------------------------------------

#: Structural fingerprint -> CompiledNetwork.  Bounded FIFO so runaway
#: generators (random-circuit sweeps) cannot grow it without limit.
_COMPILE_MEMO: dict[tuple, CompiledNetwork] = {}
_COMPILE_MEMO_MAX = 64

#: Hit/miss/eviction counters for the memo (``instance_hits`` are the
#: per-``Network`` short-circuit, ``hits`` the cross-instance memo).
#: Plain dict so the core stays free of the service layer; the metrics
#: registry reads it through a collector
#: (:func:`repro.service.metrics.install_cache_collectors`) and
#: ``repro cache stats`` renders it.
_MEMO_STATS = {"instance_hits": 0, "hits": 0, "misses": 0, "evictions": 0}


def compile_memo_stats() -> dict[str, int]:
    """Snapshot of the :func:`compile_network` memo counters."""
    return dict(_MEMO_STATS)


def clear_compile_memo() -> None:
    """Drop every memoised compiled network (and reset the counters).
    Networks keep their per-instance cache; use
    :func:`invalidate_network` to drop that too."""
    _COMPILE_MEMO.clear()
    for key in _MEMO_STATS:
        _MEMO_STATS[key] = 0


def structural_fingerprint(network: Network) -> tuple:
    """Cheap structural identity of a network.

    Two networks with equal fingerprints levelize and compile to the
    same flattened form: the fingerprint covers the name, the PI/PO
    lists (ordered — order defines the packed-vector layout) and the
    full gate set.  The exact tuple is used as the memo key, so there
    is no hash-collision risk.
    """
    return (
        network.name,
        tuple(network.primary_inputs),
        tuple(network.primary_outputs),
        tuple(sorted(
            (g.name, g.gtype, g.inputs, g.output)
            for g in network.gates.values()
        )),
        tuple(network.flops.items()),
    )


def compile_network(network: Network) -> CompiledNetwork:
    """Compile ``network``, memoized on its structural fingerprint.

    The per-instance cache (``network._compiled``) short-circuits the
    common case; on a miss, structurally identical networks built in
    earlier campaigns share one :class:`CompiledNetwork` (and thus one
    levelization, one op array and one :class:`NetworkStructures`).
    """
    cnet = network._compiled
    if cnet is not None:
        _MEMO_STATS["instance_hits"] += 1
        return cnet
    if network.flops:
        from repro.logic.network import SequentialNetworkError

        raise SequentialNetworkError(
            f"{network.name!r} is sequential ({len(network.flops)} "
            f"flops); time-frame expand it first: "
            f"repro.logic.sequential.unroll_network(network, n_frames)"
        )
    key = structural_fingerprint(network)
    cnet = _COMPILE_MEMO.get(key)
    if cnet is None:
        _MEMO_STATS["misses"] += 1
        cnet = CompiledNetwork(network)
        while len(_COMPILE_MEMO) >= _COMPILE_MEMO_MAX:
            del _COMPILE_MEMO[next(iter(_COMPILE_MEMO))]
            _MEMO_STATS["evictions"] += 1
        _COMPILE_MEMO[key] = cnet
    else:
        _MEMO_STATS["hits"] += 1
    network._compiled = cnet
    return cnet


def invalidate_network(network: Network) -> None:
    """Explicitly drop every compiled form of ``network``.

    Structural edits through the :class:`~repro.logic.network.Network`
    API already clear the per-instance cache; call this for networks
    mutated behind the API (or to force a recompile) so the shared memo
    cannot serve a stale flattened form.
    """
    network._compiled = None
    network._levelized = None
    _COMPILE_MEMO.pop(structural_fingerprint(network), None)
