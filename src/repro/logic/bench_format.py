"""Text netlist format (ISCAS .bench dialect with CP gate types).

Example::

    # c17-style netlist
    INPUT(a)
    INPUT(b)
    OUTPUT(y)
    n1 = NAND2(a, b)
    y  = XOR2(n1, a)

Gate names are auto-derived from output nets (``g_<net>``) on parsing;
writing emits one line per gate in topological order.

Sequential netlists in the ISCAS-89 style are supported through the
single-clock D flip-flop primitive: ``q = DFF(d)`` lines parse into
:meth:`Network.add_flop <repro.logic.network.Network.add_flop>` entries
and round-trip through :func:`write_bench` (flop lines are emitted in
parse order, right after the IO declarations, so a parse→write→parse
cycle is a fixed point).  Other state-holding primitives (``DLATCH``,
``SDFF`` …) and gate types outside the CP cell library raise
:class:`UnsupportedBenchFeature` with the offending line number, so a
corpus ingest failure points at the exact netlist line instead of
surfacing as a bare ``KeyError``/``ValueError`` from deeper layers.
"""

from __future__ import annotations

import re

from repro.logic.network import GATE_ARITY, Network

_LINE_RE = re.compile(
    r"^\s*(?P<out>[A-Za-z0-9_.\[\]]+)\s*=\s*"
    r"(?P<type>[A-Za-z0-9]+)\s*\((?P<args>[^)]*)\)\s*$"
)
_IO_RE = re.compile(
    r"^\s*(?P<kind>INPUT|OUTPUT)\s*\((?P<net>[A-Za-z0-9_.\[\]]+)\)\s*$"
)

#: Aliases accepted on parse for convenience / ISCAS compatibility.
_TYPE_ALIASES = {
    "NOT": "INV",
    "BUFF": "BUF",
    "NAND": "NAND2",
    "NOR": "NOR2",
    "AND": "AND2",
    "OR": "OR2",
    "XOR": "XOR2",
    "XNOR": "XNOR2",
    "MAJ": "MAJ3",
    "MIN": "MIN3",
}


class UnsupportedBenchFeature(ValueError):
    """A .bench line uses a feature outside the modelled subset.

    Raised with the offending line number for unsupported state-holding
    primitives (``DLATCH`` etc. — plain ``DFF`` is supported) and
    unknown gate types.
    """


#: The supported sequential primitive: single-clock edge-triggered DFF.
_FLOP_TYPE = "DFF"

#: Other sequential / state-holding primitive names seen in the wild
#: (ISCAS-89 derivatives).  Recognised so the error says "sequential"
#: instead of "unknown".
_UNSUPPORTED_SEQUENTIAL_TYPES = frozenset({
    "SDFF", "DFFSR", "DFFRS", "DLATCH", "LATCH", "FF", "SFF",
})


def _canonical_type(raw: str, n_args: int, lineno: int = 0) -> str:
    gtype = raw.upper()
    if gtype in GATE_ARITY:
        return gtype
    # Arity-suffixed resolution first (NAND with 3 args -> NAND3), then
    # the fixed aliases (NOT -> INV etc.).
    candidate = f"{gtype}{n_args}"
    if candidate in GATE_ARITY:
        return candidate
    if gtype in _TYPE_ALIASES:
        return _TYPE_ALIASES[gtype]
    if gtype in _UNSUPPORTED_SEQUENTIAL_TYPES:
        raise UnsupportedBenchFeature(
            f"line {lineno}: sequential element {raw!r} is not "
            f"supported (only single-clock DFF flops are modelled)"
        )
    raise UnsupportedBenchFeature(
        f"line {lineno}: unknown gate type {raw!r}; "
        f"supported types: {sorted(GATE_ARITY)}"
    )


def parse_bench(text: str, name: str = "") -> Network:
    """Parse a .bench-style netlist into a :class:`Network`."""
    network = Network(name)
    pending_gates: list[tuple[str, str, list[str]]] = []
    pending_flops: list[tuple[str, str]] = []
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            if io_match.group("kind") == "INPUT":
                network.add_input(io_match.group("net"))
            else:
                network.add_output(io_match.group("net"))
            continue
        gate_match = _LINE_RE.match(line)
        if gate_match:
            out = gate_match.group("out")
            args = [
                a.strip()
                for a in gate_match.group("args").split(",")
                if a.strip()
            ]
            if gate_match.group("type").upper() == _FLOP_TYPE:
                if len(args) != 1:
                    raise UnsupportedBenchFeature(
                        f"line {lineno}: DFF takes exactly one data "
                        f"input, got {len(args)} (set/reset/enable "
                        f"pins are not modelled)"
                    )
                pending_flops.append((out, args[0]))
                continue
            gtype = _canonical_type(
                gate_match.group("type"), len(args), lineno
            )
            pending_gates.append((out, gtype, args))
            continue
        raise ValueError(f"line {lineno}: cannot parse {raw_line!r}")
    for out, data in pending_flops:
        network.add_flop(out, data)
    for out, gtype, args in pending_gates:
        network.add_gate(f"g_{out}", gtype, args, out)
    network.validate()
    return network


def write_bench(network: Network) -> str:
    """Serialise a network back to the .bench dialect."""
    lines = [f"# {network.name}" if network.name else "# network"]
    for net in network.primary_inputs:
        lines.append(f"INPUT({net})")
    for net in network.primary_outputs:
        lines.append(f"OUTPUT({net})")
    for output, data in network.flops.items():
        lines.append(f"{output} = DFF({data})")
    for gate in network.levelized():
        args = ", ".join(gate.inputs)
        lines.append(f"{gate.output} = {gate.gtype}({args})")
    return "\n".join(lines) + "\n"
