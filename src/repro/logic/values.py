"""Multi-valued logic for simulation and test generation.

Two value systems are used:

* **Ternary** (0, 1, X) for plain logic simulation with unknowns —
  :data:`ZERO`, :data:`ONE`, :data:`X`, plus :data:`Z` (high impedance /
  charge retention) used by the switch-level engine.
* **Five-valued D-calculus** (0, 1, X, D, D') for PODEM-style ATPG:
  a :class:`DValue` carries a (good-machine, faulty-machine) component
  pair; ``D`` means good 1 / faulty 0, ``Dbar`` the converse.
"""

from __future__ import annotations

import dataclasses

ZERO = 0
ONE = 1
X = 2
Z = 3

_TERNARY_NAMES = {ZERO: "0", ONE: "1", X: "X", Z: "Z"}


def ternary_name(value: int) -> str:
    """Printable name of a ternary/Z logic value."""
    try:
        return _TERNARY_NAMES[value]
    except KeyError:
        raise ValueError(f"not a logic value: {value!r}") from None


def t_not(a: int) -> int:
    """Ternary NOT (Z treated as unknown)."""
    if a == ZERO:
        return ONE
    if a == ONE:
        return ZERO
    return X


def t_and(a: int, b: int) -> int:
    """Ternary AND (Kleene)."""
    if a == ZERO or b == ZERO:
        return ZERO
    if a == ONE and b == ONE:
        return ONE
    return X


def t_or(a: int, b: int) -> int:
    """Ternary OR (Kleene)."""
    if a == ONE or b == ONE:
        return ONE
    if a == ZERO and b == ZERO:
        return ZERO
    return X


def t_xor(a: int, b: int) -> int:
    """Ternary XOR."""
    if X in (a, b) or Z in (a, b):
        return X
    return a ^ b


def t_and_all(values) -> int:
    out = ONE
    for v in values:
        out = t_and(out, v)
    return out


def t_or_all(values) -> int:
    out = ZERO
    for v in values:
        out = t_or(out, v)
    return out


def t_xor_all(values) -> int:
    out = ZERO
    for v in values:
        out = t_xor(out, v)
    return out


@dataclasses.dataclass(frozen=True)
class DValue:
    """A five-valued D-calculus value: (good, faulty) ternary components."""

    good: int
    faulty: int

    def __post_init__(self) -> None:
        for component in (self.good, self.faulty):
            if component not in (ZERO, ONE, X):
                raise ValueError(
                    f"DValue components must be 0/1/X, got {component!r}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DValue({self.name})"

    @property
    def name(self) -> str:
        table = {
            (ZERO, ZERO): "0",
            (ONE, ONE): "1",
            (ONE, ZERO): "D",
            (ZERO, ONE): "D'",
        }
        return table.get((self.good, self.faulty), "X")

    @property
    def is_known(self) -> bool:
        return self.good != X and self.faulty != X

    @property
    def is_fault_effect(self) -> bool:
        """True for D or D': good and faulty machines disagree."""
        return (
            self.good != X
            and self.faulty != X
            and self.good != self.faulty
        )


D_ZERO = DValue(ZERO, ZERO)
D_ONE = DValue(ONE, ONE)
D_X = DValue(X, X)
D = DValue(ONE, ZERO)
DBAR = DValue(ZERO, ONE)


def from_ternary(value: int) -> DValue:
    """Lift a ternary value into the D-calculus (no fault effect)."""
    if value in (X, Z):
        return D_X
    return DValue(value, value)


def d_not(a: DValue) -> DValue:
    return DValue(t_not(a.good), t_not(a.faulty))


def d_and(a: DValue, b: DValue) -> DValue:
    return DValue(t_and(a.good, b.good), t_and(a.faulty, b.faulty))


def d_or(a: DValue, b: DValue) -> DValue:
    return DValue(t_or(a.good, b.good), t_or(a.faulty, b.faulty))


def d_xor(a: DValue, b: DValue) -> DValue:
    return DValue(t_xor(a.good, b.good), t_xor(a.faulty, b.faulty))
