"""Gate evaluation functions over binary, ternary and D-calculus values."""

from __future__ import annotations

from typing import Callable, Sequence

from repro.logic.values import (
    DValue,
    d_and,
    d_not,
    d_or,
    d_xor,
    t_and_all,
    t_not,
    t_or_all,
    t_xor_all,
)

# ---------------------------------------------------------------------------
# Binary (fast path, ints 0/1)
# ---------------------------------------------------------------------------

BINARY_FUNCS: dict[str, Callable[[Sequence[int]], int]] = {
    "BUF": lambda v: v[0],
    "INV": lambda v: 1 - v[0],
    "AND2": lambda v: v[0] & v[1],
    "AND3": lambda v: v[0] & v[1] & v[2],
    "OR2": lambda v: v[0] | v[1],
    "OR3": lambda v: v[0] | v[1] | v[2],
    "NAND2": lambda v: 1 - (v[0] & v[1]),
    "NAND3": lambda v: 1 - (v[0] & v[1] & v[2]),
    "NOR2": lambda v: 1 - (v[0] | v[1]),
    "NOR3": lambda v: 1 - (v[0] | v[1] | v[2]),
    "XOR2": lambda v: v[0] ^ v[1],
    "XNOR2": lambda v: 1 - (v[0] ^ v[1]),
    "XOR3": lambda v: v[0] ^ v[1] ^ v[2],
    "MAJ3": lambda v: 1 if v[0] + v[1] + v[2] >= 2 else 0,
    "MIN3": lambda v: 0 if v[0] + v[1] + v[2] >= 2 else 1,
}


def eval_binary(gtype: str, inputs: Sequence[int]) -> int:
    """Evaluate a gate over 0/1 inputs."""
    return BINARY_FUNCS[gtype](inputs)


# ---------------------------------------------------------------------------
# Ternary (0/1/X)
# ---------------------------------------------------------------------------

def eval_ternary(gtype: str, inputs: Sequence[int]) -> int:
    """Evaluate a gate over ternary inputs with Kleene X-propagation."""
    if gtype == "BUF":
        return inputs[0] if inputs[0] in (0, 1) else 2
    if gtype == "INV":
        return t_not(inputs[0])
    if gtype in ("AND2", "AND3"):
        return t_and_all(inputs)
    if gtype in ("OR2", "OR3"):
        return t_or_all(inputs)
    if gtype in ("NAND2", "NAND3"):
        return t_not(t_and_all(inputs))
    if gtype in ("NOR2", "NOR3"):
        return t_not(t_or_all(inputs))
    if gtype in ("XOR2", "XOR3"):
        return t_xor_all(inputs)
    if gtype == "XNOR2":
        return t_not(t_xor_all(inputs))
    if gtype in ("MAJ3", "MIN3"):
        ones = sum(1 for v in inputs if v == 1)
        zeros = sum(1 for v in inputs if v == 0)
        if ones >= 2:
            value = 1
        elif zeros >= 2:
            value = 0
        else:
            value = 2
        if gtype == "MIN3":
            value = t_not(value)
        return value
    raise ValueError(f"unknown gate type {gtype!r}")


# ---------------------------------------------------------------------------
# D-calculus (five-valued, for PODEM)
# ---------------------------------------------------------------------------

def eval_dvalue(gtype: str, inputs: Sequence[DValue]) -> DValue:
    """Evaluate a gate over D-calculus values."""
    if gtype == "BUF":
        return inputs[0]
    if gtype == "INV":
        return d_not(inputs[0])
    if gtype in ("AND2", "AND3"):
        out = inputs[0]
        for v in inputs[1:]:
            out = d_and(out, v)
        return out
    if gtype in ("OR2", "OR3"):
        out = inputs[0]
        for v in inputs[1:]:
            out = d_or(out, v)
        return out
    if gtype in ("NAND2", "NAND3"):
        out = inputs[0]
        for v in inputs[1:]:
            out = d_and(out, v)
        return d_not(out)
    if gtype in ("NOR2", "NOR3"):
        out = inputs[0]
        for v in inputs[1:]:
            out = d_or(out, v)
        return d_not(out)
    if gtype in ("XOR2", "XOR3"):
        out = inputs[0]
        for v in inputs[1:]:
            out = d_xor(out, v)
        return out
    if gtype == "XNOR2":
        return d_not(d_xor(inputs[0], inputs[1]))
    if gtype == "MAJ3":
        a, b, c = inputs
        return d_or(d_or(d_and(a, b), d_and(b, c)), d_and(a, c))
    if gtype == "MIN3":
        a, b, c = inputs
        return d_not(d_or(d_or(d_and(a, b), d_and(b, c)), d_and(a, c)))
    raise ValueError(f"unknown gate type {gtype!r}")


# ---------------------------------------------------------------------------
# Controlling / inversion properties (used by PODEM backtrace)
# ---------------------------------------------------------------------------

#: Gate type -> (controlling input value, output inversion) for the types
#: with a controlling value; XOR-like and MAJ-like gates have none.
CONTROLLING = {
    "AND2": (0, False),
    "AND3": (0, False),
    "NAND2": (0, True),
    "NAND3": (0, True),
    "OR2": (1, False),
    "OR3": (1, False),
    "NOR2": (1, True),
    "NOR3": (1, True),
}

INVERTING = {"INV", "NAND2", "NAND3", "NOR2", "NOR3", "XNOR2", "MIN3"}
