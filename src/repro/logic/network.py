"""Gate-level networks (combinational core plus D flip-flops).

A :class:`Network` is a DAG of library gates over named nets, with
primary inputs and outputs.  Gate types map 1:1 onto the transistor-level
cells of :mod:`repro.gates.library` (plus ``BUF``, and the AND/OR
conveniences which map to NAND/NOR followed by an inverter on silicon).
The ATPG engine (:mod:`repro.atpg`) runs on these networks; the
:mod:`repro.logic.bench_format` module reads/writes them as text.

Sequential circuits are modelled with edge-triggered D flip-flops
(:meth:`Network.add_flop`): a flop's output net behaves like a primary
input within one clock cycle, and the value on its data net is latched
at the cycle boundary.  The combinational engines never see flops —
:mod:`repro.logic.sequential` time-frame expands a sequential network
into a plain combinational one first, and :func:`compile_network
<repro.logic.compiled.compile_network>` raises
:class:`SequentialNetworkError` if handed an un-expanded one.
"""

from __future__ import annotations

import dataclasses

GATE_ARITY = {
    "BUF": 1,
    "INV": 1,
    "NAND2": 2,
    "NAND3": 3,
    "NOR2": 2,
    "NOR3": 3,
    "AND2": 2,
    "AND3": 3,
    "OR2": 2,
    "OR3": 3,
    "XOR2": 2,
    "XNOR2": 2,
    "XOR3": 3,
    "MAJ3": 3,
    "MIN3": 3,
}

#: Gate types realised as dynamic-polarity cells (polarity faults apply).
DP_GATE_TYPES = frozenset({"XOR2", "XNOR2", "XOR3", "MAJ3", "MIN3"})

#: Gate types realised as static-polarity cells.
SP_GATE_TYPES = frozenset(
    {"BUF", "INV", "NAND2", "NAND3", "NOR2", "NOR3",
     "AND2", "AND3", "OR2", "OR3"}
)


class SequentialNetworkError(ValueError):
    """A sequential network reached a combinational-only code path.

    Raised by :func:`repro.logic.compiled.compile_network` (and the
    serial simulator) when handed a network with flip-flops: time-frame
    expand it first via :func:`repro.logic.sequential.unroll_network`.
    """


@dataclasses.dataclass(frozen=True)
class Gate:
    """One gate instance.

    Attributes:
        name: Unique instance name.
        gtype: Gate type from :data:`GATE_ARITY`.
        inputs: Input net names (ordered).
        output: Output net name.
    """

    name: str
    gtype: str
    inputs: tuple[str, ...]
    output: str

    def __post_init__(self) -> None:
        if self.gtype not in GATE_ARITY:
            raise ValueError(f"unknown gate type {self.gtype!r}")
        if len(self.inputs) != GATE_ARITY[self.gtype]:
            raise ValueError(
                f"{self.name}: {self.gtype} takes "
                f"{GATE_ARITY[self.gtype]} inputs, got {len(self.inputs)}"
            )

    @property
    def is_dp(self) -> bool:
        return self.gtype in DP_GATE_TYPES


class Network:
    """A gate-level network (combinational, or sequential with DFFs)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.primary_inputs: list[str] = []
        self.primary_outputs: list[str] = []
        self.gates: dict[str, Gate] = {}
        #: Flop output net -> flop data net, in insertion order.
        self.flops: dict[str, str] = {}
        self._driver: dict[str, str] = {}  # net -> gate name
        self._levelized: list[Gate] | None = None
        self._compiled = None

    # ------------------------------------------------------------------
    def add_input(self, net: str) -> None:
        if net in self.primary_inputs:
            raise ValueError(f"duplicate primary input {net!r}")
        if net in self._driver:
            raise ValueError(f"net {net!r} already driven by a gate")
        if net in self.flops:
            raise ValueError(f"net {net!r} already driven by a flop")
        self.primary_inputs.append(net)
        self._levelized = None
        self._compiled = None

    def add_output(self, net: str) -> None:
        if net in self.primary_outputs:
            raise ValueError(f"duplicate primary output {net!r}")
        self.primary_outputs.append(net)
        self._levelized = None
        self._compiled = None

    def add_gate(
        self, name: str, gtype: str, inputs: list[str] | tuple[str, ...],
        output: str,
    ) -> Gate:
        if name in self.gates:
            raise ValueError(f"duplicate gate name {name!r}")
        if output in self._driver:
            raise ValueError(f"net {output!r} already driven")
        if output in self.primary_inputs:
            raise ValueError(f"net {output!r} is a primary input")
        if output in self.flops:
            raise ValueError(f"net {output!r} already driven by a flop")
        gate = Gate(name, gtype.upper(), tuple(inputs), output)
        self.gates[name] = gate
        self._driver[output] = name
        self._levelized = None
        self._compiled = None
        return gate

    def add_flop(self, output: str, data: str) -> None:
        """Add a D flip-flop driving ``output`` from ``data``.

        Within a cycle the flop output is a state net (treated like a
        pseudo primary input); at the cycle boundary it latches the
        value on ``data``.  Clock/reset are implicit (single global
        clock, as in the ISCAS-89 ``q = DFF(d)`` convention).
        """
        if output in self.flops:
            raise ValueError(f"duplicate flop output {output!r}")
        if output in self._driver:
            raise ValueError(f"net {output!r} already driven by a gate")
        if output in self.primary_inputs:
            raise ValueError(f"net {output!r} is a primary input")
        self.flops[output] = data
        self._levelized = None
        self._compiled = None

    @property
    def is_sequential(self) -> bool:
        return bool(self.flops)

    # ------------------------------------------------------------------
    def driver_of(self, net: str) -> Gate | None:
        """The gate driving ``net``, or None for primary inputs."""
        name = self._driver.get(net)
        return self.gates[name] if name is not None else None

    def fanout_of(self, net: str) -> list[Gate]:
        """Gates that consume ``net``."""
        return [g for g in self.gates.values() if net in g.inputs]

    def nets(self) -> list[str]:
        found = set(self.primary_inputs)
        for g in self.gates.values():
            found.update(g.inputs)
            found.add(g.output)
        for output, data in self.flops.items():
            found.add(output)
            found.add(data)
        return sorted(found)

    def _driven(self, net: str) -> bool:
        return (
            net in self.primary_inputs
            or net in self._driver
            or net in self.flops
        )

    def validate(self) -> None:
        """Check structural sanity: drivers exist, no loops."""
        for g in self.gates.values():
            for net in g.inputs:
                if not self._driven(net):
                    raise ValueError(
                        f"gate {g.name}: input net {net!r} has no driver"
                    )
        for output, data in self.flops.items():
            if not self._driven(data):
                raise ValueError(
                    f"flop {output!r}: data net {data!r} has no driver"
                )
        for net in self.primary_outputs:
            if not self._driven(net):
                raise ValueError(f"primary output {net!r} has no driver")
        self.levelized()  # raises on combinational loops

    def levelized(self) -> list[Gate]:
        """Gates in topological order (cached).

        Flop outputs count as placed from the start — within one clock
        cycle they are state inputs, so feedback through a flop is not
        a combinational loop.
        """
        if self._levelized is not None:
            return self._levelized
        order: list[Gate] = []
        placed: set[str] = set(self.primary_inputs)
        placed.update(self.flops)
        remaining = dict(self.gates)
        while remaining:
            ready = [
                g for g in remaining.values()
                if all(n in placed for n in g.inputs)
            ]
            if not ready:
                raise ValueError(
                    f"combinational loop or missing driver in {self.name!r}"
                )
            for g in sorted(ready, key=lambda g: g.name):
                order.append(g)
                placed.add(g.output)
                del remaining[g.name]
        self._levelized = order
        return order

    def compiled(self):
        """The flattened bit-parallel form (memoized per structure).

        Returns a :class:`repro.logic.compiled.CompiledNetwork`.  The
        per-instance cache is invalidated by any structural edit; on a
        miss the lookup goes through the process-wide
        :func:`repro.logic.compiled.compile_network` memo, so
        structurally identical networks (e.g. a benchmark rebuilt per
        campaign) share one compiled form.
        """
        if self._compiled is None:
            from repro.logic.compiled import compile_network

            compile_network(self)
        return self._compiled

    def invalidate(self) -> None:
        """Drop every cached derived form (levelization + compiled).

        The structural-edit methods call the per-instance part of this
        automatically; use it directly after mutating the network
        behind the API or to force a recompile — it also evicts the
        shared compilation memo entry.
        """
        from repro.logic.compiled import invalidate_network

        invalidate_network(self)

    def depth(self) -> int:
        """Logic depth (levels of gates on the longest path per cycle)."""
        level: dict[str, int] = {n: 0 for n in self.primary_inputs}
        level.update({n: 0 for n in self.flops})
        depth = 0
        for g in self.levelized():
            lvl = 1 + max((level.get(n, 0) for n in g.inputs), default=0)
            level[g.output] = lvl
            depth = max(depth, lvl)
        return depth

    def stats(self) -> dict[str, int]:
        """Size summary: gate counts by type plus totals."""
        by_type: dict[str, int] = {}
        for g in self.gates.values():
            by_type[g.gtype] = by_type.get(g.gtype, 0) + 1
        stats = {
            "gates": len(self.gates),
            "inputs": len(self.primary_inputs),
            "outputs": len(self.primary_outputs),
            "depth": self.depth(),
            **{f"n_{t.lower()}": c for t, c in sorted(by_type.items())},
        }
        if self.flops:
            stats["flops"] = len(self.flops)
        return stats

    def __repr__(self) -> str:
        flops = f", {len(self.flops)} FF" if self.flops else ""
        return (
            f"Network({self.name!r}: {len(self.primary_inputs)} PI, "
            f"{len(self.primary_outputs)} PO, {len(self.gates)} gates"
            f"{flops})"
        )
