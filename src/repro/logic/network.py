"""Gate-level combinational networks.

A :class:`Network` is a DAG of library gates over named nets, with
primary inputs and outputs.  Gate types map 1:1 onto the transistor-level
cells of :mod:`repro.gates.library` (plus ``BUF``, and the AND/OR
conveniences which map to NAND/NOR followed by an inverter on silicon).
The ATPG engine (:mod:`repro.atpg`) runs on these networks; the
:mod:`repro.logic.bench_format` module reads/writes them as text.
"""

from __future__ import annotations

import dataclasses

GATE_ARITY = {
    "BUF": 1,
    "INV": 1,
    "NAND2": 2,
    "NAND3": 3,
    "NOR2": 2,
    "NOR3": 3,
    "AND2": 2,
    "AND3": 3,
    "OR2": 2,
    "OR3": 3,
    "XOR2": 2,
    "XNOR2": 2,
    "XOR3": 3,
    "MAJ3": 3,
    "MIN3": 3,
}

#: Gate types realised as dynamic-polarity cells (polarity faults apply).
DP_GATE_TYPES = frozenset({"XOR2", "XNOR2", "XOR3", "MAJ3", "MIN3"})

#: Gate types realised as static-polarity cells.
SP_GATE_TYPES = frozenset(
    {"BUF", "INV", "NAND2", "NAND3", "NOR2", "NOR3",
     "AND2", "AND3", "OR2", "OR3"}
)


@dataclasses.dataclass(frozen=True)
class Gate:
    """One gate instance.

    Attributes:
        name: Unique instance name.
        gtype: Gate type from :data:`GATE_ARITY`.
        inputs: Input net names (ordered).
        output: Output net name.
    """

    name: str
    gtype: str
    inputs: tuple[str, ...]
    output: str

    def __post_init__(self) -> None:
        if self.gtype not in GATE_ARITY:
            raise ValueError(f"unknown gate type {self.gtype!r}")
        if len(self.inputs) != GATE_ARITY[self.gtype]:
            raise ValueError(
                f"{self.name}: {self.gtype} takes "
                f"{GATE_ARITY[self.gtype]} inputs, got {len(self.inputs)}"
            )

    @property
    def is_dp(self) -> bool:
        return self.gtype in DP_GATE_TYPES


class Network:
    """A combinational gate-level network."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.primary_inputs: list[str] = []
        self.primary_outputs: list[str] = []
        self.gates: dict[str, Gate] = {}
        self._driver: dict[str, str] = {}  # net -> gate name
        self._levelized: list[Gate] | None = None
        self._compiled = None

    # ------------------------------------------------------------------
    def add_input(self, net: str) -> None:
        if net in self.primary_inputs:
            raise ValueError(f"duplicate primary input {net!r}")
        if net in self._driver:
            raise ValueError(f"net {net!r} already driven by a gate")
        self.primary_inputs.append(net)
        self._levelized = None
        self._compiled = None

    def add_output(self, net: str) -> None:
        if net in self.primary_outputs:
            raise ValueError(f"duplicate primary output {net!r}")
        self.primary_outputs.append(net)
        self._levelized = None
        self._compiled = None

    def add_gate(
        self, name: str, gtype: str, inputs: list[str] | tuple[str, ...],
        output: str,
    ) -> Gate:
        if name in self.gates:
            raise ValueError(f"duplicate gate name {name!r}")
        if output in self._driver:
            raise ValueError(f"net {output!r} already driven")
        if output in self.primary_inputs:
            raise ValueError(f"net {output!r} is a primary input")
        gate = Gate(name, gtype.upper(), tuple(inputs), output)
        self.gates[name] = gate
        self._driver[output] = name
        self._levelized = None
        self._compiled = None
        return gate

    # ------------------------------------------------------------------
    def driver_of(self, net: str) -> Gate | None:
        """The gate driving ``net``, or None for primary inputs."""
        name = self._driver.get(net)
        return self.gates[name] if name is not None else None

    def fanout_of(self, net: str) -> list[Gate]:
        """Gates that consume ``net``."""
        return [g for g in self.gates.values() if net in g.inputs]

    def nets(self) -> list[str]:
        found = set(self.primary_inputs)
        for g in self.gates.values():
            found.update(g.inputs)
            found.add(g.output)
        return sorted(found)

    def validate(self) -> None:
        """Check structural sanity: drivers exist, no loops."""
        for g in self.gates.values():
            for net in g.inputs:
                if net not in self.primary_inputs and net not in self._driver:
                    raise ValueError(
                        f"gate {g.name}: input net {net!r} has no driver"
                    )
        for net in self.primary_outputs:
            if net not in self._driver and net not in self.primary_inputs:
                raise ValueError(f"primary output {net!r} has no driver")
        self.levelized()  # raises on combinational loops

    def levelized(self) -> list[Gate]:
        """Gates in topological order (cached)."""
        if self._levelized is not None:
            return self._levelized
        order: list[Gate] = []
        placed: set[str] = set(self.primary_inputs)
        remaining = dict(self.gates)
        while remaining:
            ready = [
                g for g in remaining.values()
                if all(n in placed for n in g.inputs)
            ]
            if not ready:
                raise ValueError(
                    f"combinational loop or missing driver in {self.name!r}"
                )
            for g in sorted(ready, key=lambda g: g.name):
                order.append(g)
                placed.add(g.output)
                del remaining[g.name]
        self._levelized = order
        return order

    def compiled(self):
        """The flattened bit-parallel form (memoized per structure).

        Returns a :class:`repro.logic.compiled.CompiledNetwork`.  The
        per-instance cache is invalidated by any structural edit; on a
        miss the lookup goes through the process-wide
        :func:`repro.logic.compiled.compile_network` memo, so
        structurally identical networks (e.g. a benchmark rebuilt per
        campaign) share one compiled form.
        """
        if self._compiled is None:
            from repro.logic.compiled import compile_network

            compile_network(self)
        return self._compiled

    def invalidate(self) -> None:
        """Drop every cached derived form (levelization + compiled).

        The structural-edit methods call the per-instance part of this
        automatically; use it directly after mutating the network
        behind the API or to force a recompile — it also evicts the
        shared compilation memo entry.
        """
        from repro.logic.compiled import invalidate_network

        invalidate_network(self)

    def depth(self) -> int:
        """Logic depth (levels of gates on the longest path)."""
        level: dict[str, int] = {n: 0 for n in self.primary_inputs}
        depth = 0
        for g in self.levelized():
            lvl = 1 + max((level.get(n, 0) for n in g.inputs), default=0)
            level[g.output] = lvl
            depth = max(depth, lvl)
        return depth

    def stats(self) -> dict[str, int]:
        """Size summary: gate counts by type plus totals."""
        by_type: dict[str, int] = {}
        for g in self.gates.values():
            by_type[g.gtype] = by_type.get(g.gtype, 0) + 1
        return {
            "gates": len(self.gates),
            "inputs": len(self.primary_inputs),
            "outputs": len(self.primary_outputs),
            "depth": self.depth(),
            **{f"n_{t.lower()}": c for t, c in sorted(by_type.items())},
        }

    def __repr__(self) -> str:
        return (
            f"Network({self.name!r}: {len(self.primary_inputs)} PI, "
            f"{len(self.primary_outputs)} PO, {len(self.gates)} gates)"
        )
