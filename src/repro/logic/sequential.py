"""Time-frame expansion: sequential networks on combinational engines.

A sequential :class:`~repro.logic.network.Network` (gates + single-clock
D flip-flops) is *unrolled* over ``n_frames`` clock cycles into a plain
combinational network the legacy, compiled and multi-word engines
simulate unchanged:

* every net ``n`` of frame ``f`` becomes ``t{f}.n``;
* frame-0 flop outputs become pseudo primary inputs (the initial state —
  unknown ``X`` unless an ``initial_state`` assignment is supplied);
* for ``f > 0`` each flop is stitched as a ``BUF`` from the previous
  frame's data net (``t{f}.q = BUF(t{f-1}.d)``), so every frame keeps a
  distinct, faultable state net;
* every frame's primary outputs are observed (``t{f}.po``), giving
  per-frame detection semantics for free — a fault is detected iff any
  frame's outputs differ.

One *logical* fault on the sequential netlist maps to a replicated,
permanently-present fault in every frame: the lowering helpers here
(:func:`stuck_at_unrolled_injection` & friends) produce a single
:class:`~repro.logic.compiled.FaultInjection` (or serial-simulator
override set) covering all replicas, so the fault-count and fault names
stay those of the sequential netlist.

A *sequential test* is a sequence of per-cycle input assignments
(``cycles[k]`` drives frame ``k``); :meth:`UnrolledNetwork.flatten_vector`
turns one into a flat assignment over the unrolled inputs.  The
cycle-accurate reference :func:`simulate_sequence` evaluates the
sequential network frame by frame with explicit state feedback — the
unrolled good simulation must agree with it net for net, which is what
``tests/test_sequential_engine.py`` checks.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.logic.network import Network, SequentialNetworkError
from repro.logic.simulator import simulate
from repro.logic.values import X


def frame_name(frame: int, name: str) -> str:
    """Unrolled name of net/gate ``name`` in frame ``frame``."""
    return f"t{frame}.{name}"


@dataclasses.dataclass(frozen=True)
class UnrolledNetwork:
    """A sequential network expanded over ``n_frames`` clock cycles.

    Attributes:
        source: The sequential network this was unrolled from.
        network: The combinational unrolled form (what the engines run).
        n_frames: Number of clock cycles expanded.
    """

    source: Network
    network: Network
    n_frames: int

    # -- naming ---------------------------------------------------------
    def net_name(self, frame: int, net: str) -> str:
        return frame_name(frame, net)

    def gate_name(self, frame: int, gate: str) -> str:
        return frame_name(frame, gate)

    def replica_nets(self, net: str) -> list[str]:
        """All per-frame replicas of a source net."""
        return [frame_name(f, net) for f in range(self.n_frames)]

    def replica_gates(self, gate: str) -> list[str]:
        """All per-frame replicas of a source gate."""
        return [frame_name(f, gate) for f in range(self.n_frames)]

    @property
    def state_inputs(self) -> list[str]:
        """The frame-0 pseudo primary inputs (one per flop)."""
        return [frame_name(0, q) for q in self.source.flops]

    # -- vectors --------------------------------------------------------
    def flatten_vector(
        self,
        cycles: Sequence[Mapping[str, int]],
        initial_state: Mapping[str, int] | None = None,
    ) -> dict[str, int]:
        """Flatten a per-cycle input sequence onto the unrolled inputs.

        ``cycles[k]`` assigns the sequential primary inputs in cycle
        ``k``; at most :attr:`n_frames` cycles are meaningful (extra
        cycles raise).  Missing inputs — including missing trailing
        cycles — default to X through the engines' usual missing-input
        convention.  ``initial_state`` optionally pins frame-0 flop
        outputs (e.g. a known reset state); unassigned state is X.
        """
        if len(cycles) > self.n_frames:
            raise ValueError(
                f"{len(cycles)} cycles but only {self.n_frames} frames; "
                f"unroll deeper or truncate the sequence"
            )
        flat: dict[str, int] = {}
        if initial_state:
            for q, value in initial_state.items():
                if q not in self.source.flops:
                    raise ValueError(f"initial state on non-flop net {q!r}")
                flat[frame_name(0, q)] = value
        for f, cycle in enumerate(cycles):
            for net, value in cycle.items():
                flat[frame_name(f, net)] = value
        return flat

    def flatten_vectors(
        self,
        sequences: Sequence[Sequence[Mapping[str, int]]],
        initial_state: Mapping[str, int] | None = None,
    ) -> list[dict[str, int]]:
        return [self.flatten_vector(s, initial_state) for s in sequences]


#: Unrolled forms are memoized on (structural fingerprint, n_frames) so
#: repeated entry-point calls (detection words, campaigns, oracles) on
#: the same netlist share one unrolled network and thus one compiled
#: form.  Small cap: unrolled networks are n_frames times the source.
_UNROLL_MEMO: dict[tuple, UnrolledNetwork] = {}
_UNROLL_MEMO_MAX = 32


def unroll_network(network: Network, n_frames: int) -> UnrolledNetwork:
    """Time-frame expand ``network`` over ``n_frames`` clock cycles.

    Works for any network; a combinational one simply yields
    ``n_frames`` independent copies.  The result is memoized on the
    source's structural fingerprint.
    """
    from repro.logic.compiled import structural_fingerprint

    if n_frames < 1:
        raise ValueError(f"n_frames must be >= 1, got {n_frames}")
    key = (structural_fingerprint(network), n_frames)
    cached = _UNROLL_MEMO.get(key)
    if cached is not None:
        return cached

    unrolled = Network(f"{network.name}@x{n_frames}")
    # Frame-0 state first, then frame-major primary inputs: the PI order
    # defines the packed-vector layout shared by all engines.
    for q in network.flops:
        unrolled.add_input(frame_name(0, q))
    for f in range(n_frames):
        for pi in network.primary_inputs:
            unrolled.add_input(frame_name(f, pi))
    order = network.levelized()
    for f in range(n_frames):
        if f > 0:
            for q, d in network.flops.items():
                unrolled.add_gate(
                    frame_name(f, f"ff.{q}"), "BUF",
                    [frame_name(f - 1, d)], frame_name(f, q),
                )
        for gate in order:
            unrolled.add_gate(
                frame_name(f, gate.name), gate.gtype,
                [frame_name(f, n) for n in gate.inputs],
                frame_name(f, gate.output),
            )
    for f in range(n_frames):
        for po in network.primary_outputs:
            unrolled.add_output(frame_name(f, po))
    unrolled.validate()

    result = UnrolledNetwork(
        source=network, network=unrolled, n_frames=n_frames
    )
    while len(_UNROLL_MEMO) >= _UNROLL_MEMO_MAX:
        del _UNROLL_MEMO[next(iter(_UNROLL_MEMO))]
    _UNROLL_MEMO[key] = result
    return result


# ---------------------------------------------------------------------------
# Cycle-accurate reference simulation
# ---------------------------------------------------------------------------

_FRAME_MEMO: dict[tuple, Network] = {}
_FRAME_MEMO_MAX = 32


def _frame_view(network: Network) -> Network:
    """One combinational frame: flop outputs exposed as extra inputs."""
    from repro.logic.compiled import structural_fingerprint

    key = structural_fingerprint(network)
    cached = _FRAME_MEMO.get(key)
    if cached is not None:
        return cached
    frame = Network(f"{network.name}@frame")
    for pi in network.primary_inputs:
        frame.add_input(pi)
    for q in network.flops:
        frame.add_input(q)
    for gate in network.levelized():
        frame.add_gate(gate.name, gate.gtype, gate.inputs, gate.output)
    for po in network.primary_outputs:
        frame.add_output(po)
    frame.validate()
    while len(_FRAME_MEMO) >= _FRAME_MEMO_MAX:
        del _FRAME_MEMO[next(iter(_FRAME_MEMO))]
    _FRAME_MEMO[key] = frame
    return frame


def simulate_sequence(
    network: Network,
    cycles: Sequence[Mapping[str, int]],
    initial_state: Mapping[str, int] | None = None,
) -> list[tuple[int, ...]]:
    """Cycle-accurate ternary simulation of a sequential network.

    Evaluates one combinational frame per cycle with explicit state
    feedback (flop outputs latch their data nets at each boundary) and
    returns the primary-output tuple of every cycle.  This is the
    ground-truth reference the time-frame expansion is validated
    against; it is also the convenient way to just *run* a sequential
    netlist without thinking about unrolling.
    """
    frame = _frame_view(network)
    state = {
        q: (initial_state or {}).get(q, X) for q in network.flops
    }
    outputs: list[tuple[int, ...]] = []
    for cycle in cycles:
        values = simulate(frame, {**dict(cycle), **state})
        outputs.append(
            tuple(values[po] for po in network.primary_outputs)
        )
        state = {q: values[d] for q, d in network.flops.items()}
    return outputs


# ---------------------------------------------------------------------------
# Fault lowering: one logical fault -> every-frame replicas
# ---------------------------------------------------------------------------

def _require_frames(uv: UnrolledNetwork) -> range:
    return range(uv.n_frames)


def stuck_at_serial_overrides(uv: UnrolledNetwork, fault) -> dict:
    """Serial-simulator overrides for a sequential stuck-at fault.

    The fault is permanent: the forced value applies in every frame
    replica (for a stem on a flop output this includes the frame-0
    pseudo input — a stuck state net powers up stuck).
    """
    if fault.is_branch:
        return {
            "pin_overrides": {
                (uv.gate_name(f, fault.gate), fault.pin): fault.value
                for f in _require_frames(uv)
            }
        }
    return {
        "line_overrides": {
            uv.net_name(f, fault.net): fault.value
            for f in _require_frames(uv)
        }
    }


def stuck_at_unrolled_injection(uv: UnrolledNetwork, cnet, fault):
    """Index-level injection covering every frame replica of the fault."""
    from repro.logic.compiled import FaultInjection

    if fault.is_branch:
        return FaultInjection(pins={
            (cnet.gate_op[uv.gate_name(f, fault.gate)], fault.pin):
                fault.value
            for f in _require_frames(uv)
        })
    return FaultInjection(lines={
        cnet.net_index[uv.net_name(f, fault.net)]: fault.value
        for f in _require_frames(uv)
    })


def polarity_serial_overrides(uv: UnrolledNetwork, fault) -> dict:
    """Serial-simulator overrides for a sequential polarity fault."""
    override = fault.gate_override()
    return {
        "gate_overrides": {
            uv.gate_name(f, fault.gate): override
            for f in _require_frames(uv)
        }
    }


def polarity_unrolled_injection(uv: UnrolledNetwork, cnet, fault):
    """Faulty-table injection on every frame replica of the gate."""
    from repro.logic.compiled import FaultInjection

    table = fault.faulty_table()
    return FaultInjection(tables={
        cnet.gate_op[uv.gate_name(f, fault.gate)]: table
        for f in _require_frames(uv)
    })


def require_combinational(network: Network, what: str) -> None:
    """Raise a helpful error when a sequential network lacks ``unroll=``."""
    if network.flops:
        raise SequentialNetworkError(
            f"{network.name!r} is sequential ({len(network.flops)} "
            f"flops); pass unroll=<n_frames> to {what} (vectors then "
            f"become per-cycle input sequences)"
        )
