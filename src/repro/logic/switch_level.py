"""Switch-level simulation of CP transistor networks.

This is the logic-domain engine behind the paper's fault-behaviour
analyses: it evaluates a cell's transistor netlist (with optional
per-device fault states) under a logic input vector and reports

* the output value (0 / 1 / X / Z — Z meaning no conducting path, i.e.
  charge retention, the stuck-open memory effect),
* whether a **drive conflict** exists (conducting paths carrying both
  values meet): the IDDQ observable of Table III,
* which devices conduct and in which polarity mode.

The conduction predicate is the paper's: a fault-free TIG device conducts
iff ``CG == PGS == PGD`` (n-mode when all high, p-mode when all low).
Fault states modify the predicate per device:

* ``STUCK_OPEN`` — never conducts (channel break / SOF),
* ``STUCK_ON`` — always conducts,
* ``STUCK_AT_N`` — polarity gates forced to 1 (the paper's new
  stuck-at n-type model for PG-to-VDD bridges),
* ``STUCK_AT_P`` — polarity gates forced to 0,
* ``FLOATING_PG`` — polarity-gate value unknown (open polarity
  terminal): conduction becomes unknown unless the control gate already
  blocks both branches.

**Drive strength.**  A conducting device passes one logic value strongly
and the complementary value weakly (an n-mode device is a good
pull-down but a degraded pull-up; p-mode the converse).  Conflicts
resolve in favour of strictly stronger paths — this reproduces the
paper's Table III asymmetry, where a polarity-stuck *pull-up* device
(wrong-mode, weak) cannot corrupt the output and is caught only by
IDDQ, while a polarity-stuck *pull-down* overpowers the output node.

Internal nets that drive gates of other transistors (e.g. the x1/x2
stage nets of XOR3) are handled by fixed-point iteration.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from collections import deque

from repro.gates.cell import Cell, Transistor
from repro.logic.values import ONE, X, Z, ZERO


class DeviceState(enum.Enum):
    """Fault state of one transistor in a switch-level evaluation."""

    NORMAL = "normal"
    STUCK_OPEN = "stuck_open"
    STUCK_ON = "stuck_on"
    STUCK_AT_N = "stuck_at_n"
    STUCK_AT_P = "stuck_at_p"
    FLOATING_PG = "floating_pg"


_ON = 1
_OFF = 0
_MAYBE = 2

_STRONG = 2
_WEAK = 1


@dataclasses.dataclass(frozen=True)
class SwitchLevelResult:
    """Result of one switch-level evaluation.

    Attributes:
        output: Value of the output net (0/1/X/Z).
        conflict: True when conducting paths carrying both logic values
            meet somewhere — observable as elevated IDDQ.
        net_values: Every resolved net value.
        conducting: Devices that definitely conduct, mapped to their
            conduction mode ('n', 'p' or 'forced').
    """

    output: int
    conflict: bool
    net_values: dict[str, int]
    conducting: dict[str, str]


def _conduction(
    device: Transistor,
    state: DeviceState,
    values: dict[str, int],
) -> tuple[int, str]:
    """Return (conduction in {_ON,_OFF,_MAYBE}, mode label)."""
    if state is DeviceState.STUCK_OPEN:
        return _OFF, "open"
    if state is DeviceState.STUCK_ON:
        return _ON, "forced"
    cg = values.get(device.cg, X)
    if state is DeviceState.STUCK_AT_N:
        pgs = pgd = ONE
    elif state is DeviceState.STUCK_AT_P:
        pgs = pgd = ZERO
    elif state is DeviceState.FLOATING_PG:
        pgs = pgd = X
    else:
        pgs = values.get(device.pgs, X)
        pgd = values.get(device.pgd, X)
    gates = (cg, pgs, pgd)
    if any(v in (X, Z) for v in gates):
        known = [v for v in gates if v in (ZERO, ONE)]
        if known and any(a != b for a, b in itertools.combinations(known, 2)):
            return _OFF, "off"
        return _MAYBE, "maybe"
    if cg == pgs == pgd:
        return _ON, "n" if cg == ONE else "p"
    return _OFF, "off"


def _pass_strength(mode: str, value: int) -> int:
    """Strength with which a conducting device passes ``value``."""
    if mode == "forced":
        return _STRONG
    if mode == "n":
        return _STRONG if value == ZERO else _WEAK
    if mode == "p":
        return _STRONG if value == ONE else _WEAK
    raise ValueError(f"not a conducting mode: {mode!r}")


def evaluate(
    cell: Cell,
    vector: tuple[int, ...],
    device_states: dict[str, DeviceState] | None = None,
    previous_output: int = X,
    max_iterations: int = 8,
) -> SwitchLevelResult:
    """Evaluate a cell at switch level under an input vector.

    Args:
        cell: The cell template.
        vector: Primary-input bits, ordered as ``cell.inputs``.
        device_states: Optional per-transistor fault states (by
            transistor name); missing entries are NORMAL.
        previous_output: Value retained on the output when no path
            conducts (two-pattern stuck-open semantics).
        max_iterations: Fixed-point iteration bound for staged cells.
    """
    states = {t.name: DeviceState.NORMAL for t in cell.transistors}
    for name, state in (device_states or {}).items():
        if name not in states:
            raise KeyError(f"{cell.name} has no transistor {name!r}")
        states[name] = state

    driven = cell.net_values(vector)
    channel_nets: set[str] = set()
    for t in cell.transistors:
        channel_nets.update({t.d, t.s})
    free_nets = sorted(channel_nets - set(driven))
    values: dict[str, int] = dict(driven)
    for net in free_nets:
        values[net] = X

    conflict = False
    conducting: dict[str, str] = {}
    for _ in range(max_iterations):
        conducting = {}
        on_edges: list[tuple[str, str, str]] = []  # (a, b, mode)
        maybe_edges: list[tuple[str, str]] = []
        for t in cell.transistors:
            cond, mode = _conduction(t, states[t.name], values)
            if cond == _ON:
                on_edges.append((t.d, t.s, mode))
                conducting[t.name] = mode
            elif cond == _MAYBE:
                maybe_edges.append((t.d, t.s))

        # Propagate (value, strength) from driven nets through ON devices;
        # strength decays to weak through a wrong-mode device.
        best: dict[str, dict[int, int]] = {
            net: {} for net in channel_nets | set(driven)
        }
        queue: deque[tuple[str, int, int]] = deque()
        for net, value in driven.items():
            if net in best:
                best[net][value] = _STRONG
                queue.append((net, value, _STRONG))
        while queue:
            net, value, strength = queue.popleft()
            if best[net].get(value, 0) > strength:
                continue
            for a, b, mode in on_edges:
                if net not in (a, b):
                    continue
                other = b if net == a else a
                new_strength = min(strength, _pass_strength(mode, value))
                if best[other].get(value, 0) < new_strength:
                    best[other][value] = new_strength
                    queue.append((other, value, new_strength))

        new_values = dict(driven)
        conflict = False
        for net in free_nets:
            candidates = best[net]
            has0, has1 = ZERO in candidates, ONE in candidates
            if has0 and has1:
                conflict = True
                s0, s1 = candidates[ZERO], candidates[ONE]
                if s0 > s1:
                    new_values[net] = ZERO
                elif s1 > s0:
                    new_values[net] = ONE
                else:
                    new_values[net] = X
            elif has0:
                new_values[net] = ZERO
            elif has1:
                new_values[net] = ONE
            else:
                new_values[net] = Z
        # A conducting loop between two driven nets of different value is
        # also a conflict (e.g. a stuck-on device shorting rails).
        for net, value in driven.items():
            other = best.get(net, {})
            if any(v != value for v in other if other[v] > 0 and v != value):
                conflict = True
        # Maybe-conducting devices poison differing values to X.
        for a, b in maybe_edges:
            va = new_values.get(a, driven.get(a, Z))
            vb = new_values.get(b, driven.get(b, Z))
            for net, other_value in ((a, vb), (b, va)):
                if net in driven:
                    continue
                current = new_values[net]
                if current == Z:
                    new_values[net] = X
                elif other_value in (ZERO, ONE, X) and other_value != current:
                    new_values[net] = X
        if new_values == values:
            values = new_values
            break
        values = new_values

    output = values.get("out", Z)
    if output == Z:
        output = previous_output if previous_output in (ZERO, ONE) else Z
    return SwitchLevelResult(
        output=output,
        conflict=conflict,
        net_values=values,
        conducting=conducting,
    )


def truth_table_switch_level(cell: Cell) -> dict[tuple[int, ...], int]:
    """Fault-free truth table computed purely at switch level."""
    table = {}
    for vector in itertools.product((0, 1), repeat=cell.n_inputs):
        table[vector] = evaluate(cell, vector).output
    return table


def fault_free_is_consistent(cell: Cell) -> bool:
    """Check the transistor netlist implements the reference function
    without drive conflicts or floating outputs."""
    for vector in itertools.product((0, 1), repeat=cell.n_inputs):
        result = evaluate(cell, vector)
        if result.conflict:
            return False
        if result.output != cell.function(vector):
            return False
    return True


def detection_behaviour(
    cell: Cell,
    device_name: str,
    state: DeviceState,
) -> dict[tuple[int, ...], dict[str, bool]]:
    """Exhaustive single-fault detectability analysis (Table III engine).

    For every input vector, compare the faulty cell against the fault-free
    one and report:

    * ``output_detect`` — the output settles to a *known wrong* value (or
      to a strength-tied X while the good machine is clean): a voltage
      tester catches it;
    * ``iddq_detect`` — the fault creates a supply-to-ground conducting
      path that the fault-free cell does not have.
    """
    report: dict[tuple[int, ...], dict[str, bool]] = {}
    for vector in itertools.product((0, 1), repeat=cell.n_inputs):
        good = evaluate(cell, vector)
        bad = evaluate(cell, vector, {device_name: state})
        output_detect = (
            good.output in (ZERO, ONE)
            and bad.output != Z
            and bad.output != good.output
        )
        iddq_detect = bad.conflict and not good.conflict
        report[vector] = {
            "output_detect": output_detect,
            "iddq_detect": iddq_detect,
        }
    return report
