"""Logic substrate: multi-valued values, switch-level simulation of CP
transistor networks, gate-level networks and simulation, netlist I/O.

Two gate-level simulation paths are provided:

* the serial ternary simulator (:func:`simulate` /
  :func:`simulate_outputs`) — one vector per call, overrides as
  callables and dicts; the reference semantics, and
* the compiled bit-parallel engine (:mod:`repro.logic.compiled`) —
  the whole vector batch per pass, faults as index-level
  :class:`~repro.logic.compiled.FaultInjection` overrides.  The
  override contract shared by both paths is documented there.

Usage — simulate a generated benchmark both ways::

    from repro.circuits import ripple_carry_adder
    from repro.logic import simulate_outputs
    from repro.logic.compiled import pack_vectors

    network = ripple_carry_adder(4)
    vector = {n: 0 for n in network.primary_inputs} | {"a0": 1}
    print(simulate_outputs(network, vector))    # serial, one vector

    cnet = network.compiled()                   # flattened, cached
    state = cnet.simulate(pack_vectors(cnet, [vector]))
    print(cnet.outputs_unpacked(state, 0))      # same values
"""

from repro.logic.bench_format import (
    UnsupportedBenchFeature,
    parse_bench,
    write_bench,
)
from repro.logic.compiled import (
    CompiledNetwork,
    FaultInjection,
    NetworkStructures,
    PackedVectors,
    compile_network,
    invalidate_network,
    pack_vectors,
    structural_fingerprint,
)
from repro.logic.network import (
    DP_GATE_TYPES,
    GATE_ARITY,
    Gate,
    Network,
    SequentialNetworkError,
    SP_GATE_TYPES,
)
from repro.logic.sequential import (
    UnrolledNetwork,
    simulate_sequence,
    unroll_network,
)
from repro.logic.simulator import (
    exhaustive_truth_table,
    output_vector,
    simulate,
    simulate_outputs,
    vectors_differ,
)
from repro.logic.switch_level import (
    DeviceState,
    SwitchLevelResult,
    detection_behaviour,
    evaluate,
    fault_free_is_consistent,
    truth_table_switch_level,
)
from repro.logic.values import (
    D,
    DBAR,
    DValue,
    ONE,
    X,
    Z,
    ZERO,
    d_and,
    d_not,
    d_or,
    d_xor,
    from_ternary,
    t_and,
    t_not,
    t_or,
    t_xor,
    ternary_name,
)

__all__ = [
    "CompiledNetwork",
    "D",
    "DBAR",
    "DP_GATE_TYPES",
    "DValue",
    "DeviceState",
    "FaultInjection",
    "GATE_ARITY",
    "Gate",
    "Network",
    "NetworkStructures",
    "PackedVectors",
    "compile_network",
    "invalidate_network",
    "pack_vectors",
    "structural_fingerprint",
    "ONE",
    "SP_GATE_TYPES",
    "SequentialNetworkError",
    "SwitchLevelResult",
    "UnrolledNetwork",
    "X",
    "Z",
    "ZERO",
    "d_and",
    "d_not",
    "d_or",
    "d_xor",
    "detection_behaviour",
    "evaluate",
    "exhaustive_truth_table",
    "fault_free_is_consistent",
    "from_ternary",
    "output_vector",
    "UnsupportedBenchFeature",
    "parse_bench",
    "simulate",
    "simulate_outputs",
    "simulate_sequence",
    "t_and",
    "t_not",
    "t_or",
    "t_xor",
    "ternary_name",
    "truth_table_switch_level",
    "unroll_network",
    "vectors_differ",
    "write_bench",
]
