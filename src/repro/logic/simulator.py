"""Gate-level logic simulation (ternary), with pluggable gate overrides.

This is the *serial* reference path: one vector per call, dict-valued
nets, overrides as callables.  The compiled bit-parallel engine in
:mod:`repro.logic.compiled` implements the same semantics over whole
vector batches and is validated against this module; the shared
fault-injection override contract (line vs. pin vs. gate overrides) is
documented there.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.logic.eval import eval_ternary
from repro.logic.network import Gate, Network
from repro.logic.values import X

GateOverride = Callable[[Gate, Sequence[int]], int]
"""Replaces a gate's evaluation: receives (gate, resolved input values)."""


def simulate(
    network: Network,
    inputs: Mapping[str, int],
    gate_overrides: Mapping[str, GateOverride] | None = None,
    line_overrides: Mapping[str, int] | None = None,
    pin_overrides: Mapping[tuple[str, int], int] | None = None,
) -> dict[str, int]:
    """Simulate the network and return all net values (ternary).

    Args:
        network: Network to simulate.
        inputs: Primary-input values (0/1/X); missing inputs default X.
        gate_overrides: Per-gate functional replacements (by gate name).
        line_overrides: Forced values on *nets* (stem stuck-at faults).
        pin_overrides: Forced values on individual gate input pins,
            keyed by ``(gate_name, pin_index)`` (branch stuck-at faults).
    """
    if network.flops:
        from repro.logic.network import SequentialNetworkError

        raise SequentialNetworkError(
            f"{network.name!r} is sequential; time-frame expand it "
            f"first (repro.logic.sequential.unroll_network) or "
            f"simulate the unrolled form"
        )
    gate_overrides = gate_overrides or {}
    line_overrides = line_overrides or {}
    pin_overrides = pin_overrides or {}

    values: dict[str, int] = {}
    for net in network.primary_inputs:
        value = inputs.get(net, X)
        values[net] = line_overrides.get(net, value)
    for gate in network.levelized():
        pins = []
        for k, net in enumerate(gate.inputs):
            value = values.get(net, X)
            value = pin_overrides.get((gate.name, k), value)
            pins.append(value)
        override = gate_overrides.get(gate.name)
        if override is not None:
            out = override(gate, pins)
        else:
            out = eval_ternary(gate.gtype, pins)
        values[gate.output] = line_overrides.get(gate.output, out)
    return values


def output_vector(
    network: Network, values: Mapping[str, int]
) -> tuple[int, ...]:
    """Primary-output slice of a simulation result."""
    return tuple(values[net] for net in network.primary_outputs)


def simulate_outputs(
    network: Network,
    inputs: Mapping[str, int],
    **kwargs,
) -> tuple[int, ...]:
    """Convenience: simulate and return only primary outputs."""
    return output_vector(network, simulate(network, inputs, **kwargs))


def exhaustive_truth_table(
    network: Network,
) -> dict[tuple[int, ...], tuple[int, ...]]:
    """Full truth table over all input combinations (small networks)."""
    import itertools

    n = len(network.primary_inputs)
    if n > 20:
        raise ValueError(f"refusing exhaustive table over {n} inputs")
    table = {}
    for bits in itertools.product((0, 1), repeat=n):
        assignment = dict(zip(network.primary_inputs, bits))
        table[bits] = simulate_outputs(network, assignment)
    return table


def vectors_differ(
    a: Sequence[int], b: Sequence[int], strict: bool = True
) -> bool:
    """True when two output vectors definitely differ.

    With ``strict`` (default), an X in either vector is not counted as a
    difference — a tester cannot rely on an unknown value.
    """
    for va, vb in zip(a, b):
        if va == X or vb == X:
            if not strict and va != vb:
                return True
            continue
        if va != vb:
            return True
    return False
