"""1-D device mesh along the transport axis of a TIG-SiNWFET.

The channel is discretised source -> PGS -> spacer -> CG -> spacer ->
PGD -> drain.  Each mesh node carries the local gate net ('pgs', 'cg',
'pgd', or '' in the spacers) so the Poisson solver can apply the right
gate coupling, and the GOS model can localise its perturbation.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.device.params import DEFAULT_PARAMS, DeviceParameters


@dataclasses.dataclass(frozen=True)
class Mesh1D:
    """Discretised device axis.

    Attributes:
        x: Node coordinates [m], shape (n,).
        region: Per-node gate region label ('pgs', 'cg', 'pgd', '').
        params: The device parameters used to build the mesh.
    """

    x: np.ndarray
    region: tuple[str, ...]
    params: DeviceParameters

    @property
    def n(self) -> int:
        return len(self.x)

    @property
    def dx(self) -> float:
        return float(self.x[1] - self.x[0])

    def nodes_in(self, region: str) -> np.ndarray:
        """Indices of the nodes under a given gate region."""
        return np.array(
            [k for k, r in enumerate(self.region) if r == region],
            dtype=int,
        )

    def gate_voltage_profile(
        self, v_pgs: float, v_cg: float, v_pgd: float
    ) -> np.ndarray:
        """Local gate potential per node; spacers interpolate neighbours."""
        profile = np.empty(self.n)
        volts = {"pgs": v_pgs, "cg": v_cg, "pgd": v_pgd}
        last = v_pgs
        pending: list[int] = []
        for k, r in enumerate(self.region):
            if r:
                value = volts[r]
                if pending:
                    # Linear blend across the spacer gap.
                    for j, idx in enumerate(pending, start=1):
                        frac = j / (len(pending) + 1)
                        profile[idx] = last + (value - last) * frac
                    pending = []
                profile[k] = value
                last = value
            else:
                pending.append(k)
        for idx in pending:  # trailing spacer (shouldn't happen)
            profile[idx] = last
        return profile


def build_mesh(
    params: DeviceParameters = DEFAULT_PARAMS, nodes_per_segment: int = 40
) -> Mesh1D:
    """Build the standard five-segment mesh.

    Args:
        params: Device geometry (Table II).
        nodes_per_segment: Resolution of each gate/spacer segment.
    """
    if nodes_per_segment < 4:
        raise ValueError("need at least 4 nodes per segment")
    segments = (
        ("pgs", params.l_pgs),
        ("", params.l_spacer),
        ("cg", params.l_cg),
        ("", params.l_spacer),
        ("pgd", params.l_pgd),
    )
    xs: list[float] = []
    regions: list[str] = []
    x0 = 0.0
    for label, length in segments:
        n = nodes_per_segment
        local = np.linspace(x0, x0 + length, n, endpoint=False)
        xs.extend(local.tolist())
        regions.extend([label] * n)
        x0 += length
    xs.append(x0)
    regions.append("pgd")
    x = np.asarray(xs)
    # Re-sample to uniform spacing for a clean Laplacian.
    n_total = len(x)
    uniform = np.linspace(0.0, x0, n_total)
    region_of = []
    boundaries = []
    acc = 0.0
    for label, length in segments:
        boundaries.append((acc, acc + length, label))
        acc += length
    for xv in uniform:
        label = ""
        for lo, hi, lab in boundaries:
            if lo <= xv <= hi:
                label = lab
                break
        region_of.append(label)
    return Mesh1D(x=uniform, region=tuple(region_of), params=params)
