"""Nonlinear 1-D Poisson solver with gate coupling (thin-body model).

Solves, along the transport axis x,

    d2(psi)/dx2 - (psi - Vg_eff(x)) / lambda^2
        = (q / eps_si) * (n(psi) - p(psi) + N_A)

where ``lambda`` is the gate-all-around natural length (electrostatic
gate-to-channel coupling collapsed into 1-D, the standard thin-body
approximation), ``Vg_eff`` the local gate potential minus the calibrated
work-function offset, and the carriers follow Boltzmann statistics
against quasi-Fermi levels ``phi_n`` / ``phi_p``.

Newton iteration with potential-update clamping; the Jacobian is
tridiagonal and solved with ``scipy.linalg.solve_banded``.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy.linalg import solve_banded

from repro.device.params import (
    EPSILON_SI,
    N_INTRINSIC_SI,
    Q_ELEMENTARY,
)
from repro.tcad.mesh import Mesh1D

#: Calibrated gate work-function offset [V] (lands the fault-free
#: n-configuration channel density near the paper's 1.5e19 cm^-3).
DPHI_MS = 0.18

#: Effective conduction-band density of states of silicon [m^-3].
N_CONDUCTION = 2.8e25


@dataclasses.dataclass
class PoissonResult:
    """Solution of one nonlinear Poisson solve."""

    psi: np.ndarray
    n: np.ndarray
    p: np.ndarray
    converged: bool
    iterations: int


def carrier_densities(
    psi: np.ndarray,
    phi_n: np.ndarray,
    phi_p: np.ndarray,
    v_t: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Boltzmann carrier densities (clipped to avoid overflow)."""
    eta_n = np.clip((psi - phi_n) / v_t, -80.0, 80.0)
    eta_p = np.clip((phi_p - psi) / v_t, -80.0, 80.0)
    n = N_INTRINSIC_SI * np.exp(eta_n)
    p = N_INTRINSIC_SI * np.exp(eta_p)
    return n, p


def solve_poisson(
    mesh: Mesh1D,
    vg_eff: np.ndarray,
    phi_n: np.ndarray,
    phi_p: np.ndarray,
    psi_boundary: tuple[float, float],
    psi0: np.ndarray | None = None,
    max_iterations: int = 80,
    tolerance: float = 1e-7,
    clamp: float = 0.1,
) -> PoissonResult:
    """Solve the gate-coupled Poisson equation.

    Args:
        mesh: Device mesh.
        vg_eff: Effective local gate potential per node [V] (already
            including the work-function offset and any GOS pinning).
        phi_n: Electron quasi-Fermi level per node [V].
        phi_p: Hole quasi-Fermi level per node [V].
        psi_boundary: Dirichlet potentials at (source, drain) contacts.
        psi0: Initial guess.
        clamp: Newton update clamp [V].
    """
    params = mesh.params
    v_t = params.v_t()
    lam2 = params.natural_length**2
    dx2 = mesh.dx**2
    n_nodes = mesh.n
    n_a = params.n_channel  # p-type body doping (acceptors)

    psi = (
        psi0.copy()
        if psi0 is not None
        else np.linspace(psi_boundary[0], psi_boundary[1], n_nodes)
    )
    psi[0], psi[-1] = psi_boundary

    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        n, p = carrier_densities(psi, phi_n, phi_p, v_t)
        charge = (Q_ELEMENTARY / EPSILON_SI) * (n - p + n_a)
        residual = np.zeros(n_nodes)
        interior = slice(1, -1)
        residual[interior] = (
            (psi[:-2] - 2 * psi[1:-1] + psi[2:]) / dx2
            - (psi[1:-1] - vg_eff[1:-1]) / lam2
            - charge[1:-1]
        )
        # Tridiagonal Jacobian: d(residual_i)/d(psi_j).
        d_charge = (Q_ELEMENTARY / EPSILON_SI) * (n + p) / v_t
        diag = np.full(n_nodes, 1.0)
        lower = np.zeros(n_nodes)
        upper = np.zeros(n_nodes)
        diag[1:-1] = -2.0 / dx2 - 1.0 / lam2 - d_charge[1:-1]
        lower[0:-2] = 1.0 / dx2  # sub-diagonal entries for rows 1..n-2
        upper[2:] = 1.0 / dx2
        ab = np.zeros((3, n_nodes))
        ab[0] = upper
        ab[1] = diag
        ab[2, :-1] = lower[:-1]
        delta = solve_banded((1, 1), ab, -residual)
        delta[0] = delta[-1] = 0.0
        delta = np.clip(delta, -clamp, clamp)
        psi = psi + delta
        if np.max(np.abs(delta)) < tolerance:
            converged = True
            break
    n, p = carrier_densities(psi, phi_n, phi_p, v_t)
    return PoissonResult(
        psi=psi, n=n, p=p, converged=converged, iterations=iterations
    )
