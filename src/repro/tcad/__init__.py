"""TCAD-lite: 1-D self-consistent Poisson/drift-diffusion solver for
carrier-density profiles (the paper's Fig. 4 substrate)."""

from repro.tcad.gos import GOSSpec
from repro.tcad.mesh import Mesh1D, build_mesh
from repro.tcad.poisson import PoissonResult, solve_poisson
from repro.tcad.profiles import (
    DeviceSolution,
    FIGURE4_REFERENCE,
    figure4_summary,
    solve_device,
)
from repro.tcad.transport import ContinuityResult, bernoulli, solve_continuity

__all__ = [
    "ContinuityResult",
    "DeviceSolution",
    "FIGURE4_REFERENCE",
    "GOSSpec",
    "Mesh1D",
    "PoissonResult",
    "bernoulli",
    "build_mesh",
    "figure4_summary",
    "solve_continuity",
    "solve_device",
    "solve_poisson",
]
