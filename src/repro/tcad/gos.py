"""Gate-oxide-short model for the TCAD-lite solver.

A GOS replaces a patch of the gate dielectric with doped silicon,
creating an ohmic plug between the gate electrode and the channel
(Section IV-B).  Two coupled effects are modelled:

* **Electrostatic pinning** — inside the defect region the local gate
  potential is dragged down by the plug (hole injection from the gate
  raises the local barrier): ``Vg_local -> Vg_local - plug_drop``.
* **Carrier absorption** — the plug acts as a recombination sink for
  channel electrons: a rate ``1/tau`` inside the region.

Both constants are calibrated once, against the paper's Fig. 4 density
for a GOS under the control gate; the *position dependence* (PGS GOS
starving the whole channel, PGD GOS clipping only the drain end) then
emerges from the continuity equation, not from per-location tuning.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.tcad.mesh import Mesh1D

#: Plug-induced local gate-potential drop [V] per defect location.  The
#: drop scales with the hole-injection rate, which the paper ties to the
#: local electron supply ("the high electron density of the source
#: accelerates the hole injection") — hence the much stronger pinning for
#: a source-side (PGS) short.  Values calibrated once against Fig. 4.
PLUG_DROP = {"pgs": 0.80, "cg": 0.36, "pgd": 0.36}

#: Carrier-absorption rate inside the defect region [1/s].
SINK_RATE = 5.0e11


@dataclasses.dataclass(frozen=True)
class GOSSpec:
    """A gate-oxide short at one gate of the simulated device.

    ``plug_drop`` defaults to the calibrated per-location value.
    """

    location: str  # 'pgs' | 'cg' | 'pgd'
    plug_drop: float | None = None
    sink_rate: float = SINK_RATE

    def __post_init__(self) -> None:
        if self.location not in ("pgs", "cg", "pgd"):
            raise ValueError(f"bad GOS location {self.location!r}")
        if self.plug_drop is None:
            object.__setattr__(
                self, "plug_drop", PLUG_DROP[self.location]
            )

    def apply_to_gate_profile(
        self, mesh: Mesh1D, vg_profile: np.ndarray
    ) -> np.ndarray:
        """Pin the local gate potential inside the defect region."""
        out = vg_profile.copy()
        nodes = mesh.nodes_in(self.location)
        out[nodes] -= self.plug_drop
        return out

    def sink_profile(self, mesh: Mesh1D) -> np.ndarray:
        """Per-node recombination rate [1/s]."""
        rate = np.zeros(mesh.n)
        rate[mesh.nodes_in(self.location)] = self.sink_rate
        return rate
