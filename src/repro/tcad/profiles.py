"""Self-consistent device solves and Fig. 4 electron-density profiles.

:func:`solve_device` runs the Gummel loop (Poisson <-> electron
continuity) for an n-configured TIG-SiNWFET, optionally with a
gate-oxide short; :func:`figure4_summary` reproduces the paper's Fig. 4
electron-density comparison (fault-free vs GOS at CG / PGD / PGS).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.device.params import DEFAULT_PARAMS, DeviceParameters
from repro.tcad.gos import GOSSpec
from repro.tcad.mesh import Mesh1D, build_mesh
from repro.tcad.poisson import (
    DPHI_MS,
    N_CONDUCTION,
    PoissonResult,
    solve_poisson,
)
from repro.tcad.transport import solve_continuity

#: Schottky barrier-lowering coefficient of the polarity-gate field
#: (effective tunnelling-injection model at the NiSi contacts).
BARRIER_GAMMA = 0.36

#: Residual effective barrier [eV] once the polarity gate has fully
#: thinned the junction (tunnelling transparency limit).
BARRIER_FLOOR = 0.01


@dataclasses.dataclass
class DeviceSolution:
    """Converged device state.

    Attributes:
        mesh: The mesh used.
        psi: Electrostatic potential [V].
        n: Electron density [m^-3].
        phi_n: Electron quasi-Fermi level [V].
        mean_density_cm3: Mean electron density over the gated channel
            [cm^-3].
        converged: Gummel loop converged.
    """

    mesh: Mesh1D
    psi: np.ndarray
    n: np.ndarray
    phi_n: np.ndarray
    mean_density_cm3: float
    converged: bool

    def region_density_cm3(self, region: str) -> float:
        """Mean electron density over one gate region [cm^-3]."""
        nodes = self.mesh.nodes_in(region)
        return float(np.mean(self.n[nodes])) * 1e-6

    def downstream_density_cm3(self, region: str) -> float:
        """Mean density from ``region`` to the drain [cm^-3].

        Fig. 4's colour maps show the channel depressed from the defect
        point towards the drain (absorbed carriers starve everything the
        defect feeds); the annotated density characterises exactly that
        affected section, which is the observable reproduced here.
        """
        nodes = self.mesh.nodes_in(region)
        start = int(nodes[0])
        gated = [
            k for k, r in enumerate(self.mesh.region) if r and k >= start
        ]
        return float(np.mean(self.n[gated])) * 1e-6


def _contact_density(
    phi_barrier: float, v_pg: float, v_contact: float, v_t: float
) -> float:
    """Effective Schottky injection density with field-induced lowering."""
    effective = phi_barrier - BARRIER_GAMMA * max(v_pg - v_contact, 0.0)
    effective = max(effective, BARRIER_FLOOR)
    return N_CONDUCTION * np.exp(-effective / v_t)


def solve_device(
    v_cg: float = 1.2,
    v_pgs: float = 1.2,
    v_pgd: float = 1.2,
    v_ds: float = 1.2,
    gos: GOSSpec | None = None,
    params: DeviceParameters = DEFAULT_PARAMS,
    nodes_per_segment: int = 40,
    gummel_iterations: int = 120,
    tolerance: float = 1e-4,
) -> DeviceSolution:
    """Run the self-consistent Poisson/continuity (Gummel) loop.

    The device is biased in the n configuration by default (the Fig. 4
    setup: saturation, all gates at VDD).
    """
    mesh = build_mesh(params, nodes_per_segment)
    v_t = params.v_t()

    vg_profile = mesh.gate_voltage_profile(v_pgs, v_cg, v_pgd) - DPHI_MS
    sink = None
    if gos is not None:
        vg_profile = gos.apply_to_gate_profile(mesh, vg_profile + DPHI_MS)
        vg_profile = vg_profile - DPHI_MS
        sink = gos.sink_profile(mesh)

    n_source = _contact_density(params.phi_barrier, v_pgs, 0.0, v_t)
    n_drain = _contact_density(params.phi_barrier, v_pgd, v_ds, v_t)

    # Contact potentials implied by the injected densities.
    from repro.device.params import N_INTRINSIC_SI

    psi_source = v_t * np.log(n_source / N_INTRINSIC_SI)
    psi_drain = v_ds + v_t * np.log(n_drain / N_INTRINSIC_SI)

    phi_n = np.linspace(0.0, v_ds, mesh.n)
    phi_p = np.zeros(mesh.n)
    psi = None
    converged = False
    n = np.full(mesh.n, n_source)
    for _ in range(gummel_iterations):
        poisson: PoissonResult = solve_poisson(
            mesh,
            vg_profile,
            phi_n,
            phi_p,
            (psi_source, psi_drain),
            psi0=psi,
        )
        psi = poisson.psi
        continuity = solve_continuity(
            mesh, psi, (n_source, n_drain), sink_rate=sink
        )
        n_new = np.maximum(continuity.n, 1.0)
        phi_n_new = psi - v_t * np.log(n_new / N_INTRINSIC_SI)
        change = float(np.max(np.abs(phi_n_new - phi_n)))
        # Damped quasi-Fermi update keeps the loop stable.
        phi_n = 0.5 * phi_n + 0.5 * phi_n_new
        n = n_new
        if change < tolerance:
            converged = True
            break

    gated = [k for k, r in enumerate(mesh.region) if r]
    mean_density = float(np.mean(n[gated])) * 1e-6  # m^-3 -> cm^-3
    return DeviceSolution(
        mesh=mesh,
        psi=psi,
        n=n,
        phi_n=phi_n,
        mean_density_cm3=mean_density,
        converged=converged,
    )


#: Paper Fig. 4 reference densities [cm^-3].
FIGURE4_REFERENCE = {
    "fault-free": 1.558e19,
    "gos@cg": 1.763e18,
    "gos@pgd": 1.316e18,
    "gos@pgs": 1.426e17,
}


@dataclasses.dataclass
class Figure4Case:
    """One Fig. 4 case: the solved device and its reported density."""

    solution: DeviceSolution
    density_cm3: float
    reference_cm3: float


def figure4_summary(
    nodes_per_segment: int = 40,
) -> dict[str, Figure4Case]:
    """Reproduce Fig. 4: channel electron density for the four cases.

    The fault-free case reports the mean density of the whole gated
    channel; each GOS case reports the density at the defective gate's
    region (the paper's colour-map annotation).
    """
    cases = {
        "fault-free": None,
        "gos@cg": GOSSpec("cg"),
        "gos@pgd": GOSSpec("pgd"),
        "gos@pgs": GOSSpec("pgs"),
    }
    out: dict[str, Figure4Case] = {}
    for name, spec in cases.items():
        solution = solve_device(
            gos=spec, nodes_per_segment=nodes_per_segment
        )
        if spec is None:
            density = solution.mean_density_cm3
        else:
            density = solution.downstream_density_cm3(spec.location)
        out[name] = Figure4Case(
            solution=solution,
            density_cm3=density,
            reference_cm3=FIGURE4_REFERENCE[name],
        )
    return out
