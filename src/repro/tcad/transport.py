"""Electron continuity with Scharfetter-Gummel discretisation.

Given an electrostatic potential profile, solves the steady-state
electron continuity equation

    d/dx J_n = q * R(x),      J_n = q*mu*VT * SG(n, psi)

with Dirichlet carrier densities at the Schottky contacts and an
optional linear recombination sink ``R = n / tau`` inside a defect
region (the GOS carrier-absorption mechanism of Section IV-B).
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy.linalg import solve_banded

from repro.tcad.mesh import Mesh1D

#: Electron mobility in the nanowire channel [m^2/Vs].
MU_N = 0.04


def bernoulli(x: np.ndarray) -> np.ndarray:
    """B(x) = x / (exp(x) - 1), stable near zero."""
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    small = np.abs(x) < 1e-5
    out[small] = 1.0 - x[small] / 2.0
    xs = np.clip(x[~small], -200.0, 200.0)
    out[~small] = xs / np.expm1(xs)
    return out


@dataclasses.dataclass
class ContinuityResult:
    """Solution of one continuity solve."""

    n: np.ndarray
    current_density: np.ndarray
    """Electron current density at cell faces, shape (n-1,)."""


def solve_continuity(
    mesh: Mesh1D,
    psi: np.ndarray,
    n_boundary: tuple[float, float],
    sink_rate: np.ndarray | None = None,
) -> ContinuityResult:
    """Solve for the electron density profile.

    Args:
        mesh: Device mesh.
        psi: Electrostatic potential per node [V].
        n_boundary: Electron densities at (source, drain) contacts
            [m^-3] — the effective Schottky injection densities.
        sink_rate: Optional per-node recombination rate 1/tau [1/s];
            zero outside defect regions.
    """
    v_t = mesh.params.v_t()
    dx = mesh.dx
    n_nodes = mesh.n
    d_coef = MU_N * v_t  # Einstein relation: D = mu VT

    dpsi = np.diff(psi) / v_t
    b_fwd = bernoulli(dpsi)      # multiplies n_{i+1}
    b_rev = bernoulli(-dpsi)     # multiplies n_i
    # Flux between i and i+1: F_i = (D/dx) * (n_{i+1} B(dpsi) - n_i B(-dpsi))
    # Continuity at node i: (F_i - F_{i-1}) / dx = R_i = n_i / tau_i.
    rate = (
        np.zeros(n_nodes) if sink_rate is None else np.asarray(sink_rate)
    )

    diag = np.zeros(n_nodes)
    lower = np.zeros(n_nodes)
    upper = np.zeros(n_nodes)
    rhs = np.zeros(n_nodes)
    scale = d_coef / dx**2
    for i in range(1, n_nodes - 1):
        diag[i] = -scale * (b_rev[i] + b_fwd[i - 1]) - rate[i]
        upper[i + 1] = scale * b_fwd[i]
        lower[i - 1] = scale * b_rev[i - 1]
    diag[0] = diag[-1] = 1.0
    rhs[0], rhs[-1] = n_boundary

    ab = np.zeros((3, n_nodes))
    ab[0] = upper
    ab[1] = diag
    ab[2, :-1] = lower[:-1]
    n = solve_banded((1, 1), ab, rhs)
    n = np.maximum(n, 0.0)

    flux = (d_coef / dx) * (n[1:] * b_fwd - n[:-1] * b_rev)
    return ContinuityResult(n=n, current_density=flux)
