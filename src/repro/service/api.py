"""The campaign service's HTTP surface (stdlib ``ThreadingHTTPServer``).

Routes (all JSON unless noted; see ``docs/SERVICE.md`` for the full
reference)::

    POST   /jobs               submit a campaign spec -> job status
    GET    /jobs               every known job, newest first
    GET    /jobs/<id>          lifecycle state + live per-task counts
    GET    /jobs/<id>/results  commit-ordered records; ?offset= cursor
    DELETE /jobs/<id>          cooperative cancel (store stays resumable)
    GET    /healthz            {"ok": true, ...} liveness probe
    GET    /metrics            Prometheus text exposition (not JSON)

No framework, no new dependencies: requests are parsed and routed here,
the work happens in :class:`repro.service.jobs.JobManager`, and every
request is timed into the ``repro_http_request_seconds`` histogram
(labelled by method + route *pattern*, so job ids do not explode the
cardinality) with outcomes in ``repro_http_requests_total``.

:class:`ServiceClient` is the matching stdlib (``urllib``) client used
by the load harness (``benchmarks/bench_service.py``), the CI smoke
script (``tools/service_smoke.py``) and the tests.

``python -m repro serve`` wires :func:`serve_forever` to the CLI: it
recovers persisted jobs, serves until SIGTERM/SIGINT, then winds the
job pool down gracefully (running campaigns release their store claims
and re-queue, so the next start resumes them).
"""

from __future__ import annotations

import json
import re
import signal
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.service.jobs import JobError, JobManager
from repro.service.metrics import (
    REGISTRY,
    counter,
    histogram,
    install_cache_collectors,
)

#: Content type Prometheus scrapers expect from /metrics.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

HTTP_REQUESTS = counter(
    "repro_http_requests_total",
    "HTTP requests by method, route pattern and status code",
    ("method", "route", "code"),
)
HTTP_LATENCY = histogram(
    "repro_http_request_seconds",
    "HTTP request wall-clock by method and route pattern",
    ("method", "route"),
)

_JOB_ROUTE = re.compile(r"^/jobs/(?P<job_id>[0-9a-f]+)$")
_RESULTS_ROUTE = re.compile(r"^/jobs/(?P<job_id>[0-9a-f]+)/results$")

#: Request-body size cap: campaign specs are small; anything bigger is
#: a client bug, not a grid.
_MAX_BODY = 1 << 20


class ServiceHandler(BaseHTTPRequestHandler):
    """Routing + JSON plumbing; the manager does the real work."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # -- plumbing ----------------------------------------------------------

    def _reply(
        self, code: int, body: bytes, content_type: str = "application/json"
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_json(self, code: int, payload: dict) -> None:
        self._reply(
            code, json.dumps(payload, sort_keys=True).encode("utf-8")
        )

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            raise JobError(f"request body over {_MAX_BODY} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise JobError("empty request body (expected a JSON object)")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise JobError(f"invalid JSON body: {exc}") from exc

    def _dispatch(self, method: str) -> None:
        """Route one request, timing it under its route *pattern*."""
        url = urlparse(self.path)
        route, handler, kwargs = self._resolve(method, url.path)
        start = time.perf_counter()
        try:
            if handler is None:
                code = 404 if route == "*" else 405
                self._reply_json(
                    code,
                    {"error": f"no route for {method} {url.path}"},
                )
            else:
                code = handler(query=parse_qs(url.query), **kwargs)
        except JobError as exc:
            message = str(exc)
            code = 404 if message.startswith("unknown job id") else 400
            self._reply_json(code, {"error": message})
        except BrokenPipeError:  # pragma: no cover - client went away
            code = 499
        except Exception as exc:  # noqa: BLE001 — a handler bug is a 500
            code = 500
            try:
                self._reply_json(
                    code, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except OSError:  # pragma: no cover
                pass
        HTTP_REQUESTS.labels(
            method=method, route=route, code=str(code)
        ).inc()
        HTTP_LATENCY.labels(method=method, route=route).observe(
            time.perf_counter() - start
        )

    def _resolve(self, method: str, path: str):
        """(route pattern, handler, kwargs) for one request line."""
        if path == "/jobs":
            if method == "POST":
                return "/jobs", self._post_job, {}
            if method == "GET":
                return "/jobs", self._list_jobs, {}
            return "/jobs", None, {}
        match = _RESULTS_ROUTE.match(path)
        if match:
            if method == "GET":
                return (
                    "/jobs/<id>/results",
                    self._job_results,
                    {"job_id": match["job_id"]},
                )
            return "/jobs/<id>/results", None, {}
        match = _JOB_ROUTE.match(path)
        if match:
            if method == "GET":
                return "/jobs/<id>", self._get_job, {
                    "job_id": match["job_id"]
                }
            if method == "DELETE":
                return "/jobs/<id>", self._delete_job, {
                    "job_id": match["job_id"]
                }
            return "/jobs/<id>", None, {}
        if path == "/healthz" and method == "GET":
            return "/healthz", self._healthz, {}
        if path == "/metrics" and method == "GET":
            return "/metrics", self._metrics, {}
        return "*", None, {}

    # -- handlers (each returns the status code it sent) -------------------

    def _post_job(self, query) -> int:
        del query
        status = self.manager.submit(self._read_json())
        self._reply_json(201, status)
        return 201

    def _list_jobs(self, query) -> int:
        del query
        self._reply_json(200, {"jobs": self.manager.list_jobs()})
        return 200

    def _get_job(self, query, job_id: str) -> int:
        del query
        self._reply_json(200, self.manager.status(job_id))
        return 200

    def _job_results(self, query, job_id: str) -> int:
        try:
            offset = int(query.get("offset", ["0"])[0])
        except ValueError as exc:
            raise JobError("'offset' must be an integer") from exc
        self._reply_json(200, self.manager.results(job_id, offset=offset))
        return 200

    def _delete_job(self, query, job_id: str) -> int:
        del query
        self._reply_json(200, self.manager.cancel(job_id))
        return 200

    def _healthz(self, query) -> int:
        del query
        self._reply_json(
            200,
            {
                "ok": True,
                "store": str(self.manager.store_path),
                "jobs": self.manager.n_jobs,
            },
        )
        return 200

    def _metrics(self, query) -> int:
        del query
        self._reply(
            200, REGISTRY.render().encode("utf-8"), METRICS_CONTENT_TYPE
        )
        return 200

    # stdlib dispatch entry points
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


def create_server(
    manager: JobManager, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A bound (not yet serving) server wired to ``manager``.

    ``port=0`` binds an ephemeral port (tests, the load harness); read
    the real one from ``server.server_address[1]``.
    """
    install_cache_collectors()
    server = ThreadingHTTPServer((host, port), ServiceHandler)
    server.daemon_threads = True
    server.manager = manager  # type: ignore[attr-defined]
    return server


def serve_forever(
    state_dir: str,
    host: str = "127.0.0.1",
    port: int = 8089,
    *,
    job_workers: int = 2,
    ready: threading.Event | None = None,
    install_signals: bool = True,
) -> int:
    """Run the service until SIGTERM/SIGINT, then wind down gracefully.

    Startup recovers persisted jobs (see :meth:`JobManager.recover`);
    shutdown stops accepting requests, cancels running campaigns
    cooperatively *as re-queues* — store claims released, store
    flushed, jobs back to ``queued`` on disk — so a restart resumes
    them.  ``ready`` (tests) is set once the socket is listening.
    """
    manager = JobManager(state_dir, job_workers=job_workers).start()
    server = create_server(manager, host, port)
    stop = threading.Event()

    if install_signals and threading.current_thread() is threading.main_thread():
        def handler(_signum, _frame):
            stop.set()
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, handler)

    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.1},
        daemon=True,
    )
    thread.start()
    host_, port_ = server.server_address[:2]
    print(f"repro service on http://{host_}:{port_} "
          f"(state: {manager.state_dir})", flush=True)
    if ready is not None:
        ready.set()
    try:
        while not stop.is_set():
            stop.wait(0.2)
    finally:
        server.shutdown()
        thread.join(5.0)
        server.server_close()
        manager.stop(drain=False)
        print("repro service: drained, store released", flush=True)
    return 0


class ServiceClient:
    """Minimal stdlib client for the job API (tests, bench, CI smoke).

    Every call returns the decoded JSON payload (or raises
    :class:`ServiceHTTPError` with the server's error message); the
    per-call wall-clock of the *last* request is in
    ``last_latency_s`` — the load harness's measurement hook.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.last_latency_s = 0.0

    def _request(
        self, method: str, path: str, payload: dict | None = None
    ):
        data = (
            None
            if payload is None
            else json.dumps(payload).encode("utf-8")
        )
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        start = time.perf_counter()
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                body = response.read()
        except urllib.error.HTTPError as exc:
            body = exc.read()
            self.last_latency_s = time.perf_counter() - start
            try:
                message = json.loads(body.decode("utf-8")).get("error", "")
            except (json.JSONDecodeError, UnicodeDecodeError):
                message = body.decode("utf-8", "replace")
            raise ServiceHTTPError(exc.code, message) from exc
        self.last_latency_s = time.perf_counter() - start
        return body

    def _json(self, method: str, path: str, payload: dict | None = None):
        return json.loads(self._request(method, path, payload))

    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def metrics(self) -> str:
        return self._request("GET", "/metrics").decode("utf-8")

    def metric_value(
        self, name: str, **labels: str
    ) -> float | None:
        """One sample's value from a /metrics scrape (None if absent)."""
        want = {f'{k}="{v}"' for k, v in labels.items()}
        for line in self.metrics().splitlines():
            if not line.startswith(name):
                continue
            head, _, value = line.rpartition(" ")
            body = head[len(name):]
            if body and not body.startswith("{"):
                continue
            have = set(body.strip("{}").split(", ")) if body else set()
            if want <= have:
                return float(value)
        return None

    def submit(self, spec: dict) -> dict:
        return self._json("POST", "/jobs", spec)

    def jobs(self) -> list[dict]:
        return self._json("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}")

    def results(self, job_id: str, offset: int = 0) -> dict:
        return self._json("GET", f"/jobs/{job_id}/results?offset={offset}")

    def cancel(self, job_id: str) -> dict:
        return self._json("DELETE", f"/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 120.0) -> dict:
        """Poll until the job is terminal (done/failed/cancelled)."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']!r} "
                    f"after {timeout:g}s"
                )
            time.sleep(0.05)


class ServiceHTTPError(RuntimeError):
    """Non-2xx API response, carrying the server's error message."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"HTTP {code}: {message}")
        self.code = code
        self.message = message
