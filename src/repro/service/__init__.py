"""Campaign job service: async submit/status/results API + live metrics.

Three layers (see ``docs/SERVICE.md``):

* :mod:`repro.service.metrics` — dependency-free Prometheus-text
  counters/gauges/histograms, importable in-process and rendered at
  ``GET /metrics``.
* :mod:`repro.service.jobs` — the async job manager: submit a campaign
  spec, get a job id; jobs run on background workers over the shared
  sqlite store, survive server SIGKILL and resume on restart.
* :mod:`repro.service.api` — the stdlib HTTP surface
  (``ThreadingHTTPServer``): ``POST /jobs``, ``GET /jobs/<id>``,
  ``GET /jobs/<id>/results``, ``DELETE /jobs/<id>``, ``GET /healthz``,
  ``GET /metrics`` — wired to ``python -m repro serve``.

This ``__init__`` stays lazy: :mod:`repro.campaign.runner` imports
``repro.service.metrics`` for instrumentation, so eagerly importing
``jobs``/``api`` here (which import the runner back) would be a cycle.
"""

from __future__ import annotations

_LAZY = {
    "JobManager": "repro.service.jobs",
    "JobSpec": "repro.service.jobs",
    "ServiceClient": "repro.service.api",
    "create_server": "repro.service.api",
    "serve_forever": "repro.service.api",
    "REGISTRY": "repro.service.metrics",
    "Registry": "repro.service.metrics",
}

__all__ = sorted(_LAZY)


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
