"""Async campaign job manager: submit / status / results / cancel.

A :class:`JobManager` turns :func:`repro.campaign.runner.run_campaign`
into a long-lived service primitive:

* **Submit** — a :class:`JobSpec` (circuits × fault classes × engine /
  unroll options) is validated against the registry, expanded to its
  task grid, persisted as a JSON file under the manager's state
  directory, and queued; the caller gets a job id immediately.
* **Background supervision** — a small pool of daemon worker threads
  drains the queue; each job runs one campaign against the manager's
  **shared sqlite store**, so concurrent jobs over overlapping grids
  coordinate through the store's atomic task claims (zero duplicated
  rows) and the process-wide ``compile_network`` / device-model memos
  are shared across all of them.
* **Status + incremental results** — :meth:`JobManager.status` merges
  the in-memory lifecycle state with live per-task counts scanned from
  the store; :meth:`JobManager.results` streams a job's records in
  commit order with an ``offset`` cursor, so clients poll for *new*
  rows only.
* **Cooperative cancel** — :meth:`JobManager.cancel` sets the job's
  stop event; the campaign winds down between cells, releases its
  store claims and leaves the store resumable (state ``cancelled``).
* **SIGKILL survival** — specs are on disk and results/claims are in
  the sqlite store, so a killed server loses nothing:
  :meth:`JobManager.recover` (run at startup) re-queues every job that
  had not reached a terminal state; ``resume=True`` plus the store's
  dead-PID claim reclamation make the rerun recompute exactly the
  unfinished cells, converging bit-identical (after
  ``strip_volatile``) to an undisturbed run.

Job lifecycle (the state machine ``docs/SERVICE.md`` documents)::

    queued ── run ──> running ──> done      (terminal)
      │                 │  └────> failed    (terminal: campaign raised)
      │                 └───────> cancelled (terminal, store resumable)
      └── cancel ─────> cancelled

    (server killed)  ──restart──> queued    (recover() re-queues
                                             queued/running jobs)
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import sqlite3
import threading
import time
import uuid
from collections import deque
from pathlib import Path
from typing import Iterable

from repro.campaign.runner import (
    RetryPolicy,
    TaskSpec,
    expand_grid,
    run_campaign,
)
from repro.campaign.tasks import DEFAULT_FAULT_CLASSES, TASK_RUNNERS
from repro.service.metrics import counter, gauge, install_cache_collectors

#: Lifecycle states (terminal: done / failed / cancelled).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: Version of the on-disk job-file layout.
JOB_SCHEMA = 1

JOBS_TOTAL = counter(
    "repro_service_jobs_total",
    "Job lifecycle transitions by new state",
    ("state",),
)
JOBS_INFLIGHT = gauge(
    "repro_service_jobs_inflight",
    "Jobs currently queued or running",
)
CAMPAIGN_COVERAGE = gauge(
    "repro_campaign_coverage",
    "Mean fault coverage over a finished job's cells, by fault class",
    ("job", "fault_class"),
)


class JobError(ValueError):
    """Invalid job payload or unknown job id (HTTP 400/404 material)."""


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One submitted campaign: the grid plus its execution knobs."""

    circuits: tuple[str, ...]
    fault_classes: tuple[str, ...] = DEFAULT_FAULT_CLASSES
    engine: str = "compiled"
    workers: int = 1
    timeout: float | None = None

    #: Payload keys accepted by :meth:`from_payload`.
    FIELDS = ("circuits", "fault_classes", "engine", "workers", "timeout")

    @classmethod
    def from_payload(cls, payload: dict) -> "JobSpec":
        """Validate an API payload into a spec (raises :class:`JobError`
        with a client-readable message on any problem)."""
        if not isinstance(payload, dict):
            raise JobError("job payload must be a JSON object")
        unknown = sorted(set(payload) - set(cls.FIELDS))
        if unknown:
            raise JobError(
                f"unknown field(s) {unknown}; accepted: {list(cls.FIELDS)}"
            )
        circuits = payload.get("circuits")
        if not circuits or not isinstance(circuits, (list, tuple)) or not all(
            isinstance(c, str) for c in circuits
        ):
            raise JobError("'circuits' must be a non-empty list of names")
        fault_classes = payload.get("fault_classes", list(DEFAULT_FAULT_CLASSES))
        if not fault_classes or not isinstance(
            fault_classes, (list, tuple)
        ) or not all(isinstance(f, str) for f in fault_classes):
            raise JobError(
                "'fault_classes' must be a non-empty list of names"
            )
        bad = sorted(set(fault_classes) - set(TASK_RUNNERS))
        if bad:
            raise JobError(
                f"unknown fault class(es) {bad}; "
                f"available: {sorted(TASK_RUNNERS)}"
            )
        engine = payload.get("engine", "compiled")
        if not isinstance(engine, str):
            raise JobError("'engine' must be a string")
        workers = payload.get("workers", 1)
        if not isinstance(workers, int) or workers < 1:
            raise JobError("'workers' must be a positive integer")
        timeout = payload.get("timeout")
        if timeout is not None and (
            not isinstance(timeout, (int, float)) or timeout <= 0
        ):
            raise JobError("'timeout' must be a positive number or null")
        return cls(
            circuits=tuple(circuits),
            fault_classes=tuple(fault_classes),
            engine=engine,
            workers=workers,
            timeout=None if timeout is None else float(timeout),
        )

    def to_payload(self) -> dict:
        return {
            "circuits": list(self.circuits),
            "fault_classes": list(self.fault_classes),
            "engine": self.engine,
            "workers": self.workers,
            "timeout": self.timeout,
        }

    def expand(self) -> list[TaskSpec]:
        """The grid (raises :class:`JobError` on unknown circuits, so
        submission fails fast instead of queueing a doomed job)."""
        try:
            return expand_grid(
                list(self.circuits), list(self.fault_classes), self.engine
            )
        except KeyError as exc:
            raise JobError(str(exc.args[0]) if exc.args else str(exc)) from exc


@dataclasses.dataclass
class Job:
    """In-memory job record (persisted to ``jobs/<id>.json``)."""

    id: str
    spec: JobSpec
    state: str = QUEUED
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    task_ids: tuple[str, ...] = ()
    cancel_event: threading.Event = dataclasses.field(
        default_factory=threading.Event, repr=False, compare=False
    )
    #: Set during server shutdown: the cancel is a wind-down, so the
    #: job goes back to ``queued`` on disk and resumes next start.
    requeue_on_cancel: bool = dataclasses.field(
        default=False, repr=False, compare=False
    )

    def to_payload(self) -> dict:
        return {
            "schema": JOB_SCHEMA,
            "id": self.id,
            "spec": self.spec.to_payload(),
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }


def _scan_records(store_path: Path) -> list[dict]:
    """All records of the shared sqlite store in commit order, through
    a short-lived read-only connection.

    Status/results polling must not mutate the store (the backends'
    ``open`` runs repair + stale-claim reclamation), and the polling
    thread is never the campaign thread, so this bypasses the backend
    entirely.  A missing store (no job ran yet) is just empty.
    """
    if not store_path.exists():
        return []
    uri = f"file:{store_path}?mode=ro"
    try:
        conn = sqlite3.connect(uri, uri=True, timeout=5.0)
    except sqlite3.OperationalError:
        return []
    try:
        rows = conn.execute(
            "SELECT record FROM results ORDER BY seq"
        ).fetchall()
    except sqlite3.OperationalError:  # store still being initialised
        return []
    finally:
        conn.close()
    records = []
    for (text,) in rows:
        try:
            records.append(json.loads(text))
        except json.JSONDecodeError:  # pragma: no cover - quarantine's job
            continue
    return records


class JobManager:
    """The async job registry and its background execution pool.

    One manager per state directory::

        manager = JobManager(state_dir).start()   # recovers + spawns pool
        job_id = manager.submit({"circuits": ["c17"]})["id"]
        manager.wait(job_id)
        manager.status(job_id)["counts"]["ok"]

    All public methods are thread-safe (the HTTP layer calls them from
    ``ThreadingHTTPServer`` request threads).
    """

    def __init__(
        self,
        state_dir: str | Path,
        *,
        job_workers: int = 2,
        policy: RetryPolicy | None = None,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.store_path = self.state_dir / "store.sqlite"
        self.jobs_dir = self.state_dir / "jobs"
        self.job_workers = max(1, job_workers)
        self.policy = policy or RetryPolicy()
        self._jobs: dict[str, Job] = {}
        self._queue: deque[str] = deque()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._threads: list[threading.Thread] = []
        self._shutdown = False
        self._drain = False
        install_cache_collectors()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "JobManager":
        """Recover persisted jobs and spawn the worker-thread pool."""
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.recover()
        with self._lock:
            self._shutdown = False
            self._drain = False
            while len(self._threads) < self.job_workers:
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-job-worker-{len(self._threads)}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()
        return self

    def stop(self, *, drain: bool = False, timeout: float = 30.0) -> None:
        """Wind the pool down.

        ``drain=True`` lets running jobs finish; the default cancels
        them cooperatively *as a requeue* — they go back to ``queued``
        on disk (store claims released, store flushed) so the next
        :meth:`start` resumes them where they stopped.
        """
        with self._lock:
            self._shutdown = True
            self._drain = drain
            if not drain:
                for job in self._jobs.values():
                    if job.state == RUNNING:
                        job.requeue_on_cancel = True
                        job.cancel_event.set()
            self._wake.notify_all()
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        self._threads = [t for t in self._threads if t.is_alive()]

    def recover(self) -> list[str]:
        """Re-queue every persisted job that never reached a terminal
        state (the post-SIGKILL path).  Returns the re-queued ids."""
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        requeued = []
        for path in sorted(self.jobs_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                spec = JobSpec.from_payload(payload["spec"])
            except (json.JSONDecodeError, KeyError, JobError, OSError):
                continue  # half-written spec file: nothing to resume
            job_id = payload.get("id") or path.stem
            with self._lock:
                if job_id in self._jobs:
                    continue
                job = Job(
                    id=job_id,
                    spec=spec,
                    state=payload.get("state", QUEUED),
                    submitted_at=payload.get("submitted_at", 0.0),
                    started_at=payload.get("started_at"),
                    finished_at=payload.get("finished_at"),
                    error=payload.get("error"),
                )
                with contextlib.suppress(JobError):
                    job.task_ids = tuple(
                        t.task_id for t in spec.expand()
                    )
                self._jobs[job_id] = job
                if job.state in (QUEUED, RUNNING):
                    # A 'running' job here means the previous server
                    # died mid-campaign; its store claims are stale
                    # (dead PID) and resume recomputes the rest.
                    job.state = QUEUED
                    job.started_at = None
                    self._queue.append(job_id)
                    self._wake.notify()
                    requeued.append(job_id)
            if job.state == QUEUED:
                self._persist(job)
        return requeued

    # -- the API surface ---------------------------------------------------

    def submit(self, payload: dict) -> dict:
        """Validate, persist and queue a job; returns its status dict."""
        spec = JobSpec.from_payload(payload)
        tasks = spec.expand()  # validates circuit names eagerly
        job = Job(
            id=uuid.uuid4().hex[:12],
            spec=spec,
            submitted_at=time.time(),
            task_ids=tuple(t.task_id for t in tasks),
        )
        with self._lock:
            if self._shutdown:
                raise JobError("server is shutting down")
            self._jobs[job.id] = job
            self._queue.append(job.id)
            self._wake.notify()
        JOBS_TOTAL.labels(state=QUEUED).inc()
        self._refresh_inflight()
        self._persist(job)
        return self.status(job.id)

    @property
    def n_jobs(self) -> int:
        with self._lock:
            return len(self._jobs)

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobError(f"unknown job id {job_id!r}")
        return job

    def list_jobs(self) -> list[dict]:
        """Status dicts for every known job, newest first."""
        with self._lock:
            ids = [
                job.id
                for job in sorted(
                    self._jobs.values(),
                    key=lambda j: j.submitted_at,
                    reverse=True,
                )
            ]
        return [self.status(job_id) for job_id in ids]

    def status(self, job_id: str) -> dict:
        """Lifecycle state plus live per-task counts from the store."""
        job = self.get(job_id)
        wanted = set(job.task_ids)
        latest: dict[str, dict] = {}
        for record in _scan_records(self.store_path):
            if record.get("task_id") in wanted:
                latest[record["task_id"]] = record
        n_ok = sum(1 for r in latest.values() if r.get("status") == "ok")
        n_failed = len(latest) - n_ok
        counts = {
            "tasks": len(job.task_ids),
            "ok": n_ok,
            "failed": n_failed,
            "pending": len(job.task_ids) - len(latest),
        }
        return {
            "id": job.id,
            "state": job.state,
            "spec": job.spec.to_payload(),
            "submitted_at": job.submitted_at,
            "started_at": job.started_at,
            "finished_at": job.finished_at,
            "error": job.error,
            "counts": counts,
        }

    def results(self, job_id: str, offset: int = 0) -> dict:
        """The job's store records in commit order, from ``offset``.

        Returns ``{"records": [...], "next_offset": int, "complete":
        bool}``; clients poll with the returned cursor to stream rows
        incrementally while the campaign runs.  Records include every
        attempt (reruns supersede — the *latest* row per task wins),
        exactly as the store holds them.
        """
        job = self.get(job_id)
        offset = max(0, int(offset))
        wanted = set(job.task_ids)
        mine = [
            record
            for record in _scan_records(self.store_path)
            if record.get("task_id") in wanted
        ]
        return {
            "id": job.id,
            "state": job.state,
            "records": mine[offset:],
            "next_offset": len(mine),
            "complete": job.state in TERMINAL_STATES,
        }

    def cancel(self, job_id: str) -> dict:
        """Cooperative cancel: queued jobs die immediately, running
        jobs wind down between cells (claims released, store kept
        resumable).  Cancelling a terminal job is a no-op."""
        job = self.get(job_id)
        with self._lock:
            if job.state == QUEUED:
                job.state = CANCELLED
                job.finished_at = time.time()
                with contextlib.suppress(ValueError):
                    self._queue.remove(job_id)
                JOBS_TOTAL.labels(state=CANCELLED).inc()
            elif job.state == RUNNING:
                job.cancel_event.set()
        self._refresh_inflight()
        self._persist(job)
        return self.status(job_id)

    def wait(self, job_id: str, timeout: float = 120.0) -> dict:
        """Block until the job reaches a terminal state (tests/bench)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            time.sleep(0.02)
        raise TimeoutError(f"job {job_id} still {status['state']!r}")

    # -- execution ---------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._shutdown:
                    self._wake.wait(timeout=0.5)
                # Non-drain shutdown exits even with a non-empty queue:
                # interrupted jobs are *re*-queued during wind-down, and
                # picking them up again would rerun them uncancellable.
                if self._shutdown and not (self._drain and self._queue):
                    return
                if not self._queue:
                    continue
                job = self._jobs[self._queue.popleft()]
                if job.state != QUEUED:  # cancelled while queued
                    continue
                job.state = RUNNING
                job.started_at = time.time()
            JOBS_TOTAL.labels(state=RUNNING).inc()
            self._refresh_inflight()
            self._persist(job)
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        try:
            result = run_campaign(
                job.spec.expand(),
                store=self.store_path,
                backend="sqlite",
                workers=job.spec.workers,
                timeout=job.spec.timeout,
                resume=True,
                policy=self.policy,
                should_stop=job.cancel_event.is_set,
            )
        except Exception as exc:  # noqa: BLE001 — jobs must not kill workers
            with self._lock:
                job.state = FAILED
                job.error = f"{type(exc).__name__}: {exc}"
                job.finished_at = time.time()
        else:
            with self._lock:
                if result.interrupted and job.requeue_on_cancel:
                    # Shutdown wind-down: back to the queue (and, via
                    # the persisted 'queued' state, to the next start).
                    job.state = QUEUED
                    job.started_at = None
                    job.cancel_event = threading.Event()
                    job.requeue_on_cancel = False
                    self._queue.append(job.id)
                elif result.interrupted:
                    job.state = CANCELLED
                    job.finished_at = time.time()
                else:
                    job.state = DONE
                    job.finished_at = time.time()
            if job.state == DONE:
                self._publish_coverage(job, result.records)
        if job.state in TERMINAL_STATES:
            JOBS_TOTAL.labels(state=job.state).inc()
        self._refresh_inflight()
        self._persist(job)

    def _publish_coverage(self, job: Job, records: Iterable[dict]) -> None:
        """Per-fault-class mean coverage gauge for a finished job."""
        sums: dict[str, list[float]] = {}
        for record in records:
            coverage = (record.get("metrics") or {}).get("coverage")
            if coverage is None:
                continue
            sums.setdefault(record.get("fault_class", ""), []).append(
                float(coverage)
            )
        for fault_class, values in sums.items():
            CAMPAIGN_COVERAGE.labels(
                job=job.id, fault_class=fault_class
            ).set(sum(values) / len(values))

    # -- persistence -------------------------------------------------------

    def _persist(self, job: Job) -> None:
        """Atomic (tmp + rename) rewrite of the job's state file."""
        path = self.jobs_dir / f"{job.id}.json"
        # Thread-scoped tmp name: the submit thread and a worker thread
        # can persist the same job concurrently.
        tmp = path.with_suffix(
            f".tmp{os.getpid()}.{threading.get_ident()}"
        )
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        with self._lock:
            payload = job.to_payload()
        tmp.write_text(
            json.dumps(payload, sort_keys=True, indent=1), encoding="utf-8"
        )
        tmp.replace(path)

    def _refresh_inflight(self) -> None:
        with self._lock:
            inflight = sum(
                1
                for job in self._jobs.values()
                if job.state in (QUEUED, RUNNING)
            )
        JOBS_INFLIGHT.set(float(inflight))
