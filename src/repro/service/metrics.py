"""Dependency-free Prometheus-text metrics: counters, gauges, histograms.

The campaign service exposes its internals the way the muBench-style
monitoring stacks do — a ``GET /metrics`` endpoint rendering the
`Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ — but
without taking a dependency on ``prometheus_client``: everything here
is stdlib.  The same registry is importable in-process, so tests and
benchmarks assert on live counter values instead of scraping text.

Three instrument types, all label-aware and thread-safe:

:class:`Counter`
    Monotonic float per label set (``inc``).  Campaign task outcomes,
    HTTP requests, cache hits.
:class:`Gauge`
    Settable value per label set (``set``/``inc``/``dec``).  Jobs in
    flight, per-campaign coverage.
:class:`Histogram`
    Cumulative-bucket observation counts plus ``_sum``/``_count``
    (``observe``), rendered with the ``le`` convention Prometheus
    expects.  Task runtimes per engine, API request latency.

Instruments are created through the registry (:meth:`Registry.counter`
et al. — get-or-create, so modules can call them at import time in any
order) and rendered with :meth:`Registry.render`.  A registry also
accepts **collector callbacks** (:meth:`Registry.collect`) that run at
render time — the bridge for counters owned elsewhere, e.g. the
:func:`repro.device.cache.model_cache_stats` and
:func:`repro.logic.compiled.compile_memo_stats` memo counters, which
stay plain dicts in their own modules so the core never imports the
service layer.  :func:`install_cache_collectors` wires those two in.

The process-wide default registry is :data:`REGISTRY`; the module-level
:func:`counter`/:func:`gauge`/:func:`histogram` helpers target it.

Doctest::

    >>> reg = Registry()
    >>> c = reg.counter("demo_total", "Demo counter", ("kind",))
    >>> c.labels(kind="a").inc()
    >>> c.labels(kind="a").inc(2.0)
    >>> c.labels(kind="a").value
    3.0
    >>> print(reg.render().strip())
    # HELP demo_total Demo counter
    # TYPE demo_total counter
    demo_total{kind="a"} 3.0
"""

from __future__ import annotations

import bisect
import threading
from typing import Callable, Sequence

#: Default histogram buckets (seconds) — the prometheus_client
#: defaults, good for both millisecond API calls and multi-second
#: campaign cells.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _escape_label_value(value: str) -> str:
    """Backslash-escape a label value per the exposition format."""
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')
    )


def _format_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    pairs = ", ".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


def _format_value(value: float) -> str:
    """Prometheus-style number: floats as-is, +Inf spelled out."""
    if value == float("inf"):
        return "+Inf"
    return repr(float(value))


class _Child:
    """One label-set's cell of a counter/gauge (holds the float)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


class _Metric:
    """Shared name/help/label bookkeeping for all instrument types."""

    type_name = "untyped"

    def __init__(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple, object] = {}

    def _child_for(self, labelvalues: tuple) -> object:
        with self._lock:
            child = self._children.get(labelvalues)
            if child is None:
                child = self._new_child()
                self._children[labelvalues] = child
            return child

    def _new_child(self) -> object:
        raise NotImplementedError

    def labels(self, *values, **kwvalues):
        """The child for one label set (positional or keyword form)."""
        if kwvalues:
            if values:
                raise ValueError("pass labels positionally or by name")
            values = tuple(kwvalues[name] for name in self.labelnames)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {values!r}"
            )
        return self._child_for(tuple(str(v) for v in values))

    def _default_child(self):
        """The label-less child (only valid without labelnames)."""
        if self.labelnames:
            raise ValueError(f"{self.name}: labels required")
        return self.labels()

    def samples(self) -> list[tuple[str, str, float]]:
        """(suffix, label-block, value) rows in insertion order."""
        raise NotImplementedError

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.type_name}",
        ]
        for suffix, labelblock, value in self.samples():
            lines.append(
                f"{self.name}{suffix}{labelblock} {_format_value(value)}"
            )
        return "\n".join(lines)


class Counter(_Metric):
    """Monotonic counter (per label set)."""

    type_name = "counter"

    def _new_child(self) -> _Child:
        return _Child(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value

    def value_for(self, **kwvalues) -> float:
        """Current value of one label set (0.0 if never incremented)."""
        return self.labels(**kwvalues).value

    def total(self) -> float:
        """Sum over every label set."""
        with self._lock:
            return sum(child.value for child in self._children.values())

    def samples(self) -> list[tuple[str, str, float]]:
        with self._lock:
            return [
                ("", _format_labels(self.labelnames, values), child.value)
                for values, child in self._children.items()
            ]


class Gauge(Counter):
    """Settable instantaneous value (per label set)."""

    type_name = "gauge"

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)


class _HistogramChild:
    """One label-set's buckets/sum/count."""

    __slots__ = ("_lock", "bounds", "bucket_counts", "sum", "count")

    def __init__(
        self, lock: threading.Lock, bounds: tuple[float, ...]
    ) -> None:
        self._lock = lock
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            # Per-bucket (non-cumulative) counts; ``samples`` cumulates
            # them into the ``le`` convention at render time.
            index = bisect.bisect_left(self.bounds, value)
            self.bucket_counts[min(index, len(self.bounds) - 1)] += 1


class Histogram(_Metric):
    """Cumulative-bucket histogram with ``_sum`` and ``_count``."""

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if bounds and bounds[-1] != float("inf"):
            bounds = bounds + (float("inf"),)
        self.buckets = bounds

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self._lock, self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def samples(self) -> list[tuple[str, str, float]]:
        rows: list[tuple[str, str, float]] = []
        with self._lock:
            children = list(self._children.items())
        for values, child in children:
            cumulative = 0
            for bound, n in zip(child.bounds, child.bucket_counts):
                cumulative += n
                rows.append((
                    "_bucket",
                    _format_labels(
                        self.labelnames + ("le",),
                        values + (_format_value(bound),),
                    ),
                    float(cumulative),
                ))
            base = _format_labels(self.labelnames, values)
            rows.append(("_sum", base, child.sum))
            rows.append(("_count", base, float(child.count)))
        return rows


class Registry:
    """A named collection of instruments plus render-time collectors.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same instrument (and raises if the
    second request disagrees on type or labels), so any module can
    declare the metrics it touches without an initialisation order.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list[Callable[["Registry"], None]] = []

    def _get_or_create(self, cls, name, help_text, labelnames, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if not isinstance(metric, cls) or (
                    metric.labelnames != tuple(labelnames)
                ):
                    raise ValueError(
                        f"metric {name!r} already registered with a "
                        "different type or label set"
                    )
                return metric
            metric = cls(name, help_text, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labelnames, buckets=buckets
        )

    def get(self, name: str) -> _Metric | None:
        """Look up an instrument without creating it."""
        with self._lock:
            return self._metrics.get(name)

    def collect(self, callback: Callable[["Registry"], None]) -> None:
        """Register a render-time callback (idempotent by identity).

        Collectors bridge counters owned outside the registry: each
        ``render`` first calls every collector, which typically sets
        gauges from some module's plain-dict stats.
        """
        with self._lock:
            if callback not in self._collectors:
                self._collectors.append(callback)

    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        with self._lock:
            collectors = list(self._collectors)
        for callback in collectors:
            callback(self)
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        blocks = [metric.render() for metric in metrics]
        return "\n".join(blocks) + ("\n" if blocks else "")

    def reset(self) -> None:
        """Drop every instrument and collector (tests only)."""
        with self._lock:
            self._metrics.clear()
            self._collectors.clear()


#: The process-wide default registry — what ``GET /metrics`` renders
#: and what the campaign runner instruments.
REGISTRY = Registry()


def counter(
    name: str, help_text: str, labelnames: Sequence[str] = ()
) -> Counter:
    """Get-or-create a counter on the default registry."""
    return REGISTRY.counter(name, help_text, labelnames)


def gauge(
    name: str, help_text: str, labelnames: Sequence[str] = ()
) -> Gauge:
    """Get-or-create a gauge on the default registry."""
    return REGISTRY.gauge(name, help_text, labelnames)


def histogram(
    name: str,
    help_text: str,
    labelnames: Sequence[str] = (),
    buckets: Sequence[float] = DEFAULT_BUCKETS,
) -> Histogram:
    """Get-or-create a histogram on the default registry."""
    return REGISTRY.histogram(name, help_text, labelnames, buckets=buckets)


# ---------------------------------------------------------------------------
# Cache-stat collectors (the `repro cache stats` data source)
# ---------------------------------------------------------------------------

def cache_stats() -> dict[str, dict[str, int]]:
    """Every in-process cache's counters, one dict per cache.

    ``device``/``table`` come from :mod:`repro.device.cache`,
    ``compile_memo`` from the :func:`repro.logic.compiled.compile_network`
    memo.  This is the single source behind both ``repro cache stats``
    and the ``repro_cache_*`` gauges on ``/metrics``.
    """
    from repro.device.cache import model_cache_stats
    from repro.logic.compiled import compile_memo_stats

    model = model_cache_stats()
    return {
        "device": {
            "hits": model["device_hits"], "misses": model["device_misses"],
        },
        "table": {
            "hits": model["table_hits"], "misses": model["table_misses"],
        },
        "compile_memo": compile_memo_stats(),
    }


def _cache_collector(registry: Registry) -> None:
    g = registry.gauge(
        "repro_cache_events",
        "In-process cache counters (device/table models, compile memo)",
        ("cache", "event"),
    )
    for cache, stats in cache_stats().items():
        for event, value in stats.items():
            g.labels(cache=cache, event=event).set(float(value))


def install_cache_collectors(registry: Registry | None = None) -> None:
    """Expose the device/table/compile-memo cache counters as
    ``repro_cache_events{cache,event}`` gauges on ``registry``
    (default: the process-wide one).  Idempotent."""
    (registry or REGISTRY).collect(_cache_collector)
