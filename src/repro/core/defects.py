"""Physical-defect taxonomy derived from the fabrication process (Table I).

The paper's inductive fault analysis starts from the TIG-SiNWFET
fabrication flow; each process step contributes characteristic defect
mechanisms.  :data:`FABRICATION_STEPS` reproduces Table I;
:func:`enumerate_defect_sites` instantiates the concrete defect sites a
given cell exposes for each mechanism (the site lists drive the fault
injection campaigns in :mod:`repro.core.inductive`).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.gates.cell import Cell


class DefectMechanism(enum.Enum):
    """Physical defect classes of Table I."""

    NANOWIRE_BREAK = "nanowire break"
    GATE_OXIDE_SHORT = "gate oxide short"
    TERMINAL_BRIDGE = "bridge between two or more terminals"
    INTERCONNECT_BRIDGE = "bridge among interconnects"
    FLOATING_GATE = "floating gate"


@dataclasses.dataclass(frozen=True)
class FabricationStep:
    """One row of Table I."""

    index: int
    process: str
    outcome: str
    defects: tuple[DefectMechanism, ...]


FABRICATION_STEPS: tuple[FabricationStep, ...] = (
    FabricationStep(
        1,
        "HSQ-based nanowire patterning",
        "Initial pattern of nanowires",
        (DefectMechanism.NANOWIRE_BREAK,),
    ),
    FabricationStep(
        2,
        "Bosch process",
        "Nanowire formation",
        (DefectMechanism.NANOWIRE_BREAK,),
    ),
    FabricationStep(
        3,
        "Oxidation process",
        "Dielectric formation",
        (DefectMechanism.GATE_OXIDE_SHORT,),
    ),
    FabricationStep(
        4,
        "Polysilicon deposition",
        "Polarity and control gates",
        (DefectMechanism.TERMINAL_BRIDGE,),
    ),
    FabricationStep(
        5,
        "Metal layer(s) deposition",
        "Interconnections",
        (
            DefectMechanism.INTERCONNECT_BRIDGE,
            DefectMechanism.FLOATING_GATE,
        ),
    ),
)


@dataclasses.dataclass(frozen=True)
class DefectSite:
    """A concrete location where a defect mechanism can strike a cell.

    Attributes:
        mechanism: The physical mechanism.
        transistor: Affected transistor name ('' for net-level bridges).
        detail: Location detail — a gate terminal for GOS/floats, a pair
            of nets for bridges, '' for channel breaks.
    """

    mechanism: DefectMechanism
    transistor: str
    detail: str


#: Explicit sort rank per mechanism (Table I order) backing the
#: deterministic ordering contract of :func:`enumerate_defect_sites`.
_MECHANISM_RANK = {m: k for k, m in enumerate(DefectMechanism)}


def _site_sort_key(site: DefectSite) -> tuple[int, str, str]:
    return (_MECHANISM_RANK[site.mechanism], site.transistor, site.detail)


def enumerate_defect_sites(cell: Cell) -> list[DefectSite]:
    """All single-defect sites of a cell, mechanism by mechanism.

    * Nanowire break: one site per transistor channel.
    * Gate-oxide short: one site per transistor per gate (PGS, CG, PGD).
    * Terminal bridge: per transistor, CG-to-PGS and CG-to-PGD shorts
      (adjacent-gate deposition defects) plus the CP-specific
      polarity-terminal-to-rail bridges (PG-to-VDD, PG-to-GND) that
      motivate the stuck-at n-type / p-type models.
    * Interconnect bridge: unordered pairs of distinct signal nets.
    * Floating gate: per transistor, each signal-driven gate terminal can
      lose its connection.

    Ordering contract: the returned list is explicitly sorted by
    ``(mechanism, transistor, detail)`` with mechanisms in Table I
    (enum definition) order — never by dict/set iteration — so fault
    censuses, campaign stores and the CI golden files are stable across
    platforms and Python versions.
    """
    sites: list[DefectSite] = []
    for t in cell.transistors:
        sites.append(DefectSite(DefectMechanism.NANOWIRE_BREAK, t.name, ""))
        for gate in ("pgs", "cg", "pgd"):
            sites.append(
                DefectSite(DefectMechanism.GATE_OXIDE_SHORT, t.name, gate)
            )
        sites.append(
            DefectSite(DefectMechanism.TERMINAL_BRIDGE, t.name, "cg-pgs")
        )
        sites.append(
            DefectSite(DefectMechanism.TERMINAL_BRIDGE, t.name, "cg-pgd")
        )
        sites.append(
            DefectSite(DefectMechanism.TERMINAL_BRIDGE, t.name, "pg-vdd")
        )
        sites.append(
            DefectSite(DefectMechanism.TERMINAL_BRIDGE, t.name, "pg-gnd")
        )
        for gate in ("pgs", "cg", "pgd"):
            driver = getattr(t, gate)
            if driver not in ("vdd", "gnd") or cell.category == "SP":
                sites.append(
                    DefectSite(DefectMechanism.FLOATING_GATE, t.name, gate)
                )
    signal_nets = sorted(
        {net for t in cell.transistors for net in t.nets()}
        - {"vdd", "gnd"}
    )
    for i, a in enumerate(signal_nets):
        for b in signal_nets[i + 1:]:
            sites.append(
                DefectSite(
                    DefectMechanism.INTERCONNECT_BRIDGE, "", f"{a}-{b}"
                )
            )
    return sorted(sites, key=_site_sort_key)


def table_i_rows() -> list[tuple[str, str, str]]:
    """Render Table I: (process, outcome, possible defects)."""
    rows = []
    for step in FABRICATION_STEPS:
        defects = ", ".join(d.value for d in step.defects)
        rows.append(
            (f"({step.index}) {step.process}", step.outcome, defects)
        )
    return rows
