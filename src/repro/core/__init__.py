"""The paper's primary contribution: CP fault models, inductive fault
analysis, detectability measurement and the new test algorithms."""

from repro.core.classify import (
    ApplicableModel,
    BehaviourPoint,
    SweepClassification,
    classify_point,
    classify_sweep,
)
from repro.core.defects import (
    DefectMechanism,
    DefectSite,
    FABRICATION_STEPS,
    FabricationStep,
    enumerate_defect_sites,
    table_i_rows,
)
from repro.core.detection import (
    DetectionReport,
    IDDQ_DETECT_RATIO,
    VectorObservation,
    characterise_fault,
    screen_cell_faults,
)
from repro.core.fault_models import (
    ChannelBreakFault,
    CircuitFault,
    DriveDriftFault,
    FloatingPolarityGate,
    GOSFault,
    InterconnectBridgeFault,
    StuckAtNType,
    StuckAtPType,
    StuckOnFault,
    TerminalBridgeFault,
)
from repro.core.inductive import (
    IFAResult,
    IFASummary,
    run_ifa,
    summarise_ifa,
)
from repro.core.test_algorithms import (
    ChannelBreakProcedure,
    ChannelBreakStep,
    TwoPatternTest,
    channel_break_procedure,
    polarity_fault_table,
    run_channel_break_procedure,
    simulate_two_pattern,
    two_pattern_sof_tests,
)
# Canonical cross-layer record (the historical PolarityFaultRow name is
# kept re-exported; the repro.core.test_algorithms path is the shim).
from repro.faults.records import PolarityFaultRecord
from repro.faults.records import PolarityFaultRecord as PolarityFaultRow

__all__ = [
    "ApplicableModel",
    "BehaviourPoint",
    "ChannelBreakFault",
    "ChannelBreakProcedure",
    "ChannelBreakStep",
    "CircuitFault",
    "DefectMechanism",
    "DefectSite",
    "DetectionReport",
    "DriveDriftFault",
    "FABRICATION_STEPS",
    "FabricationStep",
    "FloatingPolarityGate",
    "GOSFault",
    "IDDQ_DETECT_RATIO",
    "IFAResult",
    "IFASummary",
    "InterconnectBridgeFault",
    "PolarityFaultRecord",
    "PolarityFaultRow",
    "StuckAtNType",
    "StuckAtPType",
    "StuckOnFault",
    "SweepClassification",
    "TerminalBridgeFault",
    "TwoPatternTest",
    "VectorObservation",
    "channel_break_procedure",
    "characterise_fault",
    "classify_point",
    "classify_sweep",
    "enumerate_defect_sites",
    "polarity_fault_table",
    "run_channel_break_procedure",
    "run_ifa",
    "screen_cell_faults",
    "simulate_two_pattern",
    "summarise_ifa",
    "table_i_rows",
    "two_pattern_sof_tests",
]
