"""The paper's test algorithms (Section V).

Three algorithms are implemented, all operating in the switch-level
domain (with SPICE confirmation left to the benchmarks):

* :func:`two_pattern_sof_tests` — classic stuck-open testing for SP
  gates: a first vector initialises the output, a second exposes the
  floating (retained) value.  For the TIG NAND2 this derives exactly the
  paper's set {11->01, 11->10, 00->11}.  For DP gates it returns no
  usable tests — the redundant pass-transistor pairs mask every single
  channel break, which is the paper's motivation for the new procedure.
* :func:`polarity_fault_table` — Table III: the detecting vector and
  observables for stuck-at n-/p-type faults on every transistor.
* :func:`channel_break_procedure` / :func:`run_channel_break_procedure`
  — the paper's new DP channel-break test: deliberately reconfigure the
  suspect device into the *complemented* polarity (inject stuck-at-n/p
  through the polarity inputs), apply the corresponding Table III
  vector, and observe: an *intact* device now corrupts the output or
  draws >10^6 leakage, while a *broken* device leaves the circuit clean
  — so a clean response under deliberate polarity inversion reveals the
  break.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.faults.records import PolarityFaultRecord
from repro.gates.cell import Cell, DYNAMIC_POLARITY
from repro.logic.switch_level import (
    DeviceState,
    detection_behaviour,
    evaluate,
)
from repro.logic.values import ONE, Z, ZERO


def __getattr__(name: str):
    if name == "PolarityFaultRow":
        # Historical duplicate of the canonical Table III record; kept
        # importable as a thin shim (note: the canonical record is
        # constructed with ``kind='n'|'p'`` instead of a ``fault_type``
        # string, which it derives as a property).
        import warnings

        from repro.faults.universe import ReproDeprecationWarning

        warnings.warn(
            "repro.core.test_algorithms.PolarityFaultRow is deprecated; "
            "use repro.faults.PolarityFaultRecord (note the changed "
            "constructor: kind='n'|'p' replaces the fault_type string, "
            "which is now a derived property, and transistor comes "
            "first)",
            ReproDeprecationWarning,
            stacklevel=2,
        )
        return PolarityFaultRecord
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclasses.dataclass(frozen=True)
class TwoPatternTest:
    """A stuck-open test pair.

    Attributes:
        init_vector: First pattern (sets the output to the value the
            fault will wrongly retain).
        test_vector: Second pattern (the faulty gate's output floats and
            keeps the initialised value instead of flipping).
        covered: Transistors whose full channel break this pair detects.
    """

    init_vector: tuple[int, ...]
    test_vector: tuple[int, ...]
    covered: tuple[str, ...]

    def describe(self) -> str:
        v1 = "".join(map(str, self.init_vector))
        v2 = "".join(map(str, self.test_vector))
        return f"({v1} -> {v2}) covers {', '.join(self.covered)}"


def _essential_vectors(cell: Cell, transistor: str) -> list[tuple[int, ...]]:
    """Vectors where ``transistor`` is essential: breaking it floats the
    output (no remaining conducting path)."""
    vectors = []
    for vector in itertools.product((0, 1), repeat=cell.n_inputs):
        broken = evaluate(
            cell, vector, {transistor: DeviceState.STUCK_OPEN}
        )
        if broken.output == Z:
            vectors.append(vector)
    return vectors


def two_pattern_sof_tests(cell: Cell) -> list[TwoPatternTest]:
    """Derive a compact two-pattern stuck-open test set for a cell.

    Returns an empty list when no transistor has an essential vector
    (every break is masked) — the DP-gate situation of Section V-C.
    """
    # Gather (test_vector -> transistors it exposes).
    exposure: dict[tuple[int, ...], list[str]] = {}
    for t in cell.transistors:
        for vector in _essential_vectors(cell, t.name):
            exposure.setdefault(vector, []).append(t.name)

    tests: list[TwoPatternTest] = []
    covered: set[str] = set()
    # Greedy: biggest exposure first; ties resolved by vector order for
    # determinism.
    for test_vector, names in sorted(
        exposure.items(), key=lambda kv: (-len(kv[1]), kv[0])
    ):
        new = [n for n in names if n not in covered]
        if not new:
            continue
        expected = cell.function(test_vector)
        init_vector = _pick_init_vector(cell, test_vector, expected)
        if init_vector is None:
            continue
        tests.append(
            TwoPatternTest(
                init_vector=init_vector,
                test_vector=test_vector,
                covered=tuple(sorted(new)),
            )
        )
        covered.update(new)
    return tests


def _pick_init_vector(
    cell: Cell, test_vector: tuple[int, ...], expected: int
) -> tuple[int, ...] | None:
    """First vector producing the complement of ``expected``, preferring
    minimal Hamming distance from the test vector (a robust two-pattern
    transition)."""
    candidates = [
        v
        for v in itertools.product((0, 1), repeat=cell.n_inputs)
        if cell.function(v) == 1 - expected
    ]
    if not candidates:
        return None
    return min(
        candidates,
        key=lambda v: (
            sum(a != b for a, b in zip(v, test_vector)),
            v,
        ),
    )


def simulate_two_pattern(
    cell: Cell,
    test: TwoPatternTest,
    broken_transistor: str | None,
) -> tuple[int, int]:
    """Apply a two-pattern test at switch level.

    Returns (initialised output, final output).  With the target break
    present, the final output retains the initialised value instead of
    the fault-free response.
    """
    states = (
        {broken_transistor: DeviceState.STUCK_OPEN}
        if broken_transistor
        else None
    )
    first = evaluate(cell, test.init_vector, states)
    second = evaluate(
        cell, test.test_vector, states, previous_output=first.output
    )
    return first.output, second.output


# ---------------------------------------------------------------------------
# Table III
# ---------------------------------------------------------------------------
# The row record itself is the canonical cross-layer
# :class:`repro.faults.records.PolarityFaultRecord`; the historical
# ``PolarityFaultRow`` name shims to it (see ``__getattr__`` above).


def polarity_fault_table(cell: Cell) -> list[PolarityFaultRecord]:
    """Exhaustive stuck-at n-/p-type analysis of a cell (Table III)."""
    rows: list[PolarityFaultRecord] = []
    for kind, state in (
        ("n", DeviceState.STUCK_AT_N),
        ("p", DeviceState.STUCK_AT_P),
    ):
        for t in cell.transistors:
            behaviour = detection_behaviour(cell, t.name, state)
            detecting = [
                (v, r)
                for v, r in behaviour.items()
                if r["output_detect"] or r["iddq_detect"]
            ]
            if detecting:
                vector, report = detecting[0]
                rows.append(
                    PolarityFaultRecord(
                        transistor=t.name,
                        kind=kind,
                        detecting_vector=vector,
                        leakage_detect=report["iddq_detect"],
                        output_detect=report["output_detect"],
                    )
                )
            else:
                rows.append(
                    PolarityFaultRecord(
                        transistor=t.name,
                        kind=kind,
                        detecting_vector=None,
                        leakage_detect=False,
                        output_detect=False,
                    )
                )
    return rows


# ---------------------------------------------------------------------------
# Channel-break procedure (the paper's new algorithm, Section V-C)
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class ChannelBreakStep:
    """One step of the DP channel-break procedure."""

    injected_state: DeviceState
    vector: tuple[int, ...]
    expected_if_intact: str  # what an unbroken device shows
    expected_if_broken: str


@dataclasses.dataclass(frozen=True)
class ChannelBreakProcedure:
    """The derived procedure for one suspect transistor."""

    cell_name: str
    transistor: str
    steps: tuple[ChannelBreakStep, ...]


def channel_break_procedure(
    cell: Cell, transistor: str
) -> ChannelBreakProcedure:
    """Derive the paper's channel-break test for one DP-gate transistor.

    For each deliberate polarity inversion (stuck-at-n and stuck-at-p),
    pick the vector where the *intact* device would disturb the circuit
    (from the Table III analysis).  A broken device cannot conduct, so
    the disturbance disappears — its absence is the detection signature.
    """
    if cell.category != DYNAMIC_POLARITY:
        raise ValueError(
            f"{cell.name} is not a DP cell; use two-pattern SOF tests"
        )
    steps: list[ChannelBreakStep] = []
    for state in (DeviceState.STUCK_AT_N, DeviceState.STUCK_AT_P):
        behaviour = detection_behaviour(cell, transistor, state)
        for vector, report in behaviour.items():
            if report["output_detect"] or report["iddq_detect"]:
                effect = []
                if report["output_detect"]:
                    effect.append("wrong output")
                if report["iddq_detect"]:
                    effect.append("leakage > 10^6 x nominal")
                steps.append(
                    ChannelBreakStep(
                        injected_state=state,
                        vector=vector,
                        expected_if_intact=" and ".join(effect),
                        expected_if_broken="fault-free response",
                    )
                )
                break
    return ChannelBreakProcedure(
        cell_name=cell.name,
        transistor=transistor,
        steps=tuple(steps),
    )


def run_channel_break_procedure(
    cell: Cell,
    transistor: str,
    broken: bool,
) -> bool:
    """Execute the procedure at switch level; return True iff a channel
    break is diagnosed on ``transistor``.

    Args:
        broken: Ground truth — whether the simulated device under test
            actually has a (fully) broken channel.  The procedure itself
            does not see this flag; it only observes circuit responses.
    """
    procedure = channel_break_procedure(cell, transistor)
    if not procedure.steps:
        return False
    for step in procedure.steps:
        # The deliberate polarity inversion is applied through the test
        # infrastructure; a broken channel additionally never conducts.
        states = {transistor: step.injected_state}
        if broken:
            states = {transistor: DeviceState.STUCK_OPEN}
        result = evaluate(cell, step.vector, states)
        good = evaluate(cell, step.vector)
        disturbed = result.conflict or (
            good.output in (ZERO, ONE) and result.output != good.output
        )
        if disturbed:
            # The device responded to the inversion: channel intact.
            return False
    # No step disturbed the circuit: the device is not conducting when
    # forced to — channel break detected.
    return True
