"""Inductive fault analysis (IFA) engine.

The paper's methodology: enumerate realistic defects from the fabrication
process (Table I), inject each into representative logic gates, observe
the faulty behaviour, and map each physical defect onto the logic-level
fault model(s) that can test for it.  :func:`run_ifa` performs the whole
campaign in the switch-level domain (fast, exhaustive);
:mod:`repro.core.detection` provides the SPICE-domain deep dives used by
the figure benchmarks.

The defect-site → switch-state mapping is shared with the unified
fault-universe API (:mod:`repro.faults`): network-scale enumeration and
cross-layer lowering live there (``get_universe("defect_mechanism")``),
while this module keeps the per-cell behavioural classification.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.core.defects import (
    DefectMechanism,
    DefectSite,
    enumerate_defect_sites,
)
from repro.gates.cell import Cell
from repro.logic.switch_level import (
    DeviceState,
    evaluate,
)
from repro.logic.values import ONE, Z, ZERO


@dataclasses.dataclass(frozen=True)
class IFAResult:
    """Outcome of injecting one defect site.

    Attributes:
        site: The injected defect site.
        behaviour: Qualitative behaviour class:
            'functional-masked', 'wrong-output', 'iddq', 'wrong-output+iddq',
            'sequential' (output floats: stuck-open memory effect), or
            'analog-only' (needs delay/leakage measurement — GOS,
            parameter drift).
        fault_models: Names of logic-level fault models that cover it.
    """

    site: DefectSite
    behaviour: str
    fault_models: tuple[str, ...]


def _switch_state_for_site(site: DefectSite) -> DeviceState | None:
    """Switch-level image of a defect site, when one exists.

    Delegates to the shared cross-layer lowering of
    :func:`repro.faults.physical.switch_state_for_site` (imported
    lazily: ``repro.faults`` wraps this module's site enumeration, so a
    top-level import would be circular), keeping the IFA sweep and the
    fault-universe API on one mapping.
    """
    from repro.faults.physical import switch_state_for_site

    return switch_state_for_site(site)


def _classify_site(cell: Cell, site: DefectSite) -> IFAResult:
    state = _switch_state_for_site(site)
    if state is None:
        # GOS, CG-PG bridges, floating CG, interconnect bridges: their
        # first-order signatures are parametric (delay/leakage shifts) or
        # depend on analog coupling; covered by delay-fault / IDDQ
        # testing as Section IV-B and V-A conclude.
        if site.mechanism is DefectMechanism.GATE_OXIDE_SHORT:
            models = ("delay fault", "stuck-on (IDDQ)")
        elif site.mechanism is DefectMechanism.INTERCONNECT_BRIDGE:
            models = ("bridging fault", "stuck-on (IDDQ)")
        else:
            models = ("delay fault", "stuck-on (IDDQ)")
        return IFAResult(site=site, behaviour="analog-only",
                         fault_models=models)

    wrong_output = False
    iddq = False
    floats = False
    masked = True
    for vector in itertools.product((0, 1), repeat=cell.n_inputs):
        good = evaluate(cell, vector)
        bad = evaluate(cell, vector, {site.transistor: state})
        if bad.output == Z:
            floats = True
            masked = False
            continue
        if good.output in (ZERO, ONE) and bad.output != good.output:
            wrong_output = True
            masked = False
        if bad.conflict and not good.conflict:
            iddq = True
            masked = False

    models: list[str] = []
    if floats:
        models.append("stuck-open fault (two-pattern)")
    if wrong_output:
        if state in (DeviceState.STUCK_AT_N, DeviceState.STUCK_AT_P):
            models.append(
                "stuck-at n-type/p-type"
            )
        else:
            models.append("stuck-at fault")
    if iddq and "stuck-at n-type/p-type" not in models:
        if state in (DeviceState.STUCK_AT_N, DeviceState.STUCK_AT_P):
            models.append("stuck-at n-type/p-type")
        else:
            models.append("stuck-on (IDDQ)")
    elif iddq:
        pass  # already covered by the polarity model
    if masked:
        if state is DeviceState.STUCK_OPEN:
            # The DP masking case: needs the paper's new procedure.
            models.append("channel-break procedure (stuck-at n/p based)")
            behaviour = "functional-masked"
        elif state in (DeviceState.STUCK_AT_N, DeviceState.STUCK_AT_P):
            # Bridging a polarity terminal to the rail it is already tied
            # to changes nothing: benign.
            behaviour = "benign"
        else:
            models.append("delay fault")
            behaviour = "functional-masked"
    elif floats and not wrong_output and not iddq:
        behaviour = "sequential"
    elif wrong_output and iddq:
        behaviour = "wrong-output+iddq"
    elif wrong_output:
        behaviour = "wrong-output"
    elif iddq:
        behaviour = "iddq"
    else:
        behaviour = "sequential"
    return IFAResult(
        site=site, behaviour=behaviour, fault_models=tuple(models)
    )


def run_ifa(cell: Cell) -> list[IFAResult]:
    """Run the full inductive fault analysis campaign on one cell."""
    return [
        _classify_site(cell, site) for site in enumerate_defect_sites(cell)
    ]


@dataclasses.dataclass(frozen=True)
class IFASummary:
    """Aggregated campaign statistics for one cell."""

    cell_name: str
    n_sites: int
    by_mechanism: dict[DefectMechanism, int]
    by_behaviour: dict[str, int]
    masked_breaks: tuple[str, ...]
    """Transistors whose full channel break is functionally masked."""


def summarise_ifa(cell: Cell, results: list[IFAResult]) -> IFASummary:
    by_mechanism: dict[DefectMechanism, int] = {}
    by_behaviour: dict[str, int] = {}
    masked_breaks: list[str] = []
    for r in results:
        by_mechanism[r.site.mechanism] = (
            by_mechanism.get(r.site.mechanism, 0) + 1
        )
        by_behaviour[r.behaviour] = by_behaviour.get(r.behaviour, 0) + 1
        if (
            r.site.mechanism is DefectMechanism.NANOWIRE_BREAK
            and r.behaviour == "functional-masked"
        ):
            masked_breaks.append(r.site.transistor)
    return IFASummary(
        cell_name=cell.name,
        n_sites=len(results),
        by_mechanism=by_mechanism,
        by_behaviour=by_behaviour,
        masked_breaks=tuple(sorted(masked_breaks)),
    )
