"""Fault models for controllable-polarity circuits.

This module defines the paper's fault-model vocabulary as injectable
descriptors.  Classic models (stuck-at, stuck-open, stuck-on, bridge,
delay) are included alongside the paper's **new CP-specific models**:

* :class:`StuckAtNType` / :class:`StuckAtPType` — Section V-B: a bridge
  between a device's polarity terminal and a supply rail freezes the
  device in n- or p-configuration regardless of its polarity input.
* :class:`FloatingPolarityGate` — Section V-A: an open on a polarity
  terminal leaves it at an undetermined voltage ``Vcut``.
* :class:`GOSFault` / :class:`ChannelBreakFault` — circuit-level wrappers
  of the device-level defects of Section IV.

Every descriptor knows how to inject itself into a SPICE testbench
(:meth:`CircuitFault.apply`) and, where meaningful, how to express
itself as a switch-level :class:`~repro.logic.switch_level.DeviceState`
for logic-domain analysis — the two evaluation domains the paper uses.
"""

from __future__ import annotations

import abc
import dataclasses

from repro.device.cache import cached_device
from repro.device.defects import (
    ChannelBreak,
    GateOxideShort,
    ParameterDrift,
)
from repro.device.params import DEFAULT_PARAMS
from repro.gates.builder import Testbench
from repro.logic.switch_level import DeviceState


class CircuitFault(abc.ABC):
    """A fault descriptor injectable into a cell testbench."""

    @abc.abstractmethod
    def apply(self, bench: Testbench) -> None:
        """Inject the fault into ``bench`` (mutates the circuit)."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable one-liner for reports."""

    def device_state(self) -> tuple[str, DeviceState] | None:
        """Switch-level image as ``(transistor, state)``, if one exists."""
        return None


@dataclasses.dataclass(frozen=True)
class StuckAtNType(CircuitFault):
    """Polarity terminal bridged to VDD: the device is frozen n-type.

    The paper's model: ``V(stuck-at-n-type) = [PGD: '1', PGS: '1']``.
    """

    transistor: str

    def apply(self, bench: Testbench) -> None:
        device = bench.circuit.devices[bench.device_name(self.transistor)]
        device.pgs = "vdd"
        device.pgd = "vdd"

    def describe(self) -> str:
        return f"stuck-at n-type on {self.transistor} (PG bridged to VDD)"

    def device_state(self) -> tuple[str, DeviceState]:
        return (self.transistor, DeviceState.STUCK_AT_N)


@dataclasses.dataclass(frozen=True)
class StuckAtPType(CircuitFault):
    """Polarity terminal bridged to GND: the device is frozen p-type."""

    transistor: str

    def apply(self, bench: Testbench) -> None:
        device = bench.circuit.devices[bench.device_name(self.transistor)]
        device.pgs = "0"
        device.pgd = "0"

    def describe(self) -> str:
        return f"stuck-at p-type on {self.transistor} (PG bridged to GND)"

    def device_state(self) -> tuple[str, DeviceState]:
        return (self.transistor, DeviceState.STUCK_AT_P)


@dataclasses.dataclass(frozen=True)
class FloatingPolarityGate(CircuitFault):
    """Open defect on a polarity terminal; the node floats at ``vcut``.

    Args:
        transistor: Target transistor name.
        terminal: 'pgs', 'pgd', or 'both' (an open before the PGS/PGD
            strap split, the natural DP-gate failure).
        vcut: Voltage assumed on the floating node (the paper sweeps it).
    """

    transistor: str
    terminal: str
    vcut: float

    def __post_init__(self) -> None:
        if self.terminal not in ("pgs", "pgd", "both"):
            raise ValueError(
                f"terminal must be pgs/pgd/both, got {self.terminal!r}"
            )

    def apply(self, bench: Testbench) -> None:
        device_name = bench.device_name(self.transistor)
        terminals = (
            ("pgs", "pgd") if self.terminal == "both" else (self.terminal,)
        )
        for k, terminal in enumerate(terminals):
            float_node = bench.circuit.disconnect_terminal(
                device_name, terminal
            )
            bench.circuit.add_vsource(
                f"vcut_{device_name}_{terminal}_{k}",
                float_node,
                "0",
                self.vcut,
            )

    def describe(self) -> str:
        return (
            f"floating {self.terminal} on {self.transistor} "
            f"(Vcut={self.vcut:.2f} V)"
        )

    def device_state(self) -> tuple[str, DeviceState]:
        return (self.transistor, DeviceState.FLOATING_PG)


@dataclasses.dataclass(frozen=True)
class GOSFault(CircuitFault):
    """Gate-oxide short on one gate of one transistor (Section IV-B)."""

    transistor: str
    location: str
    severity: float = 1.0

    def apply(self, bench: Testbench) -> None:
        params = DEFAULT_PARAMS
        model = cached_device(
            params, GateOxideShort(self.location, self.severity)
        )
        bench.circuit.replace_device_model(
            bench.device_name(self.transistor), model
        )

    def describe(self) -> str:
        return f"GOS at {self.location.upper()} of {self.transistor}"


@dataclasses.dataclass(frozen=True)
class ChannelBreakFault(CircuitFault):
    """Nanowire channel break on one transistor (Section V-C)."""

    transistor: str
    fraction: float = 1.0

    def apply(self, bench: Testbench) -> None:
        model = cached_device(
            DEFAULT_PARAMS, ChannelBreak(self.fraction)
        )
        bench.circuit.replace_device_model(
            bench.device_name(self.transistor), model
        )

    def describe(self) -> str:
        kind = "full" if self.fraction >= 1.0 else f"{self.fraction:.0%}"
        return f"{kind} channel break on {self.transistor}"

    def device_state(self) -> tuple[str, DeviceState] | None:
        if self.fraction >= 1.0:
            return (self.transistor, DeviceState.STUCK_OPEN)
        return None


@dataclasses.dataclass(frozen=True)
class StuckOnFault(CircuitFault):
    """Transistor permanently conducting (e.g. CG-to-channel GOS short).

    Modelled electrically as a low-ohmic drain-source bridge.
    """

    transistor: str
    resistance: float = 5e4

    def apply(self, bench: Testbench) -> None:
        device = bench.circuit.devices[bench.device_name(self.transistor)]
        bench.circuit.add_bridge(
            device.d, device.s, resistance=self.resistance,
            name=f"_stuckon_{self.transistor}",
        )

    def describe(self) -> str:
        return f"stuck-on {self.transistor}"

    def device_state(self) -> tuple[str, DeviceState]:
        return (self.transistor, DeviceState.STUCK_ON)


@dataclasses.dataclass(frozen=True)
class TerminalBridgeFault(CircuitFault):
    """Resistive bridge between two gate terminals of one transistor
    (polysilicon deposition defect, Table I step 4)."""

    transistor: str
    terminal_a: str
    terminal_b: str
    resistance: float = 1e3

    def apply(self, bench: Testbench) -> None:
        device = bench.circuit.devices[bench.device_name(self.transistor)]
        net_a = getattr(device, self.terminal_a)
        net_b = getattr(device, self.terminal_b)
        bench.circuit.add_bridge(
            net_a, net_b, resistance=self.resistance,
            name=f"_tbridge_{self.transistor}_"
                 f"{self.terminal_a}_{self.terminal_b}",
        )

    def describe(self) -> str:
        return (
            f"bridge {self.terminal_a.upper()}-{self.terminal_b.upper()} "
            f"on {self.transistor}"
        )


@dataclasses.dataclass(frozen=True)
class InterconnectBridgeFault(CircuitFault):
    """Resistive bridge between two signal nets (metal-layer defect)."""

    net_a: str
    net_b: str
    resistance: float = 1e3

    def apply(self, bench: Testbench) -> None:
        bench.circuit.add_bridge(
            self.net_a, self.net_b, resistance=self.resistance
        )

    def describe(self) -> str:
        return f"interconnect bridge {self.net_a}-{self.net_b}"


@dataclasses.dataclass(frozen=True)
class DriveDriftFault(CircuitFault):
    """Process-variation drive weakening (the delay-fault mechanism)."""

    transistor: str
    i_on_factor: float = 0.5

    def apply(self, bench: Testbench) -> None:
        model = cached_device(
            DEFAULT_PARAMS, ParameterDrift(i_on_factor=self.i_on_factor)
        )
        bench.circuit.replace_device_model(
            bench.device_name(self.transistor), model
        )

    def describe(self) -> str:
        return (
            f"drive drift x{self.i_on_factor:.2f} on {self.transistor}"
        )
