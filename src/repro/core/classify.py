"""Behaviour classification: which fault models apply where.

Section V-A of the paper concludes, per gate and per ``Vcut`` band, which
classic fault models can reveal an open polarity gate: the delay fault
and stuck-on (IDDQ) below a threshold, the stuck-open fault (SOF) beyond
it.  :func:`classify_point` encodes that decision rule;
:func:`classify_sweep` applies it across a sweep and extracts the bands
the paper reports.
"""

from __future__ import annotations

import dataclasses
import enum
import math


class ApplicableModel(enum.Enum):
    """Fault models a tester could use against an observed behaviour."""

    DELAY = "delay fault"
    SOF = "stuck-open fault"
    STUCK_ON = "stuck-on (IDDQ)"


@dataclasses.dataclass(frozen=True)
class BehaviourPoint:
    """Normalised observables of a faulty gate at one operating point.

    Attributes:
        functional: Gate still computes its truth table.
        delay_ratio: Faulty/fault-free worst delay (inf when it never
            switches).
        leak_ratio: Faulty/fault-free worst static supply current.
    """

    functional: bool
    delay_ratio: float
    leak_ratio: float


#: Ratio thresholds (same spirit as the paper's commentary: a 30 % delay
#: degradation is testable as a delay fault; a decade of extra leakage is
#: IDDQ-testable).
DELAY_THRESHOLD = 1.3
LEAK_THRESHOLD = 10.0


def classify_point(point: BehaviourPoint) -> set[ApplicableModel]:
    """Fault models applicable at one operating point."""
    models: set[ApplicableModel] = set()
    if not point.functional or math.isinf(point.delay_ratio):
        models.add(ApplicableModel.SOF)
    elif point.delay_ratio > DELAY_THRESHOLD:
        models.add(ApplicableModel.DELAY)
    if point.leak_ratio > LEAK_THRESHOLD:
        models.add(ApplicableModel.STUCK_ON)
    return models


@dataclasses.dataclass(frozen=True)
class SweepClassification:
    """Band structure of a Vcut sweep (the Section V-A conclusions).

    Attributes:
        vcuts: Sweep points.
        models: Applicable model set per point.
        functional_limit: First Vcut where the gate stops functioning
            (None when it never fails — the DP masking case).
        summary: Union of models applicable anywhere in the sweep.
    """

    vcuts: tuple[float, ...]
    models: tuple[frozenset[ApplicableModel], ...]
    functional_limit: float | None
    summary: frozenset[ApplicableModel]

    def describe(self) -> str:
        names = sorted(m.value for m in self.summary)
        limit = (
            f"functional up to Vcut={self.functional_limit:.2f} V"
            if self.functional_limit is not None
            else "functional over the whole sweep"
        )
        return f"{limit}; testable via: {', '.join(names) or 'none'}"


def classify_sweep(
    vcuts: list[float], points: list[BehaviourPoint]
) -> SweepClassification:
    """Classify a full Vcut sweep."""
    if len(vcuts) != len(points):
        raise ValueError("vcuts and points must align")
    models = tuple(frozenset(classify_point(p)) for p in points)
    functional_limit = None
    for vcut, point in zip(vcuts, points):
        if not point.functional or math.isinf(point.delay_ratio):
            functional_limit = vcut
            break
    union: set[ApplicableModel] = set()
    for m in models:
        union |= m
    return SweepClassification(
        vcuts=tuple(vcuts),
        models=models,
        functional_limit=functional_limit,
        summary=frozenset(union),
    )
