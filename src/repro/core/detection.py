"""Detectability measurement of injected faults (SPICE domain).

For a cell testbench with an injected fault, measure the three
observables the paper uses:

* **output voltage** — DC truth-table comparison (a voltage tester),
* **IDDQ** — static supply current ratio vs fault-free (Section V-B's
  ">x10^6" criterion),
* **delay** — transient propagation-delay ratio (delay-fault testing).

The static truth-table/IDDQ observations run on the batched analog
engine (one vectorized multi-point Newton solve over the whole input
cube per testbench); :func:`screen_cell_faults` drives that measurement
over a cell's circuit-fault universe from :mod:`repro.faults` — the
SPICE-side screen of the unified fault API.
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.core.fault_models import CircuitFault, InterconnectBridgeFault
from repro.gates.builder import build_cell_circuit
from repro.gates.cell import Cell
from repro.gates.characterize import transition_delay
from repro.spice.batched import solve_dc_sweep
from repro.spice.measure import logic_level

#: Leakage ratio above which a fault counts as IDDQ-detectable.
IDDQ_DETECT_RATIO = 10.0

#: Delay ratio above which a fault counts as delay-testable.
DELAY_DETECT_RATIO = 1.3


@dataclasses.dataclass(frozen=True)
class VectorObservation:
    """Measurements for one static input vector."""

    vector: tuple[int, ...]
    v_out: float
    logic_out: int | None
    iddq: float


@dataclasses.dataclass(frozen=True)
class DetectionReport:
    """Detectability summary of one fault on one cell.

    Attributes:
        fault_description: From :meth:`CircuitFault.describe`.
        output_vectors: Vectors whose logic output differs from fault-free
            (wrong or indeterminate level).
        iddq_vectors: Vectors whose IDDQ exceeds the fault-free value by
            :data:`IDDQ_DETECT_RATIO`.
        worst_iddq_ratio: max faulty/fault-free IDDQ over vectors.
        delay_ratio: worst faulty/fault-free delay (nan when not
            measured; inf when the faulty gate never switches).
        observations: Per-vector raw measurements.
    """

    fault_description: str
    output_vectors: tuple[tuple[int, ...], ...]
    iddq_vectors: tuple[tuple[int, ...], ...]
    worst_iddq_ratio: float
    delay_ratio: float
    observations: tuple[VectorObservation, ...]

    @property
    def output_detectable(self) -> bool:
        return bool(self.output_vectors)

    @property
    def iddq_detectable(self) -> bool:
        return bool(self.iddq_vectors)

    @property
    def delay_detectable(self) -> bool:
        return self.delay_ratio > DELAY_DETECT_RATIO

    @property
    def detected(self) -> bool:
        return (
            self.output_detectable
            or self.iddq_detectable
            or self.delay_detectable
        )


def _static_observations(bench) -> list[VectorObservation]:
    """Truth table + IDDQ over the full input cube, as one batched
    multi-point DC solve (``mode="exact"``: per-point identical to the
    historical vector-at-a-time :func:`repro.spice.dc.solve_dc` loop)."""
    vectors = list(itertools.product((0, 1), repeat=bench.cell.n_inputs))
    sweep = solve_dc_sweep(
        bench.circuit, [bench.vector_bias(v) for v in vectors]
    )
    v_out = sweep.voltages("out")
    iddq = sweep.supply_currents("vdd")
    return [
        VectorObservation(
            vector=vector,
            v_out=float(v_out[k]),
            logic_out=logic_level(float(v_out[k]), bench.vdd),
            iddq=float(iddq[k]),
        )
        for k, vector in enumerate(vectors)
    ]


def characterise_fault(
    cell: Cell,
    fault: CircuitFault,
    fanout: int = 4,
    measure_delay: bool = True,
    delay_input: str | None = None,
    delay_other_bits: dict[str, int] | None = None,
    good_reference: tuple | None = None,
) -> DetectionReport:
    """Inject ``fault`` into a fresh testbench and measure detectability.

    Args:
        cell: Cell under test.
        fault: Fault to inject.
        fanout: FO-N loading.
        measure_delay: Also run the transient delay comparison (slower).
        delay_input: Input to pulse for the delay measurement (defaults
            to the first input).
        delay_other_bits: Static values of the remaining inputs during
            the delay measurement (defaults to the all-zeros side).
        good_reference: Precomputed ``(good_bench, good_observations)``
            for this ``(cell, fanout)`` — the fault-free measurement is
            fault-independent, so screens over a whole universe share
            one reference instead of re-solving it per fault.
    """
    if good_reference is None:
        good_bench = build_cell_circuit(cell, fanout=fanout)
        good_obs = _static_observations(good_bench)
    else:
        good_bench, good_obs = good_reference
    bad_bench = build_cell_circuit(cell, fanout=fanout)
    fault.apply(bad_bench)

    bad_obs = _static_observations(bad_bench)

    output_vectors = []
    iddq_vectors = []
    worst_ratio = 0.0
    for good, bad in zip(good_obs, bad_obs):
        if bad.logic_out != good.logic_out:
            output_vectors.append(good.vector)
        ratio = bad.iddq / max(good.iddq, 1e-15)
        worst_ratio = max(worst_ratio, ratio)
        if ratio > IDDQ_DETECT_RATIO:
            iddq_vectors.append(good.vector)

    delay_ratio = float("nan")
    if measure_delay:
        input_name = delay_input or cell.inputs[0]
        others = delay_other_bits or {
            name: 0 for name in cell.inputs if name != input_name
        }
        # Worst ratio over both edges: a weakened pull-up only shows on
        # the rising-output edge and vice versa.
        for rising in (True, False):
            good_delay = transition_delay(
                good_bench, input_name, others, rising=rising
            )
            bad_delay = transition_delay(
                bad_bench, input_name, others, rising=rising
            )
            if good_delay > 0:
                ratio = bad_delay / good_delay
                if not (ratio <= delay_ratio):  # NaN-safe max
                    delay_ratio = ratio

    return DetectionReport(
        fault_description=fault.describe(),
        output_vectors=tuple(output_vectors),
        iddq_vectors=tuple(iddq_vectors),
        worst_iddq_ratio=worst_ratio,
        delay_ratio=delay_ratio,
        observations=tuple(bad_obs),
    )


def _resolve_bench_nets(cell: Cell, fault: CircuitFault) -> CircuitFault:
    """Rewrite cell-template net names to testbench net names.

    :func:`~repro.gates.builder.build_cell_circuit` keeps inputs,
    complements and ``out`` unprefixed and namespaces internal nets
    under ``{cell}.``; net-addressed descriptors (interconnect bridges)
    must follow that mapping before injection.
    """
    if not isinstance(fault, InterconnectBridgeFault):
        return fault
    public = set(cell.inputs) | set(cell.complement_nets()) | {"out"}

    def resolve(net: str) -> str:
        return net if net in public else f"{cell.name.lower()}.{net}"

    return dataclasses.replace(
        fault, net_a=resolve(fault.net_a), net_b=resolve(fault.net_b)
    )


def screen_cell_faults(
    cell: Cell,
    faults: list[CircuitFault] | None = None,
    fanout: int = 4,
    measure_delay: bool = False,
) -> list[DetectionReport]:
    """Batched SPICE screen of a cell's circuit-fault universe.

    ``faults`` defaults to the full lowered Table I universe of the cell
    (:func:`repro.faults.circuit_faults_for_cell`); each fault is
    injected into a fresh FO-``fanout`` testbench and measured with the
    batched truth-table/IDDQ observation (delay optional — transients
    dominate the runtime).  Reports come back in universe order, so the
    screen composes with the census and campaign tables.
    """
    if faults is None:
        from repro.faults import circuit_faults_for_cell

        faults = circuit_faults_for_cell(cell)
    good_bench = build_cell_circuit(cell, fanout=fanout)
    good_reference = (good_bench, _static_observations(good_bench))
    return [
        characterise_fault(
            cell,
            _resolve_bench_nets(cell, fault),
            fanout=fanout,
            measure_delay=measure_delay,
            good_reference=good_reference,
        )
        for fault in faults
    ]
