"""Detectability measurement of injected faults (SPICE domain).

For a cell testbench with an injected fault, measure the three
observables the paper uses:

* **output voltage** — DC truth-table comparison (a voltage tester),
* **IDDQ** — static supply current ratio vs fault-free (Section V-B's
  ">x10^6" criterion),
* **delay** — transient propagation-delay ratio (delay-fault testing).
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.core.fault_models import CircuitFault
from repro.gates.builder import build_cell_circuit
from repro.gates.cell import Cell
from repro.gates.characterize import transition_delay
from repro.spice.dc import solve_dc
from repro.spice.measure import logic_level

#: Leakage ratio above which a fault counts as IDDQ-detectable.
IDDQ_DETECT_RATIO = 10.0

#: Delay ratio above which a fault counts as delay-testable.
DELAY_DETECT_RATIO = 1.3


@dataclasses.dataclass(frozen=True)
class VectorObservation:
    """Measurements for one static input vector."""

    vector: tuple[int, ...]
    v_out: float
    logic_out: int | None
    iddq: float


@dataclasses.dataclass(frozen=True)
class DetectionReport:
    """Detectability summary of one fault on one cell.

    Attributes:
        fault_description: From :meth:`CircuitFault.describe`.
        output_vectors: Vectors whose logic output differs from fault-free
            (wrong or indeterminate level).
        iddq_vectors: Vectors whose IDDQ exceeds the fault-free value by
            :data:`IDDQ_DETECT_RATIO`.
        worst_iddq_ratio: max faulty/fault-free IDDQ over vectors.
        delay_ratio: worst faulty/fault-free delay (nan when not
            measured; inf when the faulty gate never switches).
        observations: Per-vector raw measurements.
    """

    fault_description: str
    output_vectors: tuple[tuple[int, ...], ...]
    iddq_vectors: tuple[tuple[int, ...], ...]
    worst_iddq_ratio: float
    delay_ratio: float
    observations: tuple[VectorObservation, ...]

    @property
    def output_detectable(self) -> bool:
        return bool(self.output_vectors)

    @property
    def iddq_detectable(self) -> bool:
        return bool(self.iddq_vectors)

    @property
    def delay_detectable(self) -> bool:
        return self.delay_ratio > DELAY_DETECT_RATIO

    @property
    def detected(self) -> bool:
        return (
            self.output_detectable
            or self.iddq_detectable
            or self.delay_detectable
        )


def _static_observations(bench) -> list[VectorObservation]:
    observations = []
    for vector in itertools.product((0, 1), repeat=bench.cell.n_inputs):
        bench.set_vector(vector)
        op = solve_dc(bench.circuit)
        v_out = op.voltage("out")
        observations.append(
            VectorObservation(
                vector=vector,
                v_out=v_out,
                logic_out=logic_level(v_out, bench.vdd),
                iddq=op.supply_current("vdd"),
            )
        )
    return observations


def characterise_fault(
    cell: Cell,
    fault: CircuitFault,
    fanout: int = 4,
    measure_delay: bool = True,
    delay_input: str | None = None,
    delay_other_bits: dict[str, int] | None = None,
) -> DetectionReport:
    """Inject ``fault`` into a fresh testbench and measure detectability.

    Args:
        cell: Cell under test.
        fault: Fault to inject.
        fanout: FO-N loading.
        measure_delay: Also run the transient delay comparison (slower).
        delay_input: Input to pulse for the delay measurement (defaults
            to the first input).
        delay_other_bits: Static values of the remaining inputs during
            the delay measurement (defaults to the all-zeros side).
    """
    good_bench = build_cell_circuit(cell, fanout=fanout)
    bad_bench = build_cell_circuit(cell, fanout=fanout)
    fault.apply(bad_bench)

    good_obs = _static_observations(good_bench)
    bad_obs = _static_observations(bad_bench)

    output_vectors = []
    iddq_vectors = []
    worst_ratio = 0.0
    for good, bad in zip(good_obs, bad_obs):
        if bad.logic_out != good.logic_out:
            output_vectors.append(good.vector)
        ratio = bad.iddq / max(good.iddq, 1e-15)
        worst_ratio = max(worst_ratio, ratio)
        if ratio > IDDQ_DETECT_RATIO:
            iddq_vectors.append(good.vector)

    delay_ratio = float("nan")
    if measure_delay:
        input_name = delay_input or cell.inputs[0]
        others = delay_other_bits or {
            name: 0 for name in cell.inputs if name != input_name
        }
        # Worst ratio over both edges: a weakened pull-up only shows on
        # the rising-output edge and vice versa.
        for rising in (True, False):
            good_delay = transition_delay(
                good_bench, input_name, others, rising=rising
            )
            bad_delay = transition_delay(
                bad_bench, input_name, others, rising=rising
            )
            if good_delay > 0:
                ratio = bad_delay / good_delay
                if not (ratio <= delay_ratio):  # NaN-safe max
                    delay_ratio = ratio

    return DetectionReport(
        fault_description=fault.describe(),
        output_vectors=tuple(output_vectors),
        iddq_vectors=tuple(iddq_vectors),
        worst_iddq_ratio=worst_ratio,
        delay_ratio=delay_ratio,
        observations=tuple(bad_obs),
    )
