"""Vcut sweeps: leakage/delay of gates with a floating polarity gate.

This is the engine behind Fig. 5: for a chosen transistor of a cell,
float one (or both) of its polarity-gate terminals at a swept voltage
``Vcut`` and measure, at each point,

* the worst static supply current over all input vectors (leakage),
* the propagation delay of a representative output transition,
* whether the DC truth table still holds (functionality).

The default engine batches the whole sweep: one testbench and one
:class:`~repro.spice.mna.MNASystem` are shared across every ``Vcut``
point (the floating-node source level is just a per-point bias), the
``len(vcuts) * 2**n_inputs`` DC operating points solve as a single
vectorized multi-point Newton call, and the per-point delay transients
integrate in lockstep through one batched backward-Euler loop.
``engine="sequential"`` preserves the original point-at-a-time path
(fresh testbench and scalar solves per ``Vcut``) as the equivalence
reference.
"""

from __future__ import annotations

import dataclasses
import itertools
import math

import numpy as np

from repro.core.classify import (
    BehaviourPoint,
    SweepClassification,
    classify_sweep,
)
from repro.core.fault_models import FloatingPolarityGate
from repro.gates.builder import build_cell_circuit
from repro.gates.cell import Cell
from repro.spice.batched import run_transient_sweep, solve_dc_sweep
from repro.spice.dc import solve_dc
from repro.spice.measure import logic_level, propagation_delay
from repro.spice.mna import MNASystem
from repro.spice.transient import run_transient
from repro.spice.waveforms import Step


@dataclasses.dataclass(frozen=True)
class VcutPoint:
    vcut: float
    delay: float
    leakage: float
    functional: bool


@dataclasses.dataclass(frozen=True)
class VcutSweep:
    """A full Vcut sweep for one (cell, transistor, terminal) case."""

    cell_name: str
    transistor: str
    terminal: str
    points: tuple[VcutPoint, ...]

    @property
    def vcuts(self) -> list[float]:
        return [p.vcut for p in self.points]

    @property
    def delays(self) -> list[float]:
        return [p.delay for p in self.points]

    @property
    def leakages(self) -> list[float]:
        return [p.leakage for p in self.points]

    def nominal(self) -> VcutPoint:
        """The point closest to the fault-free polarity bias."""
        return self.points[0]

    def delay_ratio(self) -> float:
        """Max finite delay over the nominal delay."""
        nominal = self.nominal().delay
        finite = [p.delay for p in self.points if math.isfinite(p.delay)]
        if not finite or nominal <= 0:
            return float("inf")
        return max(finite) / nominal

    def leakage_ratio(self) -> float:
        nominal = max(self.nominal().leakage, 1e-15)
        return max(p.leakage for p in self.points) / nominal

    def classification(self) -> SweepClassification:
        nominal_delay = max(self.nominal().delay, 1e-15)
        nominal_leak = max(self.nominal().leakage, 1e-15)
        points = [
            BehaviourPoint(
                functional=p.functional and math.isfinite(p.delay),
                delay_ratio=(
                    p.delay / nominal_delay
                    if math.isfinite(p.delay)
                    else float("inf")
                ),
                leak_ratio=p.leakage / nominal_leak,
            )
            for p in self.points
        ]
        return classify_sweep(self.vcuts, points)


def _default_transition(cell: Cell, transistor: str) -> tuple[str, dict, bool]:
    """Pick an output transition exercised through the target device.

    Pull-up devices are exercised by a rising output (falling input for
    inverting SP gates), pull-down/pass devices by the opposite edge.
    For the 2-input cells the first input toggles with the second held
    at the non-controlling / distinguishing value.
    """
    role = cell.transistor(transistor).role
    input_name = cell.inputs[0]
    others = {name: 0 for name in cell.inputs[1:]}
    if cell.name.startswith("NAND"):
        others = {name: 1 for name in cell.inputs[1:]}
    rising = role != "pull_up"
    if cell.category == "DP":
        rising = role in ("pull_up", "pass")
    return input_name, others, rising


def vcut_sweep(
    cell: Cell,
    transistor: str,
    terminal: str,
    vcuts: np.ndarray | list[float],
    fanout: int = 4,
    dt: float = 2.5e-12,
    t_stop: float = 1.4e-9,
    engine: str = "batched",
) -> VcutSweep:
    """Run the Fig. 5 measurement for one transistor/terminal case.

    Args:
        cell: Cell under test (INV / NAND2 / XOR2 in the paper).
        transistor: Target transistor (t1 pull-up, t3 pull-down in the
            paper's figures).
        terminal: 'pgs', 'pgd' or 'both'.
        vcuts: Floating-node voltages to sweep.  By convention the first
            entry should be the fault-free bias (0 for pull-up SP
            devices, VDD for pull-down) so ratios are referenced to it.
        engine: ``"batched"`` (default) solves every (Vcut, vector) DC
            point in one vectorized call and every delay transient in
            one lockstep sweep; ``"sequential"`` runs the original
            point-at-a-time measurement.
    """
    if engine == "sequential":
        return _vcut_sweep_sequential(
            cell, transistor, terminal, vcuts, fanout, dt, t_stop
        )
    if engine != "batched":
        raise ValueError(f"unknown engine {engine!r}")
    input_name, others, rising = _default_transition(cell, transistor)
    bench = build_cell_circuit(cell, fanout=fanout)
    FloatingPolarityGate(transistor, terminal, float(vcuts[0])).apply(bench)
    vcut_sources = sorted(
        name for name in bench.circuit.vsources if name.startswith("vcut_")
    )
    vdd = bench.vdd
    reference = cell.truth_table()
    vectors = list(itertools.product((0, 1), repeat=cell.n_inputs))
    system = MNASystem(bench.circuit)

    # Leakage + functionality: one batched solve over every
    # (Vcut, input vector) pair.
    bias_points = []
    for vcut in vcuts:
        for vector in vectors:
            point = bench.vector_bias(vector)
            point.update({name: float(vcut) for name in vcut_sources})
            bias_points.append(point)
    sweep = solve_dc_sweep(bench.circuit, bias_points, system=system)
    iddq = sweep.supply_currents("vdd").reshape(len(vcuts), len(vectors))
    v_out = sweep.voltages("out").reshape(len(vcuts), len(vectors))
    leakages = iddq.max(axis=1)
    functional = [
        all(
            logic_level(float(v_out[i, k]), vdd) == reference[vector]
            for k, vector in enumerate(vectors)
        )
        for i in range(len(vcuts))
    ]

    # Delay of the representative transition: all Vcut points integrate
    # in lockstep, differing only in the floating-node source level.
    for name, bit in others.items():
        bench.set_input(name, bit * vdd)
    v0, v1 = (0.0, vdd) if rising else (vdd, 0.0)
    bench.set_input(input_name, Step(v0, v1, 0.2e-9, 2e-11))
    overrides = [
        {name: float(vcut) for name in vcut_sources} for vcut in vcuts
    ]
    results = run_transient_sweep(
        bench.circuit, overrides, t_stop, dt, system=system
    )
    points = [
        VcutPoint(
            vcut=float(vcut),
            delay=propagation_delay(results[i], input_name, "out", vdd),
            leakage=float(leakages[i]),
            functional=bool(functional[i]),
        )
        for i, vcut in enumerate(vcuts)
    ]
    return VcutSweep(
        cell_name=cell.name,
        transistor=transistor,
        terminal=terminal,
        points=tuple(points),
    )


def _vcut_sweep_sequential(
    cell: Cell,
    transistor: str,
    terminal: str,
    vcuts: np.ndarray | list[float],
    fanout: int,
    dt: float,
    t_stop: float,
) -> VcutSweep:
    """Point-at-a-time Fig. 5 measurement (the equivalence reference)."""
    input_name, others, rising = _default_transition(cell, transistor)
    points: list[VcutPoint] = []
    for vcut in vcuts:
        bench = build_cell_circuit(cell, fanout=fanout)
        FloatingPolarityGate(transistor, terminal, float(vcut)).apply(bench)
        vdd = bench.vdd
        # Leakage: worst static IDDQ over all vectors (+functionality).
        leakage = 0.0
        functional = True
        reference = cell.truth_table()
        for vector in itertools.product((0, 1), repeat=cell.n_inputs):
            bench.set_vector(vector)
            op = solve_dc(bench.circuit)
            leakage = max(leakage, op.supply_current("vdd"))
            if logic_level(op.voltage("out"), vdd) != reference[vector]:
                functional = False
        # Delay of the representative transition.
        for name, bit in others.items():
            bench.set_input(name, bit * vdd)
        v0, v1 = (0.0, vdd) if rising else (vdd, 0.0)
        bench.set_input(input_name, Step(v0, v1, 0.2e-9, 2e-11))
        result = run_transient(bench.circuit, t_stop, dt)
        delay = propagation_delay(result, input_name, "out", vdd)
        points.append(
            VcutPoint(
                vcut=float(vcut),
                delay=delay,
                leakage=leakage,
                functional=functional,
            )
        )
    return VcutSweep(
        cell_name=cell.name,
        transistor=transistor,
        terminal=terminal,
        points=tuple(points),
    )


def pull_up_vcut_axis(vdd: float = 1.2, points: int = 8) -> np.ndarray:
    """Sweep axis for a pull-up device: nominal PG bias 0 upwards."""
    return np.linspace(0.0, vdd, points)


def pull_down_vcut_axis(vdd: float = 1.2, points: int = 8) -> np.ndarray:
    """Sweep axis for a pull-down device: nominal PG bias VDD downwards."""
    return np.linspace(vdd, 0.0, points)
