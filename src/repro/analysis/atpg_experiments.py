"""Circuit-scale ATPG experiments (the paper's claims at benchmark scale).

The paper's thesis, lifted from single gates to circuits: classic
stuck-at test sets do *not* cover the CP-specific faults (polarity
bridges, DP channel breaks), while the new models make them testable.
:func:`experiment_atpg_coverage` quantifies this on the benchmark suite.

Since the campaign subsystem landed, this module is a thin, typed view
over it: the measurements run as a ``(circuit x fault-class)`` grid
through :func:`repro.campaign.runner.run_campaign` (in-process,
unsharded — the same records ``python -m repro paper-tables`` produces
with a pool and a JSONL store), and the table is rendered by
:func:`repro.campaign.tables.coverage_table`.  Example::

    >>> from repro.analysis.atpg_experiments import experiment_atpg_coverage
    >>> results, report = experiment_atpg_coverage(("c17", "tmr_voter"))
    >>> [r.name for r in results]
    ['c17', 'tmr_voter']
    >>> results[0].stuck_at_coverage
    1.0
"""

from __future__ import annotations

import dataclasses

from repro.logic.network import Network


@dataclasses.dataclass
class CircuitCoverage:
    """Coverage summary for one benchmark circuit."""

    name: str
    n_gates: int
    n_stuck_at: int
    n_polarity: int
    n_stuck_open: int
    n_masked_opens: int
    stuck_at_coverage: float
    stuck_at_vectors: int
    polarity_by_stuck_at_set: float
    """Fraction of polarity faults the classic stuck-at set detects at
    the outputs — the paper's 'current fault models are insufficient'."""
    polarity_atpg_coverage: float
    iddq_vectors: int
    iddq_coverage: float


def classic_stuck_at_testset(
    network: Network, max_backtracks: int = 500, engine: str = "compiled"
) -> list[dict[str, int]]:
    """PODEM with fault dropping + greedy compaction: the classic
    production test set (canonical implementation in
    :func:`repro.campaign.tasks.classic_stuck_at_testset`)."""
    from repro.campaign.tasks import classic_stuck_at_testset as impl

    return impl(network, max_backtracks, engine=engine)


def _nan_if_none(value: float | None) -> float:
    return float("nan") if value is None else value


def coverage_from_records(records: list[dict]) -> list[CircuitCoverage]:
    """Fold campaign records into :class:`CircuitCoverage` rows.

    Tolerates partial grids the way
    :func:`repro.campaign.tables.coverage_table` does: fault classes
    missing from a circuit's records report zero counts / NaN
    coverages instead of raising.
    """
    from repro.campaign.tables import by_circuit

    rows = []
    for circuit, cells in by_circuit(records).items():
        def metrics(fault_class: str) -> dict:
            return cells.get(fault_class, {}).get("metrics", {})

        sa = metrics("stuck_at")
        pol = metrics("polarity")
        iddq = metrics("iddq")
        sop = metrics("stuck_open")
        stats = next(iter(cells.values())).get("circuit_stats", {})
        rows.append(
            CircuitCoverage(
                name=circuit,
                n_gates=stats.get("gates", 0),
                n_stuck_at=sa.get("n_faults", 0),
                n_polarity=pol.get("n_faults", 0),
                n_stuck_open=sop.get("n_faults", 0),
                n_masked_opens=sop.get("n_masked", 0),
                stuck_at_coverage=_nan_if_none(sa.get("coverage")),
                stuck_at_vectors=sa.get("n_vectors", 0),
                polarity_by_stuck_at_set=_nan_if_none(
                    pol.get("coverage_by_stuck_at_set")
                ),
                polarity_atpg_coverage=_nan_if_none(
                    pol.get("atpg_coverage")
                ),
                iddq_vectors=iddq.get("n_vectors", 0),
                iddq_coverage=_nan_if_none(iddq.get("coverage")),
            )
        )
    return rows


def coverage_for(
    network: Network, engine: str = "compiled"
) -> CircuitCoverage:
    """Full coverage analysis of one circuit.

    Runs all four campaign fault classes
    (:data:`repro.campaign.tasks.TASK_RUNNERS`) on ``network``
    in-process; the compiled network and its search structures are
    shared across the campaigns through the
    :func:`repro.logic.compiled.compile_network` memo.
    """
    from repro.campaign.store import SCHEMA_VERSION
    from repro.campaign.tasks import DEFAULT_FAULT_CLASSES, run_fault_class

    records = [
        {
            "schema": SCHEMA_VERSION,
            "task_id": f"{network.name}/{fault_class}/{engine}",
            "circuit": network.name,
            "fault_class": fault_class,
            "engine": engine,
            "status": "ok",
            "circuit_stats": network.stats(),
            "metrics": run_fault_class(network, fault_class, engine),
        }
        for fault_class in DEFAULT_FAULT_CLASSES
    ]
    return coverage_from_records(records)[0]


def experiment_atpg_coverage(
    benchmark_names: tuple[str, ...] | None = None,
) -> tuple[list[CircuitCoverage], str]:
    """Run the coverage study over the benchmark suite (default: the
    Section 5 suite, :data:`repro.campaign.tables.SECTION5_SUITE`).

    Equivalent CLI: ``python -m repro paper-tables`` (which adds
    multiprocessing fan-out and JSONL resume on top of the same grid).
    """
    from repro.campaign.runner import expand_grid, run_campaign
    from repro.campaign.tables import (
        SECTION5_READING,
        SECTION5_SUITE,
        coverage_table,
    )

    if benchmark_names is None:
        benchmark_names = SECTION5_SUITE
    campaign = run_campaign(expand_grid(benchmark_names))
    failed = [r["task_id"] for r in campaign.records
              if r["status"] != "ok"]
    if failed:
        raise RuntimeError(f"campaign tasks failed: {failed}")
    results = coverage_from_records(campaign.records)
    report = [
        "Circuit-scale coverage: classic stuck-at tests vs CP fault models",
        coverage_table(campaign.records),
        "",
        SECTION5_READING,
    ]
    return results, "\n".join(report)
