"""Circuit-scale ATPG experiments (the paper's claims at benchmark scale).

The paper's thesis, lifted from single gates to circuits: classic
stuck-at test sets do *not* cover the CP-specific faults (polarity
bridges, DP channel breaks), while the new models make them testable.
:func:`experiment_atpg_coverage` quantifies this on the benchmark suite.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.report import ascii_table
from repro.atpg.compaction import compact_tests
from repro.atpg.fault_sim import (
    parallel_polarity_simulation,
    parallel_stuck_at_simulation,
)
from repro.atpg.faults import (
    polarity_faults,
    stuck_at_faults,
    stuck_open_faults,
)
from repro.atpg.iddq import select_iddq_vectors
from repro.atpg.podem import run_stuck_at_atpg
from repro.atpg.polarity_atpg import run_polarity_atpg
from repro.circuits.generators import build_benchmark
from repro.logic.network import Network


@dataclasses.dataclass
class CircuitCoverage:
    """Coverage summary for one benchmark circuit."""

    name: str
    n_gates: int
    n_stuck_at: int
    n_polarity: int
    n_stuck_open: int
    n_masked_opens: int
    stuck_at_coverage: float
    stuck_at_vectors: int
    polarity_by_stuck_at_set: float
    """Fraction of polarity faults the classic stuck-at set detects at
    the outputs — the paper's 'current fault models are insufficient'."""
    polarity_atpg_coverage: float
    iddq_vectors: int
    iddq_coverage: float


def classic_stuck_at_testset(
    network: Network, max_backtracks: int = 500, engine: str = "compiled"
) -> list[dict[str, int]]:
    """PODEM with fault dropping + greedy compaction: the classic
    production test set."""
    faults = stuck_at_faults(network)
    atpg = run_stuck_at_atpg(network, faults, max_backtracks, engine=engine)
    compacted = compact_tests(network, atpg.tests, faults)
    return compacted.vectors


def coverage_for(
    network: Network, engine: str = "compiled"
) -> CircuitCoverage:
    """Full coverage analysis of one circuit.

    ``engine`` selects the PODEM implementation for every generation
    step (compiled default / legacy oracle); the compiled network and
    its search structures are shared across all campaigns through the
    :func:`repro.logic.compiled.compile_network` memo.
    """
    sa_faults = stuck_at_faults(network)
    pol_faults = polarity_faults(network)
    sop_faults = stuck_open_faults(network)

    test_set = classic_stuck_at_testset(network, engine=engine)
    sa_result = parallel_stuck_at_simulation(network, sa_faults, test_set)

    if pol_faults:
        pol_by_sa = parallel_polarity_simulation(
            network, pol_faults, test_set
        )
        pol_atpg = run_polarity_atpg(network, pol_faults, engine=engine)
        iddq = select_iddq_vectors(network, pol_faults, engine=engine)
        pol_by_sa_cov = pol_by_sa.coverage
        pol_atpg_cov = pol_atpg.coverage
        iddq_vectors = len(iddq.vectors)
        iddq_cov = iddq.coverage
    else:
        pol_by_sa_cov = float("nan")
        pol_atpg_cov = float("nan")
        iddq_vectors = 0
        iddq_cov = float("nan")

    masked = sum(1 for f in sop_faults if f.is_masked())
    return CircuitCoverage(
        name=network.name,
        n_gates=len(network.gates),
        n_stuck_at=len(sa_faults),
        n_polarity=len(pol_faults),
        n_stuck_open=len(sop_faults),
        n_masked_opens=masked,
        stuck_at_coverage=sa_result.coverage,
        stuck_at_vectors=len(test_set),
        polarity_by_stuck_at_set=pol_by_sa_cov,
        polarity_atpg_coverage=pol_atpg_cov,
        iddq_vectors=iddq_vectors,
        iddq_coverage=iddq_cov,
    )


def experiment_atpg_coverage(
    benchmark_names: tuple[str, ...] = (
        "c17", "rca4", "parity8", "tmr_voter", "eq4", "alu_slice"
    ),
) -> tuple[list[CircuitCoverage], str]:
    """Run the coverage study over the benchmark suite."""
    results = [coverage_for(build_benchmark(n)) for n in benchmark_names]

    def pct(x: float) -> str:
        import math

        return "n/a" if math.isnan(x) else f"{x * 100:.0f}%"

    rows = [
        (
            r.name,
            r.n_gates,
            r.stuck_at_vectors,
            pct(r.stuck_at_coverage),
            r.n_polarity,
            pct(r.polarity_by_stuck_at_set),
            pct(r.polarity_atpg_coverage),
            f"{r.iddq_vectors}",
            r.n_masked_opens,
            r.n_stuck_open,
        )
        for r in results
    ]
    report = [
        "Circuit-scale coverage: classic stuck-at tests vs CP fault models",
        ascii_table(
            (
                "circuit",
                "gates",
                "SA vecs",
                "SA cov",
                "pol faults",
                "pol cov by SA set",
                "pol cov (new ATPG)",
                "IDDQ vecs",
                "masked opens",
                "opens",
            ),
            rows,
        ),
        "",
        "Reading: the classic stuck-at set leaves most polarity faults",
        "undetected at the outputs; the polarity-aware ATPG (voltage +",
        "IDDQ modes) closes the gap, and every DP-gate open is masked,",
        "requiring the paper's channel-break procedure.",
    ]
    return results, "\n".join(report)
