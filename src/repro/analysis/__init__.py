"""Experiment drivers and reporting for every paper table and figure.

Every driver here is also reachable from the CLI: ``python -m repro
experiment <name>`` dispatches through
:data:`repro.analysis.experiments.EXPERIMENTS`, and the circuit-scale
coverage study runs as a campaign grid (see :mod:`repro.campaign`).
"""

from repro.analysis.atpg_experiments import (
    CircuitCoverage,
    classic_stuck_at_testset,
    coverage_for,
    coverage_from_records,
    experiment_atpg_coverage,
)
from repro.analysis.experiments import (
    EXPERIMENTS,
    FIG5_PANELS,
    experiment_fig3,
    experiment_fig4,
    experiment_fig5,
    experiment_sec5c,
    experiment_table1,
    experiment_table2,
    experiment_table3,
)
from repro.analysis.report import (
    ascii_table,
    format_quantity,
    format_series,
    save_report,
)
from repro.analysis.sweeps import (
    VcutPoint,
    VcutSweep,
    pull_down_vcut_axis,
    pull_up_vcut_axis,
    vcut_sweep,
)

__all__ = [
    "CircuitCoverage",
    "EXPERIMENTS",
    "FIG5_PANELS",
    "VcutPoint",
    "VcutSweep",
    "ascii_table",
    "classic_stuck_at_testset",
    "coverage_for",
    "coverage_from_records",
    "experiment_atpg_coverage",
    "experiment_fig3",
    "experiment_fig4",
    "experiment_fig5",
    "experiment_sec5c",
    "experiment_table1",
    "experiment_table2",
    "experiment_table3",
    "format_quantity",
    "format_series",
    "pull_down_vcut_axis",
    "pull_up_vcut_axis",
    "save_report",
    "vcut_sweep",
]
