"""Experiment drivers: one function per paper table/figure.

Each function runs the complete measurement and returns a structured
result plus a rendered text report; the ``benchmarks/`` directory calls
these and persists the reports under ``benchmarks/out/``, and the
:data:`EXPERIMENTS` registry at the bottom exposes every driver to the
``python -m repro experiment <name>`` CLI.  Example::

    >>> from repro.analysis.experiments import EXPERIMENTS
    >>> rows, report = EXPERIMENTS["table2"]()
    >>> "TIG-SiNWFET" in report
    True
"""

from __future__ import annotations

import dataclasses
import itertools
import math

import numpy as np

from repro.analysis.report import ascii_table, format_quantity
from repro.analysis.sweeps import (
    VcutSweep,
    pull_down_vcut_axis,
    pull_up_vcut_axis,
    vcut_sweep,
)
from repro.core.defects import enumerate_defect_sites, table_i_rows
from repro.core.fault_models import (
    ChannelBreakFault,
    StuckAtNType,
    StuckAtPType,
)
from repro.core.test_algorithms import (
    run_channel_break_procedure,
    simulate_two_pattern,
    two_pattern_sof_tests,
)
from repro.device import (
    CurveMetrics,
    GateOxideShort,
    TIGSiNWFET,
    compare_to_fault_free,
    sweep_id_vcg,
    table_ii_rows,
)
from repro.gates.builder import build_cell_circuit
from repro.gates.characterize import transition_delay
from repro.gates.library import ALL_CELLS, INV, NAND2, XOR2
from repro.spice.dc import solve_dc
from repro.spice.measure import logic_level
from repro.tcad.profiles import figure4_summary


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------

def experiment_table1() -> tuple[list[tuple[str, str, str]], str]:
    """Table I + per-cell defect-site counts from the IFA enumeration."""
    rows = table_i_rows()
    report = [
        "Table I: TIG-SiNWFET fabrication steps and defect models",
        ascii_table(("Process", "Outcome", "Possible defects"), rows),
        "",
        "Defect-site enumeration over the Fig. 2 gate library:",
    ]
    count_rows = []
    for name, cell in sorted(ALL_CELLS.items()):
        sites = enumerate_defect_sites(cell)
        by_mech: dict[str, int] = {}
        for s in sites:
            key = s.mechanism.value
            by_mech[key] = by_mech.get(key, 0) + 1
        count_rows.append(
            (
                name,
                len(cell.transistors),
                len(sites),
                by_mech.get("nanowire break", 0),
                by_mech.get("gate oxide short", 0),
                by_mech.get("bridge between two or more terminals", 0),
                by_mech.get("floating gate", 0),
            )
        )
    report.append(
        ascii_table(
            ("cell", "transistors", "sites", "breaks", "GOS",
             "terminal bridges", "floats"),
            count_rows,
        )
    )
    return rows, "\n".join(report)


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------

def experiment_table2() -> tuple[list[tuple[str, str]], str]:
    """Table II parameters + derived electrical figures of merit."""
    rows = table_ii_rows()
    device = TIGSiNWFET()
    metrics = CurveMetrics.from_curve(sweep_id_vcg(device, "n"))
    report = [
        "Table II: TIG-SiNWFET structural and physical parameters",
        ascii_table(("Device Parameter", "Value"), rows),
        "",
        "Derived electrical metrics of the calibrated compact model:",
        f"  Ion (n-config, VDS=VDD)   : "
        f"{format_quantity(metrics.id_sat, 'A')}",
        f"  VTh (constant-current)    : {metrics.vth:.3f} V",
        f"  Subthreshold slope        : {metrics.ss * 1e3:.0f} mV/dec",
        f"  On/off ratio (CG sweep)   : {metrics.on_off:.2e}",
    ]
    return rows, "\n".join(report)


# ---------------------------------------------------------------------------
# Fig. 3
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class Fig3Case:
    label: str
    v_cg: np.ndarray
    i_d: np.ndarray
    id_sat_ratio: float
    delta_vth: float
    i_min: float


def experiment_fig3() -> tuple[list[Fig3Case], str]:
    """Fig. 3: n-type transfer curves, fault-free vs GOS at each gate."""
    reference = TIGSiNWFET()
    ref_curve = sweep_id_vcg(reference, "n")
    cases = [
        Fig3Case(
            label="fault-free",
            v_cg=ref_curve.v_cg,
            i_d=np.asarray(ref_curve.i_d),
            id_sat_ratio=1.0,
            delta_vth=0.0,
            i_min=float(np.min(ref_curve.i_d)),
        )
    ]
    for loc in ("pgs", "cg", "pgd"):
        device = TIGSiNWFET(defect=GateOxideShort(loc))
        curve = sweep_id_vcg(device, "n")
        numbers = compare_to_fault_free(device, reference)
        cases.append(
            Fig3Case(
                label=f"GOS on {loc.upper()}",
                v_cg=curve.v_cg,
                i_d=np.asarray(curve.i_d),
                id_sat_ratio=numbers["id_sat_ratio"],
                delta_vth=numbers["delta_vth"],
                i_min=numbers["i_min"],
            )
        )
    rows = [
        (
            c.label,
            format_quantity(float(c.i_d[-1]), "A"),
            f"{c.id_sat_ratio:.3f}",
            f"{c.delta_vth * 1e3:+.0f} mV",
            format_quantity(c.i_min, "A"),
        )
        for c in cases
    ]
    report = [
        "Fig. 3: GOS impact on the n-type transfer characteristic",
        ascii_table(
            ("case", "ID(SAT)", "ratio vs FF", "dVTh", "min ID"), rows
        ),
        "",
        "Paper anchors: GOS@PGS strongest ID(SAT) drop with dVTh ~ +170 mV;",
        "GOS@CG milder drop, negative ID at low VCG; GOS@PGD slight",
        "increase, no shift.",
    ]
    return cases, "\n".join(report)


# ---------------------------------------------------------------------------
# Fig. 4
# ---------------------------------------------------------------------------

def experiment_fig4(nodes_per_segment: int = 40):
    """Fig. 4: channel electron densities from the TCAD-lite solver."""
    summary = figure4_summary(nodes_per_segment)
    rows = []
    for name, case in summary.items():
        rows.append(
            (
                name,
                f"{case.density_cm3:.3e}",
                f"{case.reference_cm3:.3e}",
                f"x{case.density_cm3 / case.reference_cm3:.2f}",
            )
        )
    report = [
        "Fig. 4: electron density of an n-configured TIG-SiNWFET",
        "(1-D Poisson/drift-diffusion; GOS = gate plug pinning + carrier",
        " absorption sink; density over the defect-affected section)",
        ascii_table(
            ("case", "density [cm^-3]", "paper", "ratio"), rows
        ),
    ]
    return summary, "\n".join(report)


# ---------------------------------------------------------------------------
# Fig. 5
# ---------------------------------------------------------------------------

FIG5_PANELS = (
    ("INV", "t1", "pgs"),
    ("INV", "t1", "pgd"),
    ("NAND2", "t1", "pgs"),
    ("NAND2", "t1", "pgd"),
    ("XOR2", "t1", "pgs"),
    ("XOR2", "t1", "pgd"),
    ("XOR2", "t1", "both"),
    ("INV", "t3", "pgs"),
    ("INV", "t3", "pgd"),
    ("NAND2", "t3", "pgs"),
    ("NAND2", "t3", "pgd"),
    ("XOR2", "t3", "pgs"),
    ("XOR2", "t3", "pgd"),
    ("XOR2", "t3", "both"),
)


def experiment_fig5(
    points: int = 8,
) -> tuple[dict[tuple[str, str, str], VcutSweep], str]:
    """Fig. 5: leakage-delay vs Vcut for floating polarity gates.

    Panels a-c sweep the pull-up transistor t1 (nominal PG bias 0 for SP
    gates), panels d-f the pull-down t3 (nominal bias VDD); each panel
    carries separate PGS and PGD curves, as in the paper's figure.
    """
    sweeps: dict[tuple[str, str, str], VcutSweep] = {}
    lines = ["Fig. 5: leakage-delay variation vs Vcut (FO4 loads)"]
    for cell_name, transistor, terminal in FIG5_PANELS:
        cell = ALL_CELLS[cell_name]
        role = cell.transistor(transistor).role
        axis = (
            pull_up_vcut_axis(points=points)
            if role == "pull_up"
            else pull_down_vcut_axis(points=points)
        )
        sweep = vcut_sweep(cell, transistor, terminal, axis)
        sweeps[(cell_name, transistor, terminal)] = sweep
        classification = sweep.classification()
        lines.append("")
        lines.append(
            f"-- {cell_name} {transistor} (float {terminal}); "
            f"{classification.describe()}"
        )
        rows = [
            (
                f"{p.vcut:.2f}",
                "inf" if math.isinf(p.delay) else f"{p.delay * 1e12:.1f}",
                format_quantity(p.leakage, "A"),
                "yes" if p.functional else "NO",
            )
            for p in sweep.points
        ]
        lines.append(
            ascii_table(
                ("Vcut [V]", "delay [ps]", "leakage", "functional"), rows
            )
        )
    return sweeps, "\n".join(lines)


# ---------------------------------------------------------------------------
# Table III (SPICE level)
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class TableIIIRow:
    fault_type: str
    transistor: str
    vector: tuple[int, int] | None
    leakage_detect: bool
    output_detect: bool
    iddq_ratio: float
    v_out: float
    v_out_good: float


def experiment_table3(iddq_threshold: float = 10.0):
    """Table III: stuck-at n/p detectability on the XOR2.

    Two views are produced, matching how the paper builds the table:

    * the **logic-level** detectability from the switch-level engine with
      drive-strength resolution (the fault-model view — reproduces the
      paper's rows), and
    * the **SPICE** measurement: faulty output voltage and IDDQ ratio at
      the detecting vector (the quantitative evidence).
    """
    from repro.core.test_algorithms import polarity_fault_table

    logic_rows = polarity_fault_table(XOR2)

    rows: list[TableIIIRow] = []
    good_bench = build_cell_circuit(XOR2, fanout=4)
    good: dict[tuple[int, int], tuple[int | None, float, float]] = {}
    for vector in itertools.product((0, 1), repeat=2):
        good_bench.set_vector(vector)
        op = solve_dc(good_bench.circuit)
        good[vector] = (
            logic_level(op.voltage("out"), good_bench.vdd),
            op.supply_current("vdd"),
            op.voltage("out"),
        )
    factories = {
        "stuck-at n-type": StuckAtNType,
        "stuck-at p-type": StuckAtPType,
    }
    for logic_row in logic_rows:
        factory = factories[logic_row.fault_type]
        vector = logic_row.detecting_vector
        bench = build_cell_circuit(XOR2, fanout=4)
        factory(logic_row.transistor).apply(bench)
        bench.set_vector(vector)
        op = solve_dc(bench.circuit)
        level = logic_level(op.voltage("out"), bench.vdd)
        ratio = op.supply_current("vdd") / max(good[vector][1], 1e-15)
        rows.append(
            TableIIIRow(
                fault_type=logic_row.fault_type,
                transistor=logic_row.transistor,
                vector=vector,
                leakage_detect=ratio > iddq_threshold,
                output_detect=(
                    level is not None and level != good[vector][0]
                ),
                iddq_ratio=ratio,
                v_out=op.voltage("out"),
                v_out_good=good[vector][2],
            )
        )

    logic_table = [
        (
            r.fault_type,
            r.transistor,
            "".join(map(str, r.detecting_vector))
            if r.detecting_vector
            else "-",
            "Yes" if r.leakage_detect else "No",
            "Yes" if r.output_detect else "No",
        )
        for r in logic_rows
    ]
    spice_table = [
        (
            r.fault_type,
            r.transistor,
            "".join(map(str, r.vector)),
            f"{r.v_out_good:.2f} -> {r.v_out:.2f} V",
            "Yes" if r.leakage_detect else "No",
            f"{r.iddq_ratio:.1e}",
        )
        for r in rows
    ]
    report = [
        "Table III: polarity-defect detection on the 2-input XOR",
        "",
        "(a) Logic-level fault model (switch level, strength-resolved):",
        ascii_table(
            (
                "Fault type",
                "Location",
                "Input for detection",
                "Leakage current",
                "Output voltage",
            ),
            logic_table,
        ),
        "",
        "(b) SPICE measurement at the detecting vector:",
        ascii_table(
            (
                "Fault type",
                "Location",
                "Input",
                "output voltage",
                "IDDQ detect",
                "IDDQ ratio",
            ),
            spice_table,
        ),
        "",
        "Paper rows (stuck-at n-type): t1@00 leak-only, t2@11 leak-only,",
        "t3@01 leak+output, t4@10 leak+output — matched exactly by (a).",
        "Stuck-at p-type rows match up to the symmetric pair relabeling",
        "t1<->t2 / t3<->t4; see EXPERIMENTS.md for the SPICE-level",
        "indeterminate-band discussion.",
    ]
    return rows, "\n".join(report)


# ---------------------------------------------------------------------------
# Section V-C: channel break
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class BreakObservation:
    transistor: str
    functional: bool
    delay_change: float
    leakage_change: float
    procedure_detects_break: bool
    procedure_false_alarm: bool


def experiment_sec5c():
    """Section V-C: channel-break masking in the DP XOR2 + the new
    detection procedure + the SP NAND2 two-pattern SOF set."""
    vdd = 1.2
    good_bench = build_cell_circuit(XOR2, fanout=4)
    good_delay = transition_delay(good_bench, "a", {"b": 0})
    good_leak = 0.0
    for vector in itertools.product((0, 1), repeat=2):
        good_bench.set_vector(vector)
        good_leak = max(
            good_leak, solve_dc(good_bench.circuit).supply_current("vdd")
        )

    observations: list[BreakObservation] = []
    for transistor in ("t1", "t2", "t3", "t4"):
        bench = build_cell_circuit(XOR2, fanout=4)
        ChannelBreakFault(transistor).apply(bench)
        functional = True
        leak = 0.0
        reference = XOR2.truth_table()
        for vector in itertools.product((0, 1), repeat=2):
            bench.set_vector(vector)
            op = solve_dc(bench.circuit)
            leak = max(leak, op.supply_current("vdd"))
            if logic_level(op.voltage("out"), vdd) != reference[vector]:
                functional = False
        delay = transition_delay(bench, "a", {"b": 0})
        observations.append(
            BreakObservation(
                transistor=transistor,
                functional=functional,
                delay_change=(delay - good_delay) / good_delay,
                leakage_change=(leak - good_leak) / good_leak,
                procedure_detects_break=run_channel_break_procedure(
                    XOR2, transistor, broken=True
                ),
                procedure_false_alarm=run_channel_break_procedure(
                    XOR2, transistor, broken=False
                ),
            )
        )

    sof_tests = two_pattern_sof_tests(NAND2)
    sof_rows = []
    for test in sof_tests:
        for target in test.covered:
            _init, final = simulate_two_pattern(NAND2, test, target)
            expected = NAND2.function(test.test_vector)
            sof_rows.append(
                (
                    "".join(map(str, test.init_vector))
                    + " -> "
                    + "".join(map(str, test.test_vector)),
                    target,
                    "detects" if final != expected else "MISSES",
                )
            )
    xor_sof = two_pattern_sof_tests(XOR2)
    inv_sof = two_pattern_sof_tests(INV)

    rows = [
        (
            o.transistor,
            "yes" if o.functional else "NO",
            f"{o.delay_change * 100:+.0f}%",
            f"{o.leakage_change * 100:+.0f}%",
            "yes" if o.procedure_detects_break else "NO",
            "yes" if o.procedure_false_alarm else "no",
        )
        for o in observations
    ]
    report = [
        "Section V-C: channel break in the DP XOR2 (FO4)",
        ascii_table(
            (
                "broken",
                "still functional",
                "d(delay)",
                "d(leakage)",
                "procedure detects",
                "false alarm",
            ),
            rows,
        ),
        "",
        "Paper: all single breaks masked; d(leakage) <= 100%, "
        "d(delay) <= 58%.",
        "",
        "Two-pattern SOF tests (SP gates):",
        f"  INV:   {[t.describe() for t in inv_sof]}",
        f"  NAND2: {[t.describe() for t in sof_tests]}",
        "  paper NAND2 set: 11->01, 11->10, 00->11 (equivalent cover; our",
        "  generator prefers the hazard-free single-input-change init).",
        f"  XOR2:  {len(xor_sof)} usable two-pattern tests "
        "(masked -> needs the new procedure)",
        "",
        "Two-pattern verification on NAND2:",
        ascii_table(("test pair", "broken transistor", "result"), sof_rows),
    ]
    return observations, "\n".join(report)


# ---------------------------------------------------------------------------
# Driver registry (the `python -m repro experiment` dispatch table)
# ---------------------------------------------------------------------------

def _experiment_atpg_coverage():
    # Imported lazily: the coverage study sits in atpg_experiments and
    # runs through the campaign layer.
    from repro.analysis.atpg_experiments import experiment_atpg_coverage

    return experiment_atpg_coverage()


#: name -> driver; every entry returns ``(structured_result, report)``.
EXPERIMENTS = {
    "table1": experiment_table1,
    "table2": experiment_table2,
    "table3": experiment_table3,
    "fig3": experiment_fig3,
    "fig4": experiment_fig4,
    "fig5": experiment_fig5,
    "sec5c": experiment_sec5c,
    "atpg-coverage": _experiment_atpg_coverage,
}
